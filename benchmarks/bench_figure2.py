"""Figure 2 — Expected Lifetimes of the S2PO systems as κ varies.

Regenerates the paper's Figure 2 (log scale): the EL of the FORTRESS
system under proactive obfuscation for κ spanning 0 .. 1, across the α
range.  Asserted qualitative content:

* EL is monotonically decreasing in κ at every α;
* the κ = 0 curve sits above S0PO (trend 4's exception);
* the κ = 1 curve sits below S1PO (trend 3's boundary).
"""

from __future__ import annotations

from repro.analysis.lifetimes import el_s0_po, el_s1_po
from repro.mc.sweeps import (
    FIGURE1_ALPHAS,
    FIGURE2_KAPPAS,
    figure2_series,
    sweep_kappa,
)
from repro.core.specs import s2
from repro.randomization.obfuscation import Scheme
from repro.reporting.tables import render_series_table

MC_TRIALS = 4000


def bench_figure2_analytic(benchmark, save_table):
    """EL-vs-α curves of S2PO, one per κ (the figure's series)."""
    series_list = benchmark(figure2_series, FIGURE1_ALPHAS, FIGURE2_KAPPAS)
    # Monotone in kappa at every alpha.
    for i, alpha in enumerate(series_list[0].xs):
        values = [s.points[i].mean for s in series_list]
        assert values == sorted(values, reverse=True), f"not monotone at {alpha}"
        assert values[0] > el_s0_po(alpha)  # kappa=0 beats S0PO
        assert values[-1] < el_s1_po(alpha)  # kappa=1 loses to S1PO
    save_table(
        "figure2_analytic",
        render_series_table(
            series_list,
            x_header="alpha",
            title="Figure 2 (analytic): EL of S2PO vs alpha, one curve per kappa",
        ),
    )


def bench_figure2_kappa_sweep_montecarlo(
    benchmark, save_table, scale_trials, bench_workers
):
    """The κ axis itself, Monte-Carlo, at a mid-range α."""
    base = s2(Scheme.PO, alpha=1e-3)
    # Adjacent κ curves sit ~10% apart, so the monotonicity assert needs
    # a higher smoke floor than the widely separated Figure-1 systems.
    trials = scale_trials(MC_TRIALS, floor=2000)

    def generate():
        return sweep_kappa(base, FIGURE2_KAPPAS, trials=trials, workers=bench_workers)

    series = benchmark.pedantic(generate, rounds=1, iterations=1)
    means = series.means
    assert means == sorted(means, reverse=True)
    save_table(
        "figure2_kappa_sweep_mc",
        render_series_table(
            [series],
            x_header="kappa",
            title=(
                "Figure 2 cross-section (Monte-Carlo): EL of S2PO vs kappa"
                f" at alpha=1e-3 [{trials} trials/point]"
            ),
            with_ci=True,
        ),
    )
