"""Protocol engine — campaign throughput + timing-model fidelity (BENCH).

Part 1 (throughput): runs the same S2 protocol campaign (an α × κ grid
of S2SO, χ = 2^8) twice through :func:`repro.core.campaign.run_campaign`
— once serially (``workers=1``) and once fanned across 4 worker
processes — and records runs/sec for both legs plus the speedup.
Because every seed is derived before dispatch, the two legs must return
bit-identical estimates; the bench asserts that, so the throughput
numbers can never come from silently divergent campaigns.

Part 2 (fidelity): runs the paper's five systems (S0PO, S2PO, S1PO,
S1SO, S0SO) at laptop scale under two
:class:`~repro.core.timing.TimingSpec` presets and compares each
protocol estimate with the timing-aware Monte-Carlo model:

* under ``TimingSpec.ideal()`` (zero-delay infrastructure) the model
  mean must fall **within the protocol 95% CI for all five systems** —
  including S2PO, which used to carry a ~1.5–1.9× fidelity gap from
  respawn/reconnect effects the models did not describe;
* under ``TimingSpec.paper()`` (the realistic delays) the bench records
  the measured gap against both the uncorrected paper model and the
  timing-corrected model, so the JSON tracks how much of the gap the
  correction explains.

Asserted content: serial/parallel bit-identity, S2SO
protocol-vs-MC-model agreement within a 5σ combined tolerance on every
throughput grid point, the five-system within-CI check under ideal
timing, zero heavily-censored points, and — on machines with ≥ 4 CPUs —
a ≥ 3× parallel speedup at 4 workers.  Single-core runners record their
measured speedup plus a dispatch-overhead-based projection of the
4-core figure instead of asserting it.  The JSON record persists under
``benchmarks/results/bench_protocol_engine.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.campaign import campaign_grid, run_campaign
from repro.core.specs import SystemClass, s0, s1, s2
from repro.core.timing import TimingSpec
from repro.mc.montecarlo import mc_expected_lifetime
from repro.randomization.obfuscation import Scheme
from repro.reporting.tables import render_campaign_table, render_table

SEED = 20260727
MC_SEED = 11
ALPHAS = (0.15, 0.2)
ENTROPY = 8
KAPPAS = (0.25, 0.5)
TRIALS_PER_POINT = 100
MAX_STEPS = 400
WORKERS = 4
MIN_PARALLEL_SPEEDUP = 3.0

FIDELITY_SEED = 20260728
FIDELITY_ALPHA = 0.15
FIDELITY_KAPPA = 0.5
FIDELITY_TRIALS = 100


def _campaign_specs():
    return campaign_grid(
        systems=(SystemClass.S2,),
        schemes=(Scheme.SO,),
        alphas=ALPHAS,
        kappas=KAPPAS,
        entropy_bits=ENTROPY,
    )


def _fidelity_specs():
    """The five systems of the paper's Figure 1, at laptop scale."""
    kwargs = dict(alpha=FIDELITY_ALPHA, entropy_bits=ENTROPY)
    return [
        s0(Scheme.PO, **kwargs),
        s2(Scheme.PO, kappa=FIDELITY_KAPPA, **kwargs),
        s1(Scheme.PO, **kwargs),
        s1(Scheme.SO, **kwargs),
        s0(Scheme.SO, **kwargs),
    ]


def _timed_campaign(specs, trials, workers):
    start = time.perf_counter()
    result = run_campaign(
        specs,
        trials=trials,
        max_steps=MAX_STEPS,
        seed=SEED,
        workers=workers,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def _fidelity_leg(specs, preset, trials, pure_means):
    """One five-system campaign under ``preset`` + model comparisons.

    ``pure_means`` carries the timing-free model means, computed once by
    the caller — they do not depend on the preset.
    """
    timing = TimingSpec.named(preset)
    campaign = run_campaign(
        specs,
        trials=trials,
        max_steps=MAX_STEPS,
        seed=FIDELITY_SEED,
        timing=timing,
    )
    rows = []
    for estimate in campaign:
        spec = estimate.spec
        model = mc_expected_lifetime(
            spec,
            seed=MC_SEED,
            precision=0.02,
            max_trials=500_000,
            timing=timing,
        )
        pure_mean = pure_means[spec.label]
        rows.append(
            {
                "label": spec.label,
                "alpha": spec.alpha,
                "kappa": spec.kappa,
                "runs": estimate.stats.n,
                "protocol_mean": estimate.mean_steps,
                "protocol_ci": [estimate.stats.ci_low, estimate.stats.ci_high],
                "censored": estimate.censored,
                "model_mean": model.mean,
                "model_within_protocol_ci": bool(
                    estimate.stats.ci_low <= model.mean <= estimate.stats.ci_high
                ),
                # The measured fidelity gap: how far the protocol stack
                # drifts from the paper's *uncorrected* model, and how
                # much of that the timing correction explains.
                "paper_model_mean": pure_mean,
                "gap_vs_paper_model": estimate.mean_steps / pure_mean,
                "gap_vs_timed_model": estimate.mean_steps / model.mean,
            }
        )
    return timing, rows


def bench_protocol_engine(save_table, save_json, scale_trials, smoke):
    """Serial-vs-parallel campaign throughput + model agreement."""
    specs = _campaign_specs()
    trials = scale_trials(TRIALS_PER_POINT, floor=10)
    serial, serial_seconds = _timed_campaign(specs, trials, workers=1)
    parallel, parallel_seconds = _timed_campaign(specs, trials, workers=WORKERS)

    # Determinism first: the throughput comparison is meaningless unless
    # both legs ran the exact same campaign.
    for a, b in zip(serial, parallel):
        assert a.stats == b.stats, f"{a.spec.label}: serial/parallel diverged"
        assert [o.steps for o in a.outcomes] == [o.steps for o in b.outcomes]

    total_runs = serial.total_runs
    serial_rps = total_runs / serial_seconds
    parallel_rps = total_runs / parallel_seconds
    speedup = parallel_rps / serial_rps
    cpu_count = os.cpu_count() or 1
    # Single-core runners cannot express process parallelism; project the
    # 4-core figure from the measured dispatch overhead so the record
    # stays comparable across machines (clearly labelled as projected).
    overhead_seconds = max(parallel_seconds - serial_seconds, 0.0)
    projected_seconds = serial_seconds / WORKERS + overhead_seconds
    projected_speedup = serial_seconds / projected_seconds
    speedup_asserted = cpu_count >= WORKERS and not smoke
    if speedup_asserted:
        # Smoke runs are sub-second: pool startup and shared-runner
        # noise dominate, so only the full workload gates the 3x bar.
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel campaign only {speedup:.2f}x over serial at "
            f"{WORKERS} workers (required {MIN_PARALLEL_SPEEDUP}x)"
        )

    rows = []
    model_means = {}
    for i, estimate in enumerate(serial):
        spec = estimate.spec
        model = mc_expected_lifetime(
            spec, seed=MC_SEED, precision=0.02, max_trials=500_000
        )
        model_means[i] = model.mean
        protocol_se = estimate.stats.std / np.sqrt(estimate.stats.n)
        model_se = model.stats.std / np.sqrt(model.stats.n)
        sigma = float(np.hypot(protocol_se, model_se))
        distance = abs(estimate.mean_steps - model.mean)
        within_ci = bool(estimate.stats.ci_low <= model.mean <= estimate.stats.ci_high)
        assert estimate.censored_fraction <= 0.1, (
            f"{spec.label} kappa={spec.kappa:g}: campaign point heavily "
            f"censored ({estimate.censored}/{estimate.stats.n})"
        )
        assert distance <= 5.0 * max(sigma, 1e-9), (
            f"{spec.label} kappa={spec.kappa:g}: protocol "
            f"{estimate.mean_steps:.2f} vs MC model {model.mean:.2f} "
            f"disagree beyond 5 sigma ({distance / sigma:.1f})"
        )
        rows.append(
            {
                "label": spec.label,
                "alpha": spec.alpha,
                "kappa": spec.kappa,
                "runs": estimate.stats.n,
                "protocol_mean": estimate.mean_steps,
                "protocol_ci": [estimate.stats.ci_low, estimate.stats.ci_high],
                "censored": estimate.censored,
                "km_mean": estimate.km_mean_steps,
                "mc_model_mean": model.mean,
                "mc_model_trials": model.trials,
                "model_within_protocol_ci": within_ci,
                "sigma_distance": distance / sigma if sigma else 0.0,
            }
        )

    # ------------------------------------------------------------------
    # Fidelity: the five paper systems, protocol vs timing-aware model.
    # Under the zero-delay preset the model must sit inside the protocol
    # 95% CI for every system (the S2PO gap is *closed*, not tolerated);
    # under the paper-realistic preset the measured gap is recorded.
    # ------------------------------------------------------------------
    fidelity_specs = _fidelity_specs()
    fidelity_trials = scale_trials(FIDELITY_TRIALS, floor=10)
    pure_means = {
        spec.label: mc_expected_lifetime(
            spec, seed=MC_SEED, precision=0.02, max_trials=500_000
        ).mean
        for spec in fidelity_specs
    }
    fidelity = {}
    for preset in ("ideal", "paper"):
        timing, fidelity_rows = _fidelity_leg(
            fidelity_specs, preset, fidelity_trials, pure_means
        )
        fidelity[preset] = {
            "timing": timing.as_dict(),
            "rows": fidelity_rows,
        }
    # NB: the fidelity gate runs *after* the record and tables persist,
    # so a failing run still uploads its own evidence as CI artifacts.

    save_json(
        "bench_protocol_engine",
        {
            "benchmark": "protocol_engine",
            "seed": SEED,
            "smoke": smoke,
            "cpu_count": cpu_count,
            "workers": WORKERS,
            "trials_per_point": trials,
            "max_steps": MAX_STEPS,
            "grid_points": len(specs),
            "total_runs": total_runs,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "serial_runs_per_sec": serial_rps,
            "parallel_runs_per_sec": parallel_rps,
            "speedup": speedup,
            "speedup_projected_at_4_cores": projected_speedup,
            "speedup_target": MIN_PARALLEL_SPEEDUP,
            "speedup_asserted": speedup_asserted,
            "serial_parallel_bit_identical": True,
            "rows": rows,
            "fidelity": {
                "seed": FIDELITY_SEED,
                "alpha": FIDELITY_ALPHA,
                "kappa": FIDELITY_KAPPA,
                "trials_per_system": fidelity_trials,
                "max_steps": MAX_STEPS,
                "legs": fidelity,
            },
        },
    )
    table = render_campaign_table(
        serial.estimates,
        title=(
            f"Protocol engine: S2SO campaign ({trials} seeds/point, budget "
            f"{MAX_STEPS} steps, chi=2^{ENTROPY})\n"
            f"serial {serial_rps:.1f} runs/s vs {WORKERS}-worker "
            f"{parallel_rps:.1f} runs/s = {speedup:.2f}x on {cpu_count} "
            f"CPU(s) (projected {projected_speedup:.2f}x at 4 cores)"
        ),
        model_means=model_means,
    )
    save_table("protocol_engine_campaign", table)
    fidelity_table_rows = []
    for preset in ("ideal", "paper"):
        for row in fidelity[preset]["rows"]:
            fidelity_table_rows.append(
                [
                    preset,
                    row["label"],
                    f"{row['protocol_mean']:.2f}",
                    f"[{row['protocol_ci'][0]:.2f}, {row['protocol_ci'][1]:.2f}]",
                    f"{row['model_mean']:.2f}",
                    "yes" if row["model_within_protocol_ci"] else "NO",
                    f"{row['paper_model_mean']:.2f}",
                    f"{row['gap_vs_paper_model']:.2f}x",
                ]
            )
    save_table(
        "protocol_engine_fidelity",
        render_table(
            [
                "timing",
                "system",
                "protocol EL",
                "95% CI",
                "timed model",
                "in CI",
                "paper model",
                "gap",
            ],
            fidelity_table_rows,
            title=(
                "Timing-model fidelity: five systems, protocol vs "
                f"timing-aware MC (alpha={FIDELITY_ALPHA}, chi=2^{ENTROPY}, "
                f"{fidelity_trials} seeds/system; 'gap' = protocol / "
                "uncorrected paper model)"
            ),
        ),
    )
    save_table(
        "protocol_engine_throughput",
        render_table(
            [
                "leg",
                "workers",
                "runs",
                "seconds",
                "runs/sec",
            ],
            [
                [
                    "serial",
                    "1",
                    str(total_runs),
                    f"{serial_seconds:.2f}",
                    f"{serial_rps:.1f}",
                ],
                [
                    "parallel",
                    str(WORKERS),
                    str(total_runs),
                    f"{parallel_seconds:.2f}",
                    f"{parallel_rps:.1f}",
                ],
            ],
            title=(
                "Protocol engine throughput (bit-identical campaigns; "
                f"speedup {speedup:.2f}x measured, "
                f"{projected_speedup:.2f}x projected at 4 cores)"
            ),
        ),
    )

    # The fidelity gate, last: everything above has already persisted,
    # so a failing run's own record (not a stale one) reaches the CI
    # artifacts.
    #
    # With every seed pinned this is a deterministic regression gate,
    # not a statistical test: for a *random* seed, five simultaneous
    # 95%-CI memberships would only hold ~77% of the time even with a
    # perfect model.  Anything that re-rolls the draw (FIDELITY_SEED,
    # trial counts, RNG stream consumption order, MC_SEED, the model
    # precision) therefore needs the gate re-validated, not patched
    # around.
    for row in fidelity["ideal"]["rows"]:
        assert row["censored"] == 0, (
            f"{row['label']}: censored runs in the ideal-timing campaign"
        )
        # Smoke runs draw too few seeds for the interval to mean
        # anything (n = 10 CIs under-cover badly); they record the
        # comparison and leave the gate to the full workload.
        assert smoke or row["model_within_protocol_ci"], (
            f"{row['label']}: timing-aware model {row['model_mean']:.2f} "
            f"outside the ideal-timing protocol 95% CI "
            f"[{row['protocol_ci'][0]:.2f}, {row['protocol_ci'][1]:.2f}] "
            f"(protocol mean {row['protocol_mean']:.2f})"
        )
