"""Protocol engine — serial vs parallel campaign throughput (BENCH record).

Runs the same S2 protocol campaign (an α × κ grid of S2SO, χ = 2^8)
twice through :func:`repro.core.campaign.run_campaign` — once serially
(``workers=1``) and once fanned across 4 worker processes — and records
runs/sec for both legs plus the speedup.  Because every seed is derived
before dispatch, the two legs must return bit-identical estimates; the
bench asserts that, so the throughput numbers can never come from
silently divergent campaigns.

S2SO is the campaign system on purpose: it is the one candidate whose
lifetime has no closed form, so the paper itself falls back to the
Monte-Carlo sampler there — protocol-vs-MC is the meaningful agreement
check.  (S2PO at laptop-scale α carries a known ~1.5× protocol-fidelity
gap — respawn delays and reconnect gaps are a large fraction of a step
when lifetimes are ~10 steps — tracked by ``bench_protocol_vs_model``'s
wide tolerance rather than asserted tightly here.)

Asserted content: serial/parallel bit-identity, protocol-vs-MC-model
agreement within a 5σ combined tolerance on every grid point, zero
heavily-censored points, and — on machines with ≥ 4 CPUs — a ≥ 3×
parallel speedup at 4 workers.  Single-core runners record their
measured speedup plus a dispatch-overhead-based projection of the
4-core figure instead of asserting it.  The JSON record persists under
``benchmarks/results/bench_protocol_engine.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.campaign import campaign_grid, run_campaign
from repro.core.specs import SystemClass
from repro.mc.montecarlo import mc_expected_lifetime
from repro.randomization.obfuscation import Scheme
from repro.reporting.tables import render_campaign_table, render_table

SEED = 20260727
MC_SEED = 11
ALPHAS = (0.15, 0.2)
ENTROPY = 8
KAPPAS = (0.25, 0.5)
TRIALS_PER_POINT = 100
MAX_STEPS = 400
WORKERS = 4
MIN_PARALLEL_SPEEDUP = 3.0


def _campaign_specs():
    return campaign_grid(
        systems=(SystemClass.S2,),
        schemes=(Scheme.SO,),
        alphas=ALPHAS,
        kappas=KAPPAS,
        entropy_bits=ENTROPY,
    )


def _timed_campaign(specs, trials, workers):
    start = time.perf_counter()
    result = run_campaign(
        specs,
        trials=trials,
        max_steps=MAX_STEPS,
        seed=SEED,
        workers=workers,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def bench_protocol_engine(save_table, save_json, scale_trials, smoke):
    """Serial-vs-parallel campaign throughput + model agreement."""
    specs = _campaign_specs()
    trials = scale_trials(TRIALS_PER_POINT, floor=10)
    serial, serial_seconds = _timed_campaign(specs, trials, workers=1)
    parallel, parallel_seconds = _timed_campaign(specs, trials, workers=WORKERS)

    # Determinism first: the throughput comparison is meaningless unless
    # both legs ran the exact same campaign.
    for a, b in zip(serial, parallel):
        assert a.stats == b.stats, f"{a.spec.label}: serial/parallel diverged"
        assert [o.steps for o in a.outcomes] == [o.steps for o in b.outcomes]

    total_runs = serial.total_runs
    serial_rps = total_runs / serial_seconds
    parallel_rps = total_runs / parallel_seconds
    speedup = parallel_rps / serial_rps
    cpu_count = os.cpu_count() or 1
    # Single-core runners cannot express process parallelism; project the
    # 4-core figure from the measured dispatch overhead so the record
    # stays comparable across machines (clearly labelled as projected).
    overhead_seconds = max(parallel_seconds - serial_seconds, 0.0)
    projected_seconds = serial_seconds / WORKERS + overhead_seconds
    projected_speedup = serial_seconds / projected_seconds
    speedup_asserted = cpu_count >= WORKERS and not smoke
    if speedup_asserted:
        # Smoke runs are sub-second: pool startup and shared-runner
        # noise dominate, so only the full workload gates the 3x bar.
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel campaign only {speedup:.2f}x over serial at "
            f"{WORKERS} workers (required {MIN_PARALLEL_SPEEDUP}x)"
        )

    rows = []
    model_means = {}
    for i, estimate in enumerate(serial):
        spec = estimate.spec
        model = mc_expected_lifetime(
            spec, seed=MC_SEED, precision=0.02, max_trials=500_000
        )
        model_means[i] = model.mean
        protocol_se = estimate.stats.std / np.sqrt(estimate.stats.n)
        model_se = model.stats.std / np.sqrt(model.stats.n)
        sigma = float(np.hypot(protocol_se, model_se))
        distance = abs(estimate.mean_steps - model.mean)
        within_ci = bool(
            estimate.stats.ci_low <= model.mean <= estimate.stats.ci_high
        )
        assert estimate.censored_fraction <= 0.1, (
            f"{spec.label} kappa={spec.kappa:g}: campaign point heavily "
            f"censored ({estimate.censored}/{estimate.stats.n})"
        )
        assert distance <= 5.0 * max(sigma, 1e-9), (
            f"{spec.label} kappa={spec.kappa:g}: protocol "
            f"{estimate.mean_steps:.2f} vs MC model {model.mean:.2f} "
            f"disagree beyond 5 sigma ({distance / sigma:.1f})"
        )
        rows.append(
            {
                "label": spec.label,
                "alpha": spec.alpha,
                "kappa": spec.kappa,
                "runs": estimate.stats.n,
                "protocol_mean": estimate.mean_steps,
                "protocol_ci": [estimate.stats.ci_low, estimate.stats.ci_high],
                "censored": estimate.censored,
                "km_mean": estimate.km_mean_steps,
                "mc_model_mean": model.mean,
                "mc_model_trials": model.trials,
                "model_within_protocol_ci": within_ci,
                "sigma_distance": distance / sigma if sigma else 0.0,
            }
        )

    save_json(
        "bench_protocol_engine",
        {
            "benchmark": "protocol_engine",
            "seed": SEED,
            "smoke": smoke,
            "cpu_count": cpu_count,
            "workers": WORKERS,
            "trials_per_point": trials,
            "max_steps": MAX_STEPS,
            "grid_points": len(specs),
            "total_runs": total_runs,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "serial_runs_per_sec": serial_rps,
            "parallel_runs_per_sec": parallel_rps,
            "speedup": speedup,
            "speedup_projected_at_4_cores": projected_speedup,
            "speedup_target": MIN_PARALLEL_SPEEDUP,
            "speedup_asserted": speedup_asserted,
            "serial_parallel_bit_identical": True,
            "rows": rows,
        },
    )
    table = render_campaign_table(
        serial.estimates,
        title=(
            f"Protocol engine: S2SO campaign ({trials} seeds/point, budget "
            f"{MAX_STEPS} steps, chi=2^{ENTROPY})\n"
            f"serial {serial_rps:.1f} runs/s vs {WORKERS}-worker "
            f"{parallel_rps:.1f} runs/s = {speedup:.2f}x on {cpu_count} "
            f"CPU(s) (projected {projected_speedup:.2f}x at 4 cores)"
        ),
        model_means=model_means,
    )
    save_table("protocol_engine_campaign", table)
    save_table(
        "protocol_engine_throughput",
        render_table(
            [
                "leg",
                "workers",
                "runs",
                "seconds",
                "runs/sec",
            ],
            [
                ["serial", "1", str(total_runs), f"{serial_seconds:.2f}",
                 f"{serial_rps:.1f}"],
                ["parallel", str(WORKERS), str(total_runs),
                 f"{parallel_seconds:.2f}", f"{parallel_rps:.1f}"],
            ],
            title=(
                "Protocol engine throughput (bit-identical campaigns; "
                f"speedup {speedup:.2f}x measured, "
                f"{projected_speedup:.2f}x projected at 4 cores)"
            ),
        ),
    )
