"""Result-cache replay of a paper-baseline campaign (BENCH).

Runs ``protocol-sweep --scenario paper-baseline`` twice through the
real CLI against a fresh cache directory: once cold (every grid point
simulated, entries written) and once warm (every grid point replayed
from disk).  Asserted content — the acceptance contract of the result
cache:

* the warm run scores exactly one cache hit per grid point and zero
  misses, and dispatches **zero** protocol tasks (checked by poisoning
  the task runner during the warm leg);
* the cold and warm campaign records are bit-identical outside the
  ``cache`` tally, and a second warm run is bit-identical *including*
  it;
* replay is faster than simulation (reported as the speedup column).

The JSON record persists under
``benchmarks/results/bench_result_cache.json``; ``--smoke`` scales the
seed count down for CI.
"""

from __future__ import annotations

import json
import pathlib
import time

import repro.core.campaign as campaign_module
import repro.core.experiment as experiment_module
from repro.cli import main
from repro.reporting.tables import render_table
from repro.scenarios import get_scenario

SEED = 20260807
FULL_TRIALS = 30
MAX_STEPS = 60
SCENARIO = "paper-baseline"


def _sweep(argv_tail: list[str]) -> float:
    start = time.perf_counter()
    code = main(["protocol-sweep", "--scenario", SCENARIO, *argv_tail])
    assert code == 0, f"protocol-sweep exited {code}"
    return time.perf_counter() - start


def _poisoned_task_runner(task):
    raise AssertionError("warm cache run must not dispatch protocol tasks")


def bench_result_cache(
    save_table, save_json, scale_trials, smoke, tmp_path, compare_records
):
    trials = scale_trials(FULL_TRIALS, floor=3)
    cache_dir = tmp_path / "campaign-cache"
    records = {name: tmp_path / f"{name}.json" for name in ("cold", "warm", "rerun")}
    grid_points = len(get_scenario(SCENARIO).grid())

    common = [
        "--trials",
        str(trials),
        "--max-steps",
        str(MAX_STEPS),
        "--seed",
        str(SEED),
        "--cache-dir",
        str(cache_dir),
    ]
    cold_s = _sweep([*common, "--output", str(records["cold"])])

    # Warm leg: every grid point must replay from disk — poison the task
    # runner so any dispatch attempt fails loudly instead of silently
    # recomputing.
    originals = (
        campaign_module.run_protocol_task,
        experiment_module.run_protocol_task,
    )
    campaign_module.run_protocol_task = _poisoned_task_runner
    experiment_module.run_protocol_task = _poisoned_task_runner
    try:
        warm_s = _sweep([*common, "--output", str(records["warm"])])
        rerun_s = _sweep([*common, "--output", str(records["rerun"])])
    finally:
        campaign_module.run_protocol_task = originals[0]
        experiment_module.run_protocol_task = originals[1]

    cold = json.loads(records["cold"].read_text())
    warm = json.loads(records["warm"].read_text())
    rerun = json.loads(records["rerun"].read_text())

    assert cold["cache"] == {"hits": 0, "misses": grid_points}
    assert warm["cache"] == {"hits": grid_points, "misses": 0}
    # Warm-vs-warm: bit-identical records, cache tally included.
    compare_records(warm, rerun)
    # Cold-vs-warm: bit-identical outside the cache tally.
    compare_records(cold, warm, ignore=("wall_seconds", "cache"))

    entries = len(list(pathlib.Path(cache_dir).rglob("*.json")))
    assert entries == grid_points

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    table = render_table(
        ["leg", "grid points", "hits", "misses", "seconds"],
        [
            [
                "cold",
                str(grid_points),
                "0",
                str(grid_points),
                f"{cold_s:.2f}",
            ],
            ["warm", str(grid_points), str(grid_points), "0", f"{warm_s:.2f}"],
            ["warm rerun", str(grid_points), str(grid_points), "0", f"{rerun_s:.2f}"],
        ],
        title=(
            f"Result-cache replay ({SCENARIO}, {trials} seeds/point, "
            f"budget {MAX_STEPS} steps): warm replay {speedup:.1f}x faster, "
            "records bit-identical, zero tasks dispatched"
        ),
    )
    save_table("bench_result_cache", table)
    save_json(
        "bench_result_cache",
        {
            "benchmark": "result_cache_replay",
            "seed": SEED,
            "smoke": smoke,
            "scenario": SCENARIO,
            "trials_per_point": trials,
            "max_steps": MAX_STEPS,
            "grid_points": grid_points,
            "cache_entries": entries,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "warm_rerun_seconds": rerun_s,
            "warm_speedup": speedup,
            "records_bit_identical": True,
        },
    )
