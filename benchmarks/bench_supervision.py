"""Supervised campaign under seeded chaos (BENCH).

Runs the same small ``protocol-sweep`` through the real CLI four ways —
fault-free, under a recoverable chaos pattern (crashes + transients),
under persistent poison, and interrupted-then-resumed from its journal —
and asserts the supervision acceptance contract:

* the chaos-supervised record is **bit-identical** to the fault-free
  record outside its ``supervision`` tally (retried attempts replay the
  exact per-task seeds, so recovery is invisible in the estimates);
* persistent poison exits 0 with the afflicted task quarantined in a
  failure manifest (written under ``benchmarks/results/``), never a
  crashed campaign or a silent gap;
* a ``--resume`` rerun against a completed journal dispatches **zero**
  protocol tasks (checked by poisoning the task runner) and reproduces
  the original record bit-identically.

The JSON record persists under
``benchmarks/results/bench_supervision.json``; ``--smoke`` scales the
seed count down for CI.
"""

from __future__ import annotations

import json
import pathlib
import time

import repro.core.campaign as campaign_module
import repro.core.experiment as experiment_module
from repro.cli import main
from repro.mc.executor import derive_point_seed
from repro.reporting.tables import render_table
from repro.supervision import ChaosSpec, chaos_events

SEED = 20260807
FULL_TRIALS = 40
MAX_STEPS = 60
GRID = ["--systems", "s0", "s1", "--schemes", "po", "--alphas", "0.1"]
GRID_POINTS = 2  # s0/po and s1/po at one alpha


def _task_seeds() -> list[int]:
    """First seed of each grid point's first task batch.

    Full-scale runs dispatch several batches per point; striking any
    one of these seeds is enough for the legs below, so the search
    only needs the batch-0 seeds (which always exist).
    """
    return [derive_point_seed(SEED, i, 0) for i in range(GRID_POINTS)]


def _chaos_seed(kind: str, *, partial: bool = False, **kwargs) -> int:
    """A chaos seed whose pattern afflicts this campaign with ``kind``."""
    seeds = _task_seeds()
    for chaos_seed in range(500):
        spec = ChaosSpec(seed=chaos_seed, **kwargs)
        hits = sum(1 for s in seeds if spec.fault_for(s) == kind)
        if partial and 0 < hits < len(seeds):
            return chaos_seed
        if not partial and hits > 0:
            return chaos_seed
    raise AssertionError(f"no chaos seed afflicts the campaign with {kind}")


def _sweep(argv_tail: list[str]) -> float:
    start = time.perf_counter()
    code = main(["protocol-sweep", *GRID, *argv_tail])
    assert code == 0, f"protocol-sweep exited {code}"
    return time.perf_counter() - start


def _poisoned_task_runner(task):
    raise AssertionError("journal resume must not dispatch protocol tasks")


def bench_supervision(
    save_table, save_json, scale_trials, smoke, tmp_path, compare_records
):
    trials = scale_trials(FULL_TRIALS, floor=4)
    records = {
        name: tmp_path / f"{name}.json"
        for name in ("clean", "chaos", "poison", "first", "resumed")
    }
    common = [
        "--trials",
        str(trials),
        "--max-steps",
        str(MAX_STEPS),
        "--seed",
        str(SEED),
        "--workers",
        "1",
        "--no-cache",
    ]

    clean_s = _sweep([*common, "--output", str(records["clean"])])

    # Recoverable chaos: every injected crash/transient is retried away.
    chaos = ChaosSpec(
        seed=_chaos_seed("transient", transient=0.45, crash=0.45),
        transient=0.45,
        crash=0.45,
    )
    injected = chaos_events(chaos, _task_seeds())
    chaos_s = _sweep(
        [
            *common,
            "--chaos",
            f"seed={chaos.seed},transient=0.45,crash=0.45",
            "--retries",
            "4",
            "--output",
            str(records["chaos"]),
        ]
    )

    clean = json.loads(records["clean"].read_text())
    chaotic = json.loads(records["chaos"].read_text())
    supervision = chaotic.pop("supervision")
    assert supervision["retries"] >= 1
    assert supervision["quarantined"] == 0
    compare_records(clean, chaotic)

    # Persistent poison: quarantined + manifested, exit code still 0.
    # The manifest lands under benchmarks/results/ so CI attaches it to
    # the run alongside the bench records.
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    manifest_path = results_dir / "bench_supervision_manifest.json"
    poison_seed = _chaos_seed("poison", partial=True, poison=0.5)
    _sweep(
        [
            *common,
            "--chaos",
            f"seed={poison_seed},poison=0.5",
            "--retries",
            "2",
            "--failure-manifest",
            str(manifest_path),
            "--output",
            str(records["poison"]),
        ]
    )
    manifest = json.loads(manifest_path.read_text())
    assert manifest["quarantined"] >= 1
    assert all(f["kind"] == "error" for f in manifest["failures"])
    poisoned = json.loads(records["poison"].read_text())
    # Each quarantined batch removes exactly its runs: afflicted points
    # fold from the survivors or drop entirely — the campaign always
    # completes, and the run tally accounts for every lost seed.
    assert len(poisoned["rows"]) <= GRID_POINTS
    lost_runs = sum(len(f["seeds"]) for f in manifest["failures"])
    assert poisoned["total_runs"] == clean["total_runs"] - lost_runs

    # Journal + resume: the rerun replays entirely from the journal.
    journal_path = tmp_path / "campaign.jsonl"
    journal = [*common, "--journal", str(journal_path)]
    _sweep([*journal, "--output", str(records["first"])])
    originals = (
        campaign_module.run_protocol_task,
        experiment_module.run_protocol_task,
    )
    campaign_module.run_protocol_task = _poisoned_task_runner
    experiment_module.run_protocol_task = _poisoned_task_runner
    try:
        resume_s = _sweep(
            [*journal, "--resume", "--output", str(records["resumed"])]
        )
    finally:
        campaign_module.run_protocol_task = originals[0]
        experiment_module.run_protocol_task = originals[1]
    first = json.loads(records["first"].read_text())
    resumed = json.loads(records["resumed"].read_text())
    compare_records(first, resumed)

    table = render_table(
        ["leg", "faults injected", "retries", "quarantined", "seconds"],
        [
            ["clean", "0", "0", "0", f"{clean_s:.2f}"],
            [
                "chaos (crash+transient)",
                str(GRID_POINTS - injected["clean"]),
                str(supervision["retries"]),
                "0",
                f"{chaos_s:.2f}",
            ],
            [
                "poison",
                str(manifest["quarantined"]),
                "-",
                str(manifest["quarantined"]),
                "-",
            ],
            ["journal resume", "0", "0", "0", f"{resume_s:.2f}"],
        ],
        title=(
            f"Supervised campaign under chaos ({trials} seeds/point, "
            f"budget {MAX_STEPS} steps): recovery bit-identical, poison "
            "quarantined, resume dispatches zero tasks"
        ),
    )
    save_table("bench_supervision", table)
    save_json(
        "bench_supervision",
        {
            "benchmark": "campaign_supervision",
            "seed": SEED,
            "smoke": smoke,
            "trials_per_point": trials,
            "max_steps": MAX_STEPS,
            "grid_points": GRID_POINTS,
            "chaos": {"seed": chaos.seed, "injected": injected},
            "supervision": supervision,
            "poison": {
                "seed": poison_seed,
                "quarantined": manifest["quarantined"],
                "surviving_points": len(poisoned["rows"]),
            },
            "clean_seconds": clean_s,
            "chaos_seconds": chaos_s,
            "resume_seconds": resume_s,
            "records_bit_identical": True,
        },
    )
