"""Validation — protocol-level simulation vs analytic / Monte-Carlo.

The paper's numbers come from models; our repository also implements the
*system* (processes, messages, crashes, forking daemons, proxies,
detection, launch pads).  This bench runs full protocol-level lifetime
experiments at a laptop-tractable scale (χ = 2^8, α = 0.1, so lifetimes
are a handful of steps) and compares the measured mean lifetimes with
the model predictions for every system class and scheme, plus Trend 1
reproduced end to end at the protocol level.

The deployments run under the paper-realistic
:meth:`~repro.core.timing.TimingSpec.paper` preset, so the assertion
compares against the *timing-aware* model — the paper's pure model is
reported alongside as the measured fidelity gap (at this scale respawn
delays, reconnect gaps and the within-step launch-pad window stretch
S2PO lifetimes well past any blanket tolerance; the timing layer models
them instead of tolerating them).
"""

from __future__ import annotations

from repro.analysis.lifetimes import expected_lifetime
from repro.core.experiment import estimate_protocol_lifetime
from repro.core.specs import s0, s1, s2
from repro.core.timing import TimingSpec
from repro.errors import ReproError
from repro.mc.montecarlo import mc_expected_lifetime
from repro.randomization.obfuscation import Scheme
from repro.reporting.tables import format_quantity, render_table

ALPHA = 0.1
ENTROPY = 8
TRIALS = 25
#: Accepted protocol-vs-timed-model deviation.  With ~25 seeds of a
#: roughly geometric lifetime the estimate itself is ±2/√n ≈ ±40% at
#: 2σ; the timed model removes the *systematic* part of the gap.
REL_TOL = 0.4
TIMING = TimingSpec.paper()


def _model_el(spec, timing=None) -> float:
    try:
        return expected_lifetime(spec, timing)
    except ReproError:
        # No closed form (S2SO at small alpha): let the engine sample to
        # a 1% CI half-width instead of hard-coding a trial count.
        return mc_expected_lifetime(
            spec, seed=11, precision=0.01, max_trials=200_000, timing=timing
        ).mean


def bench_protocol_vs_model(benchmark, save_table, scale_trials):
    specs = [
        s1(Scheme.SO, alpha=ALPHA, entropy_bits=ENTROPY),
        s1(Scheme.PO, alpha=ALPHA, entropy_bits=ENTROPY),
        s0(Scheme.SO, alpha=ALPHA, entropy_bits=ENTROPY),
        s2(Scheme.SO, alpha=ALPHA, kappa=0.5, entropy_bits=ENTROPY),
        s2(Scheme.PO, alpha=ALPHA, kappa=0.5, entropy_bits=ENTROPY),
    ]
    trials = scale_trials(TRIALS, floor=10)

    def run_all():
        out = {}
        for spec in specs:
            estimate = estimate_protocol_lifetime(
                spec, trials=trials, max_steps=400, timing=TIMING
            )
            out[spec.label] = (
                estimate.mean_steps,
                estimate.censored,
                _model_el(spec, TIMING),
                _model_el(spec),
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, (measured, censored, timed, pure) in results.items():
        ratio = measured / timed if timed else float("nan")
        gap = measured / pure if pure else float("nan")
        rows.append(
            [
                label,
                format_quantity(measured),
                format_quantity(timed),
                f"{ratio:.2f}",
                format_quantity(pure),
                f"{gap:.2f}",
                str(censored),
            ]
        )
        assert censored == 0, f"{label}: censored protocol runs"
        assert (1 - REL_TOL) <= ratio <= (1 + REL_TOL), (
            f"{label}: protocol {measured:.2f} vs timed model {timed:.2f}"
        )
    # Trend 1 end-to-end at the protocol level.
    assert results["S1SO"][0] > results["S0SO"][0]
    save_table(
        "protocol_vs_model",
        render_table(
            [
                "system",
                "protocol EL",
                "timed model",
                "ratio",
                "paper model",
                "gap",
                "censored",
            ],
            rows,
            title=(
                f"Protocol-level simulation vs models (chi=2^{ENTROPY}, "
                f"alpha={ALPHA}, {trials} seeds/system, paper timing; "
                "'gap' = protocol / uncorrected paper model)"
            ),
        ),
    )
