"""Simulation-kernel fast path — single-run protocol speed (BENCH).

PR 4 rewrote the innermost loop of the protocol simulator: list-entry
event heap with no-handle scheduling, ``__slots__`` messaging with
listener tuples and notification/sync/multicast event elision, epoch
fast-forward for decided runs, and chunked attacker RNG pulls.  This
bench is the referee for that work, in three parts:

1. **Kernel micro** — events/sec through a self-rescheduling timer
   workload, on the old dataclass-``Event`` kernel and on the new one.
2. **Messaging micro** — datagrams/sec through ``Network.send`` +
   delivery on both stacks.
3. **Single-run protocol speed** — runs/sec of full S2SO lifetimes on
   the paper configuration used throughout the bench suite (α = 0.15,
   κ = 0.5, χ = 2⁸, paper timing, 400-step budget), old vs. new.

The "old" side is the frozen pre-refactor snapshot vendored under
``benchmarks/legacy_pr3/`` (verbatim PR 3 code), so every comparison is
a same-process, same-machine-state A/B — robust against the noisy
shared runners this repo benches on, where absolute runs/sec swing by
±20% between sessions while the old/new ratio stays put.

Asserted (non-smoke): bit-identical outcomes between the two stacks on
every measured seed, a ≥ 2× kernel micro speedup, and the acceptance
bar — a **≥ 3× single-run protocol speedup** on the S2SO paper
configuration.  A cProfile of one new-engine run is recorded as a
top-10 hotspot table so regressions come with a diagnosis.  The JSON
record persists under ``benchmarks/results/bench_sim_kernel.json``.
"""

from __future__ import annotations

import cProfile
import gc
import pstats
import time

from legacy_pr3.core.experiment import run_protocol_lifetime as legacy_run_lifetime
from legacy_pr3.core.specs import s2 as legacy_s2
from legacy_pr3.core.timing import TimingSpec as LegacyTimingSpec
from legacy_pr3.net.message import Message as LegacyMessage
from legacy_pr3.net.network import Network as LegacyNetwork
from legacy_pr3.randomization.obfuscation import Scheme as LegacyScheme
from legacy_pr3.sim.engine import Simulator as LegacySimulator
from legacy_pr3.sim.process import SimProcess as LegacySimProcess

from repro.core.experiment import run_protocol_lifetime
from repro.core.specs import s2
from repro.core.timing import TimingSpec
from repro.net.message import Message
from repro.net.network import Network
from repro.randomization.obfuscation import Scheme
from repro.reporting.tables import render_table
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess

# The S2SO paper configuration of the bench suite (bench_protocol_engine
# uses the same α/κ/χ grid point).
ALPHA = 0.15
KAPPA = 0.5
ENTROPY = 8
MAX_STEPS = 400
TIMING_PRESET = "paper"

KERNEL_EVENTS = 150_000
KERNEL_TIMERS = 200
MESSAGES = 60_000

RUN_SEEDS = 20  # seeds per timing rep
RUN_REPS = 5  # timing reps (max taken: shields against runner noise)
WARMUP_SEEDS = 5

MIN_KERNEL_SPEEDUP = 2.0
MIN_RUN_SPEEDUP = 3.0


# ----------------------------------------------------------------------
# Micro workloads (identical shape on both stacks)
# ----------------------------------------------------------------------
def _bench_kernel(simulator_cls, n_events: int) -> float:
    """Events/sec of a self-rescheduling timer mesh (the engine's native
    idiom: every probe driver and protocol timer is such a chain)."""
    sim = simulator_cls(seed=1)

    def tick(i: int) -> None:
        sim.schedule(1.0 + (i % 7) * 0.001, tick, i)

    for i in range(KERNEL_TIMERS):
        sim.schedule(float(i % 13) / 13.0, tick, i)
    start = time.perf_counter()
    sim.run(max_events=n_events)
    return n_events / (time.perf_counter() - start)


def _bench_messages(
    simulator_cls, network_cls, message_cls, process_cls, n: int
) -> float:
    """Datagrams/sec through send + scheduled delivery, ping-pong style."""
    sim = simulator_cls(seed=1)
    network = network_cls(sim)
    budget = [n]

    class Echo(process_cls):
        def handle_message(self, message) -> None:
            if budget[0] > 0:
                budget[0] -= 1
                network.send(
                    message_cls(self.name, message.src, "ping", {"n": budget[0]})
                )

    a, b = Echo(sim, "a"), Echo(sim, "b")
    network.register(a)
    network.register(b)
    network.send(message_cls("a", "b", "ping", {"n": n}))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return network.messages_delivered / elapsed


# ----------------------------------------------------------------------
# Single-run protocol speed
# ----------------------------------------------------------------------
def _outcome_key(outcome) -> tuple:
    return (
        outcome.compromised,
        outcome.steps,
        outcome.time,
        outcome.cause,
        outcome.probes_direct,
        outcome.probes_indirect,
    )


def _bench_runs(run_fn, spec, timing, seeds: int, reps: int) -> tuple[float, list]:
    """Best-of-``reps`` runs/sec over ``seeds`` lifetimes + outcome keys."""
    outcomes = []
    for seed in range(WARMUP_SEEDS):
        run_fn(spec, seed=seed, max_steps=MAX_STEPS, timing=timing)
    best = 0.0
    for _ in range(reps):
        outcomes = []
        start = time.perf_counter()
        for seed in range(seeds):
            outcomes.append(run_fn(spec, seed=seed, max_steps=MAX_STEPS, timing=timing))
        best = max(best, seeds / (time.perf_counter() - start))
    return best, [_outcome_key(o) for o in outcomes]


def _profile_hotspots(spec, timing, runs: int = 3, top: int = 10) -> list[list[str]]:
    """cProfile top-``top`` rows (by internal time) for new-engine runs."""
    profiler = cProfile.Profile()
    profiler.enable()
    for seed in range(runs):
        run_protocol_lifetime(spec, seed=seed, max_steps=MAX_STEPS, timing=timing)
    profiler.disable()
    stats = pstats.Stats(profiler).stats  # {func: (cc, nc, tt, ct, callers)}
    ranked = sorted(stats.items(), key=lambda item: item[1][2], reverse=True)
    rows = []
    for (filename, lineno, name), (_, ncalls, tottime, cumtime, _) in ranked[:top]:
        where = f"{filename.rsplit('/', 1)[-1]}:{lineno}({name})"
        rows.append([str(ncalls), f"{tottime:.4f}", f"{cumtime:.4f}", where])
    return rows


def bench_sim_kernel(save_table, save_json, scale_trials, smoke):
    """Old-vs-new kernel, messaging and single-run protocol speed."""
    kernel_events = scale_trials(KERNEL_EVENTS, floor=10_000)
    messages = scale_trials(MESSAGES, floor=5_000)
    run_seeds = max(4, scale_trials(RUN_SEEDS, floor=4))
    run_reps = 1 if smoke else RUN_REPS

    legacy_eps = _bench_kernel(LegacySimulator, kernel_events)
    new_eps = _bench_kernel(Simulator, kernel_events)
    kernel_speedup = new_eps / legacy_eps

    legacy_mps = _bench_messages(
        LegacySimulator, LegacyNetwork, LegacyMessage, LegacySimProcess, messages
    )
    new_mps = _bench_messages(Simulator, Network, Message, SimProcess, messages)
    message_speedup = new_mps / legacy_mps

    spec = s2(Scheme.SO, alpha=ALPHA, kappa=KAPPA, entropy_bits=ENTROPY)
    timing = TimingSpec.named(TIMING_PRESET)
    legacy_spec = legacy_s2(
        LegacyScheme.SO, alpha=ALPHA, kappa=KAPPA, entropy_bits=ENTROPY
    )
    legacy_timing = LegacyTimingSpec.named(TIMING_PRESET)

    # Legacy leg first, each leg behind a full collection: the old stack
    # must not be billed for cyclic garbage the micro legs piled up (nor
    # profit from it — the new stack pauses GC during runs by design).
    gc.collect()
    legacy_rps, legacy_outcomes = _bench_runs(
        legacy_run_lifetime, legacy_spec, legacy_timing, run_seeds, run_reps
    )
    gc.collect()
    new_rps, new_outcomes = _bench_runs(
        run_protocol_lifetime, spec, timing, run_seeds, run_reps
    )
    run_speedup = new_rps / legacy_rps

    # The comparison is only meaningful if both engines simulate the same
    # campaigns: every per-seed outcome must be bit-identical.
    assert new_outcomes == legacy_outcomes, (
        "new engine diverged from the frozen PR 3 stack — the speedup "
        "comparison (and every figure downstream) is void"
    )

    hotspots = _profile_hotspots(spec, timing)

    save_json(
        "bench_sim_kernel",
        {
            "benchmark": "sim_kernel",
            "smoke": smoke,
            "config": {
                "alpha": ALPHA,
                "kappa": KAPPA,
                "entropy_bits": ENTROPY,
                "max_steps": MAX_STEPS,
                "timing": TIMING_PRESET,
                "run_seeds": run_seeds,
                "run_reps": run_reps,
            },
            "kernel_events_per_sec": {"legacy_pr3": legacy_eps, "new": new_eps},
            "kernel_speedup": kernel_speedup,
            "messages_per_sec": {"legacy_pr3": legacy_mps, "new": new_mps},
            "message_speedup": message_speedup,
            "runs_per_sec": {"legacy_pr3": legacy_rps, "new": new_rps},
            "single_run_speedup": run_speedup,
            "single_run_speedup_target": MIN_RUN_SPEEDUP,
            "outcomes_bit_identical": True,
            "profile_top10": hotspots,
        },
    )
    save_table(
        "sim_kernel_speedup",
        render_table(
            ["metric", "legacy (PR 3)", "new", "speedup"],
            [
                [
                    "kernel events/sec",
                    f"{legacy_eps:,.0f}",
                    f"{new_eps:,.0f}",
                    f"{kernel_speedup:.2f}x",
                ],
                [
                    "messages/sec",
                    f"{legacy_mps:,.0f}",
                    f"{new_mps:,.0f}",
                    f"{message_speedup:.2f}x",
                ],
                [
                    "S2SO runs/sec",
                    f"{legacy_rps:.1f}",
                    f"{new_rps:.1f}",
                    f"{run_speedup:.2f}x",
                ],
            ],
            title=(
                "Simulation-kernel fast path: frozen PR 3 stack vs new engine "
                f"(same process; S2SO alpha={ALPHA}, kappa={KAPPA}, "
                f"chi=2^{ENTROPY}, {TIMING_PRESET} timing, "
                f"{run_seeds} seeds x {run_reps} reps, best rep)"
            ),
        ),
    )
    save_table(
        "sim_kernel_profile",
        render_table(
            ["ncalls", "tottime", "cumtime", "function"],
            hotspots,
            title="cProfile top-10 (tottime) of 3 new-engine S2SO runs",
        ),
    )

    if smoke:
        # Smoke reps are single-shot on shared runners: record, don't gate.
        return
    assert kernel_speedup >= MIN_KERNEL_SPEEDUP, (
        f"kernel micro only {kernel_speedup:.2f}x over the PR 3 kernel "
        f"(required {MIN_KERNEL_SPEEDUP}x)"
    )
    assert run_speedup >= MIN_RUN_SPEEDUP, (
        f"single-run S2SO protocol speed only {run_speedup:.2f}x over the "
        f"frozen PR 3 stack (required {MIN_RUN_SPEEDUP}x; "
        f"new {new_rps:.1f} vs legacy {legacy_rps:.1f} runs/sec)"
    )
