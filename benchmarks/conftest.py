"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's evaluation artifacts (or an
ablation extending it) and both prints the resulting table and saves it
under ``benchmarks/results/`` so runs leave a diffable record.  Benches
that track quantitative baselines (throughput, speedups) additionally
persist a machine-readable JSON via ``save_json``.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a BENCH record as pretty-printed JSON; returns the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


@pytest.fixture
def save_table():
    """Fixture handing benches the emit() helper."""
    return emit


@pytest.fixture
def save_json():
    """Fixture handing benches the emit_json() helper."""
    return emit_json


def _compare_records(*records: dict, ignore: tuple = ("wall_seconds",)) -> None:
    """Assert campaign records are bit-identical modulo ``ignore`` fields.

    Wall-clock time is the one field that is *meant* to differ between
    otherwise bit-identical runs, so it is ignored by default; benches
    comparing across cache states add ``"cache"`` too.  Ignored fields
    are popped in place (``wall_seconds`` is also sanity-checked to be
    non-negative when present) and the remainder compared as canonical
    JSON, so a mismatch shows the full diffable payload.
    """
    for record in records:
        for field in ignore:
            value = record.pop(field, None)
            if field == "wall_seconds" and value is not None:
                assert value >= 0.0
    reference = json.dumps(records[0], sort_keys=True)
    for record in records[1:]:
        assert json.dumps(record, sort_keys=True) == reference


@pytest.fixture
def compare_records():
    """Fixture handing benches the record-identity assertion helper."""
    return _compare_records


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Worker-process count for MC sweeps (REPRO_BENCH_WORKERS env).

    Defaults to serial so benchmark timings stay comparable; set the
    env var to fan sweep grids out when wall-clock matters more.
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
