"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's evaluation artifacts (or an
ablation extending it) and both prints the resulting table and saves it
under ``benchmarks/results/`` so runs leave a diffable record.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture
def save_table():
    """Fixture handing benches the emit() helper."""
    return emit
