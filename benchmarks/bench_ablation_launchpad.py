"""Ablation — the launch-pad model (λ and stream multiplicity).

The paper describes the launch-pad strategy (compromise a proxy, then
attack servers from it over direct connections) but leaves the
within-step timing unspecified.  Our model exposes it as λ ∈ [0, 1] —
the success scale of a launch-pad attack fired in the same step its
hosting proxy fell — plus a variant where every fallen proxy hosts an
independent stream.  This bench quantifies how much the headline results
depend on that choice: at realistic κ the launch pad is a second-order
effect (the κ·α indirect term dominates, λ moves EL by < 2%), while at
κ = 0 it *is* the dominant compromise route — EL scales as 1/λ, and
λ = 0 is a regime change (only the α³ all-proxies route remains).
"""

from __future__ import annotations

from repro.analysis.lifetimes import el_s2_po
from repro.analysis.orderings import kappa_crossover_s2_vs_s1
from repro.reporting.tables import format_quantity, render_table

ALPHA = 1e-3
LAMBDAS = (0.0, 0.25, 0.5, 0.75, 1.0)
KAPPAS = (0.0, 0.1, 0.5)


def bench_launchpad_lambda_ablation(benchmark, save_table):
    def compute():
        return {
            (lam, k, per_proxy): el_s2_po(
                ALPHA, k, launchpad_fraction=lam, per_proxy_launchpad=per_proxy
            )
            for lam in LAMBDAS
            for k in KAPPAS
            for per_proxy in (False, True)
        }

    results = benchmark(compute)
    rows = []
    for lam in LAMBDAS:
        for per_proxy in (False, True):
            rows.append(
                [f"{lam:g}", "per-proxy" if per_proxy else "single"]
                + [format_quantity(results[(lam, k, per_proxy)]) for k in KAPPAS]
            )
    # At kappa=0.5 the whole lambda range moves EL by < 2%.
    at_half = [results[(lam, 0.5, False)] for lam in LAMBDAS]
    assert max(at_half) / min(at_half) < 1.02
    # At kappa=0 the launch pad IS the dominant route: EL scales ~1/lambda
    # (q ≈ 3λα²), so quartering lambda quadruples the lifetime...
    ratio = results[(0.25, 0.0, False)] / results[(1.0, 0.0, False)]
    assert 3.5 < ratio < 4.5
    # ...and lambda=0 is a regime change (only the α³ all-proxies route
    # remains), worth orders of magnitude.
    assert results[(0.0, 0.0, False)] / results[(1.0, 0.0, False)] > 100
    # Per-proxy streams only ever weaken the defender.
    for lam in LAMBDAS:
        for k in KAPPAS:
            assert results[(lam, k, True)] <= results[(lam, k, False)] + 1e-9
    save_table(
        "ablation_launchpad",
        render_table(
            ["lambda", "streams"] + [f"kappa={k:g}" for k in KAPPAS],
            rows,
            title=(
                f"Launch-pad ablation: EL of S2PO at alpha={ALPHA:g}.\n"
                "The unspecified within-step timing (lambda) is second-order\n"
                "whenever the indirect channel exists (kappa > 0)."
            ),
        ),
    )


def bench_launchpad_effect_on_crossover(benchmark, save_table):
    """How the trend-3 κ* boundary depends on λ."""

    def compute():
        return {
            lam: kappa_crossover_s2_vs_s1(1e-2, launchpad_fraction=lam)
            for lam in LAMBDAS
        }

    stars = benchmark(compute)
    rows = [[f"{lam:g}", f"{star:.6f}"] for lam, star in stars.items()]
    # A stronger launch pad can only lower the boundary.
    ordered = [stars[lam] for lam in LAMBDAS]
    assert ordered == sorted(ordered, reverse=True)
    save_table(
        "ablation_launchpad_crossover",
        render_table(
            ["lambda", "kappa* (S2PO vs S1PO) at alpha=1e-2"],
            rows,
            title="Trend-3 boundary vs launch-pad strength",
        ),
    )
