"""Rare-event splitting vs plain Monte-Carlo on a censor-heavy point (BENCH).

The paper's far tail is exactly where plain Monte-Carlo stops working:
nearly every protocol run censors at the step budget, and resolving
P(compromise) to a usable CI costs millions of runs.  This bench prices
both estimators on one such grid point in *simulated events* (the
bit-reproducible cost unit; wall time is hardware-dependent):

* **splitting** — one :func:`repro.rare.splitting.run_splitting`
  estimate; its ``events`` field already charges the pilot wave.
* **Monte-Carlo at matched precision** — extrapolated, not run (that is
  the point): a binomial estimate of ``p`` with the splitting CI's
  half-width ``h`` needs ``n ≈ p(1-p)(1.96/h)²`` runs, and the per-run
  event cost is measured from a small real MC sample on the same point.

The full-scale point is an S0 SMR tier under proactive obfuscation with
a deep fault-tolerance margin: f = 3 over ten diversely randomized
replicas, so the monitor only fires when *four* replicas are down at
once.  Each replica falls within an epoch with probability ≈ α (the
attacker covers an α-fraction of its key space before the refresh wipes
the eliminations), and overlap windows nest, so P(compromise within the
budget) sits around 2e-5 — far past plain MC at any sane budget.  It is
also the geometry splitting is built for: attacker progress climbs the
``(down + coverage)/4`` simultaneity ladder one genuinely random leap
at a time, so the Φ level set splits the path probability into a few
moderate factors instead of one unresolvable tail.

Asserted content — the acceptance contract of the rare-event engine:

* the splitting estimate is strictly positive with a finite CI
  enclosing it (plain MC at the sampled budget sees zero compromises);
* at matched CI half-width, splitting spends **≥ 10× fewer** simulated
  events than the Monte-Carlo extrapolation (full scale only; ``--smoke``
  runs a miniature non-rare point to exercise the machinery, where no
  ratio is claimed).

The JSON record persists under
``benchmarks/results/bench_rare_event.json``.
"""

from __future__ import annotations

from repro.core.experiment import estimate_protocol_lifetime
from repro.core.specs import s0, s2
from repro.metrics.stats import Z_95
from repro.randomization.obfuscation import Scheme
from repro.rare.splitting import SplittingConfig, run_splitting
from repro.reporting.tables import format_quantity, render_table

SEED = 20260807
MC_SAMPLE = 8  # real MC runs used to price events-per-run

# The censor-heavy point (see the module docstring): compromise needs
# four of ten diversely randomized replicas down simultaneously, each
# epoch-coincidence ~ alpha per replica.  P(compromise in 25 steps) is
# ~2e-5; the trajectory count is sized so the two deep ladder stages
# (third and fourth simultaneous fall) each see a handful of crossers
# per replication.
FULL_SPEC = s0(Scheme.PO, alpha=0.01, entropy_bits=10, f=3, n_servers=10)
FULL_MAX_STEPS = 25
FULL_CONFIG = SplittingConfig(pilot_runs=24, replications=8, trajectories=96)

# Smoke: a miniature, non-rare point — same code path, seconds not
# minutes, no event-ratio claim (the gain only materializes in the tail).
SMOKE_SPEC = s2(Scheme.PO, entropy_bits=8, alpha=0.1, kappa=0.8)
SMOKE_MAX_STEPS = 15
SMOKE_CONFIG = SplittingConfig(pilot_runs=8, replications=2, trajectories=6)

MIN_GAIN = 10.0


def bench_rare_event(save_table, save_json, smoke, bench_workers):
    spec = SMOKE_SPEC if smoke else FULL_SPEC
    max_steps = SMOKE_MAX_STEPS if smoke else FULL_MAX_STEPS
    config = SMOKE_CONFIG if smoke else FULL_CONFIG
    workers = bench_workers or 4

    # Price one plain MC run on this point (events/run is seed-stable to
    # within a few percent; the mean over a small sample suffices).
    mc = estimate_protocol_lifetime(
        spec, trials=MC_SAMPLE, max_steps=max_steps, workers=workers, seed0=SEED
    )
    events_per_run = mc.events / mc.stats.n
    mc_hits = sum(outcome.compromised for outcome in mc.outcomes)

    rare = run_splitting(
        spec, root_seed=SEED, max_steps=max_steps, workers=workers, config=config
    )
    assert rare.probability > 0.0, "splitting failed to resolve the rare event"
    assert rare.ci_low <= rare.probability <= rare.ci_high
    assert rare.ci_halfwidth > 0.0

    # Monte-Carlo runs needed for the same CI half-width, and their cost.
    p = rare.probability
    n_matched = p * (1.0 - p) * (Z_95 / rare.ci_halfwidth) ** 2
    mc_events_matched = n_matched * events_per_run
    gain = mc_events_matched / rare.events

    headers = ["estimator", "P(comp)", "CI95", "runs", "events", "vs MC"]
    rows = [
        [
            "mc (sampled)",
            f"{mc_hits}/{mc.stats.n}",
            "-",
            str(mc.stats.n),
            format_quantity(float(mc.events)),
            "-",
        ],
        [
            "mc (matched h)",
            format_quantity(p),
            f"±{format_quantity(rare.ci_halfwidth)}",
            format_quantity(n_matched),
            format_quantity(mc_events_matched),
            "1.0x",
        ],
        [
            "splitting",
            format_quantity(p),
            f"[{format_quantity(rare.ci_low)}, {format_quantity(rare.ci_high)}]",
            str(config.replications * config.trajectories + config.pilot_runs),
            format_quantity(float(rare.events)),
            f"{gain:.1f}x",
        ],
    ]
    title = (
        f"rare-event splitting vs MC — {spec.label} bits={spec.entropy_bits} "
        f"alpha={spec.alpha} f={spec.f} n={spec.n_servers} steps={max_steps}"
        + (" (smoke)" if smoke else "")
    )
    save_table("bench_rare_event", render_table(headers, rows, title=title))
    save_json(
        "bench_rare_event",
        {
            "bench": "rare_event",
            "smoke": smoke,
            "spec": spec.as_dict(),
            "max_steps": max_steps,
            "config": config.as_dict(),
            "splitting": {
                "probability": rare.probability,
                "ci": [rare.ci_low, rare.ci_high],
                "ci_halfwidth": rare.ci_halfwidth,
                "levels": list(rare.levels),
                "level_stats": [
                    {"level": s.level, "n": s.n, "crossed": s.crossed}
                    for s in rare.level_stats
                ],
                "products": list(rare.products),
                "events": rare.events,
            },
            "mc": {
                "sample_runs": mc.stats.n,
                "sample_compromises": mc_hits,
                "sample_events": mc.events,
                "events_per_run": events_per_run,
                "matched_halfwidth_runs": n_matched,
                "matched_halfwidth_events": mc_events_matched,
            },
            "event_gain": gain,
        },
    )

    if not smoke:
        # The sampled MC leg illustrates the censoring problem the
        # estimator exists to solve: at this budget it sees nothing.
        assert mc_hits == 0, (
            f"point is not censor-heavy: MC saw {mc_hits}/{mc.stats.n} compromises"
        )
        assert gain >= MIN_GAIN, (
            f"splitting event gain {gain:.1f}x below the {MIN_GAIN:.0f}x floor "
            f"(splitting {rare.events} events vs matched-MC {mc_events_matched:.3g})"
        )
