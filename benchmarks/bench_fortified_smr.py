"""Ablation — fortifying an SMR tier (FORTRESS beyond the paper's S2).

The paper's architecture allows any replication behind the proxies (§3)
but only evaluates the PB tier.  This bench quantifies the variant the
paper leaves on the table: 3 proxies in front of the 4-replica SMR
system.  The server-compromise route then needs *two* indirect hits in
one step, so its hazard scales as ``(κα)²`` instead of ``κα`` —
fortification and SMR's intrusion tolerance compose multiplicatively:

    EL(S2-SMR) ≈ EL(S0PO) / κ²   (for κ < 1)

The bench prints EL of S0PO, S2PO (PB tier) and S2-SMR across α and κ,
and runs a protocol-level fortified-SMR deployment end to end to show
the whole pipeline (proxy f+1 voting, over-signing, ACLs) is real code,
not just a formula.
"""

from __future__ import annotations

import pytest

from repro.analysis.lifetimes import el_s0_po, el_s2_po, el_s2_smr_po
from repro.core.builders import add_clients, build_system
from repro.core.specs import s2
from repro.randomization.obfuscation import Scheme
from repro.reporting.tables import format_quantity, render_table

ALPHAS = (1e-4, 1e-3, 1e-2)
KAPPAS = (0.1, 0.5, 1.0)


def bench_fortified_smr_analytic(benchmark, save_table):
    def compute():
        rows = []
        for alpha in ALPHAS:
            for kappa in KAPPAS:
                rows.append(
                    (
                        alpha,
                        kappa,
                        el_s0_po(alpha),
                        el_s2_po(alpha, kappa),
                        el_s2_smr_po(alpha, kappa),
                    )
                )
        return rows

    rows = benchmark(compute)
    table_rows = []
    for alpha, kappa, s0po, s2pb, s2smr in rows:
        table_rows.append(
            [
                format_quantity(alpha),
                f"{kappa:g}",
                format_quantity(s0po),
                format_quantity(s2pb),
                format_quantity(s2smr),
                f"{s2smr / s0po:.1f}x",
            ]
        )
        # The composition law: fortified SMR beats both constituents for
        # kappa < 1.  At kappa = 1 the proxies confer no pacing and their
        # own all-proxies route costs a sliver (< 0.2%).
        if kappa < 1.0:
            assert s2smr > s0po
        else:
            assert s2smr == pytest.approx(s0po, rel=2e-3)
        assert s2smr > s2pb
    save_table(
        "fortified_smr",
        render_table(
            ["alpha", "kappa", "S0PO", "S2PO (PB tier)", "S2-SMR", "gain vs S0PO"],
            table_rows,
            title=(
                "Fortifying SMR (extension): proxies in front of the 4-replica\n"
                "SMR system.  The server route needs f+1 = 2 indirect hits per\n"
                "step, so EL gains ~1/kappa^2 over plain S0PO."
            ),
        ),
    )


def bench_fortified_smr_protocol(benchmark, save_table):
    """End-to-end protocol run of the fortified-SMR deployment."""

    def run():
        spec = s2(Scheme.PO, alpha=1e-4, kappa=0.5, entropy_bits=8, n_servers=4)
        deployed = build_system(spec, seed=91, s2_server_tier="smr")
        clients = add_clients(deployed, 1)
        deployed.start()
        deployed.sim.run(until=10.0)
        return deployed, clients[0]

    deployed, client = benchmark.pedantic(run, rounds=1, iterations=1)
    digests = {s.service.digest() for s in deployed.servers}
    assert client.responses_ok > 30
    assert client.failures == 0
    assert len(digests) == 1
    save_table(
        "fortified_smr_protocol",
        render_table(
            ["metric", "value"],
            [
                ["client responses (valid)", str(client.responses_ok)],
                ["client failures", str(client.failures)],
                ["replica state digests agree", str(len(digests) == 1)],
                ["proxy f+1 voting mode", deployed.proxies[0].server_replication],
            ],
            title="Fortified-SMR protocol deployment (10 steps, chi=2^8)",
        ),
    )
