"""Ablation — proxy tier size (the paper fixes n_p = 3).

Sweeps the number of FORTRESS proxies from 1 to 8 at several κ and
reports the EL of S2PO.  The result is *not* monotone: a single proxy is
by far the weakest configuration (capturing it is simultaneously "all
proxies compromised" and a launch pad), but past two proxies each
additional one adds a potential launch-pad host faster than it hardens
the all-proxies route — with κ > 0 the indirect channel dominates anyway
and the proxy count barely matters.
"""

from __future__ import annotations

from repro.analysis.lifetimes import el_from_per_step, per_step_compromise_s2_po
from repro.reporting.tables import format_quantity, render_table

ALPHA = 1e-3
PROXY_COUNTS = (1, 2, 3, 4, 6, 8)
KAPPAS = (0.0, 0.1, 0.5, 1.0)


def _el(n_proxies: int, kappa: float) -> float:
    return el_from_per_step(
        per_step_compromise_s2_po(ALPHA, kappa, n_proxies=n_proxies)
    )


def bench_proxy_count_ablation(benchmark, save_table):
    results = benchmark(
        lambda: {(n, k): _el(n, k) for n in PROXY_COUNTS for k in KAPPAS}
    )
    rows = [
        [str(n)] + [format_quantity(results[(n, k)]) for k in KAPPAS]
        for n in PROXY_COUNTS
    ]
    # n=1 is the weakest at every kappa.
    for k in KAPPAS:
        assert all(results[(1, k)] <= results[(n, k)] for n in PROXY_COUNTS)
    # At kappa=0 the curve is non-monotone: n=2 beats n=8.
    assert results[(2, 0.0)] > results[(8, 0.0)]
    # With a strong indirect channel, proxy count barely matters (<5%).
    spread = max(results[(n, 1.0)] for n in PROXY_COUNTS[1:]) / min(
        results[(n, 1.0)] for n in PROXY_COUNTS[1:]
    )
    assert spread < 1.05
    save_table(
        "ablation_proxies",
        render_table(
            ["n_proxies"] + [f"kappa={k:g}" for k in KAPPAS],
            rows,
            title=(
                f"Proxy-count ablation: EL of S2PO at alpha={ALPHA:g}.\n"
                "One proxy is the worst config; beyond two, extra proxies add\n"
                "launch-pad hosts faster than they harden the all-proxies route."
            ),
        ),
    )
