"""Figure 1 — Expected Lifetime Comparison.

Regenerates the paper's Figure 1: EL vs α (the per-step direct-attack
success probability, swept over the "realistic range" 1e-5..1e-2) for
the five candidate systems S0PO, S2PO, S1PO, S1SO, S0SO at χ = 2^16,
κ = 0.5.  Two independent generators are benchmarked:

* the analytic formulas (closed forms / numeric sums);
* the Monte-Carlo engine (vectorized samplers with 95% confidence
  intervals, optionally fanned out across processes via the
  ``REPRO_BENCH_WORKERS`` environment variable).

The paper's qualitative reading of the figure — the ordering
``S0PO > S2PO > S1PO > S1SO > S0SO`` — is asserted on the output.
Under ``--smoke`` the Monte-Carlo trial count scales down for CI.
"""

from __future__ import annotations

from repro.mc.sweeps import FIGURE1_ALPHAS, figure1_series
from repro.reporting.tables import render_series_table

KAPPA = 0.5
MC_TRIALS = 4000


def _assert_figure1_ordering(series_list) -> None:
    by_label = {s.label: s for s in series_list}
    order = ["S0PO", "S2PO", "S1PO", "S1SO", "S0SO"]
    for i, alpha in enumerate(series_list[0].xs):
        values = [by_label[label].points[i].mean for label in order]
        assert values == sorted(values, reverse=True), (
            f"figure-1 ordering violated at alpha={alpha}: "
            f"{dict(zip(order, values))}"
        )


def bench_figure1_analytic(benchmark, save_table):
    """Analytic generation of all five Figure-1 curves."""
    series_list = benchmark(figure1_series, FIGURE1_ALPHAS, KAPPA)
    _assert_figure1_ordering(series_list)
    save_table(
        "figure1_analytic",
        render_series_table(
            series_list,
            x_header="alpha",
            title=(
                "Figure 1 (analytic): expected lifetime (whole steps) vs alpha"
                f" [chi=2^16, kappa={KAPPA}]"
            ),
        ),
    )


def bench_figure1_montecarlo(benchmark, save_table, scale_trials, bench_workers):
    """Monte-Carlo generation of the Figure-1 curves (with CIs)."""
    trials = scale_trials(MC_TRIALS)
    series_list = benchmark.pedantic(
        figure1_series,
        kwargs={
            "alphas": FIGURE1_ALPHAS,
            "kappa": KAPPA,
            "trials": trials,
            "workers": bench_workers,
        },
        rounds=1,
        iterations=1,
    )
    _assert_figure1_ordering(series_list)
    save_table(
        "figure1_montecarlo",
        render_series_table(
            series_list,
            x_header="alpha",
            title=(
                "Figure 1 (Monte-Carlo): expected lifetime vs alpha"
                f" [chi=2^16, kappa={KAPPA}, {trials} trials/point, mean [95% CI]]"
            ),
            with_ci=True,
        ),
    )
