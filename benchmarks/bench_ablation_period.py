"""Ablation — re-randomization period P (the paper fixes P = 1).

Uses the multi-state absorbing Markov chain of
:mod:`repro.analysis.period`: with P > 1 a compromised proxy stays in
attacker hands until the next system-wide re-randomization, hosting
full-rate launch-pad attacks every intervening step.  Reported per P:

* expected lifetime (whole steps);
* the split of compromise routes (server exploited vs all proxies held).

This quantifies how fast FORTRESS's advantage decays when
re-randomization cannot keep up with the unit time-step — the
operational cost knob of proactive obfuscation (§2.3's infrastructure
requirements exist precisely to keep P small).
"""

from __future__ import annotations

from repro.analysis.period import (
    ABSORB_PROXIES,
    ABSORB_SERVER,
    compromise_route_split,
    el_s2_po_with_period,
)
from repro.reporting.tables import format_quantity, render_table

ALPHA = 1e-3
KAPPA = 0.5
PERIODS = (1, 2, 3, 4, 6, 8, 12, 16)


def bench_period_ablation(benchmark, save_table):
    def compute():
        out = {}
        for period in PERIODS:
            el = el_s2_po_with_period(ALPHA, KAPPA, period_steps=period)
            split = compromise_route_split(ALPHA, KAPPA, period_steps=period)
            out[period] = (el, split)
        return out

    results = benchmark(compute)
    rows = [
        [
            str(period),
            format_quantity(el),
            f"{split[ABSORB_SERVER]:.4f}",
            f"{split[ABSORB_PROXIES]:.6f}",
        ]
        for period, (el, split) in results.items()
    ]
    els = [results[p][0] for p in PERIODS]
    assert els == sorted(els, reverse=True)  # slower refresh, shorter life
    # The paper's P=1 point must match the closed form used in Figure 1.
    from repro.analysis.lifetimes import el_s2_po

    assert abs(results[1][0] - el_s2_po(ALPHA, KAPPA)) < 1e-6
    save_table(
        "ablation_period",
        render_table(
            ["P (steps)", "EL", "P(server route)", "P(all-proxies route)"],
            rows,
            title=(
                f"Re-randomization period ablation (alpha={ALPHA:g}, kappa={KAPPA}):\n"
                "EL of S2 under PO with period P, via the (phase, k) absorbing\n"
                "Markov chain; longer periods let captured proxies persist."
            ),
        ),
    )
