"""Ablation — parameter elasticities (what should a defender harden?).

Prints ``d log EL / d log θ`` for every system and parameter across the
α range: the scaling laws a designer reads off the paper's log-log
Figure 1, made explicit.

* S1PO/S1SO/S0SO: elasticity −1 in α (lifetime ∝ 1/α: doubling key
  entropy doubles lifetime);
* S0PO: −2 (diversity squares the benefit of entropy);
* S2PO: −1 in α and −(indirect share) in κ — hardening detection (κ)
  only pays while the indirect route owns the hazard.
"""

from __future__ import annotations

import pytest

from repro.analysis.lifetimes import el_s0_po, el_s0_so, el_s1_po, el_s1_so
from repro.analysis.sensitivity import (
    elasticity,
    indirect_route_share,
    s2_po_alpha_elasticity,
    s2_po_kappa_elasticity,
)
from repro.reporting.tables import render_table

ALPHAS = (1e-4, 1e-3, 1e-2)
KAPPA = 0.5


def bench_alpha_elasticities(benchmark, save_table):
    def compute():
        rows = []
        for alpha in ALPHAS:
            rows.append(
                [
                    f"{alpha:g}",
                    f"{elasticity(el_s0_po, alpha):.3f}",
                    f"{s2_po_alpha_elasticity(alpha, KAPPA):.3f}",
                    f"{elasticity(el_s1_po, alpha):.3f}",
                    f"{elasticity(el_s1_so, alpha):.3f}",
                    f"{elasticity(el_s0_so, alpha):.3f}",
                ]
            )
        return rows

    rows = benchmark(compute)
    # The scaling laws hold across the grid.
    for row in rows:
        assert float(row[1]) == pytest.approx(-2.0, abs=0.05)  # S0PO
        assert float(row[3]) == pytest.approx(-1.0, abs=0.05)  # S1PO
    save_table(
        "sensitivity_alpha",
        render_table(
            ["alpha", "S0PO", f"S2PO@k={KAPPA}", "S1PO", "S1SO", "S0SO"],
            rows,
            title=(
                "Elasticity of EL wrt alpha (d log EL / d log alpha).\n"
                "S0PO's -2 is the diversity bonus: entropy pays double there."
            ),
        ),
    )


def bench_kappa_elasticity_and_route_share(benchmark, save_table):
    def compute():
        rows = []
        for alpha in ALPHAS:
            for kappa in (0.1, 0.5, 0.9):
                rows.append(
                    [
                        f"{alpha:g}",
                        f"{kappa:g}",
                        f"{s2_po_kappa_elasticity(alpha, kappa):.3f}",
                        f"{indirect_route_share(alpha, kappa):.3f}",
                    ]
                )
        return rows

    rows = benchmark(compute)
    for row in rows:
        # Elasticity wrt kappa equals minus the indirect route share.
        assert abs(float(row[2]) + float(row[3])) < 0.03
    save_table(
        "sensitivity_kappa",
        render_table(
            ["alpha", "kappa", "d log EL / d log kappa", "indirect route share"],
            rows,
            title=(
                "Kappa elasticity of S2PO: hardening proxy detection pays\n"
                "exactly in proportion to the hazard share the indirect\n"
                "route owns."
            ),
        ),
    )

