"""Scenario survivability matrix — scheme × scenario (BENCH).

Runs every registered scenario as a protocol campaign on a common S2
grid (both schemes, laptop scale: α = 0.15, χ = 2⁸) and records the
**survivability matrix**: for each (scheme, scenario) cell, the
fraction of runs that survived the step budget, the mean/KM lifetime
and the censoring count.  The matrix is the scenario subsystem's
headline artifact: one table showing how each composition — benign
faults, degraded timing, network pathology, non-paper adversaries —
shifts the two schemes' survival.

Asserted content: the matrix covers at least the eight canonical
built-in scenarios; every cell ran its full seed count; and a
``workers=2`` re-run of one faulty, workload-carrying scenario is
bit-identical to the serial leg (the campaign determinism contract,
checked at the bench level so throughput numbers can never come from
divergent runs).  The JSON record persists under
``benchmarks/results/bench_scenarios.json``; ``--smoke`` scales the
seed count down for CI.
"""

from __future__ import annotations

import time

from repro.core.campaign import run_scenario_campaign
from repro.reporting.tables import render_table
from repro.scenarios import all_scenarios
from repro.scenarios.registry import _ensure_library

SEED = 20260727
FULL_TRIALS = 40
MAX_STEPS = 60
#: The common grid every scenario is projected onto for the matrix:
#: the same S2 point under both schemes, so cells are comparable.
MATRIX_SYSTEMS = ("s2",)
MATRIX_SCHEMES = ("po", "so")
#: The determinism cross-check runs this scenario twice (serial vs 2
#: workers); chosen because it composes faults + workload + stealth.
CROSS_CHECK = "combined-stress"


def _matrix_variant(scenario):
    """Project a scenario onto the common matrix grid."""
    return scenario.replace(systems=MATRIX_SYSTEMS, schemes=MATRIX_SCHEMES)


def bench_scenarios(save_table, save_json, scale_trials, smoke):
    _ensure_library()
    scenarios = all_scenarios()
    assert len(scenarios) >= 8, "built-in scenario library shrank"
    trials = scale_trials(FULL_TRIALS, floor=6)

    rows = []
    json_rows = []
    elapsed_total = 0.0
    for scenario in scenarios:
        variant = _matrix_variant(scenario)
        start = time.perf_counter()
        result = run_scenario_campaign(
            variant, trials=trials, max_steps=MAX_STEPS, seed=SEED
        )
        elapsed = time.perf_counter() - start
        elapsed_total += elapsed
        for estimate in result:
            assert estimate.stats.n == trials, scenario.name
            survival = estimate.censored_fraction
            json_rows.append(
                {
                    "scenario": scenario.name,
                    "scheme": estimate.spec.scheme.name,
                    "label": estimate.spec.label,
                    "runs": estimate.stats.n,
                    "survival_fraction": survival,
                    "censored": estimate.censored,
                    "mean_steps": estimate.mean_steps,
                    "km_mean_steps": estimate.km_mean_steps,
                    "timing": variant.timing,
                    "adversary": variant.adversary.kind,
                    "faults": variant.faults.kind,
                    "workload": variant.workload.kind,
                }
            )
        by_scheme = {e.spec.scheme.name: e for e in result}
        rows.append(
            [
                scenario.name,
                variant.adversary.kind,
                variant.faults.kind,
                variant.workload.kind,
                f"{by_scheme['PO'].censored_fraction:.2f}",
                f"{by_scheme['PO'].km_mean_steps:.1f}",
                f"{by_scheme['SO'].censored_fraction:.2f}",
                f"{by_scheme['SO'].km_mean_steps:.1f}",
            ]
        )

    # Determinism cross-check: one faulty + workload scenario, serial
    # vs fanned, must be bit-identical cell by cell.
    check = _matrix_variant(next(s for s in scenarios if s.name == CROSS_CHECK))
    serial = run_scenario_campaign(
        check, trials=trials, max_steps=MAX_STEPS, seed=SEED, workers=1
    )
    fanned = run_scenario_campaign(
        check, trials=trials, max_steps=MAX_STEPS, seed=SEED, workers=2
    )
    for a, b in zip(serial, fanned):
        assert a.stats == b.stats, "scenario campaign diverged across workers"
        assert [o.steps for o in a.outcomes] == [o.steps for o in b.outcomes]

    table = render_table(
        [
            "scenario",
            "adversary",
            "faults",
            "workload",
            "PO surv",
            "PO KM",
            "SO surv",
            "SO KM",
        ],
        rows,
        title=(
            f"Scenario survivability matrix (S2, {trials} seeds/cell, "
            f"budget {MAX_STEPS} steps, {elapsed_total:.1f}s total)"
        ),
    )
    save_table("bench_scenarios", table)
    save_json(
        "bench_scenarios",
        {
            "benchmark": "scenario_matrix",
            "seed": SEED,
            "smoke": smoke,
            "trials_per_cell": trials,
            "max_steps": MAX_STEPS,
            "grid": {
                "systems": list(MATRIX_SYSTEMS),
                "schemes": list(MATRIX_SCHEMES),
            },
            "scenarios": len(scenarios),
            "worker_cross_check": CROSS_CHECK,
            "elapsed_seconds": elapsed_total,
            "rows": json_rows,
        },
    )
