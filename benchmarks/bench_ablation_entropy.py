"""Ablation — randomization key entropy.

The paper evaluates χ = 2^16 (PaX on 32-bit hardware) and notes that 16
or 32 bits are the realistic entropies.  This ablation fixes the
*attacker* (ω = 655.36 probes per step — the α = 0.01 attacker of the
2^16 case) and sweeps the defender's key entropy from 2^12 to 2^24,
deriving α = ω/χ per point.

Expected shape: every system's EL scales linearly in χ (exponentially in
entropy bits) except S0PO, which scales quadratically in χ because its
per-step hazard is Θ(α²) — doubling entropy buys S0PO four times the
lifetime but the others only twice.
"""

from __future__ import annotations

from repro.analysis.lifetimes import el_s0_po, el_s0_so, el_s1_po, el_s1_so, el_s2_po
from repro.reporting.tables import format_quantity, render_table

OMEGA = 655.36  # the alpha=0.01 attacker at chi=2^16
ENTROPIES = (12, 14, 16, 18, 20, 24)
KAPPA = 0.5


def _lifetimes_for_entropy(bits: int) -> dict[str, float]:
    chi = 1 << bits
    alpha = min(OMEGA / chi, 0.5)
    return {
        "alpha": alpha,
        "S0PO": el_s0_po(alpha),
        "S2PO": el_s2_po(alpha, KAPPA),
        "S1PO": el_s1_po(alpha),
        "S1SO": el_s1_so(alpha),
        "S0SO": el_s0_so(alpha),
    }


def bench_entropy_ablation(benchmark, save_table):
    results = benchmark(lambda: {b: _lifetimes_for_entropy(b) for b in ENTROPIES})
    rows = []
    for bits, el in results.items():
        rows.append(
            [
                f"2^{bits}",
                format_quantity(el["alpha"]),
                format_quantity(el["S0PO"]),
                format_quantity(el["S2PO"]),
                format_quantity(el["S1PO"]),
                format_quantity(el["S1SO"]),
                format_quantity(el["S0SO"]),
            ]
        )
    # Scaling law: from 2^16 to 2^18 (4x chi), S1PO gains ~4x but S0PO
    # gains ~16x (quadratic in chi).
    gain_s1 = results[18]["S1PO"] / results[16]["S1PO"]
    gain_s0 = results[18]["S0PO"] / results[16]["S0PO"]
    assert 3.5 < gain_s1 < 4.5
    assert 14.0 < gain_s0 < 18.0
    save_table(
        "ablation_entropy",
        render_table(
            ["chi", "alpha", "S0PO", "S2PO", "S1PO", "S1SO", "S0SO"],
            rows,
            title=(
                "Entropy ablation: EL vs key entropy at fixed attacker strength\n"
                f"(omega={OMEGA} probes/step, kappa={KAPPA}).  S0PO scales ~chi^2,\n"
                "every other system ~chi."
            ),
        ),
    )
