"""Performance benches for the evaluation machinery itself.

These are throughput benchmarks (classic pytest-benchmark targets) for
the pieces every experiment leans on: the AMC solver, the Monte-Carlo
samplers, the attacker's guess tracker and the protocol simulation loop.
They guard against performance regressions that would make the
figure-scale sweeps impractical.
"""

from __future__ import annotations

import random

import numpy as np

from repro.analysis.period import build_s2_po_period_chain
from repro.attacker.keytracker import KeyGuessTracker
from repro.core.experiment import run_protocol_lifetime
from repro.core.specs import s1, s2
from repro.mc.models import S2SOModel, model_for
from repro.randomization.keyspace import KeySpace
from repro.randomization.obfuscation import Scheme


def bench_amc_solver_large_chain(benchmark):
    """Solve a (16 phases x 7 proxies) = 112-state absorbing chain."""
    chain = build_s2_po_period_chain(1e-3, 0.5, n_proxies=8, period_steps=16)

    def solve():
        chain._fundamental = None  # force a fresh factorization
        return chain.solve()

    result = benchmark(solve)
    assert result.expected_steps.shape == (128,)


def bench_mc_sampler_s2so_throughput(benchmark):
    """Draw 200k S2SO lifetimes (the heaviest sampler)."""
    model = S2SOModel(s2(Scheme.SO, alpha=1e-3, kappa=0.5))
    rng = np.random.default_rng(1)
    lifetimes = benchmark(model.sample, 200_000, rng)
    assert lifetimes.shape == (200_000,)


def bench_mc_sampler_po_throughput(benchmark):
    """Draw 1M geometric PO lifetimes."""
    model = model_for(s2(Scheme.PO, alpha=1e-3, kappa=0.5))
    rng = np.random.default_rng(2)
    lifetimes = benchmark(model.sample, 1_000_000, rng)
    assert lifetimes.shape == (1_000_000,)


def bench_keytracker_full_enumeration(benchmark):
    """Enumerate a 2^14 key space without repeats."""

    def enumerate_space():
        tracker = KeyGuessTracker(KeySpace(14), random.Random(3))
        for _ in range(1 << 14):
            tracker.next_guess()
        return tracker

    tracker = benchmark(enumerate_space)
    assert tracker.exhausted


def bench_protocol_simulation_run(benchmark):
    """One full protocol-level S1SO lifetime run (build + attack + run)."""
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=8)
    outcome = benchmark(run_protocol_lifetime, spec, 1, 60)
    assert outcome.compromised
