"""Section-6 trends table ("Table 1" of this reproduction).

The paper states its four headline findings in prose; this bench
regenerates them as a pass/fail table, together with the κ crossovers
that quantify trends 3 and 4:

1. S1SO outlives S0SO;
2. S2PO and S1PO outlive all SO systems;
3. S2PO outlives S1PO when κ ≤ 0.9  (we also report the exact κ*);
4. S0PO outlives S2PO except when κ = 0 (we report the Θ(α) crossover).

Summary chain: S0PO --κ>0--> S2PO --κ≤0.9--> S1PO -> S1SO -> S0SO.
"""

from __future__ import annotations

from repro.analysis.orderings import (
    DEFAULT_ALPHAS,
    kappa_crossover_s2_vs_s0,
    kappa_crossover_s2_vs_s1,
    lifetimes_at,
    summary_chain_holds,
    verify_paper_trends,
)
from repro.reporting.tables import format_quantity, render_table


def bench_section6_trends(benchmark, save_table):
    """Verify all four trends over the α grid (the paper's Table-1-like
    summary) and print the evidence."""
    reports = benchmark(verify_paper_trends)
    assert all(r.holds for r in reports)
    rows = [
        [r.name, r.statement, "HOLDS" if r.holds else "FAILS", r.detail]
        for r in reports
    ]
    chain_ok = all(
        summary_chain_holds(alpha, kappa)
        for alpha in DEFAULT_ALPHAS
        for kappa in (0.05, 0.5, 0.9)
    )
    rows.append(
        [
            "chain",
            "S0PO -> S2PO -> S1PO -> S1SO -> S0SO (0<kappa<=0.9)",
            "HOLDS" if chain_ok else "FAILS",
            f"checked on {len(DEFAULT_ALPHAS)} alphas x 3 kappas",
        ]
    )
    assert chain_ok
    save_table(
        "section6_trends",
        render_table(
            ["trend", "statement", "verdict", "evidence"],
            rows,
            title="Section 6 trends (analytic verification)",
        ),
    )


def bench_kappa_crossovers(benchmark, save_table):
    """Quantify the trend-3 and trend-4 κ boundaries per α."""

    def compute():
        rows = []
        for alpha in DEFAULT_ALPHAS:
            rows.append(
                [
                    format_quantity(alpha),
                    f"{kappa_crossover_s2_vs_s1(alpha):.6f}",
                    f"{kappa_crossover_s2_vs_s0(alpha):.3e}",
                ]
            )
        return rows

    rows = benchmark(compute)
    # Trend 3's boundary lies in (0.9, 1) everywhere on the grid.
    assert all(0.9 < float(r[1]) < 1.0 for r in rows)
    save_table(
        "kappa_crossovers",
        render_table(
            ["alpha", "kappa* (S2PO vs S1PO)", "kappa* (S2PO vs S0PO)"],
            rows,
            title=(
                "Kappa crossovers: below kappa* FORTRESS outlives the rival.\n"
                "Trend 3's 'kappa <= 0.9' is the paper's sufficient bound; the\n"
                "exact boundary sits at 1 - Theta(alpha).  Trend 4's exception\n"
                "'kappa = 0' is exact up to a Theta(alpha) sliver."
            ),
        ),
    )


def bench_lifetime_table_midrange(benchmark, save_table):
    """The EL values at the paper's representative mid-range point."""
    el = benchmark(lifetimes_at, 1e-3, 0.5)
    rows = [[label, format_quantity(value)] for label, value in el.items()]
    save_table(
        "lifetimes_midrange",
        render_table(
            ["system", "expected lifetime (steps)"],
            rows,
            title="Expected lifetimes at alpha=1e-3, kappa=0.5, chi=2^16",
        ),
    )
