"""MC engine — scalar-loop vs vectorized-batch throughput (BENCH record).

Times every paper sampler on two code paths with a common seed:

* ``sample_scalar`` — one trial per Python-loop iteration, the
  pre-engine costing of "more trials for tighter CIs";
* ``sample_batch`` — the chunked vectorized engine path.

Asserted content: the geometric (PO) samplers gain at least 10× in
trials/sec, every Figure-1 system's vectorized mean falls inside the
scalar run's 95% CI, and the step-level / S2SO samplers agree within a
5σ combined tolerance.  A second bench exercises CI-width-targeted
early stopping against the known geometric case.  Both persist JSON
records under ``benchmarks/results/`` so speedups are diffable across
commits.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.lifetimes import el_s1_po, expected_lifetime
from repro.core.specs import paper_systems, s1, s2
from repro.mc.executor import estimate_to_precision
from repro.mc.models import S2POStepModel, model_for
from repro.mc.montecarlo import summarize_array
from repro.randomization.obfuscation import Scheme
from repro.reporting.tables import render_table

SEED = 20260727
FULL_TRIALS = 1_000_000
STEP_SCALAR_TRIALS = 20_000
STEP_VECTOR_TRIALS = 200_000
GEOMETRIC_LABELS = ("S0PO", "S2PO", "S1PO")
MIN_GEOMETRIC_SPEEDUP = 10.0


def _timed(fn, n, repeats=1):
    """Best-of-``repeats`` throughput (shields against noisy runners)."""
    values = None
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        drawn = fn(n, np.random.default_rng(SEED))
        elapsed = time.perf_counter() - start
        if values is None:
            values = drawn
        best = max(best, n / elapsed)
    return values, best


def _combined_sigma(stats_a, stats_b) -> float:
    se_a = stats_a.std / np.sqrt(stats_a.n)
    se_b = stats_b.std / np.sqrt(stats_b.n)
    return float(np.hypot(se_a, se_b))


def bench_mc_engine_throughput(save_table, save_json, scale_trials, smoke):
    """Old-vs-new trials/sec for every sampler, with agreement checks."""
    cases = [
        (spec, model_for(spec), scale_trials(FULL_TRIALS, floor=20_000))
        for spec in paper_systems(alpha=1e-3, kappa=0.5)
    ]
    cases.append(
        (
            s2(Scheme.SO, alpha=1e-3, kappa=0.5),
            model_for(s2(Scheme.SO, alpha=1e-3, kappa=0.5)),
            scale_trials(FULL_TRIALS, floor=20_000),
        )
    )
    step_spec = s2(Scheme.PO, alpha=0.05, kappa=0.4)
    rows = []
    records = []
    for spec, model, n_vector in cases:
        n_scalar = n_vector
        # Same best-of policy on both arms, so recorded speedups stay
        # comparable across commits and noisy runners.
        scalar_values, scalar_tps = _timed(model.sample_scalar, n_scalar, repeats=2)
        vector_values, vector_tps = _timed(model.sample_batch, n_vector, repeats=2)
        scalar_stats = summarize_array(scalar_values.astype(np.float64))
        vector_stats = summarize_array(vector_values.astype(np.float64))
        speedup = vector_tps / scalar_tps
        within = bool(scalar_stats.ci_low <= vector_stats.mean <= scalar_stats.ci_high)
        records.append(
            {
                "label": spec.label,
                "alpha": spec.alpha,
                "kappa": spec.kappa,
                "scalar_trials": n_scalar,
                "vectorized_trials": n_vector,
                "scalar_trials_per_sec": scalar_tps,
                "vectorized_trials_per_sec": vector_tps,
                "speedup": speedup,
                "scalar_mean": scalar_stats.mean,
                "scalar_ci": [scalar_stats.ci_low, scalar_stats.ci_high],
                "vectorized_mean": vector_stats.mean,
                "vectorized_within_scalar_ci": within,
            }
        )
        rows.append(
            [
                spec.label,
                f"{scalar_tps:,.0f}",
                f"{vector_tps:,.0f}",
                f"{speedup:.1f}x",
                f"{scalar_stats.mean:.2f}",
                f"{vector_stats.mean:.2f}",
                "yes" if within else "NO",
            ]
        )
        if spec.label in GEOMETRIC_LABELS:
            assert speedup >= MIN_GEOMETRIC_SPEEDUP, (
                f"{spec.label}: vectorized path only {speedup:.1f}x over the "
                f"scalar loop (required {MIN_GEOMETRIC_SPEEDUP}x)"
            )
        if spec.label != "S2SO":
            # Same seed drives both arms of every Figure-1 sampler, so
            # the draws are common random numbers: means must agree
            # within the scalar run's own CI.
            assert within, (
                f"{spec.label}: vectorized mean {vector_stats.mean:.3f} outside "
                f"scalar 95% CI [{scalar_stats.ci_low:.3f}, "
                f"{scalar_stats.ci_high:.3f}]"
            )
        else:
            # S2SO's scalar kernel draws in a different order, so CRN
            # does not apply; use a combined-error tolerance instead.
            sigma = _combined_sigma(scalar_stats, vector_stats)
            assert abs(scalar_stats.mean - vector_stats.mean) <= 5.0 * sigma, (
                f"{spec.label}: scalar/vectorized means disagree beyond 5 sigma"
            )
        if spec.label != "S2SO":  # S2SO's quadrature is priced separately
            records[-1]["analytic_el"] = expected_lifetime(spec)

    # Step-level S2PO validator: the genuinely sequential sampler, where
    # the block-stepper fallback does the heavy lifting.
    step_model = S2POStepModel(step_spec)
    n_step_scalar = scale_trials(STEP_SCALAR_TRIALS, floor=2_000)
    n_step_vector = scale_trials(STEP_VECTOR_TRIALS, floor=5_000)
    scalar_values, scalar_tps = _timed(
        step_model.sample_scalar, n_step_scalar, repeats=2
    )
    vector_values, vector_tps = _timed(
        step_model.sample_batch, n_step_vector, repeats=2
    )
    scalar_stats = summarize_array(scalar_values.astype(np.float64))
    vector_stats = summarize_array(vector_values.astype(np.float64))
    sigma = _combined_sigma(scalar_stats, vector_stats)
    assert abs(scalar_stats.mean - vector_stats.mean) <= 5.0 * sigma
    speedup = vector_tps / scalar_tps
    records.append(
        {
            "label": "S2PO(step-level)",
            "alpha": step_spec.alpha,
            "kappa": step_spec.kappa,
            "scalar_trials": n_step_scalar,
            "vectorized_trials": n_step_vector,
            "scalar_trials_per_sec": scalar_tps,
            "vectorized_trials_per_sec": vector_tps,
            "speedup": speedup,
            "scalar_mean": scalar_stats.mean,
            "scalar_ci": [scalar_stats.ci_low, scalar_stats.ci_high],
            "vectorized_mean": vector_stats.mean,
            "vectorized_within_scalar_ci": bool(
                scalar_stats.ci_low <= vector_stats.mean <= scalar_stats.ci_high
            ),
        }
    )
    rows.append(
        [
            "S2PO(step)",
            f"{scalar_tps:,.0f}",
            f"{vector_tps:,.0f}",
            f"{speedup:.1f}x",
            f"{scalar_stats.mean:.2f}",
            f"{vector_stats.mean:.2f}",
            "-",
        ]
    )

    save_json(
        "bench_mc_engine",
        {
            "benchmark": "mc_engine_throughput",
            "seed": SEED,
            "smoke": smoke,
            "min_geometric_speedup": MIN_GEOMETRIC_SPEEDUP,
            "rows": records,
        },
    )
    save_table(
        "mc_engine_throughput",
        render_table(
            [
                "system",
                "scalar t/s",
                "vectorized t/s",
                "speedup",
                "scalar mean",
                "vec mean",
                "in CI",
            ],
            rows,
            title=(
                "MC engine: scalar per-trial loop vs chunked vectorized batch\n"
                f"(common seed per system; geometric samplers must clear "
                f"{MIN_GEOMETRIC_SPEEDUP:.0f}x)"
            ),
        ),
    )


def bench_mc_engine_early_stopping(save_table, save_json, scale_trials, smoke):
    """CI-width-targeted sampling on the known geometric case."""
    alpha = 1e-2
    analytic = el_s1_po(alpha)
    model = model_for(s1(Scheme.PO, alpha=alpha))
    target = 0.05 if smoke else 0.01
    max_trials = scale_trials(2_000_000, floor=50_000)
    start = time.perf_counter()
    estimate = estimate_to_precision(
        model, rel_halfwidth=target, seed=SEED, max_trials=max_trials
    )
    elapsed = time.perf_counter() - start
    halfwidth = estimate.stats.ci_halfwidth
    assert estimate.converged, "early stopping failed to converge within budget"
    assert halfwidth <= target * abs(estimate.mean) * 1.0001
    assert abs(estimate.mean - analytic) <= 5.0 * max(halfwidth / 1.96, 1e-9)
    save_json(
        "bench_mc_engine_early_stopping",
        {
            "benchmark": "mc_engine_early_stopping",
            "seed": SEED,
            "smoke": smoke,
            "target_rel_halfwidth": target,
            "trials_used": estimate.trials,
            "max_trials": max_trials,
            "mean": estimate.mean,
            "analytic": analytic,
            "seconds": elapsed,
        },
    )
    save_table(
        "mc_engine_early_stopping",
        render_table(
            ["target rel CI", "trials used", "mean", "analytic", "seconds"],
            [
                [
                    f"{target:g}",
                    str(estimate.trials),
                    f"{estimate.mean:.3f}",
                    f"{analytic:.3f}",
                    f"{elapsed:.3f}",
                ]
            ],
            title=(
                "MC engine early stopping: S1PO (EL = 99) sampled to a target\n"
                "relative CI half-width instead of a fixed trial count"
            ),
        ),
    )
