"""State machine replication (SMR) over randomized replicas.

The paper's S0 system: ``n = 4`` diversely randomized replicas running a
deterministic state machine behind a PBFT-style order protocol, tolerant
of ``f = 1`` compromised replica.  Clients broadcast requests to all
replicas and accept a response once ``f + 1`` replicas return matching
signed responses.

The ordering core (quorum bookkeeping) lives in
:mod:`repro.replication.order_protocol`; this module adds the replica
process: leader sequencing, the three-phase exchange, in-order execution,
crash-triggered view changes, and recovery-time state transfer requiring
``f + 1`` matching states (the Roeder-Schneider condition the paper
summarizes in §2.3).

Attack surface: identical to :class:`~repro.replication.primary_backup.PBServer`
— direct connection probes, and probe-bearing requests which every
replica *executes* (each against its own diversely randomized address
space, so a single request-path probe can crash several replicas but can
compromise at most those whose key it guesses).
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Mapping, Optional

from ..core.timing import DEFAULT_RESPAWN_DELAY
from ..crypto.signatures import SignatureAuthority, canonical_bytes
from ..net.message import Message
from ..net.network import Network
from ..randomization.keyspace import KeySpace
from ..randomization.node import RandomizedProcess
from ..sim.engine import Simulator
from .order_protocol import OrderingState, SlotPhase
from .primary_backup import (
    PROBE_OP,
    REQUEST,
    SERVER_RESPONSE,
    SYNC_REQUEST,
    SYNC_RESPONSE,
)

PRE_PREPARE = "pre_prepare"
PREPARE = "prepare"
COMMIT = "commit"
VIEW_CHANGE = "view_change"


def request_digest(body: Mapping[str, Any]) -> str:
    """Stable digest identifying a request body."""
    return hashlib.sha256(canonical_bytes(dict(body))).hexdigest()


class SMRReplica(RandomizedProcess):
    """One replica of the S0 state-machine-replicated server system.

    Parameters
    ----------
    sim, name, keyspace, rng:
        See :class:`~repro.randomization.node.RandomizedProcess`.
    index:
        Replica index; the leader of view ``v`` is the replica with
        index position ``v mod n`` in the membership order.
    service:
        The deterministic state machine to replicate.
    authority, network:
        PKI and network substrates.
    f:
        Number of compromised replicas tolerated (``n > 3f``).
    request_timeout:
        How long a replica waits for a pending request to execute before
        voting for a view change.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        index: int,
        keyspace: KeySpace,
        rng: random.Random,
        service: Any,
        authority: SignatureAuthority,
        network: Network,
        f: int = 1,
        request_timeout: float = 0.25,
        respawn_delay: Optional[float] = DEFAULT_RESPAWN_DELAY,
    ) -> None:
        super().__init__(sim, name, keyspace, rng, respawn_delay=respawn_delay)
        self.index = index
        self.service = service
        self.authority = authority
        self.network = network
        self.f = f
        self.request_timeout = request_timeout
        self.peers: list[str] = []
        self.view = 0
        self.next_seq = 0  # last seq this leader assigned
        self.executed_seq = 0
        self.executed_ids: set[str] = set()
        self.response_cache: dict[str, dict] = {}
        self.pending: dict[str, dict] = {}  # request_id -> request record
        self._pending_since: dict[str, float] = {}
        self._proposed: set[str] = set()
        self._view_votes: dict[int, set[str]] = {}
        self._ordering: Optional[OrderingState] = None
        self._sync_reports: dict[str, dict] = {}
        self.requests_executed = 0
        authority.issue_keypair(name)
        self._ticker_started = False

    # ------------------------------------------------------------------
    # Membership and roles
    # ------------------------------------------------------------------
    def configure(self, peers: list[str]) -> None:
        """Install ordered membership and start the timeout ticker."""
        self.peers = list(peers)
        self._ordering = OrderingState(n=len(peers), f=self.f)
        if not self._ticker_started:
            self._ticker_started = True
            self.sim.schedule(self.request_timeout, self._tick)

    @property
    def ordering(self) -> OrderingState:
        if self._ordering is None:
            raise RuntimeError(f"{self.name} not configured")
        return self._ordering

    @property
    def leader_name(self) -> str:
        """Leader of the current view."""
        return self.peers[self.view % len(self.peers)]

    @property
    def is_leader(self) -> bool:
        """Whether this replica leads the current view."""
        return bool(self.peers) and self.leader_name == self.name

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        handler = {
            REQUEST: self._on_request,
            PRE_PREPARE: self._on_preprepare,
            PREPARE: self._on_prepare,
            COMMIT: self._on_commit,
            VIEW_CHANGE: self._on_view_change,
            SYNC_REQUEST: self._on_sync_request,
            SYNC_RESPONSE: self._on_sync_response,
        }.get(message.mtype)
        if handler is not None:
            handler(message)

    # -- client requests --------------------------------------------------
    def _on_request(self, message: Message) -> None:
        payload = message.payload
        request_id = payload["request_id"]
        if request_id in self.executed_ids:
            cached = self.response_cache.get(request_id)
            if cached is not None:
                self._send_response(
                    request_id, cached, list(payload.get("reply_to", []))
                )
            return
        record = {
            "request_id": request_id,
            "body": dict(payload.get("body", {})),
            "reply_to": list(payload.get("reply_to", [message.src])),
        }
        if request_id not in self.pending:
            self.pending[request_id] = record
            self._pending_since[request_id] = self.sim.now
        if self.is_leader:
            self._propose(record)

    def _propose(self, record: dict) -> None:
        """Leader: assign the next sequence number and pre-prepare."""
        request_id = record["request_id"]
        if request_id in self._proposed or request_id in self.executed_ids:
            return
        self._proposed.add(request_id)
        self.next_seq = max(self.next_seq, self.executed_seq) + 1
        digest = request_digest(record["body"])
        payload = {
            "view": self.view,
            "seq": self.next_seq,
            "digest": digest,
            "record": record,
        }
        for peer in self.peers:
            if peer != self.name:
                self.network.send(Message(self.name, peer, PRE_PREPARE, payload))
        # Leader processes its own pre-prepare directly.
        self._accept_preprepare(payload)

    # -- three-phase ordering ----------------------------------------------
    def _on_preprepare(self, message: Message) -> None:
        if message.src != self.leader_name:
            return  # only the current leader may sequence
        self._accept_preprepare(message.payload)

    def _accept_preprepare(self, payload: Mapping[str, Any]) -> None:
        view, seq = payload["view"], payload["seq"]
        if view != self.view or seq <= self.executed_seq:
            return
        record = payload["record"]
        if request_digest(record["body"]) != payload["digest"]:
            return  # malformed proposal
        self.ordering.record_preprepare(view, seq, payload["digest"], dict(record))
        self.pending.setdefault(record["request_id"], dict(record))
        self._pending_since.setdefault(record["request_id"], self.sim.now)
        self._broadcast_vote(PREPARE, view, seq, payload["digest"])
        if self.ordering.record_prepare(view, seq, payload["digest"], self.name):
            self._broadcast_vote(COMMIT, view, seq, payload["digest"])
            self._record_own_commit(view, seq, payload["digest"])

    def _broadcast_vote(self, phase: str, view: int, seq: int, digest: str) -> None:
        payload = {"view": view, "seq": seq, "digest": digest}
        for peer in self.peers:
            if peer != self.name:
                self.network.send(Message(self.name, peer, phase, payload))

    def _on_prepare(self, message: Message) -> None:
        p = message.payload
        if p["view"] != self.view:
            return
        if self.ordering.record_prepare(p["view"], p["seq"], p["digest"], message.src):
            self._broadcast_vote(COMMIT, p["view"], p["seq"], p["digest"])
            self._record_own_commit(p["view"], p["seq"], p["digest"])

    def _record_own_commit(self, view: int, seq: int, digest: str) -> None:
        if self.ordering.record_commit(view, seq, digest, self.name):
            self._execute_ready()

    def _on_commit(self, message: Message) -> None:
        p = message.payload
        if p["view"] != self.view:
            return
        if self.ordering.record_commit(p["view"], p["seq"], p["digest"], message.src):
            self._execute_ready()

    def _execute_ready(self) -> None:
        """Execute committed slots in contiguous sequence order."""
        progressed = True
        while progressed:
            progressed = False
            slot = self.ordering.slot(self.view, self.executed_seq + 1)
            if slot.phase is SlotPhase.COMMITTED and slot.request is not None:
                self._execute(slot.request)
                self.executed_seq += 1
                progressed = True

    def _execute(self, record: dict) -> None:
        request_id = record["request_id"]
        body = record["body"]
        reply_to = record["reply_to"]
        self.pending.pop(request_id, None)
        self._pending_since.pop(request_id, None)
        if request_id in self.executed_ids:
            return
        self.executed_ids.add(request_id)
        if body.get("op") == PROBE_OP:
            # Every replica executes the ordered request against its own
            # (diversely randomized) address space.
            self.receive_probe(int(body.get("guess", -1)))
            return
        response = self.service.apply(body)
        self.requests_executed += 1
        self.response_cache[request_id] = response
        self._send_response(request_id, response, reply_to)

    def _send_response(
        self, request_id: str, response: dict, reply_to: list[str]
    ) -> None:
        body = {"request_id": request_id, "response": response, "index": self.index}
        if self.compromised:
            body = {
                "request_id": request_id,
                "response": {"ok": False, "error": "__corrupted__"},
                "index": self.index,
            }
        signed = self.authority.sign(self.name, body)
        for target in reply_to:
            if self.network.knows(target):
                self.network.send(
                    Message(self.name, target, SERVER_RESPONSE, {"signed": signed})
                )

    # -- view changes --------------------------------------------------------
    def _tick(self) -> None:
        if self.is_available and self._pending_since:
            oldest = min(self._pending_since.values())
            if self.sim.now - oldest > self.request_timeout:
                self._vote_view_change(self.view + 1)
        self.sim.schedule(self.request_timeout, self._tick)

    def _vote_view_change(self, new_view: int) -> None:
        votes = self._view_votes.setdefault(new_view, set())
        if self.name in votes:
            return
        votes.add(self.name)
        payload = {"new_view": new_view}
        for peer in self.peers:
            if peer != self.name:
                self.network.send(Message(self.name, peer, VIEW_CHANGE, payload))
        self._maybe_enter_view(new_view)

    def _on_view_change(self, message: Message) -> None:
        new_view = message.payload["new_view"]
        if new_view <= self.view:
            return
        self._view_votes.setdefault(new_view, set()).add(message.src)
        # Echo our own vote so the quorum can assemble even if our timer
        # has not fired yet (standard view-change amplification).
        if len(self._view_votes[new_view]) >= self.f + 1:
            self._vote_view_change(new_view)
        self._maybe_enter_view(new_view)

    def _maybe_enter_view(self, new_view: int) -> None:
        votes = self._view_votes.get(new_view, set())
        if new_view <= self.view or len(votes) < self.ordering.quorum:
            return
        old_view = self.view
        self.view = new_view
        self.ordering.drop_view(old_view)
        self._proposed.clear()
        for request_id in self._pending_since:
            self._pending_since[request_id] = self.sim.now
        self._request_sync()
        if self.is_leader:
            for record in list(self.pending.values()):
                self._propose(record)

    # -- state transfer --------------------------------------------------------
    def _request_sync(self) -> None:
        self._sync_reports.clear()
        for peer in self.peers:
            if peer != self.name and self.network.knows(peer):
                self.network.send(Message(self.name, peer, SYNC_REQUEST, {}))

    def _on_sync_request(self, message: Message) -> None:
        self.network.send(
            Message(
                self.name,
                message.src,
                SYNC_RESPONSE,
                {
                    "seq": self.executed_seq,
                    "view": self.view,
                    "digest": self.service.digest(),
                    "snapshot": self.service.snapshot(),
                    "cache": dict(self.response_cache),
                    "executed_ids": sorted(self.executed_ids),
                },
            )
        )

    def _on_sync_response(self, message: Message) -> None:
        """Adopt a peer state only when ``f + 1`` replicas agree on it.

        This is the recovery condition of §2.3: a re-joining replica
        needs ``f + 1`` correct working replicas to supply the state, so
        a single compromised replica cannot poison recovery.
        """
        self._sync_reports[message.src] = dict(message.payload)
        by_fingerprint: dict[tuple[int, str], list[dict]] = {}
        for report in self._sync_reports.values():
            by_fingerprint.setdefault(
                (report["seq"], report["digest"]), []
            ).append(report)
        for (seq, _), reports in by_fingerprint.items():
            if seq > self.executed_seq and len(reports) >= self.f + 1:
                chosen = reports[0]
                self.executed_seq = seq
                self.view = max(self.view, chosen["view"])
                self.service.restore(chosen["snapshot"])
                self.response_cache.update(chosen["cache"])
                self.executed_ids.update(chosen["executed_ids"])
                for request_id in list(self.pending):
                    if request_id in self.executed_ids:
                        self.pending.pop(request_id, None)
                        self._pending_since.pop(request_id, None)
                break

    # ------------------------------------------------------------------
    # Lifecycle hooks.  (The direct connection-probe attack surface is
    # inherited from RandomizedProcess.)
    # ------------------------------------------------------------------
    def on_respawn(self) -> None:
        self._request_sync()

    def on_reboot_complete(self) -> None:
        self._request_sync()
