"""Replication substrates: primary-backup, SMR ordering, services."""

from .order_protocol import OrderingState, Slot, SlotPhase, quorum_size
from .primary_backup import PROBE_OP, PBServer
from .smr import SMRReplica, request_digest
from .state_machine import (
    CounterService,
    KVStoreService,
    Service,
    SessionTokenService,
)

__all__ = [
    "OrderingState",
    "Slot",
    "SlotPhase",
    "quorum_size",
    "PROBE_OP",
    "PBServer",
    "SMRReplica",
    "request_digest",
    "CounterService",
    "KVStoreService",
    "Service",
    "SessionTokenService",
]
