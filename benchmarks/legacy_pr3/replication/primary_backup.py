"""Primary-backup (PB) replication over randomized server nodes.

Classical PB (paper §1): one replica — the **primary** — executes client
requests and ships the resulting state (plus the response) to the
**backups**; backups never execute, so arbitrary, non-deterministic
services replicate correctly.  Should the primary crash, a backup is
promoted.  PB tolerates crashes, not intrusions — which is exactly why
FORTRESS fortifies it.

Protocol messages
-----------------
``request``        client/proxy → servers; only the current primary executes.
``state_update``   primary → backups; carries seq, snapshot, response.
``server_response``server → requester; response signed with server index.
``heartbeat``      primary → backups (liveness).
``new_primary``    promoted backup → all (view announcement).
``sync_request`` / ``sync_response``  state transfer after reboot/respawn.

Attack surface
--------------
A request whose body is an attack probe (``op == "__probe__"``) exercises
the vulnerable code path when the primary processes it: a wrong key guess
crashes the primary (the forking daemon then respawns it with the same
key), the right guess compromises it.  This implements the paper's
"probes are crafted as service requests" (§6) and the indirect attack
path of FORTRESS.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.timing import DEFAULT_RESPAWN_DELAY
from ..crypto.signatures import SignatureAuthority
from ..net.message import Message
from ..net.network import Network
from ..randomization.keyspace import KeySpace
from ..randomization.node import RandomizedProcess
from ..sim.engine import Simulator

#: Request body ``op`` that triggers the randomized-code attack path.
PROBE_OP = "__probe__"

REQUEST = "request"
STATE_UPDATE = "state_update"
SERVER_RESPONSE = "server_response"
HEARTBEAT = "heartbeat"
NEW_PRIMARY = "new_primary"
SYNC_REQUEST = "sync_request"
SYNC_RESPONSE = "sync_response"


class PBServer(RandomizedProcess):
    """One node of a primary-backup replicated server tier.

    Parameters
    ----------
    sim, name, keyspace, rng:
        See :class:`~repro.randomization.node.RandomizedProcess`.
    index:
        The server's unique index (known to proxies and clients via the
        name server); also determines promotion order.
    service:
        The service instance this replica hosts.
    authority:
        PKI used to sign responses.
    network:
        The network this server is registered on.
    heartbeat_interval / heartbeat_timeout:
        Primary liveness parameters; the timeout must exceed the
        interval.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        index: int,
        keyspace: KeySpace,
        rng: random.Random,
        service: Any,
        authority: SignatureAuthority,
        network: Network,
        heartbeat_interval: float = 0.05,
        heartbeat_timeout: float = 0.2,
        respawn_delay: Optional[float] = DEFAULT_RESPAWN_DELAY,
    ) -> None:
        super().__init__(sim, name, keyspace, rng, respawn_delay=respawn_delay)
        self.index = index
        self.service = service
        self.authority = authority
        self.network = network
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.peers: list[str] = []  # all server names, in index order (incl. us)
        self.view = 0
        self.seq = 0
        self.last_heartbeat = 0.0
        self.response_cache: dict[str, dict] = {}
        self.requests_executed = 0
        self.updates_applied = 0
        authority.issue_keypair(name)
        self._heartbeat_started = False
        self._watchdog_started = False

    # ------------------------------------------------------------------
    # Membership and roles
    # ------------------------------------------------------------------
    def configure(self, peers: list[str]) -> None:
        """Install the ordered server membership (index order) and start
        the heartbeat / failover machinery."""
        self.peers = list(peers)
        self._start_timers()

    @property
    def primary_name(self) -> str:
        """Name of the primary for the current view."""
        return self.peers[self.view % len(self.peers)]

    @property
    def is_primary(self) -> bool:
        """Whether this replica currently acts as the primary."""
        return bool(self.peers) and self.primary_name == self.name

    def _start_timers(self) -> None:
        if not self._heartbeat_started:
            self._heartbeat_started = True
            self.sim.schedule(self.heartbeat_interval, self._heartbeat_tick)
        if not self._watchdog_started:
            self._watchdog_started = True
            self.last_heartbeat = self.sim.now
            self.sim.schedule(self.heartbeat_timeout, self._watchdog_tick)

    def _heartbeat_tick(self) -> None:
        if self.is_available and self.is_primary:
            for peer in self.peers:
                if peer != self.name:
                    self.network.send(
                        Message(self.name, peer, HEARTBEAT, {"view": self.view})
                    )
        self.sim.schedule(self.heartbeat_interval, self._heartbeat_tick)

    def _watchdog_tick(self) -> None:
        if (
            self.is_available
            and not self.is_primary
            and self.sim.now - self.last_heartbeat > self.heartbeat_timeout
        ):
            self._advance_view()
        self.sim.schedule(self.heartbeat_timeout, self._watchdog_tick)

    def _advance_view(self) -> None:
        """Primary appears dead: move to the next view; announce if we
        are the new primary."""
        self.view += 1
        self.last_heartbeat = self.sim.now
        if self.is_primary:
            for peer in self.peers:
                if peer != self.name:
                    self.network.send(
                        Message(self.name, peer, NEW_PRIMARY, {"view": self.view})
                    )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        handler = {
            REQUEST: self._on_request,
            STATE_UPDATE: self._on_state_update,
            HEARTBEAT: self._on_heartbeat,
            NEW_PRIMARY: self._on_new_primary,
            SYNC_REQUEST: self._on_sync_request,
            SYNC_RESPONSE: self._on_sync_response,
        }.get(message.mtype)
        if handler is not None:
            handler(message)

    # -- requests -------------------------------------------------------
    def _on_request(self, message: Message) -> None:
        payload = message.payload
        body = payload.get("body", {})
        if body.get("op") == PROBE_OP:
            # The probe exercises the randomized code path of whichever
            # replica processes it.  Only the primary executes requests.
            if self.is_primary:
                self.receive_probe(int(body.get("guess", -1)))
            return
        if not self.is_primary:
            return
        request_id = payload["request_id"]
        reply_to = list(payload.get("reply_to", [payload.get("client", message.src)]))
        if request_id in self.response_cache:
            self._send_response(request_id, self.response_cache[request_id], reply_to)
            return
        response = self.service.apply(body)
        self.requests_executed += 1
        self.seq += 1
        self.response_cache[request_id] = response
        snapshot = self.service.snapshot()
        for peer in self.peers:
            if peer != self.name:
                self.network.send(
                    Message(
                        self.name,
                        peer,
                        STATE_UPDATE,
                        {
                            "seq": self.seq,
                            "view": self.view,
                            "request_id": request_id,
                            "reply_to": reply_to,
                            "snapshot": snapshot,
                            "response": response,
                        },
                    )
                )
        self._send_response(request_id, response, reply_to)

    def _send_response(
        self, request_id: str, response: dict, reply_to: list[str]
    ) -> None:
        """Sign ``(request_id, response, index)`` and send to requesters.

        A compromised replica is attacker-controlled: it corrupts the
        response (the attacker's goal once inside is to subvert the
        service, and this makes compromise observable end-to-end).
        """
        body = {"request_id": request_id, "response": response, "index": self.index}
        if self.compromised:
            body = {
                "request_id": request_id,
                "response": {"ok": False, "error": "__corrupted__"},
                "index": self.index,
            }
        signed = self.authority.sign(self.name, body)
        for target in reply_to:
            if self.network.knows(target):
                self.network.send(
                    Message(self.name, target, SERVER_RESPONSE, {"signed": signed})
                )

    # -- state updates ----------------------------------------------------
    def _on_state_update(self, message: Message) -> None:
        payload = message.payload
        if payload["view"] < self.view:
            return
        if payload["view"] > self.view:
            self.view = payload["view"]
        if payload["seq"] <= self.seq:
            return
        if payload["seq"] > self.seq + 1:
            # We missed an update (e.g. we were rebooting): sync instead.
            self._request_sync()
            return
        self.seq = payload["seq"]
        self.service.restore(payload["snapshot"])
        self.updates_applied += 1
        request_id = payload["request_id"]
        self.response_cache[request_id] = payload["response"]
        self.last_heartbeat = self.sim.now
        self._send_response(request_id, payload["response"], list(payload["reply_to"]))

    # -- liveness ---------------------------------------------------------
    def _on_heartbeat(self, message: Message) -> None:
        if message.payload["view"] >= self.view:
            self.view = message.payload["view"]
            self.last_heartbeat = self.sim.now

    def _on_new_primary(self, message: Message) -> None:
        if message.payload["view"] > self.view:
            self.view = message.payload["view"]
            self.last_heartbeat = self.sim.now

    # -- state transfer ----------------------------------------------------
    def _request_sync(self) -> None:
        for peer in self.peers:
            if peer != self.name and self.network.knows(peer):
                self.network.send(Message(self.name, peer, SYNC_REQUEST, {}))

    def _on_sync_request(self, message: Message) -> None:
        self.network.send(
            Message(
                self.name,
                message.src,
                SYNC_RESPONSE,
                {
                    "seq": self.seq,
                    "view": self.view,
                    "snapshot": self.service.snapshot(),
                    "cache": dict(self.response_cache),
                },
            )
        )

    def _on_sync_response(self, message: Message) -> None:
        payload = message.payload
        if payload["seq"] > self.seq:
            self.seq = payload["seq"]
            self.view = max(self.view, payload["view"])
            self.service.restore(payload["snapshot"])
            self.response_cache.update(payload["cache"])

    # ------------------------------------------------------------------
    # Lifecycle hooks.  (The direct connection-probe attack surface is
    # inherited from RandomizedProcess.)
    # ------------------------------------------------------------------
    def on_respawn(self) -> None:
        """After a forking-daemon respawn, catch up on missed state."""
        self._request_sync()

    def on_reboot_complete(self) -> None:
        """After recovery / re-randomization, catch up on missed state."""
        self._request_sync()
