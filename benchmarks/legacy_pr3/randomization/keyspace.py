"""Randomization key spaces.

A randomization scheme (ASLR, ISR, ...) is characterized for resilience
purposes by its key entropy alone: with ``b`` bits of entropy there are
``χ = 2^b`` equally likely keys (paper §2.1: PaX on 32-bit machines gives
16 bits, so χ = 65536).  The key space also provides the α ↔ ω
conversions used throughout the models:

* a single probe against a fresh key succeeds with probability ``1/χ``;
* an attacker completing ``ω`` distinct probes in a unit time-step
  succeeds with probability ``α = ω/χ`` (sampling without replacement
  within the step).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError

#: Entropy of PaX ASLR on 32-bit machines, the case evaluated in the paper.
PAX_32BIT_ENTROPY = 16


@dataclass(frozen=True)
class KeySpace:
    """The set of possible randomization keys.

    Attributes
    ----------
    entropy_bits:
        Key entropy; the space holds ``2 ** entropy_bits`` keys.
    """

    entropy_bits: int

    def __post_init__(self) -> None:
        if self.entropy_bits < 1:
            raise ConfigurationError(
                f"entropy_bits must be >= 1, got {self.entropy_bits}"
            )

    @property
    def size(self) -> int:
        """χ — the number of possible keys."""
        return 1 << self.entropy_bits

    def sample_key(self, rng: random.Random) -> int:
        """Draw a uniformly random key."""
        return rng.randrange(self.size)

    def contains(self, key: int) -> bool:
        """True if ``key`` is a valid key of this space."""
        return 0 <= key < self.size

    # ------------------------------------------------------------------
    # α ↔ ω conversions
    # ------------------------------------------------------------------
    def alpha_for_probe_rate(self, omega: float) -> float:
        """Per-step success probability of ``omega`` distinct probes
        against a freshly randomized node: ``α = min(ω/χ, 1)``."""
        if omega < 0:
            raise ConfigurationError(f"omega must be non-negative, got {omega}")
        return min(omega / self.size, 1.0)

    def probe_rate_for_alpha(self, alpha: float) -> float:
        """Probes per step needed for per-step success probability ``α``."""
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        return alpha * self.size

    def __str__(self) -> str:
        return f"KeySpace(2^{self.entropy_bits} = {self.size} keys)"
