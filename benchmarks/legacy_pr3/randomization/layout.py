"""Randomized address-space model and probe semantics.

The attack surface of a randomized executable reduces to one question per
probe: did the attacker guess the current randomization key?  A wrong
guess corrupts control state with a bad address and **crashes the
process**; the right guess lands the exploit and yields an **intrusion**
(paper §2.1).  :class:`AddressSpace` models exactly this, and keeps the
counters that proxies and detectors use to observe attack activity.
"""

from __future__ import annotations

import enum
import random

from ..errors import ConfigurationError
from .keyspace import KeySpace


class ProbeOutcome(enum.Enum):
    """Result of firing one probe at a randomized process."""

    CRASH = "crash"
    INTRUSION = "intrusion"


class AddressSpace:
    """The randomized memory layout of one process image.

    Parameters
    ----------
    keyspace:
        The key space the layout is randomized over.
    key:
        The current randomization key (the secret offset).
    """

    def __init__(self, keyspace: KeySpace, key: int) -> None:
        self.keyspace = keyspace
        self._validate(key)
        self.key = key
        self.probes_received = 0
        self.crashes_caused = 0
        self.intrusions = 0
        self.randomizations = 1

    def _validate(self, key: int) -> None:
        if not self.keyspace.contains(key):
            raise ConfigurationError(
                f"key {key} outside key space of size {self.keyspace.size}"
            )

    # ------------------------------------------------------------------
    def check_probe(self, guess: int) -> ProbeOutcome:
        """Fire one probe with the guessed key; crash unless it matches.

        Guesses outside the key space are treated as crashes (a wildly
        wrong address is still a wrong address).
        """
        self.probes_received += 1
        if guess == self.key:
            self.intrusions += 1
            return ProbeOutcome.INTRUSION
        self.crashes_caused += 1
        return ProbeOutcome.CRASH

    def set_key(self, key: int) -> None:
        """Install a specific key (used to randomize a group identically,
        as FORTRESS prescribes for the PB servers)."""
        self._validate(key)
        self.key = key
        self.randomizations += 1

    def rerandomize(self, rng: random.Random) -> int:
        """Draw and install a fresh key; returns the new key."""
        self.set_key(self.keyspace.sample_key(rng))
        return self.key

    def __repr__(self) -> str:  # pragma: no cover - avoid leaking the key
        return (
            f"<AddressSpace {self.keyspace} probes={self.probes_received} "
            f"crashes={self.crashes_caused}>"
        )
