"""Randomization substrate: key spaces, address spaces, PO/SO scheduling."""

from .keyspace import PAX_32BIT_ENTROPY, KeySpace
from .layout import AddressSpace, ProbeOutcome
from .node import RandomizedProcess
from .obfuscation import KeyGroup, ObfuscationManager, Scheme

__all__ = [
    "PAX_32BIT_ENTROPY",
    "KeySpace",
    "AddressSpace",
    "ProbeOutcome",
    "RandomizedProcess",
    "KeyGroup",
    "ObfuscationManager",
    "Scheme",
]
