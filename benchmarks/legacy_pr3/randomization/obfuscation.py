"""Proactive obfuscation (PO) and start-up-only obfuscation (SO) scheduling.

The paper models both schemes on a common clock of **unit time-steps**
(§4.1): at the end of every step each node is refreshed —

* under **PO** it is rebooted with a *fresh* randomization key
  (re-randomization: sampling with replacement from the attacker's view);
* under **SO** it is merely *recovered* — rebooted with the same key
  (proactive recovery à la Castro-Liskov: the attacker's eliminated
  guesses stay eliminated).

Either way, a refresh cleanses compromise: the attacker controls a node
only "until re-randomization is applied".

:class:`ObfuscationManager` drives this schedule.  Nodes are organized in
**key groups**: all nodes of a group are randomized identically (one key
per group per epoch), which is how FORTRESS randomizes its PB servers,
while singleton groups give the diverse randomization of proxies and SMR
replicas.  Per-group offsets support staggered, batched recovery of SMR
replicas (Roeder-Schneider style, ≤ f at a time).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.process import ProcessState
from .node import RandomizedProcess


class Scheme(enum.Enum):
    """Which refresh the manager applies at each epoch."""

    PO = "proactive-obfuscation"
    SO = "startup-only"


@dataclass
class KeyGroup:
    """A set of nodes sharing one randomization key.

    Attributes
    ----------
    nodes:
        Members of the group; they always hold identical keys.
    offset:
        Delay after each epoch boundary before this group refreshes
        (must be smaller than the manager's period).
    """

    nodes: list[RandomizedProcess]
    offset: float = 0.0
    refreshes: int = field(default=0, init=False)


class ObfuscationManager:
    """Periodically refreshes the randomization of registered nodes.

    Parameters
    ----------
    sim:
        Driving simulator.
    scheme:
        :attr:`Scheme.PO` (fresh keys) or :attr:`Scheme.SO` (recovery).
    period:
        Length of the unit time-step.  The paper takes the
        re-randomization period P to be one unit time-step.
    reboot_duration:
        Downtime of a refreshing node.  The paper assumes refreshes are
        instantaneous (§4.1); the default honours that.
    """

    def __init__(
        self,
        sim: Simulator,
        scheme: Scheme,
        period: float = 1.0,
        reboot_duration: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if reboot_duration < 0 or reboot_duration >= period:
            raise ConfigurationError(
                f"reboot_duration must lie in [0, period), got {reboot_duration}"
            )
        self.sim = sim
        self.scheme = scheme
        self.period = period
        self.reboot_duration = reboot_duration
        self.epoch = 0
        self._groups: list[KeyGroup] = []
        self._epoch_listeners: list[Callable[[int], None]] = []
        self._rng = sim.rng.stream("obfuscation")
        self._started = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_node(self, node: RandomizedProcess, offset: float = 0.0) -> KeyGroup:
        """Register one independently randomized node."""
        return self.add_group([node], offset=offset)

    def add_group(self, nodes: list[RandomizedProcess], offset: float = 0.0) -> KeyGroup:
        """Register a group of nodes randomized with one shared key.

        The group's key is aligned immediately so that members are
        identical from the start (FORTRESS randomizes its PB servers
        identically even at set-up).
        """
        if not nodes:
            raise ConfigurationError("key group must contain at least one node")
        if offset < 0 or offset >= self.period:
            raise ConfigurationError(
                f"group offset must lie in [0, period), got {offset}"
            )
        spaces = {node.address_space.keyspace.size for node in nodes}
        if len(spaces) != 1:
            raise ConfigurationError("all nodes of a key group must share a key space")
        group = KeyGroup(nodes=list(nodes), offset=offset)
        if len(nodes) > 1:
            shared = nodes[0].address_space.key
            for node in nodes[1:]:
                node.address_space.set_key(shared)
        self._groups.append(group)
        return group

    def add_epoch_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired at each epoch boundary, after the
        refreshes scheduled at offset zero.

        Listeners receive the index of the epoch that just *completed*
        (1 for the boundary at ``t = period``).
        """
        self._epoch_listeners.append(listener)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the epoch schedule (first boundary one period from now)."""
        if self._started:
            raise ConfigurationError("ObfuscationManager already started")
        self._started = True
        self.sim.schedule(self.period, self._epoch_boundary)

    def _epoch_boundary(self) -> None:
        self.epoch += 1
        for group in self._groups:
            if group.offset == 0.0:
                self._refresh_group(group)
            else:
                self.sim.schedule(group.offset, self._refresh_group, group)
        for listener in list(self._epoch_listeners):
            listener(self.epoch)
        self.sim.schedule(self.period, self._epoch_boundary)

    def _refresh_group(self, group: KeyGroup) -> None:
        group.refreshes += 1
        live = [node for node in group.nodes if node.state is not ProcessState.STOPPED]
        if self.scheme is Scheme.PO:
            key = group.nodes[0].keyspace.sample_key(self._rng)
            for node in live:
                node.rerandomize(self.reboot_duration, key=key)
        else:
            for node in live:
                node.recover(self.reboot_duration)

    # ------------------------------------------------------------------
    def time_step_index(self) -> int:
        """Index of the unit time-step currently in progress (1-based)."""
        return int(self.sim.now / self.period) + 1
