"""Exception hierarchy shared by all ``repro`` subpackages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly."""


class NetworkError(ReproError):
    """A message could not be routed or a connection operation failed."""


class CryptoError(ReproError):
    """Signature creation or verification failed structurally.

    Note that a signature that simply does not verify is *not* an error
    (verification returns ``False``); this exception signals misuse, e.g.
    an unknown public key.
    """


class ConfigurationError(ReproError):
    """A system specification or model parameter is invalid."""


class ProtocolError(ReproError):
    """A replication or proxy protocol invariant was violated."""


class AnalysisError(ReproError):
    """An analytic model could not be constructed or solved."""


class UnsampleableSpecError(ConfigurationError, AnalysisError):
    """A step-level sampler ran past its step budget for one spec.

    Raised instead of a bare message so callers can recover
    programmatically: the exception carries the offending ``spec`` and
    the exhausted ``max_steps`` budget, and the usual remedy (switch to
    the closed-form geometric sampler, whose cost is independent of the
    per-step compromise probability q) is stated in the message.  Also
    derives from :class:`AnalysisError` — the type this guard raised
    before it was typed — so pre-existing handlers keep catching it.
    """

    def __init__(self, spec, max_steps: int) -> None:
        self.spec = spec
        self.max_steps = max_steps
        label = getattr(spec, "label", None) or repr(spec)
        super().__init__(
            f"step-level sampling of {label} exceeded {max_steps} steps "
            f"(spec: {spec!r}); q is too small for step simulation — "
            "use the geometric sampler instead"
        )

    def __reduce__(self):
        # Rebuild from the constructor arguments: the default reduction
        # replays args=(message,) into the two-argument __init__, which
        # breaks unpickling across process-pool boundaries.
        return (type(self), (self.spec, self.max_steps))
