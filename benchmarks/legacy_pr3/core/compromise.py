"""System-compromise detection (the paper's Definitions 1-3 and 7).

The :class:`CompromiseMonitor` watches every node of a deployed system
and decides, at each intrusion event, whether the *system* is now
compromised:

* **S0** — more than ``f`` replicas compromised simultaneously;
* **S1** — any server compromised (≡ the primary: servers are
  identically randomized);
* **S2** — any server compromised, or **all** proxies compromised
  simultaneously.

When that happens it records the lifetime — the number of *whole* unit
time-steps elapsed (Definition 7) — and stops the simulation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..sim.engine import Simulator
from ..sim.process import SimProcess
from .specs import SystemClass


class CompromiseMonitor:
    """Watches node compromise flags and declares system compromise.

    Parameters
    ----------
    sim:
        The driving simulator (stopped upon system compromise).
    system:
        Which compromise predicate applies.
    servers, proxies:
        The monitored tiers.
    f:
        Fault threshold for the S0 predicate.
    period:
        Unit time-step length, for converting time to whole steps.
    stop_on_compromise:
        Whether to halt the simulation when the predicate first holds.
    """

    def __init__(
        self,
        sim: Simulator,
        system: SystemClass,
        servers: Sequence[SimProcess],
        proxies: Sequence[SimProcess] = (),
        f: int = 1,
        period: float = 1.0,
        stop_on_compromise: bool = True,
        server_tier_f: int = 0,
    ) -> None:
        self.sim = sim
        self.system = system
        self.servers = list(servers)
        self.proxies = list(proxies)
        self.f = f
        self.period = period
        #: Intrusions the fortified server tier itself tolerates: 0 for
        #: a PB tier (Definition 3), f for a fortified SMR tier (§3
        #: allows any replication behind the proxies).
        self.server_tier_f = server_tier_f
        self.stop_on_compromise = stop_on_compromise
        self.compromised_at: Optional[float] = None
        self.cause: Optional[str] = None
        self.node_compromise_events: list[tuple[float, str]] = []
        for node in self.servers + self.proxies:
            node.add_compromise_listener(self._on_node_compromised)

    # ------------------------------------------------------------------
    @property
    def is_compromised(self) -> bool:
        """Whether the system-level predicate has held at least once."""
        return self.compromised_at is not None

    @property
    def steps_survived(self) -> Optional[int]:
        """Whole unit time-steps elapsed before compromise (Definition 7);
        ``None`` while the system survives."""
        if self.compromised_at is None:
            return None
        return int(math.floor(self.compromised_at / self.period))

    # ------------------------------------------------------------------
    def _on_node_compromised(self, node: SimProcess) -> None:
        self.node_compromise_events.append((self.sim.now, node.name))
        if self.compromised_at is not None:
            return
        cause = self._evaluate()
        if cause is not None:
            self.compromised_at = self.sim.now
            self.cause = cause
            if self.stop_on_compromise:
                self.sim.stop()

    def _evaluate(self) -> Optional[str]:
        """Return a human-readable cause if the system is now compromised."""
        servers_down = sum(1 for s in self.servers if s.compromised)
        if self.system is SystemClass.S0:
            if servers_down > self.f:
                return (
                    f"{servers_down} of {len(self.servers)} SMR replicas "
                    f"compromised (> f={self.f})"
                )
            return None
        if self.system is SystemClass.S1:
            if servers_down >= 1:
                return "a PB server (hence the primary) compromised"
            return None
        # S2
        if servers_down > self.server_tier_f:
            if self.server_tier_f == 0:
                return "a fortified PB server compromised"
            return (
                f"{servers_down} fortified SMR replicas compromised "
                f"(> f={self.server_tier_f})"
            )
        proxies_down = sum(1 for p in self.proxies if p.compromised)
        if self.proxies and proxies_down == len(self.proxies):
            return f"all {len(self.proxies)} proxies compromised"
        return None
