"""Workload clients.

A :class:`WorkloadClient` issues a closed loop of legitimate service
requests against whichever deployment it is pointed at and *validates*
the responses exactly the way the paper prescribes for each system:

* **fortress** (S2) — requests go to all proxies; a response is accepted
  if it carries two authentic signatures, one from the forwarding proxy
  and one from a server (over-signing, §3);
* **pb** (S1) — requests go to all servers; one authentic server
  signature suffices;
* **smr** (S0) — requests go to all replicas; the client waits for
  ``f + 1`` matching authentic responses.

Clients retry on timeout and keep enough statistics for the examples and
integration tests to assert end-to-end behaviour (including detecting
corrupted responses from compromised replicas).
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Mapping, Optional

from ..crypto.signatures import Signed, SignatureAuthority
from ..net.message import Message
from ..net.network import Network
from ..proxy.proxy import CLIENT_ERROR, CLIENT_REQUEST, CLIENT_RESPONSE
from ..replication.primary_backup import REQUEST, SERVER_RESPONSE
from ..sim.engine import Simulator
from ..sim.process import SimProcess

_CLIENT_SEQ = itertools.count(1)

#: request-body generator signature: (op_index, rng) -> body dict
BodyFactory = Callable[[int, random.Random], dict]


def default_body_factory(i: int, rng: random.Random) -> dict:
    """A mixed read/write KV workload."""
    key = f"k{rng.randrange(16)}"
    choice = i % 3
    if choice == 0:
        return {"op": "put", "key": key, "value": i}
    if choice == 1:
        return {"op": "get", "key": key}
    return {"op": "incr", "key": f"ctr{rng.randrange(4)}"}


class WorkloadClient(SimProcess):
    """Closed-loop client with per-system response validation.

    Parameters
    ----------
    sim, network, authority:
        Simulation substrates.
    mode:
        ``"fortress"``, ``"pb"`` or ``"smr"`` (see module docstring).
    targets:
        Proxy addresses (fortress) or server addresses (pb / smr).
    f:
        Fault threshold for SMR response voting.
    think_time:
        Delay between receiving a response and issuing the next request.
    request_timeout:
        Patience before a retry.
    max_retries:
        Retries per request before recording a failure.
    body_factory:
        Generates request bodies (defaults to a mixed KV workload).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        authority: SignatureAuthority,
        mode: str,
        targets: list[str],
        name: Optional[str] = None,
        f: int = 1,
        think_time: float = 0.05,
        request_timeout: float = 0.6,
        max_retries: int = 3,
        body_factory: BodyFactory = default_body_factory,
    ) -> None:
        if mode not in ("fortress", "pb", "smr"):
            raise ValueError(f"unknown client mode {mode!r}")
        super().__init__(sim, name or f"client-{next(_CLIENT_SEQ)}", respawn_delay=None)
        self.network = network
        self.authority = authority
        self.mode = mode
        self.targets = list(targets)
        self.f = f
        self.think_time = think_time
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.body_factory = body_factory
        self._rng = sim.rng.stream(f"{self.name}:workload")
        self._op_index = 0
        self._current: Optional[dict] = None
        self.responses_ok = 0
        self.responses_corrupted = 0
        self.failures = 0
        self.requests_sent = 0
        self.latencies: list[float] = []
        self._running_workload = False

    # ------------------------------------------------------------------
    # Workload loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin issuing requests."""
        if not self._running_workload:
            self._running_workload = True
            self.sim.schedule(self.think_time, self._issue_next)

    def stop_workload(self) -> None:
        """Stop after the in-flight request (if any) resolves."""
        self._running_workload = False

    def _issue_next(self) -> None:
        if not self._running_workload or self._current is not None:
            return
        self._op_index += 1
        body = self.body_factory(self._op_index, self._rng)
        request_id = f"{self.name}-r{self._op_index}"
        self._current = {
            "request_id": request_id,
            "body": body,
            "retries": 0,
            "sent_at": self.sim.now,
            "votes": {},
        }
        self._transmit()

    def _transmit(self) -> None:
        assert self._current is not None
        request_id = self._current["request_id"]
        body = self._current["body"]
        self.requests_sent += 1
        if self.mode == "fortress":
            payload = {"request_id": request_id, "client": self.name, "body": body}
            for proxy in self.targets:
                if self.network.knows(proxy):
                    self.network.send(
                        Message(self.name, proxy, CLIENT_REQUEST, payload)
                    )
        else:
            payload = {
                "request_id": request_id,
                "client": self.name,
                "reply_to": [self.name],
                "body": body,
            }
            for server in self.targets:
                if self.network.knows(server):
                    self.network.send(Message(self.name, server, REQUEST, payload))
        self._current["deadline"] = self.sim.schedule(
            self.request_timeout, self._on_timeout, request_id
        )

    def _on_timeout(self, request_id: str) -> None:
        current = self._current
        if current is None or current["request_id"] != request_id:
            return
        current["retries"] += 1
        if current["retries"] > self.max_retries:
            self.failures += 1
            self._current = None
            self._after_response()
            return
        current["votes"] = {}
        self._transmit()

    def _after_response(self) -> None:
        if self._running_workload:
            self.sim.schedule(self.think_time, self._issue_next)

    # ------------------------------------------------------------------
    # Response handling
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        if message.mtype == CLIENT_RESPONSE and self.mode == "fortress":
            self._on_fortress_response(message)
        elif message.mtype == SERVER_RESPONSE and self.mode in ("pb", "smr"):
            self._on_server_response(message)
        elif message.mtype == CLIENT_ERROR:
            pass  # proxies report timeouts; our own timer drives retries

    def _on_fortress_response(self, message: Message) -> None:
        current = self._current
        envelope = message.payload.get("envelope")
        if current is None or not isinstance(envelope, Signed):
            return
        if message.payload.get("request_id") != current["request_id"]:
            return
        if not self.authority.verify_oversigned(envelope):
            return  # forged or tampered; keep waiting for an honest proxy
        inner = envelope.payload
        self._complete(inner.payload["response"])

    def _on_server_response(self, message: Message) -> None:
        current = self._current
        signed = message.payload.get("signed")
        if current is None or not isinstance(signed, Signed):
            return
        if not self.authority.verify(signed):
            return
        body = signed.payload
        if body.get("request_id") != current["request_id"]:
            return
        if self.mode == "pb":
            self._complete(body["response"])
            return
        # SMR: collect f+1 matching responses.
        fingerprint = repr(
            sorted((str(k), repr(v)) for k, v in body["response"].items())
        )
        current["votes"][body["index"]] = (fingerprint, body["response"])
        counts: dict[str, int] = {}
        for fp, _ in current["votes"].values():
            counts[fp] = counts.get(fp, 0) + 1
        for fp, count in counts.items():
            if count >= self.f + 1:
                response = next(
                    resp for f2, resp in current["votes"].values() if f2 == fp
                )
                self._complete(response)
                return

    def _complete(self, response: Mapping) -> None:
        current = self._current
        assert current is not None
        current["deadline"].cancel()
        self.latencies.append(self.sim.now - current["sent_at"])
        if response.get("error") == "__corrupted__":
            self.responses_corrupted += 1
        else:
            self.responses_ok += 1
        self._current = None
        self._after_response()
