"""The unified timing model shared by all three evaluation layers.

The paper abstracts time into unit steps and treats every infrastructure
delay as negligible.  The protocol-level simulation cannot: forking
daemons take time to respawn a crashed process, attackers take a network
round trip to reconnect, proxies take a timeout to classify a request as
invalid.  At laptop-scale parameters (χ = 2^8, α ≈ 0.1) those delays are
a large fraction of a unit step and used to open a ~1.45× S2PO
protocol-vs-model lifetime gap.

:class:`TimingSpec` makes every such delay an explicit, sweepable knob
and is threaded through all three evaluation layers:

* the **protocol simulation** — :func:`repro.core.builders.build_system`
  installs the spec's delays into every process it wires up;
* the **Monte-Carlo samplers** — :mod:`repro.mc.models` corrects its
  per-step probabilities and probe budgets for the same effects
  (see :meth:`TimingSpec.effective_attack`);
* the **analytic models** — :mod:`repro.analysis.lifetimes` and
  :mod:`repro.analysis.s2so` evaluate EL curves under the same
  assumptions.

``timing=None`` everywhere means "the paper's pure model" (no
correction); :meth:`TimingSpec.ideal` means "a protocol stack with
zero delays" — the two differ only in the within-step launch-pad
window, which exists even in a zero-delay protocol stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import ClassVar

from ..errors import ConfigurationError

#: Forking-daemon respawn delay after a probe crash (paper-realistic
#: default; the paper itself treats respawn as instantaneous).
DEFAULT_RESPAWN_DELAY = 0.01

#: One-way network latency, and hence the attacker's reconnect cost
#: after observing a crash (default: 1 ms against a period of 1.0).
DEFAULT_RECONNECT_LATENCY = 0.001

#: How long a proxy waits for an authentic server response before
#: classifying the request as invalid (the detection observation lag).
DEFAULT_DETECTION_LAG = 0.4


@dataclass(frozen=True)
class TimingSpec:
    """Every infrastructure delay of a deployment, as data.

    One spec parameterizes the protocol simulation *and* the model-side
    corrections, so all three evaluation layers share one set of timing
    assumptions.  Instances are frozen (hashable, picklable) and travel
    through :class:`~repro.core.experiment.ProtocolTask` batches to
    worker processes unchanged.

    Attributes
    ----------
    respawn_delay:
        Time the forking daemon needs to restore a crashed process.
        While a node is mid-respawn it drops datagrams (indirect probes,
        client requests) and refuses connections — the dominant source
        of the S2PO fidelity gap at laptop-scale α.
    reconnect_latency:
        One-way network latency; the attacker observes a crash and
        re-opens his probe connection one latency later, and every
        protocol message pays it too.
    probe_pacing:
        Multiplier on the attacker's probe intervals (1.0 = the paper's
        pacing of ω probes per step; 2.0 = an attacker half as fast).
        Applies to direct, indirect and launch-pad streams alike.
    epoch_stagger:
        Fraction of the period over which the refreshes of *diversely*
        randomized nodes (proxies, SMR replicas) are spread, in batches
        of one (0.0 = all refresh at the epoch boundary, 1.0 = the full
        Roeder-Schneider spread).  Identically randomized groups always
        refresh together.
    detection_lag:
        How long a proxy waits for an authentic server response before
        logging the request as invalid (its request timeout) — the lag
        between a wrong-guess probe and the detection log seeing it.
    """

    respawn_delay: float = DEFAULT_RESPAWN_DELAY
    reconnect_latency: float = DEFAULT_RECONNECT_LATENCY
    probe_pacing: float = 1.0
    epoch_stagger: float = 0.0
    detection_lag: float = DEFAULT_DETECTION_LAG

    def __post_init__(self) -> None:
        if self.respawn_delay < 0:
            raise ConfigurationError(
                f"respawn_delay must be >= 0, got {self.respawn_delay}"
            )
        if self.reconnect_latency < 0:
            raise ConfigurationError(
                f"reconnect_latency must be >= 0, got {self.reconnect_latency}"
            )
        if self.probe_pacing <= 0:
            raise ConfigurationError(
                f"probe_pacing must be positive, got {self.probe_pacing}"
            )
        if not 0.0 <= self.epoch_stagger <= 1.0:
            raise ConfigurationError(
                f"epoch_stagger must be in [0, 1], got {self.epoch_stagger}"
            )
        if self.detection_lag <= 0:
            raise ConfigurationError(
                f"detection_lag must be positive, got {self.detection_lag}"
            )

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls) -> "TimingSpec":
        """Zero-delay infrastructure: instant respawn, free reconnects,
        boundary-aligned refreshes.  Under this preset the protocol
        simulation and the timing-aware models must agree for every
        system (the bench asserts it); the only surviving protocol
        effect is the within-step launch-pad window."""
        return cls(respawn_delay=0.0, reconnect_latency=0.0, epoch_stagger=0.0)

    @classmethod
    def paper(cls) -> "TimingSpec":
        """The historical defaults of the protocol stack (10 ms respawn,
        1 ms latency, 0.4 detection timeout against a period of 1.0)."""
        return cls()

    @classmethod
    def degraded(cls) -> "TimingSpec":
        """Slow operations: a sluggish daemon, a lossy WAN-ish latency,
        staggered refreshes and a slow detection pipeline.  A scenario
        axis the paper never ran; the models correct for its delays but
        not for the stagger (the recorded gap quantifies that)."""
        return cls(
            respawn_delay=0.05,
            reconnect_latency=0.005,
            probe_pacing=1.25,
            epoch_stagger=0.5,
            detection_lag=1.0,
        )

    #: CLI / campaign-axis preset names, in sweep order.
    PRESETS: ClassVar[tuple[str, ...]] = ("ideal", "paper", "degraded")

    @classmethod
    def named(cls, name: str) -> "TimingSpec":
        """Resolve a preset by name (``ideal`` / ``paper`` / ``degraded``)."""
        try:
            return {
                "ideal": cls.ideal,
                "paper": cls.paper,
                "degraded": cls.degraded,
            }[name]()
        except KeyError:
            raise ConfigurationError(
                f"unknown timing preset {name!r}; choose from {cls.PRESETS}"
            ) from None

    def as_dict(self) -> dict:
        """Plain-dict form for JSON records."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # ------------------------------------------------------------------
    # Model-side corrections
    # ------------------------------------------------------------------
    def direct_slowdown(self, omega: float, period: float = 1.0) -> int:
        """Pacing intervals consumed per *landed* direct probe.

        A direct stream fires on a fixed grid of ``pacing·period/ω``.
        A wrong guess crashes the target one latency after the fire; the
        daemon restores it ``respawn_delay`` later; the next fire that
        actually lands is the first grid point past the downtime.  When
        ``respawn_delay + latency`` fits inside one interval (the paper
        presets at laptop scale), no fire is lost and the slowdown is 1.
        """
        if omega <= 0:
            raise ConfigurationError(f"omega must be positive, got {omega}")
        dead = self.respawn_delay + self.reconnect_latency
        if dead <= 0:
            return 1
        interval = self.probe_pacing * period / omega
        return max(1, math.ceil(dead / interval - 1e-12))

    def effective_direct_rate(self, omega: float, period: float = 1.0) -> float:
        """Direct probes *landed* per step by one ω-strength stream."""
        return omega / (self.probe_pacing * self.direct_slowdown(omega, period))

    def effective_attack(
        self,
        alpha: float,
        chi: int,
        kappa: float = 0.0,
        launchpad_fraction: float = 0.0,
        period: float = 1.0,
    ) -> "EffectiveAttack":
        """First-order timing corrections to the §4 attack parameters.

        Derivation (all rates per unit step, wrong-guess probability
        taken ≈ 1 where it multiplies a delay):

        * a direct stream lands ``ω / (pacing · slowdown)`` probes per
          step (:meth:`direct_slowdown`), so its per-step success is
          ``alpha_direct = ω_direct / χ``;
        * every landed wrong probe knocks the target over for
          ``respawn_delay``, so a proxy is mid-respawn for
          ``ω_direct · respawn_delay`` of each step and *drops* the
          indirect probes (datagrams) arriving then;
        * the indirect probes that do reach a proxy are forwarded to the
          primary, which they also knock over — a fixed point solved in
          closed form (``x = r/(1 + r·respawn)``);
        * the launch pad starts at the (uniform) within-step instant the
          compromising direct probe lands and fires until the epoch
          boundary cleanses its host, so it completes
          ``window = (ω_direct − 1)/(2 ω_direct)`` of a full-rate step —
          the one correction that survives even under
          :meth:`TimingSpec.ideal`.

        The stagger knob is deliberately *not* modelled (staggered
        refreshes desynchronize the attacker's pool resets from the key
        changes); campaigns under a staggered preset record the residual
        gap instead.
        """
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if chi < 1:
            raise ConfigurationError(f"chi must be >= 1, got {chi}")
        omega = alpha * chi
        omega_direct = self.effective_direct_rate(omega, period)
        alpha_direct = omega_direct / chi

        # Indirect stream: submitted -> reaching a live proxy -> executed
        # by a live primary (the last step is a fixed point: executed
        # probes themselves crash the primary).
        crash_rate = omega_direct * (1.0 - alpha_direct)
        proxy_downtime = min(1.0, crash_rate * self.respawn_delay / period)
        submitted = kappa * omega / self.probe_pacing
        reaching = submitted * (1.0 - proxy_downtime)
        executed = reaching / (1.0 + reaching * self.respawn_delay / period)
        kappa_eff = executed / omega if omega > 0 else 0.0

        # Launch pad: full direct rate from the compromised proxy, less
        # the probes that find the server mid-respawn from the indirect
        # stream's crashes, over the remaining fraction of the step.
        primary_downtime = min(1.0, executed * self.respawn_delay / period)
        launchpad_rate = omega_direct * (1.0 - primary_downtime)
        if omega_direct > 1.0:
            window = (omega_direct - 1.0) / (2.0 * omega_direct)
        else:
            window = 0.0
        launchpad_eff = launchpad_fraction * (launchpad_rate / omega) * window

        return EffectiveAttack(
            alpha_direct=alpha_direct,
            omega_direct=omega_direct,
            kappa=kappa_eff,
            indirect_rate=executed,
            launchpad_fraction=launchpad_eff,
            launchpad_rate=launchpad_rate,
        )


@dataclass(frozen=True)
class EffectiveAttack:
    """Timing-corrected attack parameters (see
    :meth:`TimingSpec.effective_attack`).

    Attributes
    ----------
    alpha_direct:
        Per-step success probability of one direct stream against one
        freshly randomized node.
    omega_direct:
        Direct probes landed per step by one stream.
    kappa:
        Effective indirect coefficient — executed request-path probes as
        a fraction of ω (so the per-step indirect success is
        ``kappa · α``).
    indirect_rate:
        Request-path probes executed by the primary per step.
    launchpad_fraction:
        Effective same-step launch-pad scale λ_eff (per-step launch-pad
        success is ``λ_eff · α`` given a proxy fell this step).
    launchpad_rate:
        Launch-pad probes landed per step while the stream is armed
        (used by the SO models, where the launch pad persists across
        steps).
    """

    alpha_direct: float
    omega_direct: float
    kappa: float
    indirect_rate: float
    launchpad_fraction: float
    launchpad_rate: float


def launchpad_window_scale(fallen):
    """Launch-pad window for ``fallen`` compromised proxies, relative
    to the single-fall window folded into
    :attr:`EffectiveAttack.launchpad_fraction`.

    The pad starts at the *first* fall of the step; with ``b`` i.i.d.
    uniform fall instants ``E[window] = b/(b+1)``, i.e. ``2b/(b+1)``
    times the ``b = 1`` window.  Accepts scalars or numpy arrays (the
    shared formula keeps the analytic model and the step-level
    validator from diverging).
    """
    return 2.0 * fallen / (fallen + 1.0)


#: The paper-realistic default threaded by the builders when no spec is
#: given — identical to the stack's historical hard-coded constants.
DEFAULT_TIMING = TimingSpec.paper()
