"""The simulated network connecting all processes.

Two communication styles are provided:

* **Datagrams** (:meth:`Network.send`) — used by the replication and proxy
  protocols.  Fire-and-forget with sampled latency, optional loss, and
  optional partitions.
* **Connections** (:meth:`Network.connect`) — TCP-like streams used by
  attackers, whose *close-on-crash* behaviour is the crash-observation
  channel that de-randomization attacks need (see
  :mod:`repro.net.transport`).
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import NetworkError
from ..sim.engine import Simulator
from ..sim.process import ProcessState, SimProcess
from .latency import FixedLatency, LatencyModel
from .message import Message
from .transport import Connection


class Network:
    """Routes datagrams and manages connections between processes.

    Parameters
    ----------
    sim:
        The driving simulator.
    latency:
        Model sampling one-way delivery delays (default: fixed 1 ms).
    drop_rate:
        Probability that any datagram is silently lost.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        drop_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise NetworkError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.sim = sim
        self.latency = latency or FixedLatency()
        self.drop_rate = drop_rate
        self._rng = sim.rng.stream("network")
        self._processes: dict[str, SimProcess] = {}
        self._aliases: dict[str, str] = {}
        self._connections: dict[str, set[Connection]] = {}
        self._partitioned: set[frozenset[str]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, process: SimProcess) -> None:
        """Attach a process to the network under its name."""
        if process.name in self._processes:
            raise NetworkError(f"duplicate process name {process.name!r}")
        self._processes[process.name] = process
        self._connections.setdefault(process.name, set())
        process.add_crash_listener(self._on_endpoint_down)

    def register_alias(self, alias: str, owner: str) -> None:
        """Bind an extra network identity to an existing process.

        Datagrams addressed to ``alias`` are delivered to ``owner``.
        This is how spoofed client identities are modelled: the attacker
        machine answers for many source addresses.
        """
        if alias in self._processes or alias in self._aliases:
            raise NetworkError(f"name {alias!r} already in use")
        if owner not in self._processes:
            raise NetworkError(f"unknown alias owner {owner!r}")
        self._aliases[alias] = owner

    def _resolve(self, name: str) -> Optional[SimProcess]:
        process = self._processes.get(name)
        if process is None:
            owner = self._aliases.get(name)
            if owner is not None:
                process = self._processes.get(owner)
        return process

    def process(self, name: str) -> SimProcess:
        """Look up a registered process by name (aliases resolve)."""
        process = self._resolve(name)
        if process is None:
            raise NetworkError(f"unknown process {name!r}")
        return process

    def knows(self, name: str) -> bool:
        """True if ``name`` is registered (directly or as an alias)."""
        return name in self._processes or name in self._aliases

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Block traffic (both directions) between ``a`` and ``b``."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Remove a partition between ``a`` and ``b`` if present."""
        self._partitioned.discard(frozenset((a, b)))

    def is_blocked(self, a: str, b: str) -> bool:
        """True if traffic between ``a`` and ``b`` is partitioned away."""
        return frozenset((a, b)) in self._partitioned

    # ------------------------------------------------------------------
    # Datagrams
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send a datagram; it arrives after one sampled latency.

        Messages to unknown destinations raise; messages across a
        partition or unlucky under ``drop_rate`` are silently dropped,
        like UDP.
        """
        if not self.knows(message.dst):
            raise NetworkError(f"message to unknown destination {message.dst!r}")
        self.messages_sent += 1
        if self.is_blocked(message.src, message.dst):
            self.messages_dropped += 1
            return
        if self.drop_rate > 0.0 and self._rng.random() < self.drop_rate:
            self.messages_dropped += 1
            return
        delay = self.latency.sample(self._rng)
        self.sim.schedule(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        process = self._resolve(message.dst)
        if process is None or process.state is not ProcessState.RUNNING:
            self.messages_dropped += 1
            return
        if not process.accepts_message_from(message.src):
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        process.handle_message(message)

    def broadcast(self, src: str, dsts: list[str], mtype: str, payload: dict) -> None:
        """Send one datagram with identical content to every name in ``dsts``."""
        for dst in dsts:
            self.send(Message(src=src, dst=dst, mtype=mtype, payload=payload))

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def connect(self, initiator: str, responder: str) -> Optional[Connection]:
        """Open a connection; returns ``None`` if refused.

        A connection is refused when the responder is unknown, not
        currently running, or partitioned away from the initiator.
        """
        if initiator not in self._processes:
            raise NetworkError(f"unknown initiator {initiator!r}")
        target = self._processes.get(responder)
        if target is None or target.state is not ProcessState.RUNNING:
            return None
        if self.is_blocked(initiator, responder):
            return None
        if not target.accepts_connection_from(initiator):
            return None
        connection = Connection(self, initiator, responder)
        self._connections[initiator].add(connection)
        self._connections[responder].add(connection)
        return connection

    def deliver_on_connection(
        self, connection: Connection, dst: str, payload: Any
    ) -> None:
        """Deliver connection data to ``dst`` after one latency."""
        delay = self.latency.sample(self._rng)
        self.sim.schedule(
            delay, self._deliver_connection_data, connection, dst, payload
        )

    def _deliver_connection_data(
        self, connection: Connection, dst: str, payload: Any
    ) -> None:
        if not connection.open:
            return
        process = connection.sink_for(dst) or self._processes.get(dst)
        if process is None or process.state is not ProcessState.RUNNING:
            return
        process.handle_connection_data(connection, payload)

    def connection_closed(self, connection: Connection, closed_by: str | None) -> None:
        """Propagate a close: notify the peer (or both ends) after latency."""
        for name in (connection.initiator, connection.responder):
            self._connections.get(name, set()).discard(connection)
            if name != closed_by:
                delay = self.latency.sample(self._rng)
                self.sim.schedule(delay, self._notify_closed, name, connection)

    def _notify_closed(self, name: str, connection: Connection) -> None:
        process = connection.sink_for(name) or self._processes.get(name)
        if process is not None and process.state is ProcessState.RUNNING:
            process.on_connection_closed(connection)

    def connections_of(self, name: str) -> set[Connection]:
        """Snapshot of the open connections of ``name``."""
        return set(self._connections.get(name, set()))

    # ------------------------------------------------------------------
    def _on_endpoint_down(self, process: SimProcess) -> None:
        """Crash/reboot/stop listener: tear down the endpoint's connections."""
        for connection in list(self._connections.get(process.name, ())):
            connection.close(closed_by=None)
