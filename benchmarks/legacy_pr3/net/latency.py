"""Latency models for the simulated network.

A latency model samples the one-way delivery delay of each message.  The
resilience analysis in the paper abstracts time into unit time-steps, so
protocol-level experiments use latencies that are small relative to the
re-randomization period (default: fixed 1 ms against a period of 1.0).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..core.timing import DEFAULT_RECONNECT_LATENCY
from ..errors import ConfigurationError


class LatencyModel(ABC):
    """Samples per-message one-way delays."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Return a delay in simulated time units (must be >= 0)."""


class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units (default: the
    deployment-wide :data:`~repro.core.timing.DEFAULT_RECONNECT_LATENCY`)."""

    def __init__(self, delay: float = DEFAULT_RECONNECT_LATENCY) -> None:
        if delay < 0:
            raise ConfigurationError(f"latency must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(f"invalid uniform latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Exponentially distributed delays with the given ``mean``.

    A ``cap`` bounds the tail so that a single unlucky draw cannot stall
    a protocol round past a re-randomization epoch.
    """

    def __init__(self, mean: float, cap: float | None = None) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean latency must be positive, got {mean}")
        if cap is not None and cap < mean:
            raise ConfigurationError(f"cap {cap} must be >= mean {mean}")
        self.mean = mean
        self.cap = cap

    def sample(self, rng: random.Random) -> float:
        delay = rng.expovariate(1.0 / self.mean)
        if self.cap is not None:
            delay = min(delay, self.cap)
        return delay

    def __repr__(self) -> str:
        return f"ExponentialLatency(mean={self.mean}, cap={self.cap})"
