"""TCP-like connections with crash-observable closure.

De-randomization attacks (paper §2.1, citing Shacham et al. and Sovarel et
al.) rely on the attacker *observing* a process crash on the target
machine: the TCP connection linking attacker and target closes when the
probed process dies.  :class:`Connection` reproduces exactly that
observation channel — when an endpoint crashes, reboots or stops, the
network closes all of its connections and notifies the peers after one
network latency.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.process import SimProcess
    from .network import Network

_CONN_IDS = itertools.count(1)


class Connection:
    """A bidirectional stream between two processes.

    Connections are created through :meth:`repro.net.network.Network.connect`.
    Either endpoint may :meth:`send` payloads (delivered to the peer's
    ``handle_connection_data``) or :meth:`close` the stream.  Closure —
    explicit or caused by an endpoint crash — is signalled to the other
    endpoint via ``on_connection_closed``.
    """

    def __init__(self, network: "Network", initiator: str, responder: str) -> None:
        self.conn_id = next(_CONN_IDS)
        self.network = network
        self.initiator = initiator
        self.responder = responder
        self.open = True
        self.bytes_exchanged = 0
        self._sinks: dict[str, "SimProcess"] = {}

    def attach_sink(self, endpoint: str, process: "SimProcess") -> None:
        """Route this connection's events for ``endpoint`` to ``process``.

        Used to model a remote shell: an attacker who compromised a proxy
        opens connections *from* the proxy's address but handles the
        traffic himself.
        """
        if endpoint not in (self.initiator, self.responder):
            raise ValueError(f"{endpoint} is not an endpoint of {self!r}")
        self._sinks[endpoint] = process

    def sink_for(self, endpoint: str) -> "SimProcess | None":
        """The process handling ``endpoint``'s events, if overridden."""
        return self._sinks.get(endpoint)

    # ------------------------------------------------------------------
    def peer_of(self, name: str) -> str:
        """Return the name of the other endpoint."""
        if name == self.initiator:
            return self.responder
        if name == self.responder:
            return self.initiator
        raise ValueError(f"{name} is not an endpoint of {self!r}")

    def send(self, sender: str, payload: Any) -> bool:
        """Send ``payload`` from ``sender`` to the peer.

        Returns ``False`` (payload silently lost) if the connection has
        already closed — mirroring a write on a dying socket.
        """
        if not self.open:
            return False
        peer = self.peer_of(sender)
        self.bytes_exchanged += 1
        self.network.deliver_on_connection(self, peer, payload)
        return True

    def close(self, closed_by: str | None = None) -> None:
        """Close the connection and notify the peer(s).

        ``closed_by`` names the endpoint initiating the close (its peer is
        notified); ``None`` means the network itself tore the connection
        down (both endpoints are notified), as happens on a crash.
        """
        if not self.open:
            return
        self.open = False
        self.network.connection_closed(self, closed_by)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else "closed"
        return f"<Connection #{self.conn_id} {self.initiator}<->{self.responder} {state}>"
