"""Network substrate: datagrams, latency models, crash-observable connections."""

from .latency import ExponentialLatency, FixedLatency, LatencyModel, UniformLatency
from .message import Message
from .network import Network
from .transport import Connection

__all__ = [
    "ExponentialLatency",
    "FixedLatency",
    "LatencyModel",
    "UniformLatency",
    "Message",
    "Network",
    "Connection",
]
