"""Message representation for the simulated network.

Messages are small tagged records.  ``mtype`` identifies the protocol
message (e.g. ``"client_request"``, ``"state_update"``, ``"pre_prepare"``)
and ``payload`` carries protocol-specific fields in a plain dict so that
messages stay printable and hashable-by-content for signing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

_MSG_IDS = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """A datagram travelling between two named processes.

    Attributes
    ----------
    src, dst:
        Process names (network addresses).
    mtype:
        Protocol message type tag.
    payload:
        Message body; by convention a mapping of plain values.
    msg_id:
        Unique id assigned at construction (monotonically increasing).
    """

    src: str
    dst: str
    mtype: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_MSG_IDS))

    def reply(self, mtype: str, payload: Mapping[str, Any] | None = None) -> "Message":
        """Build a response message addressed back to our sender."""
        return Message(src=self.dst, dst=self.src, mtype=mtype, payload=payload or {})

    def forwarded(self, src: str, dst: str) -> "Message":
        """Build a copy of this message re-addressed ``src`` → ``dst``.

        Used by proxies, which relay client requests to servers verbatim.
        """
        return Message(src=src, dst=dst, mtype=self.mtype, payload=self.payload)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.mtype} #{self.msg_id} {self.src}->{self.dst}]"
