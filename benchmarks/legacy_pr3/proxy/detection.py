"""Invalid-request logging and de-randomization probe detection.

Proxies do no application processing, so they can afford to log client
behaviour over long periods (paper §2.2).  A de-randomization probe that
guesses wrong manifests at the proxy as an *invalid request* (the server
processing it crashes and no authentic response comes back).  By counting
invalid requests per source over a sliding window, a proxy blacklists
sources that probe faster than an innocuous error rate.

The defensive consequence — the paper's **indirect attack coefficient**
``κ`` — follows directly: an attacker who must stay below the detection
threshold can sustain at most ``threshold / window`` probes per time
unit, so his effective per-step probe budget through proxies is capped.
:func:`kappa_for_policy` computes the κ a policy imposes on an attacker
of strength ω.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass
class DetectionPolicy:
    """Parameters of the proxy's frequency analysis.

    Attributes
    ----------
    window:
        Length of the sliding observation window (simulated time).
    threshold:
        Number of invalid requests within one window a single source may
        accumulate before being blacklisted.
    aggregate_threshold:
        Optional number of invalid requests within one window *across
        all sources* that puts the proxy in **siege mode**.  Per-source
        blacklisting is defeated by rotating spoofed identities (the
        §2.2 evasion); in siege mode the proxy additionally drops
        requests from sources with no history of valid requests, which
        blunts rotation while leaving established clients untouched.
    """

    window: float = 10.0
    threshold: int = 100
    aggregate_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {self.threshold}")
        if self.aggregate_threshold is not None and self.aggregate_threshold < 1:
            raise ConfigurationError(
                f"aggregate_threshold must be >= 1, got {self.aggregate_threshold}"
            )

    @property
    def max_sustainable_rate(self) -> float:
        """Highest long-run invalid-request rate that evades detection."""
        return self.threshold / self.window


def kappa_for_policy(policy: DetectionPolicy, omega: float, period: float = 1.0) -> float:
    """The indirect attack coefficient κ that ``policy`` imposes.

    An attacker able to complete ``omega`` probes per unit time-step of
    length ``period`` must pace indirect probes below the policy's
    sustainable rate; κ is the resulting fraction of his direct strength
    (Definition 5 of the paper; κ is independent of the number of proxies).
    """
    if omega <= 0:
        raise ConfigurationError(f"omega must be positive, got {omega}")
    evading_budget = policy.max_sustainable_rate * period
    return min(1.0, evading_budget / omega)


@dataclass
class _SourceLog:
    """Per-source sliding window of invalid-request timestamps."""

    events: deque = field(default_factory=deque)
    total: int = 0


class DetectionLog:
    """Sliding-window frequency analysis of invalid requests per source.

    Parameters
    ----------
    policy:
        Window length and blacklist threshold.
    """

    def __init__(self, policy: DetectionPolicy | None = None) -> None:
        self.policy = policy or DetectionPolicy()
        self._sources: dict[str, _SourceLog] = {}
        self._blacklist: set[str] = set()
        self._aggregate: deque = deque()
        self._valid_counts: dict[str, int] = {}
        self.invalid_total = 0

    # ------------------------------------------------------------------
    def record_invalid(self, source: str, now: float) -> bool:
        """Log one invalid request from ``source`` at time ``now``.

        Returns ``True`` if this event pushed the source over the
        threshold (it is blacklisted from now on).
        """
        log = self._sources.setdefault(source, _SourceLog())
        log.events.append(now)
        log.total += 1
        self.invalid_total += 1
        self._aggregate.append(now)
        self._expire_aggregate(now)
        self._expire(log, now)
        if len(log.events) > self.policy.threshold and source not in self._blacklist:
            self._blacklist.add(source)
            return True
        return False

    def _expire(self, log: _SourceLog, now: float) -> None:
        horizon = now - self.policy.window
        while log.events and log.events[0] < horizon:
            log.events.popleft()

    def _expire_aggregate(self, now: float) -> None:
        horizon = now - self.policy.window
        while self._aggregate and self._aggregate[0] < horizon:
            self._aggregate.popleft()

    # ------------------------------------------------------------------
    # Valid-request history and siege mode
    # ------------------------------------------------------------------
    def record_valid(self, source: str) -> None:
        """Log that ``source`` received a valid (authentic) response."""
        self._valid_counts[source] = self._valid_counts.get(source, 0) + 1

    def valid_count(self, source: str) -> int:
        """Lifetime count of valid responses delivered to ``source``."""
        return self._valid_counts.get(source, 0)

    def under_siege(self, now: float) -> bool:
        """Whether the aggregate invalid-request rate (all sources)
        currently exceeds the siege threshold."""
        if self.policy.aggregate_threshold is None:
            return False
        self._expire_aggregate(now)
        return len(self._aggregate) > self.policy.aggregate_threshold

    # ------------------------------------------------------------------
    def is_blacklisted(self, source: str) -> bool:
        """Whether ``source`` has been identified as a probe launcher."""
        return source in self._blacklist

    def suspicion(self, source: str, now: float) -> float:
        """Fraction of the threshold ``source`` currently occupies."""
        log = self._sources.get(source)
        if log is None:
            return 0.0
        self._expire(log, now)
        return len(log.events) / self.policy.threshold

    def invalid_count(self, source: str) -> int:
        """Lifetime invalid-request count of ``source``."""
        log = self._sources.get(source)
        return log.total if log else 0

    @property
    def blacklisted_sources(self) -> frozenset[str]:
        """All sources blacklisted so far."""
        return frozenset(self._blacklist)
