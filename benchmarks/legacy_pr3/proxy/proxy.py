"""FORTRESS proxies: the fortification tier.

Proxies (paper §2.2, §3) stand between clients and the server tier:

* they **hide** the servers — clients never learn server addresses, so
  de-randomization attacks cannot be launched at servers over direct
  TCP connections;
* they **forward** each client request to every server and return one
  authentic server response, *over-signed* with the proxy's own key, so
  clients can authenticate both hops;
* they **observe**: a wrong-guess probe manifests as an invalid request
  (the primary crashes; no authentic response arrives before the
  timeout).  The proxy logs these per source and blacklists sources that
  exceed the detection threshold — the mechanism that forces attackers
  to pace indirect probes (κ < 1).

Proxies do no application processing, but they are network-facing
processes with their own randomized address spaces: they can be probed
and compromised over direct connections, exactly like servers in a
1-tier system.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from ..core.timing import DEFAULT_DETECTION_LAG, DEFAULT_RESPAWN_DELAY
from ..crypto.signatures import Signed, SignatureAuthority
from ..net.message import Message
from ..net.network import Network
from ..randomization.keyspace import KeySpace
from ..randomization.node import RandomizedProcess
from ..replication.primary_backup import REQUEST, SERVER_RESPONSE
from ..sim.engine import Simulator
from .detection import DetectionLog, DetectionPolicy

CLIENT_REQUEST = "client_request"
CLIENT_RESPONSE = "client_response"
CLIENT_ERROR = "client_error"


class ProxyNode(RandomizedProcess):
    """One redundant proxy of a fortified (2-tier) system.

    Parameters
    ----------
    sim, name, keyspace, rng:
        See :class:`~repro.randomization.node.RandomizedProcess`.
    authority, network:
        PKI and network substrates.
    policy:
        Detection policy for invalid-request frequency analysis.
    request_timeout:
        How long the proxy waits for a server response before declaring
        the request invalid — the deployment's detection lag
        (:attr:`repro.core.timing.TimingSpec.detection_lag`).
    server_replication:
        ``"primary-backup"`` (accept the first authentic response) or
        ``"smr"`` (wait for ``f + 1`` matching responses).  FORTRESS
        supports any server-tier replication; the paper's S2 uses PB.
    fault_threshold:
        f of the server tier (used only for SMR response voting).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        keyspace: KeySpace,
        rng: random.Random,
        authority: SignatureAuthority,
        network: Network,
        policy: Optional[DetectionPolicy] = None,
        request_timeout: float = DEFAULT_DETECTION_LAG,
        server_replication: str = "primary-backup",
        fault_threshold: int = 0,
        respawn_delay: Optional[float] = DEFAULT_RESPAWN_DELAY,
    ) -> None:
        super().__init__(sim, name, keyspace, rng, respawn_delay=respawn_delay)
        self.authority = authority
        self.network = network
        self.detection = DetectionLog(policy)
        self.request_timeout = request_timeout
        self.server_replication = server_replication
        self.fault_threshold = fault_threshold
        self.servers: list[str] = []
        self._pending: dict[str, dict] = {}
        self.requests_forwarded = 0
        self.responses_delivered = 0
        self.errors_returned = 0
        self.dropped_blacklisted = 0
        self.dropped_siege = 0
        authority.issue_keypair(name)

    # ------------------------------------------------------------------
    def configure(self, servers: list[str]) -> None:
        """Install the server-tier addresses (proxies know them; clients
        never do)."""
        self.servers = list(servers)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        if message.mtype == CLIENT_REQUEST:
            self._on_client_request(message)
        elif message.mtype == SERVER_RESPONSE:
            self._on_server_response(message)

    def _on_client_request(self, message: Message) -> None:
        payload = message.payload
        client = payload.get("client", message.src)
        if self.detection.is_blacklisted(client):
            self.dropped_blacklisted += 1
            return
        if (
            self.detection.under_siege(self.sim.now)
            and self.detection.valid_count(client) == 0
        ):
            # Siege mode: the aggregate invalid rate says someone is
            # probing from rotating identities; sources without a valid
            # history are turned away until the siege subsides.
            self.dropped_siege += 1
            return
        request_id = payload["request_id"]
        if request_id in self._pending:
            return  # duplicate submission of an in-flight request
        deadline = self.sim.schedule(
            self.request_timeout, self._on_request_timeout, request_id
        )
        self._pending[request_id] = {
            "client": client,
            "deadline": deadline,
            "done": False,
            "votes": {},  # index -> (signed, response fingerprint)
        }
        self.requests_forwarded += 1
        body = payload.get("body", {})
        for server in self.servers:
            if self.network.knows(server):
                self.network.send(
                    Message(
                        self.name,
                        server,
                        REQUEST,
                        {
                            "request_id": request_id,
                            "client": client,
                            "reply_to": [self.name],
                            "body": body,
                        },
                    )
                )

    def _on_request_timeout(self, request_id: str) -> None:
        entry = self._pending.pop(request_id, None)
        if entry is None or entry["done"]:
            return
        # No authentic server response in time: this is what an
        # incorrectly guessed probe looks like from where we stand.
        client = entry["client"]
        self.detection.record_invalid(client, self.sim.now)
        self.errors_returned += 1
        if self.network.knows(client):
            self.network.send(
                Message(
                    self.name,
                    client,
                    CLIENT_ERROR,
                    {"request_id": request_id, "error": "timeout"},
                )
            )

    def _on_server_response(self, message: Message) -> None:
        signed = message.payload.get("signed")
        if not isinstance(signed, Signed) or not self.authority.verify(signed):
            return  # inauthentic; a compromised node cannot forge peers
        body = signed.payload
        request_id = body.get("request_id")
        entry = self._pending.get(request_id)
        if entry is None or entry["done"]:
            return
        if self.server_replication == "smr":
            self._vote_smr(entry, request_id, signed, body)
        else:
            self._deliver(entry, request_id, signed)

    def _vote_smr(self, entry: dict, request_id: str, signed: Signed, body: Mapping) -> None:
        """Accumulate responses until ``f + 1`` replicas agree."""
        fingerprint = repr(sorted((str(k), repr(v)) for k, v in body["response"].items()))
        entry["votes"][body["index"]] = (signed, fingerprint)
        counts: dict[str, int] = {}
        for _, fp in entry["votes"].values():
            counts[fp] = counts.get(fp, 0) + 1
        winner = next(
            (fp for fp, c in counts.items() if c >= self.fault_threshold + 1), None
        )
        if winner is None:
            return
        chosen = next(s for s, fp in entry["votes"].values() if fp == winner)
        self._deliver(entry, request_id, chosen)

    def _deliver(self, entry: dict, request_id: str, signed: Signed) -> None:
        """Over-sign one authentic server response and return it."""
        entry["done"] = True
        entry["deadline"].cancel()
        self._pending.pop(request_id, None)
        envelope = self.authority.sign(self.name, signed)
        client = entry["client"]
        self.responses_delivered += 1
        self.detection.record_valid(client)
        if self.network.knows(client):
            self.network.send(
                Message(
                    self.name,
                    client,
                    CLIENT_RESPONSE,
                    {"request_id": request_id, "envelope": envelope},
                )
            )

    # ------------------------------------------------------------------
    # (The direct connection-probe attack surface is inherited from
    # RandomizedProcess: proxies are probed like any randomized node.)
    # ------------------------------------------------------------------
    def on_reboot_complete(self) -> None:
        """A rebooted proxy starts with an empty pending table; the
        detection log survives (it is long-horizon storage by design)."""
        self._pending.clear()
