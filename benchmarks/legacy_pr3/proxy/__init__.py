"""Proxy tier: forwarding, over-signing, probe detection, name server."""

from .detection import DetectionLog, DetectionPolicy, kappa_for_policy
from .nameserver import Directory, NameServer
from .proxy import CLIENT_ERROR, CLIENT_REQUEST, CLIENT_RESPONSE, ProxyNode

__all__ = [
    "DetectionLog",
    "DetectionPolicy",
    "kappa_for_policy",
    "Directory",
    "NameServer",
    "CLIENT_ERROR",
    "CLIENT_REQUEST",
    "CLIENT_RESPONSE",
    "ProxyNode",
]
