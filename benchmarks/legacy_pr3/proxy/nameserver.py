"""The trusted, read-only name server of the FORTRESS architecture.

Paper §3: clients may know the proxies' addresses and public keys, the
servers' *indices* (not their addresses) and public keys, the replication
type of the server tier and, for SMR, the fault threshold f.  This is
facilitated through a trusted name server that is read-only for clients.
Servers accept messages only from proxies and the name server.

The name server is deliberately *not* a randomized process: it is trusted
infrastructure, outside the attack surface considered by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net.message import Message
from ..net.network import Network
from ..sim.engine import Simulator
from ..sim.process import SimProcess

NS_LOOKUP = "ns_lookup"
NS_INFO = "ns_info"


@dataclass
class Directory:
    """What the name server publishes to clients.

    Attributes
    ----------
    proxy_addresses:
        Network names of the proxies (clients talk only to these in a
        2-tier system; empty in 1-tier systems).
    proxy_keys:
        Proxy name → public key.
    server_indices:
        The server tier's indices, in order.  Addresses are *not*
        published when the tier is fortified.
    server_keys:
        Server index → public key.
    server_addresses:
        Server name by index — published only for 1-tier systems, where
        clients contact servers directly.
    replication:
        ``"primary-backup"`` or ``"smr"``.
    fault_threshold:
        f, published when replication is SMR.
    """

    proxy_addresses: list[str] = field(default_factory=list)
    proxy_keys: dict[str, str] = field(default_factory=dict)
    server_indices: list[int] = field(default_factory=list)
    server_keys: dict[int, str] = field(default_factory=dict)
    server_addresses: dict[int, str] = field(default_factory=dict)
    replication: str = "primary-backup"
    fault_threshold: int = 0

    def as_payload(self) -> dict:
        """Serialize for an ``ns_info`` reply."""
        return {
            "proxy_addresses": list(self.proxy_addresses),
            "proxy_keys": dict(self.proxy_keys),
            "server_indices": list(self.server_indices),
            "server_keys": dict(self.server_keys),
            "server_addresses": dict(self.server_addresses),
            "replication": self.replication,
            "fault_threshold": self.fault_threshold,
        }


class NameServer(SimProcess):
    """Serves the directory to clients; read-only by construction.

    Parameters
    ----------
    sim:
        Driving simulator.
    network:
        Network to answer lookups on.
    directory:
        The published directory (installed by the system builder).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        directory: Optional[Directory] = None,
        name: str = "nameserver",
    ) -> None:
        super().__init__(sim, name, respawn_delay=None)
        self.network = network
        self.directory = directory or Directory()
        self.lookups_served = 0

    def handle_message(self, message: Message) -> None:
        if message.mtype == NS_LOOKUP:
            self.lookups_served += 1
            self.network.send(
                Message(self.name, message.src, NS_INFO, self.directory.as_payload())
            )
