"""Paced probe streams.

:class:`ProbeDriver` fires connection probes at one target at a fixed
rate (ω probes per unit time-step, i.e. one probe every ``period/ω``).
It reconnects when the target's crash closes the connection — relying on
the forking daemon to resurrect the victim — and reports intrusion on an
``intrusion_ack``.

:class:`IndirectProber` is the 2-tier counterpart: it crafts probes as
client requests and submits them through the proxies (rotating across
them, the load-balancing evasion of §2.2), at the *paced* rate κ·ω that
keeps the attacker under the proxies' detection threshold.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..errors import ConfigurationError
from ..net.message import Message
from ..net.transport import Connection
from ..proxy.proxy import CLIENT_REQUEST
from .keytracker import KeyGuessTracker
from .probe import connection_probe, is_intrusion_ack, request_probe

if TYPE_CHECKING:  # pragma: no cover
    from .agent import AttackerProcess


class ProbeDriver:
    """One paced stream of direct connection probes at one target.

    Parameters
    ----------
    attacker:
        The orchestrating attacker process (receives connection events).
    target:
        Name of the node under attack.
    pool:
        Guess tracker of the target's randomization instance.
    interval:
        Simulated time between probes (``period / ω``).
    initiator:
        Connection source address; defaults to the attacker itself.
        Launch-pad streams pass a compromised proxy's name here.
    """

    def __init__(
        self,
        attacker: "AttackerProcess",
        target: str,
        pool: KeyGuessTracker,
        interval: float,
        initiator: Optional[str] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"probe interval must be positive, got {interval}")
        self.attacker = attacker
        self.target = target
        self.pool = pool
        self.interval = interval
        self.initiator = initiator or attacker.name
        self.connection: Optional[Connection] = None
        self.active = False
        self.probes_sent = 0
        self.reconnects = 0
        self._last_guess: Optional[int] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the probe loop."""
        if self.active:
            return
        self.active = True
        self.attacker.sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Stop probing and drop the connection."""
        self.active = False
        if self.connection is not None and self.connection.open:
            self.connection.close(closed_by=self.initiator)
        self.connection = None

    # ------------------------------------------------------------------
    def _fire(self) -> None:
        if not self.active:
            return
        if self.pool.known_key is None and self.pool.exhausted:
            # Defensive: in SO mode against an unlucky space the pool can
            # drain; the attack has then provably failed for this instance.
            self.active = False
            return
        if self.connection is None or not self.connection.open:
            self.connection = self.attacker.network.connect(self.initiator, self.target)
            if self.connection is not None:
                self.reconnects += 1
                self.attacker.register_connection(self.connection, self)
        if self.connection is not None:
            if self.pool.known_key is not None:
                # Re-exploitation: recovery did not change the key, so
                # the discovered key works instantly (SO semantics).
                guess = self.pool.known_key
            else:
                guess = self.pool.next_guess()
            self._last_guess = guess
            self.connection.send(self.initiator, connection_probe(guess))
            self.probes_sent += 1
            self.attacker.probes_sent_direct += 1
        self.attacker.sim.schedule(self.interval, self._fire)

    # -- events routed back by the attacker ------------------------------
    def on_closed(self, connection: Connection) -> None:
        """The target crashed (wrong guess) or was refreshed."""
        if connection is self.connection:
            self.connection = None

    def on_data(self, connection: Connection, payload) -> None:
        """Intrusion acks confirm the in-flight guess was the key."""
        if is_intrusion_ack(payload) and self._last_guess is not None:
            self.pool.record_success(self._last_guess)


class IndirectProber:
    """Paced request-path probing through the proxy tier.

    Parameters
    ----------
    attacker:
        Orchestrating attacker process.
    proxies:
        Proxy addresses to rotate across.
    pool:
        Guess tracker of the *server* randomization instance.
    interval:
        Mean time between indirect probes (``period / (κ·ω)``).
    identities:
        Number of client identities to rotate through (source spoofing;
        1 = honest single source, which per-source frequency analysis
        can eventually pin down).
    pacing_rng:
        When given, each gap is jittered uniformly over
        ``[0.5, 1.5]·interval`` (same long-run rate).  Only the *rate*
        of the stream matters to the detection threshold; exact
        periodicity, by contrast, phase-locks the request path to the
        direct/launch-pad probe grid whenever κ is rational in ω, and
        the stream then systematically collides with the primary
        crashes its co-streams cause — a discrete-event artifact the §4
        model's independent-streams assumption excludes.  The attack
        orchestrator always passes a stream; ``None`` keeps strict
        periodicity (unit tests).
    """

    def __init__(
        self,
        attacker: "AttackerProcess",
        proxies: list[str],
        pool: KeyGuessTracker,
        interval: float,
        identities: int = 1,
        pacing_rng: Optional[random.Random] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"probe interval must be positive, got {interval}")
        if not proxies:
            raise ConfigurationError("indirect probing needs at least one proxy")
        self.attacker = attacker
        self.proxies = list(proxies)
        self.pool = pool
        self.interval = interval
        self.identities = max(1, identities)
        self.pacing_rng = pacing_rng
        self.active = False
        self.probes_sent = 0
        self._turn = 0

    def _next_delay(self) -> float:
        if self.pacing_rng is None:
            return self.interval
        return self.interval * (0.5 + self.pacing_rng.random())

    def start(self) -> None:
        """Begin the indirect probe loop."""
        if self.active:
            return
        self.active = True
        self.attacker.sim.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop the loop."""
        self.active = False

    def _fire(self) -> None:
        if not self.active:
            return
        if self.pool.exhausted:
            self.active = False
            return
        guess = self.pool.next_guess()
        identity = self.attacker.name
        if self.identities > 1:
            identity = f"{self.attacker.name}~{self._turn % self.identities}"
        payload = request_probe(guess, identity)
        proxy = self.proxies[self._turn % len(self.proxies)]
        self._turn += 1
        if self.attacker.network.knows(proxy):
            self.attacker.network.send(
                Message(self.attacker.name, proxy, CLIENT_REQUEST, payload)
            )
        self.probes_sent += 1
        self.attacker.probes_sent_indirect += 1
        self.attacker.sim.schedule(self._next_delay(), self._fire)
