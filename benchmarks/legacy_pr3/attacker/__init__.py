"""Attack substrate: key tracking, probe streams, campaign orchestration."""

from .adaptive import AdaptiveIndirectProber
from .agent import AttackerProcess
from .driver import IndirectProber, ProbeDriver
from .keytracker import KeyGuessTracker
from .probe import connection_probe, is_intrusion_ack, request_probe

__all__ = [
    "AdaptiveIndirectProber",
    "AttackerProcess",
    "IndirectProber",
    "ProbeDriver",
    "KeyGuessTracker",
    "connection_probe",
    "is_intrusion_ack",
    "request_probe",
]
