"""Attacker-side bookkeeping of key guesses.

Phase 1 of a de-randomization attack enumerates candidate keys, never
repeating a guess against the same randomization instance (sampling
*without* replacement).  A :class:`KeyGuessTracker` holds that state for
one key **pool** — one randomization instance, possibly shared by several
nodes (the identically randomized PB servers of S1/S2 form a single
pool; each diversely randomized node is its own pool).

When the defender re-randomizes (PO), the attacker's eliminations become
worthless and the pool is :meth:`reset` — that is what turns the attack
into sampling *with* replacement across time-steps.
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError
from ..randomization.keyspace import KeySpace


class KeyGuessTracker:
    """Enumerates untried keys of one key pool in random order.

    Parameters
    ----------
    keyspace:
        The key space being searched.
    rng:
        Attacker's RNG stream for guess ordering.
    """

    # Below this fill ratio, rejection sampling is cheap; above it we
    # materialize the remaining keys once and shuffle them.
    _REJECTION_LIMIT = 0.5

    def __init__(self, keyspace: KeySpace, rng: random.Random) -> None:
        self.keyspace = keyspace
        self._rng = rng
        self._tried: set[int] = set()
        self._remaining: list[int] | None = None
        #: The key, once a probe confirmed it.  Against SO systems the
        #: defender's recovery does not change keys, so a discovered key
        #: stays valid and re-exploitation is instant.
        self.known_key: int | None = None
        self.resets = 0
        self.total_guesses = 0

    # ------------------------------------------------------------------
    @property
    def tried_count(self) -> int:
        """Keys eliminated against the current randomization instance."""
        return len(self._tried)

    @property
    def exhausted(self) -> bool:
        """True when every key of the space has been tried."""
        return self.tried_count >= self.keyspace.size

    def next_guess(self) -> int:
        """Return a fresh, never-tried key guess.

        Raises
        ------
        ConfigurationError
            If the pool is exhausted (the attacker should have won long
            before; callers normally reset on re-randomization).
        """
        if self.exhausted:
            raise ConfigurationError("key pool exhausted; reset the tracker")
        self.total_guesses += 1
        if self._remaining is not None:
            guess = self._remaining.pop()
            self._tried.add(guess)
            return guess
        if self.tried_count >= self.keyspace.size * self._REJECTION_LIMIT:
            self._materialize()
            return self.next_guess_after_materialize()
        while True:
            guess = self._rng.randrange(self.keyspace.size)
            if guess not in self._tried:
                self._tried.add(guess)
                return guess

    def next_guess_after_materialize(self) -> int:
        """Pop from the materialized remainder (internal fast path)."""
        assert self._remaining is not None
        guess = self._remaining.pop()
        self._tried.add(guess)
        return guess

    def _materialize(self) -> None:
        remaining = [k for k in range(self.keyspace.size) if k not in self._tried]
        self._rng.shuffle(remaining)
        self._remaining = remaining

    def record_success(self, guess: int) -> None:
        """Remember the confirmed key of this pool's instance."""
        self.known_key = guess

    def eliminate(self, guess: int) -> None:
        """Record an externally observed wrong guess (e.g. learned from a
        colluding probe stream against the same pool)."""
        self._tried.add(guess)
        if self._remaining is not None and guess in self._remaining:
            self._remaining.remove(guess)

    def reset(self) -> None:
        """Forget all eliminations — the defender re-randomized.

        The known key (if any) is forgotten too: a fresh key was drawn.
        """
        self._tried.clear()
        self._remaining = None
        self.known_key = None
        self.total_guesses = 0
        self.resets += 1
