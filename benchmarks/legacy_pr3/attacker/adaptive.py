"""Adaptive indirect attack strategies.

The paper's κ abstracts an equilibrium: the attacker paces indirect
probes just below what the proxies' frequency analysis tolerates.  This
module implements the *process* that finds that equilibrium, plus the
evasion the paper mentions in §2.2 (distributing probes so no single
observation point sees enough):

* **AIMD pacing** — the attacker ramps his indirect rate additively
  while feedback keeps flowing, and on losing feedback (a sign his
  current identity was blacklisted) rotates to a fresh spoofed identity
  and cuts the rate multiplicatively.  The sustained rate divided by ω
  is the κ he achieves against the deployed policy.
* **Identity rotation** — fresh source identities defeat *per-source*
  blacklisting entirely; the proxy-side counter is the aggregate
  ("siege") detection of :class:`repro.proxy.detection.DetectionPolicy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import ConfigurationError
from ..net.message import Message
from ..proxy.proxy import CLIENT_ERROR, CLIENT_REQUEST, CLIENT_RESPONSE
from .keytracker import KeyGuessTracker
from .probe import request_probe

if TYPE_CHECKING:  # pragma: no cover
    from .agent import AttackerProcess


class AdaptiveIndirectProber:
    """AIMD-paced, identity-rotating indirect probing.

    Parameters
    ----------
    attacker:
        The orchestrating attacker process (receives proxy feedback).
    proxies:
        Proxy addresses to rotate probes across.
    pool:
        Guess tracker of the server randomization instance.
    omega:
        The attacker's full direct-rate strength (rate ceiling).
    period:
        Unit time-step length.
    initial_rate:
        Starting probes-per-step (defaults to ω/4).
    min_rate:
        Floor below which the rate never decays.
    additive_increase:
        Probes-per-step added after every ``adjust_every`` acknowledged
        probes.
    multiplicative_decrease:
        Rate factor applied on suspected blacklisting.
    patience:
        Consecutive unanswered probes that signal blacklisting.
    feedback_timeout:
        How long a probe may stay unanswered before it counts as silent.
    max_identities:
        Budget of spoofed identities (None = unlimited).
    """

    def __init__(
        self,
        attacker: "AttackerProcess",
        proxies: list[str],
        pool: KeyGuessTracker,
        omega: float,
        period: float = 1.0,
        initial_rate: Optional[float] = None,
        min_rate: float = 0.25,
        additive_increase: float = 0.5,
        multiplicative_decrease: float = 0.5,
        patience: int = 4,
        feedback_timeout: float = 1.0,
        adjust_every: int = 8,
        max_identities: Optional[int] = None,
    ) -> None:
        if not proxies:
            raise ConfigurationError("adaptive probing needs at least one proxy")
        if omega <= 0:
            raise ConfigurationError(f"omega must be positive, got {omega}")
        self.attacker = attacker
        self.proxies = list(proxies)
        self.pool = pool
        self.omega = omega
        self.period = period
        self.rate = (
            initial_rate if initial_rate is not None else max(min_rate, omega / 4)
        )
        self.min_rate = min_rate
        self.additive_increase = additive_increase
        self.multiplicative_decrease = multiplicative_decrease
        self.patience = patience
        self.feedback_timeout = feedback_timeout
        self.adjust_every = adjust_every
        self.max_identities = max_identities
        self.active = False
        self.probes_sent = 0
        self.identities_used = 0
        self.rotations = 0
        self.rate_history: list[tuple[float, float]] = []
        self._identity: Optional[str] = None
        self._turn = 0
        self._outstanding: dict[str, float] = {}  # request_id -> sent time
        self._answered_streak = 0
        self._last_feedback = 0.0
        self._sent_since_feedback = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the adaptive probe loop."""
        if self.active:
            return
        self.active = True
        self._adopt_identity()
        self.attacker.register_feedback_handler(self._on_feedback)
        self.attacker.sim.schedule(self.period / self.rate, self._fire)

    def stop(self) -> None:
        """Stop the loop."""
        self.active = False

    @property
    def effective_kappa(self) -> float:
        """The κ this strategy currently sustains (rate / ω)."""
        return min(1.0, self.rate / self.omega)

    # ------------------------------------------------------------------
    def _adopt_identity(self) -> bool:
        if (
            self.max_identities is not None
            and self.identities_used >= self.max_identities
        ):
            self._identity = None
            return False
        self.identities_used += 1
        identity = f"{self.attacker.name}~id{self.identities_used}"
        self.attacker.network.register_alias(identity, self.attacker.name)
        self._identity = identity
        self._outstanding.clear()
        self._answered_streak = 0
        self._sent_since_feedback = 0
        self._last_feedback = self.attacker.sim.now
        return True

    def _fire(self) -> None:
        if not self.active:
            return
        if self.pool.known_key is None and self.pool.exhausted:
            self.active = False
            return
        now = self.attacker.sim.now
        self._check_for_blacklisting(now)
        if self._identity is None:
            self.active = False  # identity budget exhausted
            return
        guess = (
            self.pool.known_key
            if self.pool.known_key is not None
            else self.pool.next_guess()
        )
        payload = request_probe(guess, self._identity)
        proxy = self.proxies[self._turn % len(self.proxies)]
        self._turn += 1
        if self.attacker.network.knows(proxy):
            self.attacker.network.send(
                Message(self._identity, proxy, CLIENT_REQUEST, payload)
            )
        self._outstanding[payload["request_id"]] = now
        self._sent_since_feedback += 1
        self.probes_sent += 1
        self.attacker.probes_sent_indirect += 1
        self.rate_history.append((now, self.rate))
        # Bound the table: entries older than the timeout carry no more
        # information (sporadic losses — e.g. a proxy rebooting mid-flight
        # — are normal and must not look like blacklisting).
        stale = [
            r
            for r, s in self._outstanding.items()
            if now - s > self.feedback_timeout
        ]
        for request_id in stale:
            del self._outstanding[request_id]
        self.attacker.sim.schedule(self.period / self.rate, self._fire)

    def _check_for_blacklisting(self, now: float) -> None:
        """Blacklisting (or siege-dropping) silences *every* probe of an
        identity; sporadic losses do not.  Rotate only on consecutive
        silence: ≥ patience probes sent with no feedback at all for
        longer than the feedback timeout."""
        if (
            self._sent_since_feedback >= self.patience
            and now - self._last_feedback > self.feedback_timeout
        ):
            self.rotations += 1
            self.rate = max(self.min_rate, self.rate * self.multiplicative_decrease)
            self._adopt_identity()

    def _on_feedback(self, message: Message) -> None:
        if message.mtype not in (CLIENT_ERROR, CLIENT_RESPONSE):
            return
        request_id = message.payload.get("request_id")
        if request_id not in self._outstanding:
            return
        del self._outstanding[request_id]
        self._last_feedback = self.attacker.sim.now
        self._sent_since_feedback = 0
        self._answered_streak += 1
        if self._answered_streak >= self.adjust_every:
            self._answered_streak = 0
            self.rate = min(self.omega, self.rate + self.additive_increase)
