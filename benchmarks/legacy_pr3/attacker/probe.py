"""Probe construction.

Two delivery vehicles exist for the same exploit payload:

* **connection probes** — fired over a direct TCP-like connection at a
  node the attacker can reach (1-tier servers; proxies; servers reached
  from a compromised proxy acting as launch pad);
* **request probes** — crafted as service requests and submitted through
  the client interface, so that the processing primary exercises the
  vulnerable code path (the paper's indirect attacks).
"""

from __future__ import annotations

import itertools
from typing import Any

from ..replication.primary_backup import PROBE_OP

_PROBE_IDS = itertools.count(1)


def connection_probe(guess: int) -> dict[str, Any]:
    """Payload for a probe sent over a direct connection."""
    return {"kind": "probe", "guess": int(guess)}


def request_probe(guess: int, client: str) -> dict[str, Any]:
    """A ``client_request`` payload whose body carries the exploit.

    Returns the full payload expected by proxies (and by 1-tier servers'
    request interface): unique request id, claimed client identity, and
    the probe body.
    """
    return {
        "request_id": f"probe-{client}-{next(_PROBE_IDS)}",
        "client": client,
        "body": {"op": PROBE_OP, "guess": int(guess)},
    }


def is_intrusion_ack(payload: Any) -> bool:
    """True if a connection payload signals a successful exploit."""
    return isinstance(payload, dict) and payload.get("kind") == "intrusion_ack"
