"""Statistics helpers for simulation output."""

from .stats import (
    CensoredSummary,
    SummaryStats,
    Z_95,
    bootstrap_ci,
    geometric_mean,
    kaplan_meier,
    km_restricted_mean,
    summarize,
    summarize_censored,
)

__all__ = [
    "CensoredSummary",
    "SummaryStats",
    "Z_95",
    "bootstrap_ci",
    "geometric_mean",
    "kaplan_meier",
    "km_restricted_mean",
    "summarize",
    "summarize_censored",
]
