"""Simulated digital signatures and the over-signing envelope.

FORTRESS responses carry **two** signatures (paper §3): each server signs
its response together with its index, and the forwarding proxy over-signs
one authentic server response.  A client accepts a response only when both
signatures verify.  :class:`Signed` models one signature layer; nesting a
``Signed`` inside another ``Signed`` models over-signing.

Signatures are HMAC-style tags over a canonical serialization, keyed by
the signer's private key.  The :class:`SignatureAuthority` plays the role
of the PKI: it issues key pairs and resolves public keys during
verification.  See :mod:`repro.crypto.keys` for why this substitution is
sound for a resilience study.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any

from ..errors import CryptoError
from .keys import KeyPair, generate_keypair


def canonical_bytes(obj: Any) -> bytes:
    """Serialize ``obj`` to a canonical byte string for signing.

    Dict keys are sorted; lists and tuples are equivalent; nested
    :class:`Signed` envelopes serialize by their fields.  Unsupported
    types raise :class:`~repro.errors.CryptoError` rather than silently
    using an unstable ``repr``.
    """
    out: list[bytes] = []
    _canonicalize(obj, out)
    return b"".join(out)


def _canonicalize(obj: Any, out: list[bytes]) -> None:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        out.append(f"{type(obj).__name__}:{obj!r};".encode("utf-8"))
    elif isinstance(obj, bytes):
        out.append(b"bytes:" + obj + b";")
    elif isinstance(obj, (list, tuple)):
        out.append(b"seq[")
        for item in obj:
            _canonicalize(item, out)
        out.append(b"]")
    elif isinstance(obj, dict):
        out.append(b"map{")
        for key in sorted(obj, key=repr):
            _canonicalize(key, out)
            out.append(b"=")
            _canonicalize(obj[key], out)
        out.append(b"}")
    elif isinstance(obj, Signed):
        out.append(b"signed<")
        _canonicalize(obj.payload, out)
        _canonicalize(obj.signer, out)
        _canonicalize(obj.signature, out)
        out.append(b">")
    else:
        raise CryptoError(f"cannot canonicalize value of type {type(obj).__name__}")


@dataclass(frozen=True)
class Signed:
    """A payload together with one signature layer.

    Attributes
    ----------
    payload:
        The signed content (may itself be a :class:`Signed` envelope —
        that is FORTRESS over-signing).
    signer:
        Name of the signing party.
    signature:
        The tag produced by :meth:`SignatureAuthority.sign`.
    """

    payload: Any
    signer: str
    signature: str


class SignatureAuthority:
    """Issues key pairs and verifies signatures (the simulated PKI).

    Parameters
    ----------
    rng:
        RNG stream used for key generation.
    """

    def __init__(self, rng: random.Random | None = None) -> None:
        self._rng = rng or random.Random(0)
        self._by_owner: dict[str, KeyPair] = {}
        self._by_public: dict[str, KeyPair] = {}

    # ------------------------------------------------------------------
    # Key management
    # ------------------------------------------------------------------
    def issue_keypair(self, owner: str) -> KeyPair:
        """Issue (or re-issue) a key pair for ``owner``.

        Re-issuing replaces the owner's registered pair — used when a
        rebooted node provisions fresh credentials.
        """
        pair = generate_keypair(owner, self._rng)
        old = self._by_owner.get(owner)
        if old is not None:
            del self._by_public[old.public]
        self._by_owner[owner] = pair
        self._by_public[pair.public] = pair
        return pair

    def public_key_of(self, owner: str) -> str:
        """Return the registered public key of ``owner``."""
        try:
            return self._by_owner[owner].public
        except KeyError:
            raise CryptoError(f"no key pair registered for {owner!r}") from None

    def private_key_of(self, owner: str) -> str:
        """Return the private key of ``owner``.

        Legitimately called only by the owner; also called by attacker
        code after compromising the owner (a compromised node leaks its
        signing key).
        """
        try:
            return self._by_owner[owner].private
        except KeyError:
            raise CryptoError(f"no key pair registered for {owner!r}") from None

    # ------------------------------------------------------------------
    # Signing and verification
    # ------------------------------------------------------------------
    @staticmethod
    def tag(private: str, payload: Any) -> str:
        """Compute the signature tag of ``payload`` under ``private``."""
        digest = hashlib.sha256()
        digest.update(private.encode("utf-8"))
        digest.update(canonical_bytes(payload))
        return digest.hexdigest()

    def sign(self, owner: str, payload: Any, private: str | None = None) -> Signed:
        """Sign ``payload`` as ``owner``.

        ``private`` defaults to the owner's registered key; an attacker
        passing a stolen key may sign as a victim (that is the point of
        modelling compromise).
        """
        key = private if private is not None else self.private_key_of(owner)
        return Signed(payload=payload, signer=owner, signature=self.tag(key, payload))

    def verify(self, signed: Signed) -> bool:
        """Check one signature layer against the signer's registered key."""
        pair = self._by_owner.get(signed.signer)
        if pair is None:
            return False
        return self.tag(pair.private, signed.payload) == signed.signature

    def verify_oversigned(self, envelope: Signed) -> bool:
        """Check a FORTRESS doubly-signed response.

        The outer layer must be a valid proxy signature over an inner
        :class:`Signed` carrying a valid server signature.
        """
        if not self.verify(envelope):
            return False
        inner = envelope.payload
        return isinstance(inner, Signed) and self.verify(inner)
