"""Simulated crypto: key pairs, signatures, over-signing envelopes."""

from .keys import KeyPair, generate_keypair
from .signatures import Signed, SignatureAuthority, canonical_bytes

__all__ = [
    "KeyPair",
    "generate_keypair",
    "Signed",
    "SignatureAuthority",
    "canonical_bytes",
]
