"""Key material for the simulated public-key infrastructure.

The reproduction does not implement real asymmetric cryptography — the
paper's resilience analysis never depends on cryptanalysis, only on *who
holds which signing key*.  A :class:`KeyPair` is therefore a pair of
random identifiers, and verification (in :mod:`repro.crypto.signatures`)
works by looking the private half up from the public half in a registry
held by the :class:`~repro.crypto.signatures.SignatureAuthority`.
What is preserved faithfully: a signature can only be produced by a party
holding the private key, and compromising a node leaks its private key.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class KeyPair:
    """A (public, private) key pair bound to an owner name."""

    owner: str
    public: str
    private: str

    def __repr__(self) -> str:  # pragma: no cover - avoid leaking private key
        return f"KeyPair(owner={self.owner!r}, public={self.public[:12]}...)"


def generate_keypair(owner: str, rng: random.Random) -> KeyPair:
    """Generate a fresh key pair for ``owner`` from the given RNG stream."""
    public = f"pub:{owner}:{rng.getrandbits(128):032x}"
    private = f"prv:{owner}:{rng.getrandbits(128):032x}"
    return KeyPair(owner=owner, public=public, private=private)
