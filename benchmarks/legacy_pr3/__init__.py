"""Frozen pre-refactor (PR 3) protocol stack — benchmark baseline ONLY.

This is a verbatim snapshot of ``src/repro`` at commit PR 3 (the last
commit before the event-kernel / messaging / fast-forward rewrite),
trimmed to the protocol-simulation closure (the analytic, Monte-Carlo,
fault-injection, workload, reporting and CLI layers are dropped; this
``__init__`` replaces the original package root, which re-exported
them).  ``benchmarks/bench_sim_kernel.py`` imports it to measure the
old engine's single-run throughput in the SAME process and machine
state as the new engine, so the asserted speedup is an honest
same-session A/B rather than a comparison against a recorded number
from a differently-loaded machine.

Do not fix, lint, format or otherwise improve this code: its value is
that it never changes.  All intra-package imports are relative, so the
snapshot works unchanged under this package name.
"""
