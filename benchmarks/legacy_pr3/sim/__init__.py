"""Discrete-event simulation kernel: clock, events, processes, RNG
streams, event tracing."""

from .engine import Event, Simulator
from .process import ProcessState, SimProcess
from .rng import RngRegistry, derive_seed
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "Event",
    "Simulator",
    "ProcessState",
    "SimProcess",
    "RngRegistry",
    "derive_seed",
    "TraceEvent",
    "TraceRecorder",
]
