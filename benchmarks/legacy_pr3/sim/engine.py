"""Discrete-event simulation kernel.

The kernel is a classic event-heap scheduler: callbacks are scheduled at
simulated times and executed in time order (FIFO among equal times).  All
higher layers — network delivery, protocol timers, re-randomization
epochs, attacker probe pacing — are built on :class:`Simulator`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .rng import RngRegistry


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)`` so ties resolve in scheduling order.
    Cancelled events stay in the heap but are skipped on pop; the owning
    simulator's live-event counter is kept in sync at cancel time, so
    :attr:`Simulator.pending_events` never has to scan the heap.
    """

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: Owning simulator while the event is scheduled and live; cleared
    #: when the event executes or is cancelled (so a late ``cancel()``
    #: on an already-fired event cannot corrupt the pending count).
    _owner: Optional["Simulator"] = field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once
        (and after the event has already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._pending -= 1
            self._owner = None


class Simulator:
    """Event-driven simulator with a virtual clock.

    Parameters
    ----------
    seed:
        Root seed for the registry of named RNG streams
        (see :class:`repro.sim.rng.RngRegistry`).

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._pending = 0  # live (scheduled, non-cancelled) events
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        event = Event(time=time, seq=next(self._seq), fn=fn, args=args)
        event._owner = self
        self._pending += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue  # its cancel() already adjusted the counter
            if event.time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event from the past")
            self._pending -= 1
            event._owner = None
            self.now = event.time
            event.fn(*event.args)
            self._events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap empties, ``until`` is reached, or
        ``max_events`` have executed (whichever comes first).

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, so periodic processes can be
        resumed cleanly.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap and not self._stopped:
                if max_events is not None and executed >= max_events:
                    return
                nxt = self._next_pending()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
            if until is not None and self.now < until and not self._stopped:
                self.now = until

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def _next_pending(self) -> Optional[Event]:
        """Peek the earliest non-cancelled event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events.

        O(1): a live counter maintained on schedule / cancel / pop
        instead of a heap scan (protocol deployments keep thousands of
        events in flight, and hot paths poll this property).
        """
        return self._pending

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={self.pending_events})"
