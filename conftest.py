"""Repo-level pytest knobs shared by the test suite and the benchmarks.

``--smoke`` (or the ``REPRO_SMOKE=1`` environment variable, for runners
that cannot pass options through) scales Monte-Carlo trial counts down
so benchmarks and slow MC tests finish in CI-friendly time without
duplicating reduced constants everywhere: heavy call sites request their
full-scale trial count through the ``scale_trials`` fixture and get a
proportionally smaller one back in smoke mode.
"""

from __future__ import annotations

import os

import pytest

SMOKE_ENV = "REPRO_SMOKE"
SMOKE_FRACTION = 0.02


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="scale Monte-Carlo trial counts down for fast CI runs "
        f"(equivalent to {SMOKE_ENV}=1)",
    )


def smoke_enabled(config: pytest.Config) -> bool:
    """Whether this run asked for reduced trial counts."""
    if config.getoption("--smoke", default=False):
        return True
    return os.environ.get(SMOKE_ENV, "0") not in ("", "0")


@pytest.fixture(scope="session")
def smoke(request: pytest.FixtureRequest) -> bool:
    """True when running in smoke (reduced-scale) mode."""
    return smoke_enabled(request.config)


@pytest.fixture(scope="session")
def scale_trials(smoke: bool):
    """Callable mapping a full-scale trial count to this run's count."""

    def scale(trials: int, floor: int = 200) -> int:
        if not smoke:
            return trials
        return max(floor, int(trials * SMOKE_FRACTION))

    return scale
