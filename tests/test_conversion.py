"""Unit tests for parameter conversions and SO hazard sequences."""

from __future__ import annotations

import pytest

from repro.analysis.conversion import (
    alpha_from_omega,
    chi_from_entropy,
    omega_from_alpha,
    so_exhaustion_step,
    so_hazard,
    so_hazard_sequence,
    so_survival,
)
from repro.errors import ConfigurationError


def test_chi_from_entropy():
    assert chi_from_entropy(16) == 65536
    with pytest.raises(ConfigurationError):
        chi_from_entropy(0)


def test_alpha_omega_inverse():
    chi = 65536
    for alpha in (1e-5, 1e-3, 0.5):
        assert alpha_from_omega(omega_from_alpha(alpha, chi), chi) == pytest.approx(
            alpha
        )


def test_alpha_from_omega_caps_at_one():
    assert alpha_from_omega(1e9, 1024) == 1.0


def test_conversion_validation():
    with pytest.raises(ConfigurationError):
        alpha_from_omega(-1, 1024)
    with pytest.raises(ConfigurationError):
        omega_from_alpha(2.0, 1024)
    with pytest.raises(ConfigurationError):
        alpha_from_omega(1.0, 1)


def test_so_hazard_first_step_is_alpha():
    assert so_hazard(0.01, 1) == pytest.approx(0.01)


def test_so_hazard_matches_pool_shrinkage_closed_form():
    """α_i = α / (1 − (i−1)α): the paper's χ/(χ−iω) structure."""
    alpha = 0.01
    for i in (1, 5, 50):
        assert so_hazard(alpha, i) == pytest.approx(alpha / (1 - (i - 1) * alpha))


def test_so_hazard_increases_and_caps_at_one():
    alpha = 0.2
    hazards = [so_hazard(alpha, i) for i in range(1, 8)]
    assert hazards == sorted(hazards)
    assert hazards[-1] == 1.0


def test_so_hazard_sequence_matches_closed_form():
    alpha = 0.05
    sequence = list(so_hazard_sequence(alpha, 10))
    expected = [so_hazard(alpha, i) for i in range(1, 11)]
    assert sequence == pytest.approx(expected)


def test_so_hazard_recurrence_identity():
    """1/α_i = 1/α_{i-1} − 1 (sampling without replacement)."""
    alpha = 0.02
    for i in range(2, 20):
        assert 1 / so_hazard(alpha, i) == pytest.approx(1 / so_hazard(alpha, i - 1) - 1)


def test_so_survival_is_linear():
    assert so_survival(0.1, 0) == 1.0
    assert so_survival(0.1, 5) == pytest.approx(0.5)
    assert so_survival(0.1, 10) == 0.0
    assert so_survival(0.1, 15) == 0.0


def test_survival_consistent_with_hazards():
    """Π(1 − α_i) over i = 1..t must equal the linear survival 1 − tα."""
    alpha = 0.04
    product = 1.0
    for t in range(1, 20):
        product *= 1.0 - so_hazard(alpha, t)
        assert product == pytest.approx(so_survival(alpha, t), abs=1e-12)


def test_so_exhaustion_step():
    assert so_exhaustion_step(0.1) == 10
    assert so_exhaustion_step(0.3) == 4  # ceil(1/0.3)
    assert so_exhaustion_step(1.0) == 1


def test_validation_of_hazard_functions():
    with pytest.raises(ConfigurationError):
        so_hazard(0.0, 1)
    with pytest.raises(ConfigurationError):
        so_hazard(0.5, 0)
    with pytest.raises(ConfigurationError):
        so_survival(0.5, -1)
