"""Unit tests for deterministic RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_reproducible_across_registries():
    a = RngRegistry(5).stream("net")
    b = RngRegistry(5).stream("net")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_sequences():
    registry = RngRegistry(5)
    xs = [registry.stream("x").random() for _ in range(5)]
    ys = [registry.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_give_different_sequences():
    a = RngRegistry(1).stream("n")
    b = RngRegistry(2).stream("n")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_adding_streams_does_not_perturb_existing():
    registry1 = RngRegistry(9)
    s1 = registry1.stream("alpha")
    first = s1.random()

    registry2 = RngRegistry(9)
    registry2.stream("beta")  # extra stream created first
    s2 = registry2.stream("alpha")
    assert s2.random() == first


def test_derive_seed_is_deterministic_and_name_sensitive():
    assert derive_seed(3, "x") == derive_seed(3, "x")
    assert derive_seed(3, "x") != derive_seed(3, "y")
    assert derive_seed(3, "x") != derive_seed(4, "x")


def test_spawn_produces_independent_registry():
    parent = RngRegistry(11)
    child = parent.spawn("worker")
    assert child.root_seed != parent.root_seed
    # Same spawn name is reproducible.
    assert parent.spawn("worker").root_seed == child.root_seed


def test_names_lists_created_streams():
    registry = RngRegistry(0)
    registry.stream("b")
    registry.stream("a")
    assert list(registry.names()) == ["a", "b"]
