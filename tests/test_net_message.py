"""Unit tests for message construction."""

from __future__ import annotations

from repro.net.message import Message


def test_message_ids_unique_and_increasing():
    a = Message("x", "y", "ping")
    b = Message("x", "y", "ping")
    assert b.msg_id > a.msg_id


def test_reply_swaps_endpoints():
    request = Message("client", "server", "request", {"k": 1})
    response = request.reply("response", {"ok": True})
    assert response.src == "server"
    assert response.dst == "client"
    assert response.mtype == "response"
    assert response.payload == {"ok": True}


def test_reply_default_payload_empty():
    m = Message("a", "b", "t")
    assert m.reply("r").payload == {}


def test_forwarded_preserves_type_and_payload():
    original = Message("client", "proxy", "client_request", {"body": {"op": "get"}})
    forwarded = original.forwarded("proxy", "server")
    assert forwarded.src == "proxy"
    assert forwarded.dst == "server"
    assert forwarded.mtype == original.mtype
    assert forwarded.payload == original.payload
    assert forwarded.msg_id != original.msg_id


def test_default_payload_is_empty_mapping():
    a = Message("x", "y", "t")
    assert a.payload == {}


def test_forwarded_and_reply_share_payload_mappings():
    """The hot relay paths must not copy payloads: proxies forward client
    requests verbatim, so the forwarded message adopts the same mapping
    (payloads are write-once by protocol convention)."""
    original = Message("client", "proxy", "client_request", {"body": {"op": "get"}})
    assert original.forwarded("proxy", "server").payload is original.payload
    reply_payload = {"ok": True}
    assert original.reply("response", reply_payload).payload is reply_payload
