"""Unit tests for connections — especially crash-observable closure,
the de-randomization attacker's feedback channel."""

from __future__ import annotations

import pytest

from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess


class Endpoint(SimProcess):
    """Records connection data and closures."""

    def __init__(self, sim, name):
        super().__init__(sim, name, respawn_delay=None)
        self.data: list = []
        self.closed: list = []

    def handle_connection_data(self, connection, payload) -> None:
        self.data.append(payload)

    def on_connection_closed(self, connection) -> None:
        self.closed.append(connection.conn_id)


def make_pair():
    sim = Simulator(seed=5)
    net = Network(sim, latency=FixedLatency(0.01))
    a, b = Endpoint(sim, "a"), Endpoint(sim, "b")
    net.register(a)
    net.register(b)
    return sim, net, a, b


def test_connect_and_send_both_ways():
    sim, net, a, b = make_pair()
    conn = net.connect("a", "b")
    assert conn is not None and conn.open
    conn.send("a", {"x": 1})
    conn.send("b", {"y": 2})
    sim.run()
    assert b.data == [{"x": 1}]
    assert a.data == [{"y": 2}]


def test_connect_refused_when_target_crashed():
    sim, net, a, b = make_pair()
    b.crash()
    assert net.connect("a", "b") is None


def test_connect_refused_across_partition():
    sim, net, a, b = make_pair()
    net.partition("a", "b")
    assert net.connect("a", "b") is None


def test_connect_refused_by_acl():
    sim, net, a, b = make_pair()
    b.allowed_connection_initiators = {"proxy-0"}
    assert net.connect("a", "b") is None


def test_crash_closes_connection_and_notifies_peer():
    """The attacker's observation channel: target crash -> peer notified."""
    sim, net, a, b = make_pair()
    conn = net.connect("a", "b")
    sim.run()
    b.crash()
    assert not conn.open
    sim.run()
    assert a.closed == [conn.conn_id]


def test_explicit_close_notifies_only_peer():
    sim, net, a, b = make_pair()
    conn = net.connect("a", "b")
    conn.close(closed_by="a")
    sim.run()
    assert b.closed == [conn.conn_id]
    assert a.closed == []


def test_send_on_closed_connection_lost():
    sim, net, a, b = make_pair()
    conn = net.connect("a", "b")
    conn.close(closed_by="a")
    assert conn.send("a", {"x": 1}) is False
    sim.run()
    assert b.data == []


def test_data_in_flight_when_closed_is_dropped():
    sim, net, a, b = make_pair()
    conn = net.connect("a", "b")
    conn.send("a", {"x": 1})
    conn.close(closed_by="a")  # closes before delivery latency elapses
    sim.run()
    assert b.data == []


def test_peer_of_validates_membership():
    sim, net, a, b = make_pair()
    conn = net.connect("a", "b")
    assert conn.peer_of("a") == "b"
    assert conn.peer_of("b") == "a"
    with pytest.raises(ValueError):
        conn.peer_of("c")


def test_sink_redirects_events():
    """Launch-pad modelling: connection events for one endpoint are
    routed to an attacker process instead of the named endpoint."""
    sim, net, a, b = make_pair()
    shell = Endpoint(sim, "shell")
    net.register(shell)
    conn = net.connect("a", "b")
    conn.attach_sink("a", shell)
    conn.send("b", {"reply": True})
    sim.run()
    assert shell.data == [{"reply": True}]
    assert a.data == []
    b.crash()
    sim.run()
    assert shell.closed == [conn.conn_id]
    assert a.closed == []


def test_sink_requires_membership():
    sim, net, a, b = make_pair()
    shell = Endpoint(sim, "shell")
    net.register(shell)
    conn = net.connect("a", "b")
    with pytest.raises(ValueError):
        conn.attach_sink("zz", shell)


def test_connections_of_tracks_open_connections():
    sim, net, a, b = make_pair()
    conn = net.connect("a", "b")
    assert conn in net.connections_of("a")
    conn.close(closed_by="a")
    assert conn not in net.connections_of("a")
