"""Tests for the fortified-SMR variant: FORTRESS over an SMR tier.

The paper's architecture (§3) explicitly allows *any* replication behind
the proxies ("if replicated, it can be by PB or SMR"); the evaluation
only exercises the PB tier.  These tests deploy FORTRESS over a
4-replica SMR tier and verify the whole pipeline: proxy f+1 response
voting, over-signing, fortification ACLs, the tier's intrusion
tolerance, and the generalized compromise predicate.
"""

from __future__ import annotations

import pytest

from repro.core.builders import add_clients, attach_attacker, build_system
from repro.core.specs import s2
from repro.errors import ConfigurationError
from repro.randomization.obfuscation import Scheme
from repro.replication.smr import SMRReplica


def build_fortified_smr(seed=61, alpha=1e-4, **kwargs):
    spec = s2(Scheme.PO, alpha=alpha, kappa=0.5, entropy_bits=8, n_servers=4)
    return build_system(spec, seed=seed, s2_server_tier="smr", **kwargs)


def test_tier_shape_and_diverse_randomization():
    deployed = build_fortified_smr()
    assert len(deployed.servers) == 4
    assert all(isinstance(s, SMRReplica) for s in deployed.servers)
    keys = {s.address_space.key for s in deployed.servers}
    assert len(keys) == 4  # diverse, unlike the PB tier
    # Proxies vote f+1 before over-signing.
    assert all(p.server_replication == "smr" for p in deployed.proxies)
    assert all(p.fault_threshold == 1 for p in deployed.proxies)
    assert deployed.nameserver.directory.replication == "smr"
    assert deployed.nameserver.directory.fault_threshold == 1


def test_needs_enough_replicas():
    spec = s2(Scheme.PO, alpha=1e-4, entropy_bits=8)  # n_servers = 3
    with pytest.raises(ConfigurationError):
        build_system(spec, s2_server_tier="smr")


def test_unknown_tier_rejected():
    spec = s2(Scheme.PO, alpha=1e-4, entropy_bits=8)
    with pytest.raises(ConfigurationError):
        build_system(spec, s2_server_tier="chain-replication")


def test_end_to_end_service_through_proxies():
    deployed = build_fortified_smr()
    clients = add_clients(deployed, 1)
    deployed.start()
    deployed.sim.run(until=10.0)
    assert clients[0].responses_ok > 30
    assert clients[0].failures == 0
    digests = {s.service.digest() for s in deployed.servers}
    assert len(digests) == 1


def test_fortification_acls_protect_replicas():
    deployed = build_fortified_smr()
    attacker = attach_attacker(deployed)
    assert deployed.network.connect(attacker.name, "replica-0") is None
    # And the launch pad is not armed against a diverse SMR tier.
    assert attacker._launchpad_servers == []


def test_one_compromised_replica_is_masked():
    """The fortified SMR tier tolerates f=1 intrusions: the system is
    not compromised and clients never accept the corrupted response."""
    deployed = build_fortified_smr()
    clients = add_clients(deployed, 1)
    deployed.start()
    deployed.sim.run(until=2.0)
    deployed.servers[1].mark_compromised()
    deployed.sim.run(until=3.0)  # within one epoch of the compromise
    assert not deployed.monitor.is_compromised
    deployed.sim.run(until=8.0)
    assert clients[0].responses_corrupted == 0
    assert clients[0].responses_ok > 20


def test_two_compromised_replicas_break_the_system():
    deployed = build_fortified_smr()
    deployed.start()
    deployed.sim.run(until=1.2)
    deployed.servers[0].mark_compromised()
    deployed.servers[2].mark_compromised()
    assert deployed.monitor.is_compromised
    assert "2 fortified SMR replicas" in deployed.monitor.cause


def test_probe_request_through_proxies_hits_all_replicas():
    """An indirect probe is ordered and executed by every replica; with
    diverse keys it crashes the non-matching ones only."""
    deployed = build_fortified_smr(stop_on_compromise=False)
    from repro.net.message import Message
    from repro.proxy.proxy import CLIENT_REQUEST
    from repro.replication.primary_backup import PROBE_OP

    deployed.start()
    target = deployed.servers[2]
    guess = target.address_space.key
    others = [s for s in deployed.servers if s is not target]
    assert all(s.address_space.key != guess for s in others)
    attacker_like = add_clients(deployed, 1)[0]  # any registered sender works
    deployed.network.send(
        Message(
            attacker_like.name,
            "proxy-0",
            CLIENT_REQUEST,
            {
                "request_id": "probe-x",
                "client": attacker_like.name,
                "body": {"op": PROBE_OP, "guess": guess},
            },
        )
    )
    # Check before the first PO epoch (t=1.0) would cleanse the flag.
    deployed.sim.run(until=0.5)
    assert target.compromised
    assert all(s.crash_count >= 1 for s in others)
    # One intrusion < f+1: the system survives.
    assert not deployed.monitor.is_compromised
    deployed.sim.run(until=1.5)
    assert not target.compromised  # re-randomization cleansed it
