"""Fault-tolerant campaign supervision: the chaos property battery.

The acceptance contract of ``repro.supervision``:

* under every *recoverable* seeded fault pattern (crash, hang→timeout,
  transient-then-success), a supervised campaign's estimates are
  **bit-identical** to the fault-free run — retries replay exact
  per-task seeds, so recovery is invisible in the results;
* persistent poison ends in quarantine: a typed ``TaskFailure`` in the
  failure manifest, never a silent gap (and never a crashed campaign);
* an interrupted campaign flushes completed work to its journal and a
  ``resume`` run dispatches **zero** already-journaled tasks (asserted
  with a poisoned runner, like the result-cache battery).
"""

from __future__ import annotations

import json
import os
import signal
import time
import warnings
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.core.campaign as campaign_module
from repro.cache import ResultCache
from repro.core.campaign import (
    CampaignInterrupted,
    campaign_grid,
    campaign_record,
    run_campaign,
)
from repro.core.specs import SystemClass
from repro.errors import ConfigurationError
from repro.mc.executor import (
    ExecutorBackend,
    LocalPoolBackend,
    SerialBackend,
    derive_point_seed,
)
from repro.reporting.tables import render_failure_manifest
from repro.supervision import (
    CampaignJournal,
    ChaosBackend,
    ChaosCrash,
    ChaosSpec,
    Quarantined,
    SupervisedBackend,
    SupervisionPolicy,
    TaskFailure,
    deliver_sigterm_as_interrupt,
    retry_delay,
)

ROOT_SEED = 11
TRIALS = 4
MAX_STEPS = 30

#: Fast-retry policy for tests (no real backoff sleeps to speak of).
FAST = dict(backoff_base=1e-4, backoff_cap=1e-3, poll_interval=0.005)


@pytest.fixture(scope="module")
def grid():
    return campaign_grid(systems=[SystemClass.S0])


@pytest.fixture(scope="module")
def clean_result(grid):
    return run_campaign(
        grid, trials=TRIALS, max_steps=MAX_STEPS, seed=ROOT_SEED, workers=1
    )


def _task_seeds(grid) -> list[int]:
    """First seed of each dispatched task (one batch per point here)."""
    return [derive_point_seed(ROOT_SEED, i, 0) for i in range(len(grid))]


def _chaos_seed_for(grid, kind: str, *, all_tasks: bool = False, **kwargs) -> int:
    """A chaos seed whose pattern afflicts ≥1 (not all) tasks with ``kind``."""
    seeds = _task_seeds(grid)
    for chaos_seed in range(500):
        spec = ChaosSpec(seed=chaos_seed, **kwargs)
        hits = sum(1 for s in seeds if spec.fault_for(s) == kind)
        if all_tasks and hits == len(seeds):
            return chaos_seed
        if not all_tasks and 0 < hits < len(seeds):
            return chaos_seed
    raise AssertionError(f"no chaos seed afflicts the grid with {kind}")


def _outcomes(result):
    return [estimate.outcomes for estimate in result.estimates]


def _supervised(grid, chaos: ChaosSpec, policy: SupervisionPolicy):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return run_campaign(
            grid,
            trials=TRIALS,
            max_steps=MAX_STEPS,
            seed=ROOT_SEED,
            workers=1,
            chaos=chaos,
            supervision=policy,
        )


# ----------------------------------------------------------------------
# Policy unit tests
# ----------------------------------------------------------------------
def test_retry_delay_is_deterministic_and_jittered():
    policy = SupervisionPolicy(backoff_base=0.1, backoff_cap=1.0, backoff_jitter=0.25)
    d1 = retry_delay(policy, 1, task_seed=42)
    assert d1 == retry_delay(policy, 1, task_seed=42)
    assert 0.075 <= d1 <= 0.125  # base * [1 - j, 1 + j]
    d3 = retry_delay(policy, 3, task_seed=42)
    assert 0.3 <= d3 <= 0.5  # base * 4, jittered
    assert retry_delay(policy, 1, task_seed=43) != d1  # seed-derived jitter


def test_retry_delay_caps_and_zero_jitter():
    policy = SupervisionPolicy(backoff_base=0.5, backoff_cap=1.0, backoff_jitter=0.0)
    assert retry_delay(policy, 10, task_seed=0) == 1.0


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        SupervisionPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        SupervisionPolicy(task_timeout=0.0)
    with pytest.raises(ConfigurationError):
        SupervisionPolicy(backoff_jitter=1.0)
    with pytest.raises(ConfigurationError):
        SupervisionPolicy(backoff_base=2.0, backoff_cap=1.0)


def test_chaos_spec_parse_and_validation():
    spec = ChaosSpec.parse("seed=7,crash=0.2,hang=0.1,transient_attempts=2")
    assert spec == ChaosSpec(seed=7, crash=0.2, hang=0.1, transient_attempts=2)
    with pytest.raises(ConfigurationError):
        ChaosSpec.parse("seed=7,meteor=0.5")
    with pytest.raises(ConfigurationError):
        ChaosSpec.parse("crash=lots")
    with pytest.raises(ConfigurationError):
        ChaosSpec(crash=0.7, poison=0.6)  # probabilities sum > 1


def test_chaos_fault_partition_is_seed_deterministic():
    spec = ChaosSpec(seed=3, crash=0.3, transient=0.3, poison=0.2)
    kinds = [spec.fault_for(s) for s in range(200)]
    assert kinds == [spec.fault_for(s) for s in range(200)]
    assert ChaosSpec(seed=3, crash=1.0).fault_for(123) == "crash"
    assert ChaosSpec(seed=3).fault_for(123) is None


# ----------------------------------------------------------------------
# SupervisedBackend unit tests (scripted inners)
# ----------------------------------------------------------------------
class ScriptedAsyncInner(ExecutorBackend):
    """Async-capable inner whose behavior per (task, attempt) is scripted.

    ``script[task]`` is a list of behaviors, one per attempt:
    ``"ok"`` | ``"err"`` | ``"hang"`` | ``"transport"`` (last repeats).
    """

    supports_submit = True

    def __init__(self, script):
        self.script = script
        self.attempts: dict = {}
        self.recycled = 0

    def submit(self, fn, task):
        k = self.attempts.get(task, 0)
        self.attempts[task] = k + 1
        plan = self.script[task]
        behavior = plan[min(k, len(plan) - 1)]
        future: Future = Future()
        if behavior == "ok":
            future.set_result(fn(task))
        elif behavior == "err":
            future.set_exception(ValueError(f"scripted failure for {task}"))
        elif behavior == "transport":
            future.set_exception(BrokenProcessPool("scripted transport death"))
        # "hang": never resolves
        return future

    def recycle(self):
        self.recycled += 1


def _double(x):
    return 2 * x


def test_supervised_sync_retries_then_succeeds():
    failures = {"left": 2}

    def flaky(task):
        if failures.get(task, 0) > 0:
            failures[task] -= 1
            raise ValueError("transient")
        return task.upper()

    backend = SupervisedBackend(SerialBackend(), SupervisionPolicy(**FAST))
    assert backend.map(flaky, ["left", "right"]) == ["LEFT", "RIGHT"]
    assert backend.manifest.retries == 2
    assert backend.manifest.quarantined == 0


def test_supervised_sync_quarantines_poison_in_place():
    def poisoned(task):
        if task == "bad":
            raise ValueError("permanently broken")
        return task

    backend = SupervisedBackend(
        SerialBackend(), SupervisionPolicy(max_attempts=2, **FAST)
    )
    with pytest.warns(RuntimeWarning, match="quarantined after 2 attempts"):
        results = backend.map(poisoned, ["ok", "bad", "also ok"])
    assert results[0] == "ok" and results[2] == "also ok"
    assert isinstance(results[1], Quarantined)
    failure = results[1].failure
    assert isinstance(failure, TaskFailure)
    assert failure.index == 1 and failure.kind == "error"
    assert backend.manifest.failures == [failure]


def test_supervised_sync_warns_that_timeouts_cannot_apply():
    backend = SupervisedBackend(
        SerialBackend(), SupervisionPolicy(task_timeout=1.0, **FAST)
    )
    with pytest.warns(RuntimeWarning, match="task_timeout cannot interrupt"):
        assert backend.map(_double, [3]) == [6]


def test_supervised_async_timeout_then_recovery():
    inner = ScriptedAsyncInner({4: ["hang", "ok"], 5: ["ok"]})
    backend = SupervisedBackend(
        inner, SupervisionPolicy(task_timeout=0.05, **FAST)
    )
    assert backend.map(_double, [4, 5]) == [8, 10]
    assert backend.manifest.timeouts == 1
    assert backend.manifest.retries == 1


def test_supervised_async_persistent_hang_quarantines_as_timeout():
    inner = ScriptedAsyncInner({7: ["hang", "hang"], 8: ["ok"]})
    backend = SupervisedBackend(
        inner, SupervisionPolicy(max_attempts=2, task_timeout=0.05, **FAST)
    )
    with pytest.warns(RuntimeWarning, match="quarantined"):
        results = backend.map(_double, [7, 8])
    assert results[1] == 16
    assert isinstance(results[0], Quarantined)
    assert results[0].failure.kind == "timeout"
    assert backend.manifest.timeouts == 2


def test_supervised_transport_exhaustion_drains_in_process(caplog):
    inner = ScriptedAsyncInner({1: ["transport"], 2: ["transport"]})
    backend = SupervisedBackend(
        inner, SupervisionPolicy(transport_strikes=1, **FAST)
    )
    with caplog.at_level("WARNING", logger="repro.supervision.backend"):
        assert backend.map(_double, [1, 2]) == [2, 4]
    messages = [record.getMessage() for record in caplog.records]
    assert any("in-process" in m for m in messages)
    assert any("recycled" in m for m in messages)
    assert backend.manifest.transport_failures >= 2
    assert backend.manifest.degradations == 1
    assert inner.recycled >= 2


# ----------------------------------------------------------------------
# Degradation ladder (full pool → reduced pool → serial)
# ----------------------------------------------------------------------
class LadderPool:
    """Fake pool completing ``complete_first`` tasks, then breaking."""

    def __init__(self, max_workers, complete_first):
        self.max_workers = max_workers
        self.complete_first = complete_first
        self.submitted = 0

    def submit(self, fn, task):
        future: Future = Future()
        if self.submitted < self.complete_first:
            future.set_result(fn(task))
        else:
            future.set_exception(BrokenProcessPool("worker died"))
        self.submitted += 1
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_pool_breakage_descends_the_ladder_not_straight_to_serial(monkeypatch):
    created = []

    def factory(max_workers=None):
        # First pool (full width) breaks after one task; the reduced
        # pool finishes the round.
        pool = LadderPool(max_workers, 1 if not created else 999)
        created.append(pool)
        return pool

    monkeypatch.setattr("repro.mc.executor.ProcessPoolExecutor", factory)
    backend = LocalPoolBackend(4)
    with pytest.warns(RuntimeWarning, match=r"reduced pool \(2 workers\)"):
        assert backend.map(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
    assert [pool.max_workers for pool in created] == [4, 2]


def test_ladder_resets_per_round(monkeypatch):
    created = []

    def factory(max_workers=None):
        pool = LadderPool(max_workers, 999)
        created.append(pool)
        return pool

    monkeypatch.setattr("repro.mc.executor.ProcessPoolExecutor", factory)
    backend = LocalPoolBackend(4)
    assert backend.map(_double, [1, 2]) == [2, 4]
    assert backend.map(_double, [3, 4]) == [6, 8]
    # Healthy rounds: full width both times, no leftover degradation.
    assert [pool.max_workers for pool in created] == [4, 4]


# ----------------------------------------------------------------------
# ChaosBackend
# ----------------------------------------------------------------------
def test_chaos_backend_unsupervised_surfaces_crashes():
    backend = ChaosBackend(ChaosSpec(seed=1, crash=1.0))
    with pytest.raises(ChaosCrash):
        backend.map(_double, [10])


def test_chaos_backend_refuses_hangs_without_supervision():
    backend = ChaosBackend(ChaosSpec(seed=1, hang=0.5))
    with pytest.raises(ConfigurationError, match="SupervisedBackend"):
        backend.map(_double, [10])


class SeededTask:
    """Minimal stand-in for ProtocolTask: chaos keys faults off ``seed``."""

    def __init__(self, seed):
        self.seed = seed


def _double_seed(task):
    return 2 * task.seed


def test_chaos_crash_recovers_under_supervision():
    backend = SupervisedBackend(
        ChaosBackend(ChaosSpec(seed=1, crash=1.0, transient_attempts=1)),
        SupervisionPolicy(**FAST),
    )
    tasks = [SeededTask(10), SeededTask(11)]
    assert backend.map(_double_seed, tasks) == [20, 22]
    assert backend.manifest.retries == 2  # one injected crash per task


# ----------------------------------------------------------------------
# The chaos property battery: supervised campaigns fold to the
# fault-free estimates under every recoverable fault pattern.
# ----------------------------------------------------------------------
def test_battery_crash_pattern_is_bit_identical(grid, clean_result):
    chaos_seed = _chaos_seed_for(grid, "crash", all_tasks=True, crash=1.0)
    result = _supervised(
        grid,
        ChaosSpec(seed=chaos_seed, crash=1.0, transient_attempts=1),
        SupervisionPolicy(**FAST),
    )
    assert _outcomes(result) == _outcomes(clean_result)
    assert result.retries >= len(grid)
    assert result.quarantined == 0 and not result.failures


def test_battery_hang_pattern_times_out_and_recovers(grid, clean_result):
    chaos_seed = _chaos_seed_for(grid, "hang", hang=0.6)
    result = _supervised(
        grid,
        ChaosSpec(seed=chaos_seed, hang=0.6),
        SupervisionPolicy(task_timeout=0.1, **FAST),
    )
    assert _outcomes(result) == _outcomes(clean_result)
    assert result.timeouts >= 1
    assert result.quarantined == 0


def test_battery_transient_then_success_is_bit_identical(grid, clean_result):
    chaos_seed = _chaos_seed_for(grid, "transient", transient=0.6)
    result = _supervised(
        grid,
        ChaosSpec(seed=chaos_seed, transient=0.6, transient_attempts=2),
        SupervisionPolicy(max_attempts=4, **FAST),
    )
    assert _outcomes(result) == _outcomes(clean_result)
    assert result.retries >= 2  # two ruined attempts on the afflicted task


def test_battery_persistent_poison_quarantines_not_crashes(grid, clean_result):
    chaos_seed = _chaos_seed_for(grid, "poison", poison=0.5)
    result = _supervised(
        grid,
        ChaosSpec(seed=chaos_seed, poison=0.5),
        SupervisionPolicy(max_attempts=2, **FAST),
    )
    # Never a silent gap: the lost grid point is manifested...
    assert result.quarantined >= 1
    assert all(f.kind == "error" for f in result.failures)
    assert all(f.seeds for f in result.failures)
    # ...and the surviving points still fold to the clean estimates.
    clean_by_spec = {
        estimate.spec: estimate.outcomes for estimate in clean_result.estimates
    }
    assert 0 < len(result.estimates) < len(grid)
    for estimate in result.estimates:
        assert estimate.outcomes == clean_by_spec[estimate.spec]
    # The record carries the supervision tally.
    record = campaign_record(result)
    assert record["supervision"]["quarantined"] == result.quarantined
    assert record["supervision"]["failures"][0]["kind"] == "error"


def test_battery_supervised_run_matches_clean_under_multiprocess(grid, clean_result):
    """Supervision over a real process pool keeps the bit-identity."""
    chaos_seed = _chaos_seed_for(grid, "transient", transient=0.6)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = run_campaign(
            grid,
            trials=TRIALS,
            max_steps=MAX_STEPS,
            seed=ROOT_SEED,
            workers=2,
            chaos=ChaosSpec(seed=chaos_seed, transient=0.6, transient_attempts=1),
            supervision=SupervisionPolicy(**FAST),
        )
    assert _outcomes(result) == _outcomes(clean_result)


# ----------------------------------------------------------------------
# Journal + interrupt + resume
# ----------------------------------------------------------------------
def test_journal_roundtrip_and_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = CampaignJournal(path, meta={"root_seed": 9})
    assert journal.open() == {}
    journal.append("k1", [1, 2])
    journal.append("k2", [3])
    journal.close()
    # Simulate a crash mid-append: torn final line.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "k3", "payl')
    meta, entries = CampaignJournal.load(path)
    assert meta == {"root_seed": 9}
    assert entries == {"k1": [1, 2], "k2": [3]}
    # Reopening compacts the torn tail away and keeps the entries.
    assert CampaignJournal(path, meta={"root_seed": 9}).open() == {
        "k1": [1, 2],
        "k2": [3],
    }
    assert '"k3"' not in path.read_text()


def test_journal_load_missing_file_is_empty(tmp_path):
    meta, entries = CampaignJournal.load(tmp_path / "absent.jsonl")
    assert meta == {} and entries == {}


def test_sigterm_is_delivered_as_keyboard_interrupt():
    with deliver_sigterm_as_interrupt():
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(1.0)  # interrupted by the handler


def test_interrupt_flushes_journal_and_resume_dispatches_rest(
    grid, clean_result, tmp_path, monkeypatch
):
    journal_path = tmp_path / "campaign.jsonl"
    real_runner = campaign_module.run_protocol_task
    calls: list = []

    def interrupting(task):
        if calls:
            raise KeyboardInterrupt  # the operator hits Ctrl-C mid-campaign
        calls.append(task)
        return real_runner(task)

    monkeypatch.setattr(campaign_module, "run_protocol_task", interrupting)
    with pytest.raises(CampaignInterrupted) as excinfo:
        run_campaign(
            grid,
            trials=TRIALS,
            max_steps=MAX_STEPS,
            seed=ROOT_SEED,
            workers=1,
            journal_path=journal_path,
        )
    partial = excinfo.value.partial
    assert len(partial.estimates) == 1  # the completed point, flushed
    assert partial.estimates[0].outcomes == clean_result.estimates[0].outcomes

    # Resume: only the never-finished task dispatches.
    resumed_calls: list = []

    def counting(task):
        resumed_calls.append(task)
        return real_runner(task)

    monkeypatch.setattr(campaign_module, "run_protocol_task", counting)
    resumed = run_campaign(
        grid,
        trials=TRIALS,
        max_steps=MAX_STEPS,
        seed=ROOT_SEED,
        workers=1,
        journal_path=journal_path,
        resume=True,
    )
    assert len(resumed_calls) == 1
    assert _outcomes(resumed) == _outcomes(clean_result)


def test_resume_of_complete_journal_dispatches_nothing(
    grid, clean_result, tmp_path, monkeypatch
):
    journal_path = tmp_path / "campaign.jsonl"
    first = run_campaign(
        grid,
        trials=TRIALS,
        max_steps=MAX_STEPS,
        seed=ROOT_SEED,
        workers=1,
        journal_path=journal_path,
    )

    def poisoned(task):
        raise AssertionError("resume must not dispatch journaled work")

    monkeypatch.setattr(campaign_module, "run_protocol_task", poisoned)
    resumed = run_campaign(
        grid,
        trials=TRIALS,
        max_steps=MAX_STEPS,
        seed=ROOT_SEED,
        workers=1,
        journal_path=journal_path,
        resume=True,
    )
    assert _outcomes(resumed) == _outcomes(first) == _outcomes(clean_result)


def test_without_resume_the_journal_is_restarted(grid, tmp_path, monkeypatch):
    journal_path = tmp_path / "campaign.jsonl"
    run_campaign(
        grid,
        trials=TRIALS,
        max_steps=MAX_STEPS,
        seed=ROOT_SEED,
        workers=1,
        journal_path=journal_path,
    )
    dispatched: list = []
    real_runner = campaign_module.run_protocol_task

    def counting(task):
        dispatched.append(task)
        return real_runner(task)

    monkeypatch.setattr(campaign_module, "run_protocol_task", counting)
    run_campaign(
        grid,
        trials=TRIALS,
        max_steps=MAX_STEPS,
        seed=ROOT_SEED,
        workers=1,
        journal_path=journal_path,
    )
    assert len(dispatched) == len(grid)  # everything re-ran


def test_journal_ignores_entries_from_a_different_campaign(grid, tmp_path, monkeypatch):
    journal_path = tmp_path / "campaign.jsonl"
    run_campaign(
        grid,
        trials=TRIALS,
        max_steps=MAX_STEPS,
        seed=ROOT_SEED,
        workers=1,
        journal_path=journal_path,
    )
    dispatched: list = []
    real_runner = campaign_module.run_protocol_task

    def counting(task):
        dispatched.append(task)
        return real_runner(task)

    monkeypatch.setattr(campaign_module, "run_protocol_task", counting)
    # Same journal, different root seed: keys cannot match, so resume
    # re-runs everything instead of serving stale outcomes.
    run_campaign(
        grid,
        trials=TRIALS,
        max_steps=MAX_STEPS,
        seed=ROOT_SEED + 1,
        workers=1,
        journal_path=journal_path,
        resume=True,
    )
    assert len(dispatched) == len(grid)


def test_quarantined_blocks_never_reach_the_result_cache(grid, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    chaos_seed = _chaos_seed_for(grid, "poison", poison=0.5)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        poisoned = run_campaign(
            grid,
            trials=TRIALS,
            max_steps=MAX_STEPS,
            seed=ROOT_SEED,
            workers=1,
            cache=cache,
            chaos=ChaosSpec(seed=chaos_seed, poison=0.5),
            supervision=SupervisionPolicy(max_attempts=2, **FAST),
        )
    assert poisoned.quarantined >= 1
    # Only the surviving grid points were stored; a clean re-run against
    # the same cache recomputes exactly the quarantined points.
    clean = run_campaign(
        grid,
        trials=TRIALS,
        max_steps=MAX_STEPS,
        seed=ROOT_SEED,
        workers=1,
        cache=cache,
    )
    assert clean.cache_hits == len(poisoned.estimates)
    assert clean.cache_misses == len(grid) - len(poisoned.estimates)


# ----------------------------------------------------------------------
# Cache store dedupe + info/prune (satellites)
# ----------------------------------------------------------------------
def test_cache_store_warns_once_and_counts_the_rest(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path / "cache")

    def refuse(path, text):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr("repro.cache.store.atomic_write_text", refuse)
    with pytest.warns(RuntimeWarning, match="cache write failed") as caught:
        cache.store(cache.key_for({"n": 1}), {"v": 1})
        cache.store(cache.key_for({"n": 2}), {"v": 2})
        cache.store(cache.key_for({"n": 3}), {"v": 3})
    assert len(caught) == 1  # deduped to one warning per instance
    assert cache.store_failures == 3
    assert cache.stats == {"hits": 0, "misses": 0, "store_failures": 3}


def test_cache_info_and_prune(tmp_path):
    root = tmp_path / "cache"
    current = ResultCache(root)
    current.store(current.key_for({"n": 1}), {"v": 1})
    stale = ResultCache(root, version=current.version - 1)
    stale.store(stale.key_for({"n": 2}), {"v": 2})
    info = current.info()
    assert info["entries"] == 2
    assert info["bytes"] > 0
    assert info["by_version"] == {
        str(current.version): 1,
        str(stale.version): 1,
    }
    pruned = current.prune()
    assert pruned["removed"] == 1 and pruned["bytes"] > 0
    assert current.info()["by_version"] == {str(current.version): 1}
    # The surviving entry still hits.
    assert current.lookup(current.key_for({"n": 1})) == {"v": 1}


def test_cache_prune_removes_corrupt_entries(tmp_path):
    root = tmp_path / "cache"
    cache = ResultCache(root)
    cache.store(cache.key_for({"n": 1}), {"v": 1})
    bad = root / "zz" / "zz-corrupt.json"
    bad.parent.mkdir(parents=True)
    bad.write_text("{not json", encoding="utf-8")
    assert cache.info()["by_version"]["corrupt"] == 1
    assert cache.prune()["removed"] == 1
    assert not bad.exists()


# ----------------------------------------------------------------------
# Reporting + CLI
# ----------------------------------------------------------------------
def test_render_failure_manifest_table():
    failures = [
        TaskFailure(
            index=3,
            label="S2PO a=0.1",
            seeds=(10, 11, 12, 13),
            attempts=3,
            kind="timeout",
            error="TimeoutError: no result within 5s",
        )
    ]
    table = render_failure_manifest(failures)
    assert "S2PO a=0.1" in table and "timeout" in table
    assert "(4 total)" in table  # long seed lists elide


def _cli(argv):
    from repro.cli import main

    return main(argv)


def test_cli_cache_info_and_prune(tmp_path, capsys):
    root = tmp_path / "cli-cache"
    current = ResultCache(root)
    current.store(current.key_for({"n": 1}), {"v": 1})
    ResultCache(root, version=current.version - 1).store("0" * 64, {"v": 2})
    assert _cli(["cache", "info", "--cache-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "(stale)" in out
    assert _cli(["cache", "prune", "--cache-dir", str(root)]) == 0
    assert "pruned 1 stale entries" in capsys.readouterr().out
    assert current.info()["entries"] == 1


def test_cli_resume_requires_journal(capsys):
    code = _cli(
        ["protocol-sweep", "--systems", "s0", "--trials", "2", "--resume"]
    )
    assert code == 2
    assert "--resume needs --journal" in capsys.readouterr().err


def test_cli_supervised_chaos_sweep_with_manifest(tmp_path, capsys):
    manifest_path = tmp_path / "failures.json"
    code = _cli(
        [
            "protocol-sweep",
            "--systems",
            "s0",
            "--schemes",
            "po",
            "--trials",
            "2",
            "--max-steps",
            "20",
            "--no-cache",
            "--chaos",
            "seed=1,crash=1.0",
            "--failure-manifest",
            str(manifest_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "supervision:" in out
    manifest = json.loads(manifest_path.read_text())
    assert manifest["retries"] >= 1 and manifest["quarantined"] == 0


def test_cli_journal_resume_dispatches_nothing(tmp_path, monkeypatch, capsys):
    journal_path = tmp_path / "sweep.jsonl"
    common = [
        "protocol-sweep",
        "--systems",
        "s0",
        "--schemes",
        "po",
        "--trials",
        "2",
        "--max-steps",
        "20",
        "--no-cache",
        "--journal",
        str(journal_path),
    ]
    assert _cli(common) == 0

    def poisoned(task):
        raise AssertionError("CLI --resume must not dispatch journaled work")

    monkeypatch.setattr(campaign_module, "run_protocol_task", poisoned)
    assert _cli([*common, "--resume"]) == 0
    capsys.readouterr()
