"""Tests for the numeric S2SO survival quadrature."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.s2so import el_s2_so_numeric, s2_so_survival
from repro.core.specs import s2
from repro.errors import AnalysisError
from repro.mc.montecarlo import mc_expected_lifetime, mc_survival_curve
from repro.randomization.obfuscation import Scheme


def test_survival_is_a_decreasing_probability_curve():
    curve = s2_so_survival(0.02, 0.5, steps=120)
    assert curve.max() <= 1.0 + 1e-12
    assert curve.min() >= 0.0
    assert (np.diff(curve) <= 1e-12).all()


def test_survival_hits_zero_by_double_exhaustion():
    alpha = 0.05
    curve = s2_so_survival(alpha, 0.0, steps=2 * int(1 / alpha) + 2)
    assert curve[-1] == pytest.approx(0.0, abs=1e-12)


@pytest.mark.parametrize(
    "alpha,kappa",
    [(0.01, 0.5), (0.01, 0.0), (0.01, 1.0), (0.05, 0.25), (0.002, 0.75)],
)
def test_numeric_el_matches_monte_carlo(alpha, kappa):
    numeric = el_s2_so_numeric(alpha, kappa)
    mc = mc_expected_lifetime(
        s2(Scheme.SO, alpha=alpha, kappa=kappa), trials=60_000, seed=9
    )
    # The continuum p(t) = t*alpha approximation differs from the
    # integer-grid sampler by O(1/chi) per step; 4 sigma + 1% slack.
    slack = 4 * mc.stats.ci_halfwidth + 0.01 * mc.mean
    assert abs(numeric - mc.mean) <= slack


def test_numeric_survival_matches_empirical():
    spec = s2(Scheme.SO, alpha=0.05, kappa=0.5)
    numeric = s2_so_survival(0.05, 0.5, steps=15)
    empirical = mc_survival_curve(spec, steps=15, trials=60_000, seed=10)
    assert np.abs(numeric - empirical).max() < 0.02


def test_monotone_in_kappa():
    els = [el_s2_so_numeric(0.01, k) for k in (0.0, 0.25, 0.5, 1.0)]
    assert els == sorted(els, reverse=True)


def test_more_proxies_shifts_all_proxy_route():
    """With more proxies, the all-proxies absorption needs more key
    discoveries, so (at kappa=0, where it matters) EL grows."""
    els = [el_s2_so_numeric(0.02, 0.0, n_proxies=n) for n in (1, 2, 3, 4)]
    assert els == sorted(els)


def test_s2so_sits_between_s1so_and_s1po_at_midrange():
    """Sanity anchor used in EXPERIMENTS.md: at alpha=1e-3, kappa=0.5,
    S2SO (~455) lies between S1SO (499.5 is *above* it — the proxies'
    SO tier loses to the plain PB SO tier once launch pads persist)."""
    el = el_s2_so_numeric(1e-3, 0.5)
    assert 400 < el < 500


def test_validation():
    with pytest.raises(AnalysisError):
        el_s2_so_numeric(0.0, 0.5)
    with pytest.raises(AnalysisError):
        el_s2_so_numeric(0.01, 1.5)
    with pytest.raises(AnalysisError):
        s2_so_survival(0.01, 0.5, steps=0)
    with pytest.raises(AnalysisError):
        el_s2_so_numeric(1e-5, 0.5)  # O((1/alpha)^2) guard
