"""Fault injection and proxy detection under non-default TimingSpecs.

The timing layer makes the forking daemon's respawn delay and the
proxies' detection lag deployment knobs; these tests earn the claims
that (a) fault plans interact correctly with a slow daemon and (b) the
detection pipeline observes invalid requests only after the configured
lag.
"""

from __future__ import annotations

from repro.core.builders import build_system
from repro.core.specs import s1, s2
from repro.core.timing import TimingSpec
from repro.faults.injector import CrashFault, FaultInjector
from repro.net.message import Message
from repro.proxy.detection import DetectionPolicy
from repro.proxy.proxy import CLIENT_REQUEST
from repro.randomization.obfuscation import Scheme
from repro.sim.process import ProcessState, SimProcess


SLOW_RESPAWN = TimingSpec(respawn_delay=0.5, reconnect_latency=0.001)


def _probe_request(client: str, request_id: str) -> dict:
    return {
        "request_id": request_id,
        "client": client,
        "body": {"op": "__probe__", "guess": -2},
    }


def _build_s2(detection_lag: float, policy: DetectionPolicy | None = None):
    """A fortress deployment with a client registered; the epoch
    schedule stays unstarted so refreshes cannot wipe pending tables
    mid-observation."""
    timing = TimingSpec(detection_lag=detection_lag)
    spec = s2(Scheme.PO, alpha=0.1, kappa=0.5, entropy_bits=8)
    deployed = build_system(spec, seed=7, timing=timing, detection_policy=policy)
    client = SimProcess(deployed.sim, "client-x", respawn_delay=None)
    deployed.network.register(client)
    return deployed


# ----------------------------------------------------------------------
# Fault injection with a slow forking daemon
# ----------------------------------------------------------------------
def test_crash_fault_respects_slow_respawn_delay():
    spec = s1(Scheme.PO, alpha=0.1, entropy_bits=8)
    deployed = build_system(spec, seed=3, timing=SLOW_RESPAWN)
    backup = deployed.servers[1]
    assert backup.respawn_delay == 0.5
    injector = FaultInjector(deployed.sim, deployed.network)
    injector.schedule(CrashFault(time=0.3, target=backup.name))
    deployed.sim.run(until=0.29)
    assert backup.state is ProcessState.RUNNING
    deployed.sim.run(until=0.6)
    assert backup.state is ProcessState.CRASHED  # daemon still sleeping
    deployed.sim.run(until=0.85)
    assert backup.state is ProcessState.RUNNING
    assert backup.respawn_count == 1


def test_outage_restores_slow_daemon_configuration():
    spec = s1(Scheme.PO, alpha=0.1, entropy_bits=8)
    deployed = build_system(spec, seed=4, timing=SLOW_RESPAWN)
    backup = deployed.servers[2]
    injector = FaultInjector(deployed.sim, deployed.network)
    injector.schedule(CrashFault(time=0.2, target=backup.name, down_for=1.0))
    deployed.sim.run(until=0.9)
    # inside the outage the daemon is suppressed entirely
    assert backup.state is ProcessState.CRASHED
    assert backup.respawn_delay is None
    deployed.sim.run(until=1.3)
    assert backup.state is ProcessState.RUNNING
    # the TimingSpec's delay is restored for later crashes
    assert backup.respawn_delay == 0.5


def test_crash_fault_on_proxy_with_slow_daemon_drops_client_requests():
    timing = TimingSpec(respawn_delay=0.4)
    spec = s2(Scheme.PO, alpha=0.1, kappa=0.5, entropy_bits=8)
    deployed = build_system(spec, seed=5, timing=timing)
    client = SimProcess(deployed.sim, "client-x", respawn_delay=None)
    deployed.network.register(client)
    proxy = deployed.proxies[0]
    injector = FaultInjector(deployed.sim, deployed.network)
    injector.schedule(CrashFault(time=0.1, target=proxy.name))
    deployed.sim.run(until=0.2)  # proxy mid-respawn until 0.5
    deployed.network.send(
        Message(
            "client-x",
            proxy.name,
            CLIENT_REQUEST,
            _probe_request("client-x", "r-lost"),
        )
    )
    deployed.sim.run(until=0.45)
    # the request died at the crashed proxy: nothing pending, no log
    assert proxy.requests_forwarded == 0
    assert proxy.detection.invalid_count("client-x") == 0


# ----------------------------------------------------------------------
# Detection with a delayed observation pipeline
# ----------------------------------------------------------------------
def test_invalid_requests_are_recorded_only_after_detection_lag():
    deployed = _build_s2(detection_lag=1.5)
    proxy = deployed.proxies[0]
    assert proxy.request_timeout == 1.5
    deployed.network.send(
        Message(
            "client-x", proxy.name, CLIENT_REQUEST, _probe_request("client-x", "r1")
        )
    )
    deployed.sim.run(until=1.4)
    # the probe crashed the primary long ago, but the proxy has not yet
    # classified the request as invalid
    assert proxy.detection.invalid_count("client-x") == 0
    deployed.sim.run(until=1.6)
    assert proxy.detection.invalid_count("client-x") == 1
    assert proxy.errors_returned == 1


def test_delayed_detection_defers_blacklisting_but_still_bites():
    policy = DetectionPolicy(window=10.0, threshold=1)
    deployed = _build_s2(detection_lag=1.5, policy=policy)
    proxy = deployed.proxies[0]
    for i, t in enumerate((0.0, 0.1)):
        deployed.sim.schedule_at(
            t,
            deployed.network.send,
            Message(
                "client-x",
                proxy.name,
                CLIENT_REQUEST,
                _probe_request("client-x", f"r{i}"),
            ),
        )
    deployed.sim.run(until=1.55)
    # first invalid observed (t ~1.50); threshold=1 not yet exceeded
    assert not proxy.detection.is_blacklisted("client-x")
    deployed.sim.run(until=1.7)
    # second invalid (t ~1.60) crosses the threshold despite the lag
    assert proxy.detection.is_blacklisted("client-x")
    before = proxy.dropped_blacklisted
    deployed.network.send(
        Message(
            "client-x", proxy.name, CLIENT_REQUEST, _probe_request("client-x", "r9")
        )
    )
    deployed.sim.run(until=1.8)
    assert proxy.dropped_blacklisted == before + 1


def test_shorter_detection_lag_observes_sooner():
    fast = _build_s2(detection_lag=0.2)
    proxy = fast.proxies[0]
    fast.network.send(
        Message(
            "client-x", proxy.name, CLIENT_REQUEST, _probe_request("client-x", "r1")
        )
    )
    fast.sim.run(until=0.3)
    assert proxy.detection.invalid_count("client-x") == 1
