"""Unit tests for the re-randomization-period AMC extension."""

from __future__ import annotations

import pytest

from repro.analysis.lifetimes import el_s2_po
from repro.analysis.period import (
    ABSORB_PROXIES,
    ABSORB_SERVER,
    build_s2_po_period_chain,
    compromise_route_split,
    el_s2_po_with_period,
)
from repro.errors import AnalysisError


def test_period_one_matches_closed_form():
    """P=1 must reduce exactly to the S2PO closed form — the consistency
    anchor between the AMC extension and the paper's model."""
    for alpha, kappa in ((1e-3, 0.5), (1e-2, 0.1), (5e-3, 0.9)):
        chain_el = el_s2_po_with_period(alpha, kappa, period_steps=1)
        closed = el_s2_po(alpha, kappa)
        assert chain_el == pytest.approx(closed, rel=1e-9)


def test_longer_period_shortens_lifetime():
    """Slower re-randomization lets compromised proxies accumulate, so
    EL must decrease monotonically in P."""
    alpha, kappa = 5e-3, 0.5
    els = [el_s2_po_with_period(alpha, kappa, period_steps=p) for p in (1, 2, 4, 8)]
    assert els == sorted(els, reverse=True)


def test_state_space_shape():
    chain = build_s2_po_period_chain(1e-3, 0.5, n_proxies=3, period_steps=4)
    assert chain.n_transient == 12  # 4 phases x k in {0,1,2}
    assert chain.n_absorbing == 2
    assert chain.absorbing_labels == [ABSORB_SERVER, ABSORB_PROXIES]


def test_route_split_sums_to_one_and_shifts_with_kappa():
    low = compromise_route_split(1e-2, kappa=0.0, period_steps=2)
    high = compromise_route_split(1e-2, kappa=1.0, period_steps=2)
    assert sum(low.values()) == pytest.approx(1.0)
    assert sum(high.values()) == pytest.approx(1.0)
    # More indirect strength -> more mass on the server route.
    assert high[ABSORB_SERVER] > low[ABSORB_SERVER]
    assert high[ABSORB_PROXIES] < low[ABSORB_PROXIES]


def test_kappa_zero_long_period_still_absorbs():
    """Even with κ=0 the chain must absorb (launch pads + proxy capture)."""
    el = el_s2_po_with_period(1e-2, kappa=0.0, period_steps=4)
    assert el > 0
    split = compromise_route_split(1e-2, kappa=0.0, period_steps=4)
    assert split[ABSORB_SERVER] > 0  # launch-pad route exists without κ


def test_proxy_count_tradeoff():
    """Proxy count is *not* monotone: one proxy is clearly worst (capturing
    it is both 'all proxies' and a launch pad), but beyond two, extra
    proxies add launch-pad hosts faster than they harden the
    all-proxies route.  The ablation bench quantifies this trade-off."""
    alpha, kappa = 5e-3, 0.2
    els = {
        n: el_s2_po_with_period(alpha, kappa, n_proxies=n, period_steps=2)
        for n in (1, 2, 3, 4)
    }
    assert els[1] < els[2]  # a single proxy is by far the weakest
    assert els[1] < els[3] and els[1] < els[4]
    # The launch-pad exposure effect: 4 proxies do not beat 2.
    assert els[4] < els[2]


def test_validation():
    with pytest.raises(AnalysisError):
        build_s2_po_period_chain(0.0, 0.5)
    with pytest.raises(AnalysisError):
        build_s2_po_period_chain(1e-3, 1.5)
    with pytest.raises(AnalysisError):
        build_s2_po_period_chain(1e-3, 0.5, period_steps=0)
    with pytest.raises(AnalysisError):
        build_s2_po_period_chain(1e-3, 0.5, n_proxies=0)
