"""Unit tests for the PBFT-style ordering state (quorum bookkeeping)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.replication.order_protocol import (
    OrderingState,
    SlotPhase,
    quorum_size,
)


def test_quorum_size_formula():
    assert quorum_size(4, 1) == 3
    assert quorum_size(7, 2) == 5


def test_quorum_rejects_insufficient_replicas():
    with pytest.raises(ProtocolError):
        quorum_size(3, 1)


def make_state():
    return OrderingState(n=4, f=1)


def test_slot_starts_empty():
    state = make_state()
    slot = state.slot(0, 1)
    assert slot.phase is SlotPhase.EMPTY
    assert slot.digest is None


def test_normal_three_phase_progress():
    state = make_state()
    state.record_preprepare(0, 1, "d", {"request_id": "r"})
    assert state.slot(0, 1).phase is SlotPhase.PRE_PREPARED
    state.record_prepare(0, 1, "d", "a")
    state.record_prepare(0, 1, "d", "b")
    newly_prepared = state.record_prepare(0, 1, "d", "c")
    assert newly_prepared
    assert state.slot(0, 1).phase is SlotPhase.PREPARED
    state.record_commit(0, 1, "d", "a")
    state.record_commit(0, 1, "d", "b")
    newly_committed = state.record_commit(0, 1, "d", "c")
    assert newly_committed
    assert state.slot(0, 1).phase is SlotPhase.COMMITTED


def test_duplicate_votes_do_not_fill_quorum():
    state = make_state()
    state.record_preprepare(0, 1, "d", {})
    for _ in range(5):
        state.record_prepare(0, 1, "d", "a")  # same voter repeatedly
    assert state.slot(0, 1).phase is SlotPhase.PRE_PREPARED


def test_conflicting_digest_votes_rejected():
    state = make_state()
    state.record_preprepare(0, 1, "good", {})
    assert not state.record_prepare(0, 1, "evil", "a")
    assert "a" not in state.slot(0, 1).prepare_voters


def test_equivocating_preprepare_ignored():
    state = make_state()
    assert state.record_preprepare(0, 1, "first", {"request_id": "x"})
    assert not state.record_preprepare(0, 1, "second", {"request_id": "y"})
    assert state.slot(0, 1).digest == "first"


def test_votes_before_preprepare_buffered():
    """Prepares may arrive before the pre-prepare (network reordering);
    the slot must still advance once the pre-prepare lands."""
    state = make_state()
    state.record_prepare(0, 1, "d", "a")
    state.record_prepare(0, 1, "d", "b")
    state.record_prepare(0, 1, "d", "c")
    assert state.slot(0, 1).phase is SlotPhase.EMPTY
    state.record_preprepare(0, 1, "d", {})
    assert state.slot(0, 1).phase is SlotPhase.PREPARED


def test_commit_requires_prepared_first():
    state = make_state()
    state.record_preprepare(0, 1, "d", {})
    for voter in ("a", "b", "c"):
        state.record_commit(0, 1, "d", voter)
    # commits alone cannot commit an un-prepared slot...
    assert state.slot(0, 1).phase is SlotPhase.PRE_PREPARED
    # ...but once prepares land, the buffered commits count.
    for voter in ("a", "b", "c"):
        state.record_prepare(0, 1, "d", voter)
    assert state.slot(0, 1).phase is SlotPhase.COMMITTED


def test_commits_across_views_are_independent():
    state = make_state()
    state.record_preprepare(0, 1, "d", {})
    for voter in ("a", "b", "c"):
        state.record_prepare(0, 1, "d", voter)
        state.record_commit(0, 1, "d", voter)
    assert state.slot(0, 1).phase is SlotPhase.COMMITTED
    assert state.slot(1, 1).phase is SlotPhase.EMPTY


def test_committed_slots_sorted_by_seq():
    state = make_state()
    for seq in (3, 1, 2):
        state.record_preprepare(0, seq, f"d{seq}", {"request_id": f"r{seq}"})
        for voter in ("a", "b", "c"):
            state.record_prepare(0, seq, f"d{seq}", voter)
            state.record_commit(0, seq, f"d{seq}", voter)
    assert [s.seq for s in state.committed_slots(0)] == [1, 2, 3]


def test_drop_view_clears_only_that_view():
    state = make_state()
    state.record_preprepare(0, 1, "d", {})
    state.record_preprepare(1, 1, "e", {})
    dropped = state.drop_view(0)
    assert dropped == 1
    assert len(state) == 1
    assert state.slot(1, 1).digest == "e"
