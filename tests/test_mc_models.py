"""Unit tests for the Monte-Carlo lifetime samplers.

The central claim checked here: each sampler's mean agrees with the
corresponding analytic EL (cross-validation between the two independent
evaluation methods)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.lifetimes import (
    el_s0_po,
    el_s0_so,
    el_s1_po,
    el_s1_so,
    el_s2_po,
)
from repro.core.specs import s0, s1, s2
from repro.errors import ConfigurationError
from repro.mc.models import (
    S0POModel,
    S0SOModel,
    S1POModel,
    S1SOModel,
    S2POModel,
    S2POStepModel,
    S2SOModel,
    model_for,
)
from repro.mc.montecarlo import run_model
from repro.randomization.obfuscation import Scheme

TRIALS = 40_000


def agrees(model, analytic, seed=0, trials=TRIALS):
    estimate = run_model(model, trials, seed=seed)
    halfwidth = max(estimate.stats.ci_halfwidth, 1e-9)
    return abs(estimate.mean - analytic) <= 4 * halfwidth  # generous 4-sigma


# ----------------------------------------------------------------------
# PO samplers vs closed forms
# ----------------------------------------------------------------------
def test_s1_po_sampler_matches_analytic():
    spec = s1(Scheme.PO, alpha=5e-3)
    assert agrees(S1POModel(spec), el_s1_po(5e-3))


def test_s0_po_sampler_matches_analytic():
    spec = s0(Scheme.PO, alpha=2e-2)
    assert agrees(S0POModel(spec), el_s0_po(2e-2))


def test_s2_po_sampler_matches_analytic():
    spec = s2(Scheme.PO, alpha=5e-3, kappa=0.5)
    assert agrees(S2POModel(spec), el_s2_po(5e-3, 0.5))


def test_s2_po_step_model_validates_closed_form():
    """The step-by-step simulation never uses the closed-form q; its
    agreement with the formula validates the q derivation itself."""
    spec = s2(Scheme.PO, alpha=0.05, kappa=0.4)
    assert agrees(S2POStepModel(spec), el_s2_po(0.05, 0.4), trials=20_000)


def test_s2_po_step_model_kappa_zero():
    spec = s2(Scheme.PO, alpha=0.15, kappa=0.0)
    assert agrees(S2POStepModel(spec), el_s2_po(0.15, 0.0), trials=20_000)


# ----------------------------------------------------------------------
# SO samplers vs closed forms
# ----------------------------------------------------------------------
def test_s1_so_sampler_matches_analytic():
    spec = s1(Scheme.SO, alpha=2e-3)
    assert agrees(S1SOModel(spec), el_s1_so(2e-3))


def test_s1_so_never_exceeds_exhaustion():
    spec = s1(Scheme.SO, alpha=0.1)
    lifetimes = S1SOModel(spec).sample(5000, np.random.default_rng(1))
    assert lifetimes.max() <= 10  # ceil(1/alpha) steps, minus 1, bounded
    assert lifetimes.min() >= 0


def test_s0_so_sampler_matches_analytic():
    spec = s0(Scheme.SO, alpha=2e-3)
    assert agrees(S0SOModel(spec), el_s0_so(2e-3))


def test_s0_so_second_order_statistic_shape():
    """S0SO must fail strictly no later than S1SO's worst case, and its
    lifetimes sit at the 2nd of 4 key discoveries."""
    rng = np.random.default_rng(2)
    spec = s0(Scheme.SO, alpha=0.05)
    lifetimes = S0SOModel(spec).sample(20_000, rng)
    # Exact discrete EL at this coarse alpha (the 0.4/alpha continuum
    # approximation is a few % off here, which el_s0_so captures).
    assert lifetimes.mean() == pytest.approx(el_s0_so(0.05), rel=0.03)


def test_s2_so_sampler_basic_properties():
    spec = s2(Scheme.SO, alpha=0.01, kappa=0.5)
    lifetimes = S2SOModel(spec).sample(20_000, np.random.default_rng(3))
    assert lifetimes.min() >= 0
    # The server key must be found within the combined-rate exhaustion
    # horizon: kappa*omega*t (+ omega after first proxy) covers chi by
    # t ~ 1/(kappa*alpha) at the latest.
    assert lifetimes.max() <= int(1 / (0.5 * 0.01)) + 1


def test_s2_so_kappa_zero_still_terminates():
    """κ=0: compromise only via launch pad after a proxy key is found,
    or via all proxy keys — both eventually certain under SO."""
    spec = s2(Scheme.SO, alpha=0.02, kappa=0.0)
    lifetimes = S2SOModel(spec).sample(10_000, np.random.default_rng(4))
    assert lifetimes.max() <= 2 * int(1 / 0.02)
    assert lifetimes.mean() > 0


def test_s2_so_monotone_in_kappa():
    means = []
    for kappa in (0.0, 0.5, 1.0):
        spec = s2(Scheme.SO, alpha=0.01, kappa=kappa)
        lifetimes = S2SOModel(spec).sample(20_000, np.random.default_rng(5))
        means.append(lifetimes.mean())
    assert means[0] > means[1] > means[2]


# ----------------------------------------------------------------------
# Dispatcher and validation
# ----------------------------------------------------------------------
def test_model_for_dispatch():
    assert isinstance(model_for(s0(Scheme.PO, alpha=1e-3)), S0POModel)
    assert isinstance(model_for(s1(Scheme.PO, alpha=1e-3)), S1POModel)
    assert isinstance(model_for(s2(Scheme.PO, alpha=1e-3)), S2POModel)
    assert isinstance(
        model_for(s2(Scheme.PO, alpha=1e-3), step_level=True), S2POStepModel
    )
    assert isinstance(model_for(s0(Scheme.SO, alpha=1e-3)), S0SOModel)
    assert isinstance(model_for(s1(Scheme.SO, alpha=1e-3)), S1SOModel)
    assert isinstance(model_for(s2(Scheme.SO, alpha=1e-3)), S2SOModel)


def test_models_reject_mismatched_specs():
    with pytest.raises(ConfigurationError):
        S1POModel(s1(Scheme.SO, alpha=1e-3))
    with pytest.raises(ConfigurationError):
        S1SOModel(s0(Scheme.SO, alpha=1e-3))
    with pytest.raises(ConfigurationError):
        S2POStepModel(s2(Scheme.SO, alpha=1e-3))


def test_sample_size_validation():
    model = S1POModel(s1(Scheme.PO, alpha=1e-3))
    with pytest.raises(ConfigurationError):
        model.sample(0, np.random.default_rng(0))


def test_sampling_reproducible_per_seed():
    model = S2SOModel(s2(Scheme.SO, alpha=0.01, kappa=0.3))
    a = model.sample(100, np.random.default_rng(7))
    b = model.sample(100, np.random.default_rng(7))
    assert (a == b).all()
