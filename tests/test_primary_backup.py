"""Protocol tests for primary-backup replication."""

from __future__ import annotations

import random

from repro.crypto.signatures import SignatureAuthority
from repro.net.latency import FixedLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.randomization.keyspace import KeySpace
from repro.replication.primary_backup import (
    PROBE_OP,
    REQUEST,
    SERVER_RESPONSE,
    PBServer,
)
from repro.replication.state_machine import KVStoreService, SessionTokenService
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess


class ResponseCollector(SimProcess):
    """Stands in for a proxy/client: collects signed server responses."""

    def __init__(self, sim, name, authority):
        super().__init__(sim, name, respawn_delay=None)
        self.authority = authority
        self.responses: list[dict] = []

    def handle_message(self, message: Message) -> None:
        if message.mtype == SERVER_RESPONSE:
            signed = message.payload["signed"]
            assert self.authority.verify(signed), "server signature must verify"
            self.responses.append(signed.payload)


def build_tier(n=3, service_factory=lambda i: KVStoreService(), seed=1):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=FixedLatency(0.001))
    authority = SignatureAuthority(random.Random(5))
    keyspace = KeySpace(8)
    servers = []
    for i in range(n):
        server = PBServer(
            sim,
            name=f"server-{i}",
            index=i,
            keyspace=keyspace,
            rng=random.Random(50 + i),
            service=service_factory(i),
            authority=authority,
            network=network,
        )
        network.register(server)
        servers.append(server)
    names = [s.name for s in servers]
    for s in servers:
        s.configure(names)
    collector = ResponseCollector(sim, "collector", authority)
    network.register(collector)
    return sim, network, authority, servers, collector


def send_request(network, request_id, body, reply_to=("collector",)):
    for name in [f"server-{i}" for i in range(3)]:
        if network.knows(name):
            network.send(
                Message(
                    "collector",
                    name,
                    REQUEST,
                    {
                        "request_id": request_id,
                        "client": "collector",
                        "reply_to": list(reply_to),
                        "body": body,
                    },
                )
            )


def test_initial_primary_is_lowest_index():
    sim, net, auth, servers, collector = build_tier()
    assert servers[0].is_primary
    assert not servers[1].is_primary


def test_request_executed_once_and_all_servers_respond():
    sim, net, auth, servers, collector = build_tier()
    send_request(net, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=0.2)
    # One execution (the primary), three signed responses (every server
    # signs and returns, per the FORTRESS interaction pattern).
    assert servers[0].requests_executed == 1
    assert servers[1].requests_executed == 0
    indices = sorted(r["index"] for r in collector.responses)
    assert indices == [0, 1, 2]
    assert all(r["response"] == {"ok": True} for r in collector.responses)


def test_backups_receive_state_through_updates():
    sim, net, auth, servers, collector = build_tier()
    send_request(net, "r1", {"op": "put", "key": "a", "value": 42})
    sim.run(until=0.2)
    for backup in servers[1:]:
        assert backup.seq == 1
        assert backup.service.apply({"op": "get", "key": "a"})["value"] == 42


def test_duplicate_request_not_reexecuted():
    sim, net, auth, servers, collector = build_tier()
    send_request(net, "r1", {"op": "incr", "key": "c"})
    sim.run(until=0.2)
    send_request(net, "r1", {"op": "incr", "key": "c"})
    sim.run(until=0.4)
    assert servers[0].requests_executed == 1
    assert servers[0].service.apply({"op": "get", "key": "c"})["value"] == 1


def test_nondeterministic_service_replicates_consistently():
    """The PB advantage: backups install the primary's state, so even a
    non-deterministic service stays consistent across replicas."""
    sim, net, auth, servers, collector = build_tier(
        service_factory=lambda i: SessionTokenService(seed=1000 + i)
    )
    send_request(net, "r1", {"op": "login", "user": "u"})
    sim.run(until=0.2)
    token = next(r["response"]["token"] for r in collector.responses if r["index"] == 0)
    digests = {s.service.digest() for s in servers}
    assert len(digests) == 1  # replicas agree despite non-determinism
    # And every server's signed response carries the *same* token.
    tokens = {r["response"]["token"] for r in collector.responses}
    assert tokens == {token}


def test_failover_promotes_next_index():
    sim, net, auth, servers, collector = build_tier()
    servers[0].stop()
    sim.run(until=2.0)  # heartbeat timeout is 0.2
    assert servers[1].is_primary
    send_request(net, "r2", {"op": "put", "key": "b", "value": 2})
    sim.run(until=2.5)
    assert servers[1].requests_executed == 1
    assert any(r["index"] == 1 for r in collector.responses)


def test_probe_request_crashes_primary_but_daemon_restores_service():
    sim, net, auth, servers, collector = build_tier()
    wrong_guess = (servers[0].address_space.key + 1) % servers[0].keyspace.size
    send_request(net, "p1", {"op": PROBE_OP, "guess": wrong_guess})
    sim.run(until=0.005)
    assert servers[0].crash_count == 1
    sim.run(until=0.5)
    # Forking daemon respawned the primary; service continues.
    send_request(net, "r3", {"op": "put", "key": "z", "value": 9})
    sim.run(until=1.0)
    assert any(r["request_id"] == "r3" for r in collector.responses)


def test_probe_request_with_correct_key_compromises_primary():
    sim, net, auth, servers, collector = build_tier()
    send_request(net, "p1", {"op": PROBE_OP, "guess": servers[0].address_space.key})
    sim.run(until=0.1)
    assert servers[0].compromised
    assert servers[0].crash_count == 0


def test_probe_only_processed_by_primary():
    sim, net, auth, servers, collector = build_tier()
    wrong = (servers[0].address_space.key + 1) % servers[0].keyspace.size
    send_request(net, "p1", {"op": PROBE_OP, "guess": wrong})
    sim.run(until=0.1)
    assert servers[1].crash_count == 0
    assert servers[2].crash_count == 0


def test_compromised_server_corrupts_responses():
    sim, net, auth, servers, collector = build_tier()
    servers[0].mark_compromised()
    send_request(net, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=0.2)
    primary_response = next(r for r in collector.responses if r["index"] == 0)
    assert primary_response["response"]["error"] == "__corrupted__"
    # Honest backups still return the true response.
    backup_response = next(r for r in collector.responses if r["index"] == 1)
    assert backup_response["response"] == {"ok": True}


def test_rebooted_backup_catches_up_via_sync():
    sim, net, auth, servers, collector = build_tier()
    send_request(net, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=0.2)
    servers[2].begin_reboot(0.05)  # misses the next request
    send_request(net, "r2", {"op": "put", "key": "b", "value": 2})
    sim.run(until=1.0)
    assert servers[2].seq == 2
    assert servers[2].service.apply({"op": "get", "key": "b"})["value"] == 2
