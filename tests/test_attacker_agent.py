"""Protocol tests for the attacker: probing, pacing, de-randomization,
launch pads."""

from __future__ import annotations

import random

from repro.attacker.agent import AttackerProcess
from repro.attacker.probe import connection_probe, is_intrusion_ack, request_probe
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.randomization.keyspace import KeySpace
from repro.randomization.node import RandomizedProcess
from repro.randomization.obfuscation import ObfuscationManager, Scheme
from repro.replication.primary_backup import PROBE_OP
from repro.sim.engine import Simulator


def build_arena(entropy=5, omega=8.0, reset_on_epoch=False, seed=1):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=FixedLatency(0.0005))
    attacker = AttackerProcess(
        sim,
        network,
        keyspace=KeySpace(entropy),
        omega=omega,
        period=1.0,
        reset_pools_on_epoch=reset_on_epoch,
    )
    network.register(attacker)
    return sim, network, attacker


def add_target(sim, network, name, entropy=5, seed=10):
    node = RandomizedProcess(
        sim, name, KeySpace(entropy), random.Random(seed), respawn_delay=0.01
    )
    network.register(node)
    return node


# ----------------------------------------------------------------------
# Probe payloads
# ----------------------------------------------------------------------
def test_probe_payload_shapes():
    assert connection_probe(7) == {"kind": "probe", "guess": 7}
    payload = request_probe(9, "attacker")
    assert payload["body"] == {"op": PROBE_OP, "guess": 9}
    assert payload["client"] == "attacker"
    assert payload["request_id"] != request_probe(9, "attacker")["request_id"]
    assert is_intrusion_ack({"kind": "intrusion_ack"})
    assert not is_intrusion_ack({"kind": "probe"})
    assert not is_intrusion_ack("nope")


# ----------------------------------------------------------------------
# Direct de-randomization
# ----------------------------------------------------------------------
def test_direct_attack_exhausts_keyspace_and_wins():
    """With 2^5 = 32 keys and 8 probes/step against an SO target, the
    attacker must find the key within 4 steps (without replacement)."""
    sim, network, attacker = build_arena(entropy=5, omega=8.0)
    target = add_target(sim, network, "victim")
    attacker.attack_direct(target)
    sim.run(until=6.0)
    assert target.compromised
    assert attacker.compromises_observed
    assert attacker.compromises_observed[0][1] == "victim"
    # Pacing: the key is found within ~32 *distinct* guesses (probes
    # after discovery replay the known key and are not new guesses).
    assert attacker.pool("victim").tried_count <= 32


def test_direct_attack_counts_wrong_guesses_as_crashes():
    sim, network, attacker = build_arena(entropy=5, omega=8.0)
    target = add_target(sim, network, "victim")
    attacker.attack_direct(target)
    sim.run(until=6.0)
    # Every distinct wrong guess crashed the target exactly once; probes
    # after the discovery replay the known key and cause no crashes.
    pool = attacker.pool("victim")
    assert pool.known_key == target.address_space.key
    assert target.crash_count == pool.tried_count - 1


def test_probe_pacing_rate():
    sim, network, attacker = build_arena(entropy=16, omega=10.0)
    target = add_target(sim, network, "victim", entropy=16)
    attacker.attack_direct(target)
    sim.run(until=3.0)
    # ~10 probes per unit step, minus reconnect hiccups after crashes.
    assert 15 <= attacker.probes_sent_direct <= 30


def test_shared_pool_across_targets():
    """S1 semantics: identically randomized servers form one pool, so
    the same tracker is reused and guesses are not duplicated."""
    sim, network, attacker = build_arena(entropy=5, omega=4.0)
    a = add_target(sim, network, "server-0", seed=3)
    b = add_target(sim, network, "server-1", seed=4)
    b.address_space.set_key(a.address_space.key)  # identical randomization
    attacker.attack_direct(a, pool_id="tier")
    attacker.attack_direct(b, pool_id="tier")
    sim.run(until=10.0)
    assert attacker.pool("tier").total_guesses <= 33  # one pool, no repeats
    assert a.compromised or b.compromised


def test_po_epoch_reset_restores_key_uncertainty():
    """Against PO the attacker resets pools at each epoch: eliminations
    are worthless once keys are resampled."""
    sim, network, attacker = build_arena(entropy=8, omega=4.0, reset_on_epoch=True)
    target = add_target(sim, network, "victim", entropy=8)
    manager = ObfuscationManager(sim, Scheme.PO, period=1.0)
    manager.add_node(target)
    manager.add_epoch_listener(attacker.on_epoch)
    attacker.attack_direct(target)
    manager.start()
    sim.run(until=5.5)
    pool = attacker.pool("victim")
    assert pool.resets == 5
    # Within any epoch at 4 probes/step the pool never accumulates far.
    assert pool.tried_count <= 8


def test_connection_refused_while_target_down_then_recovers():
    sim, network, attacker = build_arena(entropy=10, omega=5.0)
    target = add_target(sim, network, "victim", entropy=10)
    target.crash()  # down before the attack begins; no daemon ran yet
    attacker.attack_direct(target)
    sim.run(until=2.0)
    assert attacker.probes_sent_direct > 0  # reconnected after respawn


# ----------------------------------------------------------------------
# Launch pad
# ----------------------------------------------------------------------
def test_launchpad_spawns_on_proxy_compromise_and_stops_on_refresh():
    sim, network, attacker = build_arena(entropy=5, omega=8.0)
    proxy = add_target(sim, network, "proxy-0", seed=6)
    server = add_target(sim, network, "server-0", seed=7)
    server.allowed_connection_initiators = {"proxy-0"}  # fortified
    attacker.enable_launchpad([proxy], ["server-0"], pool_id="server-tier")

    # The attacker cannot reach the server directly.
    assert network.connect(attacker.name, "server-0") is None

    proxy.mark_compromised()
    sim.run(until=5.0)
    # Launch-pad probing from the proxy reached (and here, with 32 keys,
    # compromised) the server.
    assert server.compromised
    assert attacker.pool("server-tier").total_guesses > 0

    # Refreshing the proxy tears the launch pad down.
    proxy.begin_reboot(0.0)
    assert attacker._launchpad_drivers == {}


def test_launchpad_single_stream_even_with_two_proxies():
    sim, network, attacker = build_arena(entropy=10, omega=4.0)
    proxies = [
        add_target(sim, network, f"proxy-{i}", entropy=10, seed=i) for i in range(2)
    ]
    server = add_target(sim, network, "server-0", entropy=10, seed=9)
    attacker.enable_launchpad(proxies, ["server-0"], pool_id="server-tier")
    proxies[0].mark_compromised()
    proxies[1].mark_compromised()
    assert len(attacker._launchpad_drivers) == 1


def test_launchpad_fails_over_to_other_compromised_proxy():
    sim, network, attacker = build_arena(entropy=12, omega=4.0)
    proxies = [
        add_target(sim, network, f"proxy-{i}", entropy=12, seed=i) for i in range(2)
    ]
    server = add_target(sim, network, "server-0", entropy=12, seed=9)
    attacker.enable_launchpad(proxies, ["server-0"], pool_id="server-tier")
    proxies[0].mark_compromised()
    proxies[1].mark_compromised()
    first_host = next(iter(attacker._launchpad_drivers))
    # Refresh the hosting proxy: the stream must move to the other one.
    network.process(first_host).begin_reboot(0.0)
    assert len(attacker._launchpad_drivers) == 1
    assert next(iter(attacker._launchpad_drivers)) != first_host
