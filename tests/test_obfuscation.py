"""Unit tests for PO/SO epoch scheduling and key groups."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.randomization.keyspace import KeySpace
from repro.randomization.node import RandomizedProcess
from repro.randomization.obfuscation import ObfuscationManager, Scheme
from repro.sim.engine import Simulator


def make_nodes(sim, count, entropy=10):
    return [
        RandomizedProcess(
            sim, f"n{i}", KeySpace(entropy), random.Random(100 + i), respawn_delay=None
        )
        for i in range(count)
    ]


def test_po_resamples_keys_each_epoch():
    sim = Simulator(seed=1)
    (node,) = make_nodes(sim, 1)
    manager = ObfuscationManager(sim, Scheme.PO, period=1.0)
    manager.add_node(node)
    manager.start()
    keys = [node.address_space.key]
    for t in range(1, 6):
        sim.run(until=float(t) + 0.5)
        keys.append(node.address_space.key)
    assert len(set(keys)) > 2  # keys actually change across epochs
    assert manager.epoch == 5


def test_so_preserves_keys_but_reboots():
    sim = Simulator(seed=2)
    (node,) = make_nodes(sim, 1)
    original = node.address_space.key
    manager = ObfuscationManager(sim, Scheme.SO, period=1.0)
    manager.add_node(node)
    manager.start()
    sim.run(until=3.5)
    assert node.address_space.key == original
    assert node.reboot_count == 3


def test_refresh_cleanses_compromise():
    sim = Simulator(seed=3)
    (node,) = make_nodes(sim, 1)
    manager = ObfuscationManager(sim, Scheme.SO, period=1.0)
    manager.add_node(node)
    manager.start()
    node.mark_compromised()
    sim.run(until=1.1)
    assert not node.compromised


def test_group_members_share_keys_initially_and_after_po():
    """FORTRESS: PB servers are randomized identically."""
    sim = Simulator(seed=4)
    nodes = make_nodes(sim, 3)
    manager = ObfuscationManager(sim, Scheme.PO, period=1.0)
    manager.add_group(nodes)
    keys = {n.address_space.key for n in nodes}
    assert len(keys) == 1  # aligned at registration
    manager.start()
    for t in range(1, 5):
        sim.run(until=float(t) + 0.25)
        keys = {n.address_space.key for n in nodes}
        assert len(keys) == 1


def test_separate_nodes_keep_distinct_streams():
    sim = Simulator(seed=5)
    nodes = make_nodes(sim, 2, entropy=16)
    manager = ObfuscationManager(sim, Scheme.PO, period=1.0)
    for node in nodes:
        manager.add_node(node)
    manager.start()
    sim.run(until=10.5)
    # With 2^16 keys, ten epochs of two diverse nodes colliding every
    # time is essentially impossible.
    histories_equal = nodes[0].address_space.key == nodes[1].address_space.key
    assert not histories_equal


def test_epoch_listeners_fire_with_index():
    sim = Simulator(seed=6)
    (node,) = make_nodes(sim, 1)
    manager = ObfuscationManager(sim, Scheme.PO, period=2.0)
    manager.add_node(node)
    epochs = []
    manager.add_epoch_listener(epochs.append)
    manager.start()
    sim.run(until=7.0)
    assert epochs == [1, 2, 3]


def test_group_offset_delays_refresh_within_period():
    sim = Simulator(seed=7)
    (node,) = make_nodes(sim, 1)
    manager = ObfuscationManager(sim, Scheme.SO, period=1.0)
    manager.add_group([node], offset=0.5)
    manager.start()
    sim.run(until=1.25)
    assert node.reboot_count == 0  # boundary passed, offset not yet
    sim.run(until=1.75)
    assert node.reboot_count == 1


def test_validation_errors():
    sim = Simulator()
    (node,) = make_nodes(sim, 1)
    with pytest.raises(ConfigurationError):
        ObfuscationManager(sim, Scheme.PO, period=0.0)
    with pytest.raises(ConfigurationError):
        ObfuscationManager(sim, Scheme.PO, period=1.0, reboot_duration=1.0)
    manager = ObfuscationManager(sim, Scheme.PO)
    with pytest.raises(ConfigurationError):
        manager.add_group([])
    with pytest.raises(ConfigurationError):
        manager.add_group([node], offset=1.5)
    manager.start()
    with pytest.raises(ConfigurationError):
        manager.start()


def test_mixed_keyspace_group_rejected():
    sim = Simulator()
    a = RandomizedProcess(sim, "a", KeySpace(4), random.Random(1), respawn_delay=None)
    b = RandomizedProcess(sim, "b", KeySpace(5), random.Random(2), respawn_delay=None)
    manager = ObfuscationManager(sim, Scheme.PO)
    with pytest.raises(ConfigurationError):
        manager.add_group([a, b])


def test_time_step_index():
    sim = Simulator()
    manager = ObfuscationManager(sim, Scheme.PO, period=2.0)
    assert manager.time_step_index() == 1
    sim.schedule(3.0, lambda: None)
    sim.run()
    assert manager.time_step_index() == 2
