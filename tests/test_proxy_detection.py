"""Unit tests for the proxy's invalid-request frequency analysis."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.proxy.detection import DetectionLog, DetectionPolicy, kappa_for_policy


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        DetectionPolicy(window=0.0)
    with pytest.raises(ConfigurationError):
        DetectionPolicy(threshold=0)


def test_max_sustainable_rate():
    assert DetectionPolicy(window=10.0, threshold=100).max_sustainable_rate == 10.0


def test_under_threshold_not_blacklisted():
    log = DetectionLog(DetectionPolicy(window=10.0, threshold=5))
    for t in range(5):
        assert not log.record_invalid("src", float(t))
    assert not log.is_blacklisted("src")


def test_exceeding_threshold_blacklists():
    log = DetectionLog(DetectionPolicy(window=10.0, threshold=5))
    tripped = [log.record_invalid("src", float(t) * 0.1) for t in range(6)]
    assert tripped == [False] * 5 + [True]
    assert log.is_blacklisted("src")


def test_blacklist_event_reported_once():
    log = DetectionLog(DetectionPolicy(window=10.0, threshold=2))
    flags = [log.record_invalid("s", float(i) * 0.1) for i in range(5)]
    assert flags.count(True) == 1


def test_window_expiry_allows_paced_probing():
    """An attacker pacing below threshold/window is never blacklisted —
    the mechanism that caps his indirect rate (κ)."""
    log = DetectionLog(DetectionPolicy(window=10.0, threshold=5))
    # One invalid request every 4 time units: 2.5 per window < 5.
    for i in range(50):
        assert not log.record_invalid("patient", i * 4.0)
    assert not log.is_blacklisted("patient")


def test_sources_tracked_independently():
    log = DetectionLog(DetectionPolicy(window=10.0, threshold=3))
    for i in range(4):
        log.record_invalid("noisy", float(i) * 0.1)
    log.record_invalid("quiet", 0.5)
    assert log.is_blacklisted("noisy")
    assert not log.is_blacklisted("quiet")
    assert log.blacklisted_sources == frozenset({"noisy"})


def test_suspicion_fraction():
    log = DetectionLog(DetectionPolicy(window=10.0, threshold=4))
    assert log.suspicion("s", now=0.0) == 0.0
    log.record_invalid("s", 0.0)
    log.record_invalid("s", 1.0)
    assert log.suspicion("s", now=1.0) == pytest.approx(0.5)
    # Old events age out of the window.
    assert log.suspicion("s", now=20.0) == 0.0


def test_lifetime_counts_survive_window_expiry():
    log = DetectionLog(DetectionPolicy(window=1.0, threshold=100))
    for i in range(10):
        log.record_invalid("s", float(i) * 5.0)
    assert log.invalid_count("s") == 10
    assert log.invalid_total == 10


# ----------------------------------------------------------------------
# κ derivation
# ----------------------------------------------------------------------
def test_kappa_caps_strong_attackers():
    policy = DetectionPolicy(window=10.0, threshold=100)  # 10 invalid/sec max
    # Attacker of strength 100 probes/step must slow to 10 -> kappa 0.1.
    assert kappa_for_policy(policy, omega=100.0, period=1.0) == pytest.approx(0.1)


def test_kappa_is_one_for_weak_attackers():
    policy = DetectionPolicy(window=10.0, threshold=100)
    assert kappa_for_policy(policy, omega=5.0, period=1.0) == 1.0


def test_kappa_scales_with_period():
    policy = DetectionPolicy(window=10.0, threshold=100)
    assert kappa_for_policy(policy, omega=100.0, period=2.0) == pytest.approx(0.2)


def test_kappa_requires_positive_omega():
    with pytest.raises(ConfigurationError):
        kappa_for_policy(DetectionPolicy(), omega=0.0)
