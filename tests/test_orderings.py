"""Unit tests for the §6 ordering analysis and crossovers."""

from __future__ import annotations

import pytest

from repro.analysis.lifetimes import el_s0_po, el_s1_po, el_s2_po
from repro.analysis.orderings import (
    DEFAULT_ALPHAS,
    kappa_crossover_s2_vs_s0,
    kappa_crossover_s2_vs_s1,
    lifetimes_at,
    summary_chain_holds,
    verify_paper_trends,
)
from repro.errors import AnalysisError


def test_lifetimes_at_has_all_five_systems():
    el = lifetimes_at(1e-3, 0.5)
    assert set(el) == {"S0PO", "S2PO", "S1PO", "S1SO", "S0SO"}
    assert all(v > 0 for v in el.values())


def test_all_four_trends_hold_on_default_grid():
    reports = verify_paper_trends()
    assert [r.name for r in reports] == ["T1", "T2", "T3", "T4"]
    for report in reports:
        assert report.holds, f"{report.name} failed: {report.detail}"


def test_summary_chain_holds_in_condition_region():
    for alpha in DEFAULT_ALPHAS:
        for kappa in (0.1, 0.5, 0.9):
            assert summary_chain_holds(alpha, kappa)


def test_crossover_s2_vs_s1_location():
    """EL(S2PO) = EL(S1PO) at κ* slightly above the paper's 0.9 bound;
    below κ* FORTRESS wins, above it plain PB+PO wins."""
    for alpha in (1e-4, 1e-3, 1e-2):
        kappa_star = kappa_crossover_s2_vs_s1(alpha)
        assert 0.9 < kappa_star < 1.0
        assert el_s2_po(alpha, kappa_star * 0.99) > el_s1_po(alpha)
        assert el_s2_po(alpha, min(1.0, kappa_star * 1.01)) < el_s1_po(alpha)


def test_crossover_s2_vs_s0_is_theta_alpha():
    """The S0PO/S2PO crossover sits at κ = Θ(α): 'except when κ = 0'."""
    for alpha in (1e-4, 1e-3, 1e-2):
        kappa_star = kappa_crossover_s2_vs_s0(alpha)
        assert 0.5 * alpha < kappa_star < 10 * alpha
        assert el_s2_po(alpha, kappa_star * 0.5) > el_s0_po(alpha)
        assert el_s2_po(alpha, min(1.0, kappa_star * 2)) < el_s0_po(alpha)


def test_crossover_monotone_in_alpha():
    stars = [kappa_crossover_s2_vs_s0(a) for a in (1e-5, 1e-4, 1e-3)]
    assert stars == sorted(stars)


def test_crossover_without_root_raises():
    """At α = 0.6 with λ = 1 the proxy-tier losses alone already make
    S2PO worse than S1PO at κ = 0, so no crossover exists in [0, 1] and
    the bisection must refuse rather than fabricate a root."""
    with pytest.raises(AnalysisError):
        kappa_crossover_s2_vs_s1(0.6)


def test_trends_with_custom_grid_and_lambda():
    reports = verify_paper_trends(
        alphas=(1e-4, 1e-3), kappa=0.3, launchpad_fraction=0.5
    )
    assert all(r.holds for r in reports)
