"""Cross-fidelity integration tests.

The repository's three evaluation methods — analytic formulas, fast
Monte-Carlo samplers, and the full protocol-level simulation — model the
same attack.  These tests run the protocol stack over many seeds and
check its mean lifetimes against the analytic/MC predictions, and verify
that the κ mechanism (proxy detection forcing attacker pacing) emerges
from the protocol pieces.
"""

from __future__ import annotations

import pytest

from repro.analysis.lifetimes import el_s0_so, el_s1_po, el_s1_so
from repro.core.builders import add_clients, attach_attacker, build_system
from repro.core.experiment import estimate_protocol_lifetime
from repro.core.specs import s0, s1, s2
from repro.mc.montecarlo import mc_expected_lifetime
from repro.proxy.detection import DetectionPolicy, kappa_for_policy
from repro.randomization.obfuscation import Scheme

#: Relative tolerance for protocol-vs-model means over ~30 seeds.  The
#: protocol adds real effects (respawn delays, reconnects, message
#: latencies) that shave a fraction of a step either way.
TOLERANCE = 0.35


def protocol_mean(spec, trials=30, max_steps=200):
    estimate = estimate_protocol_lifetime(spec, trials=trials, max_steps=max_steps)
    assert estimate.censored == 0, "runs must complete for a fair comparison"
    return estimate.mean_steps


def test_protocol_matches_analytic_s1_so():
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=8)
    assert protocol_mean(spec, max_steps=60) == pytest.approx(
        el_s1_so(0.1), rel=TOLERANCE
    )


def test_protocol_matches_analytic_s1_po():
    spec = s1(Scheme.PO, alpha=0.1, entropy_bits=8)
    assert protocol_mean(spec, max_steps=400) == pytest.approx(
        el_s1_po(0.1), rel=TOLERANCE
    )


def test_protocol_matches_analytic_s0_so():
    spec = s0(Scheme.SO, alpha=0.1, entropy_bits=8)
    assert protocol_mean(spec, max_steps=60) == pytest.approx(
        el_s0_so(0.1), rel=TOLERANCE
    )


def test_protocol_matches_mc_s2_so():
    spec = s2(Scheme.SO, alpha=0.1, kappa=0.5, entropy_bits=8)
    mc = mc_expected_lifetime(spec, trials=50_000, seed=3)
    assert protocol_mean(spec, max_steps=100) == pytest.approx(mc.mean, rel=TOLERANCE)


def test_protocol_preserves_ordering_s1so_vs_s0so():
    """Trend 1 reproduced at the protocol level."""
    s1_mean = protocol_mean(s1(Scheme.SO, alpha=0.1, entropy_bits=8), max_steps=60)
    s0_mean = protocol_mean(s0(Scheme.SO, alpha=0.1, entropy_bits=8), max_steps=60)
    assert s1_mean > s0_mean


# ----------------------------------------------------------------------
# The κ mechanism
# ----------------------------------------------------------------------
def test_unpaced_attacker_gets_blacklisted():
    """An attacker probing indirectly at full rate trips the proxies'
    frequency analysis and loses the indirect channel entirely."""
    spec = s2(Scheme.SO, alpha=0.2, kappa=1.0, entropy_bits=8)
    policy = DetectionPolicy(window=5.0, threshold=10)  # strict
    deployed = build_system(spec, seed=5, detection_policy=policy)
    attacker = attach_attacker(deployed)
    deployed.start()
    deployed.sim.run(until=10.0)
    blacklisted = [
        proxy
        for proxy in deployed.proxies
        if proxy.detection.is_blacklisted(attacker.name)
    ]
    assert blacklisted, "full-rate probing must be detected"


def test_paced_attacker_evades_detection():
    """Probing below threshold/window per proxy evades the blacklist —
    this is why κ < 1 is the attacker's best response."""
    spec = s2(Scheme.SO, alpha=0.2, kappa=0.05, entropy_bits=8)
    policy = DetectionPolicy(window=5.0, threshold=10)
    deployed = build_system(spec, seed=6, detection_policy=policy)
    attacker = attach_attacker(deployed)
    deployed.start()
    deployed.sim.run(until=20.0)
    assert all(
        not proxy.detection.is_blacklisted(attacker.name)
        for proxy in deployed.proxies
    )


def test_kappa_for_policy_matches_observed_sustainable_rate():
    """The analytic κ formula agrees with what the mechanism admits: an
    attacker at exactly κ·ω stays clean, one at 3x that rate is caught."""
    policy = DetectionPolicy(window=10.0, threshold=20)
    omega = 51.2  # alpha=0.2 at chi=256
    kappa = kappa_for_policy(policy, omega=omega, period=1.0)
    spec_clean = s2(Scheme.SO, alpha=0.2, kappa=kappa * 0.9, entropy_bits=8)
    deployed = build_system(spec_clean, seed=7, detection_policy=policy)
    attacker = attach_attacker(deployed)
    deployed.start()
    deployed.sim.run(until=15.0)
    assert all(not p.detection.is_blacklisted(attacker.name) for p in deployed.proxies)


# ----------------------------------------------------------------------
# End-to-end service integrity under attack
# ----------------------------------------------------------------------
def test_workload_sees_corruption_only_after_compromise():
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=8)
    deployed = build_system(spec, seed=8, stop_on_compromise=False)
    attach_attacker(deployed)
    clients = add_clients(deployed, 1)
    deployed.start()
    deployed.sim.run(until=30.0)
    client = clients[0]
    monitor = deployed.monitor
    assert monitor.is_compromised  # exhaustion guarantees it
    # The client observed at least one corrupted (attacker-controlled)
    # response after compromise, and only valid ones before.
    assert client.responses_corrupted > 0
    assert client.responses_ok > 0


def test_fortified_servers_unreachable_but_service_works():
    spec = s2(Scheme.PO, alpha=0.01, kappa=0.5, entropy_bits=8)
    deployed = build_system(spec, seed=9)
    attacker = attach_attacker(deployed)
    clients = add_clients(deployed, 1)
    deployed.start()
    deployed.sim.run(until=5.0)
    # Attack surface: no direct server connections for the attacker...
    assert deployed.network.connect(attacker.name, "server-0") is None
    # ...while legitimate clients are served through the proxies.
    assert clients[0].responses_ok > 20
