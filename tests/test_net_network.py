"""Unit tests for datagram routing, partitions, drops and ACLs."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.latency import FixedLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess


class Recorder(SimProcess):
    """Test process that records everything it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name, respawn_delay=None)
        self.received: list[Message] = []

    def handle_message(self, message: Message) -> None:
        self.received.append(message)


def make_pair(latency=0.001):
    sim = Simulator(seed=1)
    net = Network(sim, latency=FixedLatency(latency))
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    net.register(a)
    net.register(b)
    return sim, net, a, b


def test_send_delivers_after_latency():
    sim, net, a, b = make_pair(latency=0.5)
    net.send(Message("a", "b", "ping", {"n": 1}))
    assert b.received == []
    sim.run()
    assert len(b.received) == 1
    assert sim.now == 0.5


def test_duplicate_registration_rejected():
    sim, net, a, b = make_pair()
    with pytest.raises(NetworkError):
        net.register(Recorder(sim, "a"))


def test_send_to_unknown_destination_raises():
    sim, net, a, b = make_pair()
    with pytest.raises(NetworkError):
        net.send(Message("a", "nobody", "ping"))


def test_message_to_crashed_process_dropped():
    sim, net, a, b = make_pair()
    b.crash()
    net.send(Message("a", "b", "ping"))
    sim.run()
    assert b.received == []
    assert net.messages_dropped == 1


def test_partition_blocks_both_directions():
    sim, net, a, b = make_pair()
    net.partition("a", "b")
    net.send(Message("a", "b", "ping"))
    net.send(Message("b", "a", "pong"))
    sim.run()
    assert a.received == [] and b.received == []
    net.heal("a", "b")
    net.send(Message("a", "b", "ping"))
    sim.run()
    assert len(b.received) == 1


def test_drop_rate_loses_messages():
    sim = Simulator(seed=2)
    net = Network(sim, latency=FixedLatency(0.001), drop_rate=0.5)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    net.register(a)
    net.register(b)
    for _ in range(200):
        net.send(Message("a", "b", "ping"))
    sim.run()
    assert 40 < len(b.received) < 160  # roughly half lost


def test_invalid_drop_rate_rejected():
    sim = Simulator()
    with pytest.raises(NetworkError):
        Network(sim, drop_rate=1.0)


def test_broadcast_reaches_all():
    sim = Simulator(seed=3)
    net = Network(sim)
    nodes = [Recorder(sim, f"n{i}") for i in range(4)]
    for node in nodes:
        net.register(node)
    net.broadcast("n0", ["n1", "n2", "n3"], "hello", {"x": 1})
    sim.run()
    assert all(len(n.received) == 1 for n in nodes[1:])
    assert nodes[0].received == []


def test_sender_acl_enforced():
    sim, net, a, b = make_pair()
    b.allowed_senders = {"proxy-0"}
    net.send(Message("a", "b", "ping"))
    sim.run()
    assert b.received == []
    assert net.messages_dropped == 1


def test_counters_track_sends_and_deliveries():
    sim, net, a, b = make_pair()
    net.send(Message("a", "b", "ping"))
    sim.run()
    assert net.messages_sent == 1
    assert net.messages_delivered == 1
    assert net.messages_dropped == 0


def test_process_lookup():
    sim, net, a, b = make_pair()
    assert net.process("a") is a
    assert net.knows("b")
    assert not net.knows("zz")
    with pytest.raises(NetworkError):
        net.process("zz")
