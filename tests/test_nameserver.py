"""Unit tests for the trusted name server."""

from __future__ import annotations

from repro.net.latency import FixedLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.proxy.nameserver import NS_INFO, NS_LOOKUP, Directory, NameServer
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess


class Asker(SimProcess):
    def __init__(self, sim, name):
        super().__init__(sim, name, respawn_delay=None)
        self.answers: list = []

    def handle_message(self, message: Message) -> None:
        if message.mtype == NS_INFO:
            self.answers.append(message.payload)


def test_lookup_returns_directory():
    sim = Simulator(seed=1)
    net = Network(sim, latency=FixedLatency(0.001))
    directory = Directory(
        proxy_addresses=["proxy-0", "proxy-1"],
        proxy_keys={"proxy-0": "pk0", "proxy-1": "pk1"},
        server_indices=[0, 1, 2],
        server_keys={0: "sk0", 1: "sk1", 2: "sk2"},
        replication="primary-backup",
    )
    ns = NameServer(sim, net, directory)
    net.register(ns)
    asker = Asker(sim, "client")
    net.register(asker)
    net.send(Message("client", "nameserver", NS_LOOKUP, {}))
    sim.run(until=0.1)
    assert len(asker.answers) == 1
    answer = asker.answers[0]
    assert answer["proxy_addresses"] == ["proxy-0", "proxy-1"]
    assert answer["server_indices"] == [0, 1, 2]
    assert answer["replication"] == "primary-backup"
    assert ns.lookups_served == 1


def test_fortified_directory_hides_server_addresses():
    """Paper §3: clients know server *indices* and keys, never addresses."""
    directory = Directory(
        proxy_addresses=["proxy-0"],
        server_indices=[0, 1, 2],
        server_keys={0: "k"},
    )
    payload = directory.as_payload()
    assert payload["server_addresses"] == {}
    assert payload["server_indices"] == [0, 1, 2]


def test_one_tier_directory_publishes_addresses():
    directory = Directory(
        server_indices=[0, 1],
        server_addresses={0: "server-0", 1: "server-1"},
        replication="smr",
        fault_threshold=1,
    )
    payload = directory.as_payload()
    assert payload["server_addresses"] == {0: "server-0", 1: "server-1"}
    assert payload["fault_threshold"] == 1


def test_payload_is_a_copy():
    directory = Directory(proxy_addresses=["p"])
    payload = directory.as_payload()
    payload["proxy_addresses"].append("evil")
    assert directory.proxy_addresses == ["p"]


def test_nameserver_ignores_other_message_types():
    sim = Simulator(seed=2)
    net = Network(sim, latency=FixedLatency(0.001))
    ns = NameServer(sim, net, Directory())
    net.register(ns)
    asker = Asker(sim, "client")
    net.register(asker)
    net.send(Message("client", "nameserver", "write_attempt", {"evil": True}))
    sim.run(until=0.1)
    assert asker.answers == []
    assert ns.lookups_served == 0
