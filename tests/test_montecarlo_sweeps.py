"""Unit tests for the MC runner, survival curves and sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.lifetimes import expected_lifetime, survival_curve
from repro.core.specs import s1, s2
from repro.errors import AnalysisError, ConfigurationError
from repro.mc.montecarlo import mc_expected_lifetime, mc_survival_curve
from repro.mc.sweeps import (
    FIGURE1_ALPHAS,
    FIGURE2_KAPPAS,
    figure1_series,
    figure2_series,
    sweep_alpha,
    sweep_kappa,
)
from repro.randomization.obfuscation import Scheme


def test_mc_estimate_fields_and_ci():
    spec = s1(Scheme.PO, alpha=1e-2)
    estimate = mc_expected_lifetime(spec, trials=20_000, seed=1)
    assert estimate.label == "S1PO"
    assert estimate.trials == 20_000
    assert estimate.stats.ci_low < estimate.mean < estimate.stats.ci_high
    assert estimate.within_ci(estimate.mean)


def test_mc_needs_at_least_two_trials():
    with pytest.raises(ConfigurationError):
        mc_expected_lifetime(s1(Scheme.PO, alpha=1e-2), trials=1)


def test_mc_survival_curve_matches_analytic():
    spec = s1(Scheme.PO, alpha=0.05)
    empirical = mc_survival_curve(spec, steps=10, trials=40_000, seed=2)
    analytic = survival_curve(spec, 10)
    assert np.abs(empirical - analytic).max() < 0.02


def test_mc_survival_curve_validation():
    with pytest.raises(ConfigurationError):
        mc_survival_curve(s1(Scheme.PO, alpha=0.05), steps=0)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def test_sweep_alpha_analytic_path():
    series = sweep_alpha(s1(Scheme.PO), alphas=(1e-3, 1e-2))
    assert series.label == "S1PO"
    assert series.xs == [1e-3, 1e-2]
    assert series.means == pytest.approx([999.0, 99.0])
    # Analytic points carry degenerate CIs.
    assert series.points[0].ci_low == series.points[0].ci_high


def test_sweep_alpha_mc_path_has_real_cis():
    series = sweep_alpha(s1(Scheme.PO), alphas=(1e-2,), trials=5000)
    point = series.points[0]
    assert point.ci_low < point.mean < point.ci_high


def test_sweep_alpha_s2_so_falls_back_to_mc():
    series = sweep_alpha(s2(Scheme.SO, kappa=0.5), alphas=(1e-2,))
    point = series.points[0]
    assert point.ci_low < point.ci_high  # MC was used despite trials=None


def test_sweep_alpha_empty_grid_rejected():
    with pytest.raises(AnalysisError):
        sweep_alpha(s1(Scheme.PO), alphas=())


def test_sweep_kappa_only_for_s2():
    with pytest.raises(AnalysisError):
        sweep_kappa(s1(Scheme.PO))
    series = sweep_kappa(s2(Scheme.PO, alpha=1e-3), kappas=(0.0, 0.5, 1.0))
    assert series.x_name == "kappa"
    assert series.means[0] > series.means[1] > series.means[2]


def test_figure1_series_shape_and_order():
    series_list = figure1_series(alphas=(1e-4, 1e-3), kappa=0.5)
    assert [s.label for s in series_list] == ["S0PO", "S2PO", "S1PO", "S1SO", "S0SO"]
    for series in series_list:
        assert len(series.points) == 2
        assert all(p.mean > 0 for p in series.points)


def test_figure1_matches_expected_lifetime_pointwise():
    series_list = figure1_series(alphas=(1e-3,), kappa=0.5)
    by_label = {s.label: s.points[0].mean for s in series_list}
    from repro.core.specs import paper_systems

    for spec in paper_systems(alpha=1e-3, kappa=0.5):
        assert by_label[spec.label] == pytest.approx(expected_lifetime(spec))


def test_figure2_series_one_curve_per_kappa():
    series_list = figure2_series(alphas=(1e-3,), kappas=(0.0, 0.5))
    assert len(series_list) == 2
    assert series_list[0].label == "S2PO kappa=0"
    assert series_list[0].points[0].mean > series_list[1].points[0].mean


def test_default_grids_sensible():
    assert FIGURE1_ALPHAS[0] == 1e-5 and FIGURE1_ALPHAS[-1] == 1e-2
    assert 0.0 in FIGURE2_KAPPAS and 0.9 in FIGURE2_KAPPAS and 1.0 in FIGURE2_KAPPAS
