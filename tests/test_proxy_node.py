"""Protocol tests for the FORTRESS proxy tier."""

from __future__ import annotations

import random

from repro.crypto.signatures import Signed, SignatureAuthority
from repro.net.latency import FixedLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.proxy.detection import DetectionPolicy
from repro.proxy.proxy import CLIENT_ERROR, CLIENT_REQUEST, CLIENT_RESPONSE, ProxyNode
from repro.randomization.keyspace import KeySpace
from repro.replication.primary_backup import PROBE_OP, PBServer
from repro.replication.state_machine import KVStoreService
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess


class FortressClient(SimProcess):
    """Records doubly-signed responses and errors."""

    def __init__(self, sim, name, authority):
        super().__init__(sim, name, respawn_delay=None)
        self.authority = authority
        self.responses: list = []
        self.errors: list = []
        self.invalid_envelopes = 0

    def handle_message(self, message: Message) -> None:
        if message.mtype == CLIENT_RESPONSE:
            envelope = message.payload["envelope"]
            if self.authority.verify_oversigned(envelope):
                self.responses.append(envelope)
            else:
                self.invalid_envelopes += 1
        elif message.mtype == CLIENT_ERROR:
            self.errors.append(message.payload)


def build_fortress(n_servers=3, n_proxies=3, seed=1, policy=None):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=FixedLatency(0.001))
    authority = SignatureAuthority(random.Random(3))
    keyspace = KeySpace(8)
    servers = []
    for i in range(n_servers):
        server = PBServer(
            sim,
            name=f"server-{i}",
            index=i,
            keyspace=keyspace,
            rng=random.Random(20 + i),
            service=KVStoreService(),
            authority=authority,
            network=network,
        )
        network.register(server)
        servers.append(server)
    names = [s.name for s in servers]
    for s in servers:
        s.configure(names)
    proxies = []
    for i in range(n_proxies):
        proxy = ProxyNode(
            sim,
            name=f"proxy-{i}",
            keyspace=keyspace,
            rng=random.Random(40 + i),
            authority=authority,
            network=network,
            policy=policy,
            request_timeout=0.2,
        )
        network.register(proxy)
        proxy.configure(names)
        proxies.append(proxy)
    client = FortressClient(sim, "client", authority)
    network.register(client)
    return sim, network, authority, servers, proxies, client


def send_client_request(
    network, request_id, body, proxies=("proxy-0",), client="client"
):
    for proxy in proxies:
        network.send(
            Message(
                client,
                proxy,
                CLIENT_REQUEST,
                {"request_id": request_id, "client": client, "body": body},
            )
        )


def test_forward_and_oversign_roundtrip():
    sim, net, auth, servers, proxies, client = build_fortress()
    send_client_request(net, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=0.5)
    assert len(client.responses) == 1
    envelope = client.responses[0]
    assert envelope.signer == "proxy-0"
    inner = envelope.payload
    assert isinstance(inner, Signed)
    assert inner.signer.startswith("server-")
    assert inner.payload["response"] == {"ok": True}
    assert proxies[0].responses_delivered == 1


def test_all_proxies_respond_when_client_broadcasts():
    sim, net, auth, servers, proxies, client = build_fortress()
    send_client_request(
        net, "r1", {"op": "get", "key": "zz"}, proxies=("proxy-0", "proxy-1", "proxy-2")
    )
    sim.run(until=0.5)
    assert len(client.responses) == 3
    assert {e.signer for e in client.responses} == {"proxy-0", "proxy-1", "proxy-2"}


def test_duplicate_in_flight_request_not_double_forwarded():
    sim, net, auth, servers, proxies, client = build_fortress()
    send_client_request(net, "r1", {"op": "put", "key": "a", "value": 1})
    send_client_request(net, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=0.5)
    assert proxies[0].requests_forwarded == 1


def test_probe_causes_timeout_error_and_invalid_log():
    sim, net, auth, servers, proxies, client = build_fortress()
    wrong = (servers[0].address_space.key + 1) % servers[0].keyspace.size
    send_client_request(net, "p1", {"op": PROBE_OP, "guess": wrong})
    sim.run(until=1.0)
    assert client.errors and client.errors[0]["error"] == "timeout"
    assert proxies[0].detection.invalid_count("client") == 1
    assert servers[0].crash_count == 1


def test_blacklisted_client_requests_dropped():
    policy = DetectionPolicy(window=100.0, threshold=2)
    sim, net, auth, servers, proxies, client = build_fortress(policy=policy)
    wrong = (servers[0].address_space.key + 1) % servers[0].keyspace.size
    for i in range(4):
        send_client_request(net, f"p{i}", {"op": PROBE_OP, "guess": wrong})
        sim.run(until=(i + 1) * 0.5)
    assert proxies[0].detection.is_blacklisted("client")
    dropped_before = proxies[0].dropped_blacklisted
    send_client_request(net, "r-legit", {"op": "get", "key": "a"})
    sim.run(until=3.0)
    assert proxies[0].dropped_blacklisted == dropped_before + 1


def test_forged_server_response_rejected():
    """A message claiming to be a server response but signed with a bogus
    key must not be over-signed and delivered."""
    sim, net, auth, servers, proxies, client = build_fortress()
    send_client_request(net, "r1", {"op": "get", "key": "a"})

    def inject():
        fake = Signed(
            payload={
                "request_id": "r1",
                "response": {"ok": True, "value": "evil"},
                "index": 0,
            },
            signer="server-0",
            signature="forged",
        )
        net.send(Message("server-0", "proxy-0", "server_response", {"signed": fake}))

    sim.schedule(0.002, inject)
    sim.run(until=0.5)
    # The delivered response must be the authentic one, not the forgery.
    assert len(client.responses) == 1
    inner = client.responses[0].payload
    assert inner.payload["response"] != {"ok": True, "value": "evil"}


def test_proxy_probe_surface_direct_connection():
    sim, net, auth, servers, proxies, client = build_fortress()
    conn = net.connect("client", "proxy-1")
    wrong = (proxies[1].address_space.key + 1) % proxies[1].keyspace.size
    conn.send("client", {"kind": "probe", "guess": wrong})
    sim.run(until=0.1)
    assert proxies[1].crash_count == 1
    sim.run(until=0.5)
    conn2 = net.connect("client", "proxy-1")
    conn2.send("client", {"kind": "probe", "guess": proxies[1].address_space.key})
    sim.run(until=1.0)
    assert proxies[1].compromised


def test_proxy_reboot_clears_pending_table():
    sim, net, auth, servers, proxies, client = build_fortress()
    # Stop servers so the request stays pending.
    for s in servers:
        s.stop()
    send_client_request(net, "r1", {"op": "get", "key": "a"})
    sim.run(until=0.05)
    proxies[0].begin_reboot(0.0)
    assert proxies[0]._pending == {}


def test_smr_voting_mode_waits_for_f_plus_1():
    """FORTRESS supports an SMR server tier: the proxy must collect f+1
    matching responses before over-signing."""
    sim = Simulator(seed=2)
    network = Network(sim, latency=FixedLatency(0.001))
    authority = SignatureAuthority(random.Random(8))
    keyspace = KeySpace(8)
    proxy = ProxyNode(
        sim,
        "proxy-0",
        keyspace,
        random.Random(1),
        authority,
        network,
        server_replication="smr",
        fault_threshold=1,
        request_timeout=0.5,
    )
    network.register(proxy)
    proxy.configure([])  # we inject responses by hand
    client = FortressClient(sim, "client", authority)
    network.register(client)
    for name in ("replica-0", "replica-1"):
        authority.issue_keypair(name)
    network.send(
        Message(
            "client",
            "proxy-0",
            CLIENT_REQUEST,
            {"request_id": "r1", "client": "client", "body": {"op": "get"}},
        )
    )
    sim.run(until=0.01)

    def respond(name, index):
        signed = authority.sign(
            name, {"request_id": "r1", "response": {"ok": True}, "index": index}
        )
        network.send(Message(name, "proxy-0", "server_response", {"signed": signed}))

    # Register fake replicas as processes so the network can route.
    for name in ("replica-0", "replica-1"):
        network.register(SimProcess(sim, name, respawn_delay=None))
    respond("replica-0", 0)
    sim.run(until=0.05)
    assert client.responses == []  # one vote is not enough at f=1
    respond("replica-1", 1)
    sim.run(until=0.2)
    assert len(client.responses) == 1
