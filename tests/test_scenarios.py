"""Tests for the scenario subsystem.

Locks down the three contracts the subsystem ships with:

* **declarative round trip** — every spec (including all built-ins)
  survives dict/JSON serialization bit-exactly, so scenario campaign
  records stay self-describing and diffable;
* **deterministic composition** — fault plans derive from the run's
  seeded RNG, workloads use fixed names, adversaries share the stock
  key-pool discipline: scenario campaigns are bit-identical for any
  worker count or batch size (mirroring ``test_protocol_campaign``);
* **fast-forward gating** — the PR 4 epoch fast-forward never arms
  while injector events or workload traffic are in play, and still
  arms for pure-attack scenarios.
"""

from __future__ import annotations

import json

import pytest

from repro.core.campaign import campaign_record, run_scenario_campaign
from repro.errors import ConfigurationError
from repro.faults.injector import CrashFault, MessageLossFault, PartitionFault
from repro.scenarios import (
    AdversarySpec,
    FaultPlanSpec,
    ScenarioSpec,
    WorkloadSpec,
    all_scenarios,
    build_fault_plan,
    deploy_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)

#: A small, faulty, workload-carrying scenario used by the invariance
#: and gating tests below (overrides keep every run cheap).
TORTURE = get_scenario("combined-stress").replace(
    name="test-combined-small",
    entropy_bits=6,
    alphas=(0.3,),
)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_builtin_library_has_at_least_eight_scenarios():
    names = scenario_names()
    assert len(names) >= 8
    for required in (
        "paper-baseline",
        "crash-storm-under-attack",
        "rolling-outages",
        "partitioned-attacker",
        "lossy-wan",
        "degraded-timing",
        "stealth-prober",
        "coordinated-attacker",
    ):
        assert required in names


def test_register_scenario_decorator_and_duplicate_rejection():
    @register_scenario
    def _extra() -> ScenarioSpec:
        return ScenarioSpec(name="test-extra", description="ephemeral")

    try:
        assert get_scenario("test-extra").description == "ephemeral"
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_scenario
            def _dup() -> ScenarioSpec:
                return ScenarioSpec(name="test-extra", description="again")

    finally:
        unregister_scenario("test-extra")


def test_register_scenario_rejects_non_spec_factories():
    with pytest.raises(ConfigurationError, match="not a ScenarioSpec"):

        @register_scenario
        def _bad():
            return {"name": "nope"}


def test_get_scenario_unknown_name_lists_known():
    with pytest.raises(ConfigurationError, match="registered:"):
        get_scenario("no-such-scenario")


# ----------------------------------------------------------------------
# Spec validation + round trip
# ----------------------------------------------------------------------
def test_every_builtin_round_trips_through_dict_and_json():
    for spec in all_scenarios():
        assert ScenarioSpec.from_dict(spec.as_dict()) == spec
        rehydrated = ScenarioSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert rehydrated == spec


def test_spec_validation_rejects_bad_axes_and_kinds():
    with pytest.raises(ConfigurationError):
        ScenarioSpec(name="", description="x")
    with pytest.raises(ConfigurationError):
        ScenarioSpec(name="x", description="x", systems=("s3",))
    with pytest.raises(ConfigurationError):
        ScenarioSpec(name="x", description="x", schemes=())
    with pytest.raises(ConfigurationError):
        ScenarioSpec(name="x", description="x", timing="warp")
    with pytest.raises(ConfigurationError):
        AdversarySpec(kind="quantum")
    with pytest.raises(ConfigurationError):
        AdversarySpec(kind="stealth", duty_fraction=0.0)
    with pytest.raises(ConfigurationError):
        AdversarySpec(kind="coordinated", agents=0)
    with pytest.raises(ConfigurationError):
        FaultPlanSpec(kind="meteor_strike")
    with pytest.raises(ConfigurationError):
        FaultPlanSpec(kind="loss_windows", windows=())
    with pytest.raises(ConfigurationError):
        FaultPlanSpec(kind="loss_windows", windows=((1.0, 1.0, 2.0),))
    with pytest.raises(ConfigurationError):
        FaultPlanSpec(kind="rolling_outages", period_steps=1.0, down_steps=1.0)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(kind="tsunami")
    with pytest.raises(ConfigurationError):
        ScenarioSpec(
            name="x",
            description="x",
            systems=("s1",),
            faults=FaultPlanSpec(kind="crash_storm", tier="proxies"),
        )


def test_grid_mirrors_campaign_grid_semantics():
    spec = ScenarioSpec(
        name="x",
        description="x",
        systems=("s1", "s2"),
        schemes=("po", "so"),
        alphas=(0.1, 0.2),
        kappas=(0.25, 0.5),
    )
    grid = spec.grid()
    s1_points = [s for s in grid if s.label.startswith("S1")]
    s2_points = [s for s in grid if s.label.startswith("S2")]
    assert len(s1_points) == 2 * 2  # kappa collapses for non-S2
    assert len(s2_points) == 2 * 2 * 2
    assert len(set(grid)) == len(grid)


# ----------------------------------------------------------------------
# Fault-plan generation
# ----------------------------------------------------------------------
def test_fault_plans_are_seed_deterministic_and_seed_sensitive():
    scenario = get_scenario("crash-storm-under-attack")
    spec = scenario.grid()[0]

    def plan_for(seed):
        deployed = deploy_scenario(spec, scenario, seed=seed, max_steps=50)
        return build_fault_plan(
            scenario.faults,
            deployed,
            horizon=50.0,
            rng=deployed.sim.rng.stream("scenario:faults-probe"),
        )

    assert plan_for(7) == plan_for(7)
    assert plan_for(7) != plan_for(8)


def test_fault_plan_kinds_produce_expected_event_types():
    cases = [
        (get_scenario("crash-storm-under-attack"), CrashFault),
        (get_scenario("rolling-outages"), CrashFault),
        (get_scenario("partitioned-attacker"), PartitionFault),
        (get_scenario("lossy-wan"), MessageLossFault),
    ]
    for scenario, expected_type in cases:
        spec = scenario.grid()[0]
        deployed = deploy_scenario(spec, scenario, seed=3, max_steps=60)
        assert deployed.injector is not None, scenario.name
        plan = build_fault_plan(
            scenario.faults,
            deployed,
            horizon=60.0,
            rng=deployed.sim.rng.stream("probe"),
        )
        assert plan, scenario.name
        assert all(isinstance(f, type(plan[0])) for f in plan)
        assert isinstance(plan[0], expected_type), scenario.name


def test_loss_windows_clamp_to_short_horizons():
    scenario = get_scenario("lossy-wan")
    spec = scenario.grid()[0]
    deployed = deploy_scenario(spec, scenario, seed=1, max_steps=8)
    # windows starting at steps 4 and (10, 20) — only the first fits
    plan = build_fault_plan(
        scenario.faults,
        deployed,
        horizon=8.0,
        rng=deployed.sim.rng.stream("probe"),
    )
    assert len(plan) == 1 and plan[0].time == 4.0


def test_proxy_tier_crash_plan_rejected_on_mixed_grids():
    """A proxies-tier crash/outage plan on a grid with any non-S2 point
    would crash mid-campaign when the proxy-less point builds; the spec
    rejects it at construction instead."""
    with pytest.raises(ConfigurationError, match="all-S2 grid"):
        ScenarioSpec(
            name="x",
            description="x",
            systems=("s1", "s2"),
            faults=FaultPlanSpec(kind="crash_storm", tier="proxies"),
        )
    # attacker_partition falls back to the server tier, so mixed grids
    # are fine there.
    ScenarioSpec(
        name="x",
        description="x",
        systems=("s1", "s2"),
        faults=FaultPlanSpec(kind="attacker_partition", tier="proxies"),
    )


def test_attacker_partition_covers_coordinated_agent_endpoints():
    """A coordinated adversary probes from its agent machines: the
    partition plan must cut those endpoints too, or the 'attacker cut
    off' scenario partitions nothing that matters."""
    scenario = get_scenario("partitioned-attacker").replace(
        name="test-partitioned-coordinated",
        adversary=AdversarySpec(kind="coordinated", agents=2),
    )
    spec = scenario.grid()[0]
    deployed = deploy_scenario(spec, scenario, seed=2, max_steps=60)
    plan = build_fault_plan(
        scenario.faults,
        deployed,
        horizon=60.0,
        rng=deployed.sim.rng.stream("probe"),
    )
    endpoints = {e for f in plan for e in (f.a, f.b)}
    assert "attacker~agent0" in endpoints or "attacker~agent1" in endpoints
    assert deployed.attacker.endpoint_names == (
        "attacker", "attacker~agent0", "attacker~agent1"
    )


def test_attacker_partition_cuts_the_probe_paths():
    scenario = get_scenario("partitioned-attacker")
    spec = scenario.grid()[0]
    deployed = deploy_scenario(spec, scenario, seed=2, max_steps=60)
    plan = build_fault_plan(
        scenario.faults,
        deployed,
        horizon=60.0,
        rng=deployed.sim.rng.stream("probe"),
    )
    endpoints = {frozenset((f.a, f.b)) for f in plan}
    assert all("attacker" in pair for pair in endpoints)
    proxy_names = set(deployed.proxy_names)
    assert all(pair & proxy_names for pair in endpoints)


# ----------------------------------------------------------------------
# Workload installation
# ----------------------------------------------------------------------
def test_open_loop_workload_installs_named_clients_that_serve():
    scenario = get_scenario("rolling-outages")
    spec = scenario.grid()[0]
    deployed = deploy_scenario(spec, scenario, seed=4, max_steps=40)
    assert [c.name for c in deployed.clients] == ["openloop-0"]
    deployed.start()
    deployed.sim.run(until=10.0)
    client = deployed.clients[0]
    assert client.requests_sent > 0
    assert client.responses_ok > 0  # a 1-down-at-a-time PB tier serves


def test_closed_loop_workload_uses_stock_clients():
    scenario = TORTURE.replace(
        name="test-closed-loop",
        faults=FaultPlanSpec(),
        workload=WorkloadSpec(kind="closed_loop", clients=2),
    )
    spec = scenario.grid()[0]
    deployed = deploy_scenario(spec, scenario, seed=1, max_steps=20)
    assert len(deployed.clients) == 2


# ----------------------------------------------------------------------
# Fast-forward gating (acceptance: provably inert under faults/workload)
# ----------------------------------------------------------------------
def test_fast_forward_refuses_to_arm_with_faults_or_workload():
    for name in (
        "crash-storm-under-attack",
        "rolling-outages",
        "partitioned-attacker",
        "lossy-wan",
        "combined-stress",
    ):
        scenario = get_scenario(name)
        spec = scenario.grid()[0]
        deployed = deploy_scenario(spec, scenario, seed=0, max_steps=40)
        assert deployed.attacker._fast_forward is False, name


def test_fast_forward_still_arms_for_pure_attack_scenarios():
    for name in (
        "paper-baseline",
        "degraded-timing",
        "stealth-prober",
        "coordinated-attacker",
    ):
        scenario = get_scenario(name)
        spec = scenario.grid()[0]
        deployed = deploy_scenario(spec, scenario, seed=0, max_steps=40)
        assert deployed.attacker._fast_forward is True, name


def test_faulty_scenario_runs_the_full_timeline_when_censored():
    """With the fast-forward refused, a censored faulty run must reach
    the horizon — pending injector events are never skipped."""
    from repro.core.experiment import run_protocol_lifetime

    scenario = get_scenario("partitioned-attacker")
    spec = scenario.grid()[0]
    outcome = None
    for seed in range(6):
        candidate = run_protocol_lifetime(
            spec, seed=seed, max_steps=25, scenario=scenario
        )
        if not candidate.compromised:
            outcome = candidate
            break
    assert outcome is not None, "no censored run in the first seeds"
    assert outcome.steps == 25
    assert outcome.time == 25 * spec.period  # horizon, not an early stop


# ----------------------------------------------------------------------
# Campaign invariance (mirrors test_protocol_campaign)
# ----------------------------------------------------------------------
def test_scenario_campaign_bit_identical_across_workers_and_batches():
    kwargs = dict(trials=4, max_steps=30, seed=9)
    serial = run_scenario_campaign(TORTURE, workers=1, **kwargs)
    fanned = run_scenario_campaign(TORTURE, workers=4, **kwargs)
    rebatched = run_scenario_campaign(TORTURE, workers=4, batch_size=2, **kwargs)
    for a, b, c in zip(serial, fanned, rebatched):
        assert a.spec == b.spec == c.spec
        assert a.stats == b.stats == c.stats
        assert a.censored == b.censored == c.censored
        steps = [o.steps for o in a.outcomes]
        assert steps == [o.steps for o in b.outcomes]
        assert steps == [o.steps for o in c.outcomes]
        probes = [o.probes_direct for o in a.outcomes]
        assert probes == [o.probes_direct for o in b.outcomes]
        assert probes == [o.probes_direct for o in c.outcomes]


def test_scenario_campaign_bit_identical_under_serial_fallback(monkeypatch):
    baseline = run_scenario_campaign(
        TORTURE, trials=4, max_steps=30, seed=3, batch_size=2
    )

    def _refuse(*args, **kwargs):
        raise PermissionError("process pools forbidden")

    monkeypatch.setattr("repro.mc.executor.ProcessPoolExecutor", _refuse)
    with pytest.warns(RuntimeWarning, match="process pool unavailable"):
        fallback = run_scenario_campaign(
            TORTURE, trials=4, max_steps=30, seed=3, workers=4, batch_size=2
        )
    for a, b in zip(baseline, fallback):
        assert a.stats == b.stats
        assert [o.steps for o in a.outcomes] == [o.steps for o in b.outcomes]


def test_scenario_campaign_precision_mode_invariant():
    scenario = get_scenario("crash-storm-under-attack").replace(
        name="test-precision-small",
        entropy_bits=6,
        alphas=(0.3,),
        systems=("s1",),
    )
    kwargs = dict(max_steps=50, seed=2, precision=0.35, min_trials=6, max_trials=60)
    serial = run_scenario_campaign(scenario, workers=1, **kwargs)
    fanned = run_scenario_campaign(scenario, workers=4, **kwargs)
    a, b = serial.estimates[0], fanned.estimates[0]
    assert a.stats == b.stats
    assert a.converged == b.converged
    assert [o.steps for o in a.outcomes] == [o.steps for o in b.outcomes]


def test_scenario_campaign_record_embeds_the_scenario():
    result = run_scenario_campaign(TORTURE, trials=2, max_steps=20, seed=1)
    record = campaign_record(
        result,
        timing=TORTURE.timing_spec(),
        timing_preset=TORTURE.timing,
        scenario=TORTURE,
    )
    assert record["scenario"] == TORTURE.name
    assert ScenarioSpec.from_dict(record["scenario_spec"]) == TORTURE
    assert json.loads(json.dumps(record)) == record


# ----------------------------------------------------------------------
# Adversary composition at the scenario level
# ----------------------------------------------------------------------
def test_stealth_scenario_mounts_duty_cycled_streams():
    from repro.attacker.strategies import DutyCycledProbeDriver

    scenario = get_scenario("stealth-prober")
    spec = scenario.grid()[0]
    deployed = deploy_scenario(spec, scenario, seed=0, max_steps=20)
    direct = [
        d for d in deployed.attacker._drivers
        if isinstance(d, DutyCycledProbeDriver)
    ]
    assert len(direct) == spec.n_proxies


def test_coordinated_scenario_mounts_agent_endpoints():
    scenario = get_scenario("coordinated-attacker")
    spec = scenario.grid()[0]
    deployed = deploy_scenario(spec, scenario, seed=0, max_steps=20)
    agents = scenario.adversary.agents
    for k in range(agents):
        assert deployed.network.knows(f"attacker~agent{k}")
    # agents × proxies direct streams, all driven by one orchestrator
    assert len(deployed.attacker._drivers) == agents * spec.n_proxies
    prober = deployed.attacker._indirect[0]
    assert prober.identities == agents
