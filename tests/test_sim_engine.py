"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_resolve_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_max_events_bounds_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    keep = sim.schedule(1.0, fired.append, "keep")
    drop = sim.schedule(1.0, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert not keep.cancelled


def test_cancel_via_simulator_method():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n: int) -> None:
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()  # can resume afterwards
    assert fired == ["a", "b"]


def test_pending_and_executed_counters():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    e = sim.schedule(2.0, lambda: None)
    e.cancel()
    assert sim.pending_events == 1
    sim.run()
    assert sim.events_executed == 1


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter() -> None:
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


# ----------------------------------------------------------------------
# pending_events live counter (O(1), maintained on schedule/cancel/pop)
# ----------------------------------------------------------------------
def test_pending_events_counts_schedule_cancel_and_pop():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending_events == 5
    events[0].cancel()
    events[3].cancel()
    assert sim.pending_events == 3
    sim.step()  # executes the event at t=2.0
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_double_cancel_decrements_once():
    sim = Simulator()
    e = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e.cancel()
    e.cancel()
    sim.cancel(e)
    assert sim.pending_events == 1


def test_cancel_after_fire_does_not_corrupt_counter():
    sim = Simulator()
    e = sim.schedule(1.0, lambda: None)
    later = sim.schedule(2.0, lambda: None)
    sim.step()
    e.cancel()  # already fired: must be a no-op for the counter
    assert sim.pending_events == 1
    later.cancel()
    assert sim.pending_events == 0


def test_cancel_from_within_a_callback_keeps_counter_consistent():
    sim = Simulator()
    victim = sim.schedule(2.0, lambda: None)
    sim.schedule(1.0, victim.cancel)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_executed == 1


def test_pending_counter_matches_heap_scan_under_churn():
    import random as pyrandom

    sim = Simulator()
    rng = pyrandom.Random(9)
    live = []
    for _ in range(500):
        action = rng.random()
        if action < 0.5 or not live:
            live.append(sim.schedule(rng.uniform(0.0, 10.0), lambda: None))
        elif action < 0.8:
            live.pop(rng.randrange(len(live))).cancel()
        else:
            sim.run(until=sim.now + rng.uniform(0.0, 0.5))
            live = [e for e in live if not e.cancelled and e.time > sim.now]
    # Heap entries are [time, seq, fn, args] lists; fn is None for
    # cancelled (or already-fired) entries.
    scan = sum(1 for entry in sim._heap if entry[2] is not None)
    assert sim.pending_events == scan


# ----------------------------------------------------------------------
# Fast-path kernel edge cases (list-entry heap, recycled-slot guard,
# no-handle scheduling, in-place compaction)
# ----------------------------------------------------------------------
def test_cancel_after_fire_is_safe_even_after_later_scheduling():
    """A late cancel() must stay a no-op once the event fired — even if
    new events have since been scheduled (the sequence-number guard, not
    object identity, is what protects the pending count)."""
    sim = Simulator()
    fired = []
    stale = sim.schedule(1.0, fired.append, "a")
    sim.run()
    replacements = [sim.schedule(1.0, fired.append, i) for i in range(50)]
    pending_before = sim.pending_events
    stale.cancel()
    stale.cancel()
    assert sim.pending_events == pending_before
    sim.run()
    assert len(fired) == 1 + len(replacements)


def test_schedule_at_now_during_run_executes_in_same_run():
    sim = Simulator()
    fired = []

    def first() -> None:
        fired.append("first")
        sim.schedule_at(sim.now, fired.append, "same-time")
        sim.schedule(0.0, fired.append, "zero-delay")

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "same-time", "zero-delay"]
    assert sim.now == 1.0


def test_schedule_fast_interleaves_fifo_with_schedule():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "handle-1")
    sim.schedule_fast(1.0, fired.append, "fast-1")
    sim.schedule(1.0, fired.append, "handle-2")
    sim.schedule_fast(1.0, fired.append, "fast-2")
    sim.run()
    assert fired == ["handle-1", "fast-1", "handle-2", "fast-2"]


def test_schedule_fast_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_fast(-1e-9, lambda: None)
    assert sim.pending_events == 0


def test_mass_cancellation_compacts_heap():
    """Cancelled entries must not accumulate: after cancelling the bulk
    of a large heap, the heap itself shrinks (in-place compaction) and
    the survivors still fire in order."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(5000)]
    keep = [sim.schedule(10_000.0 + i, fired.append, i) for i in range(3)]
    for event in doomed:
        event.cancel()
    assert sim.pending_events == len(keep)
    assert len(sim._heap) < 1000  # compaction ran; dead entries dropped
    sim.run()
    assert fired == [0, 1, 2]
    assert all(not e.cancelled for e in keep)


def test_compaction_during_run_keeps_heap_identity():
    """A callback that mass-cancels mid-run triggers compaction while
    run() holds a local reference to the heap; the in-place rebuild must
    keep that reference valid (later events still execute)."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(50.0 + i, lambda: None) for i in range(500)]

    def massacre() -> None:
        for event in doomed:
            event.cancel()

    sim.schedule(1.0, massacre)
    sim.schedule(2.0, fired.append, "after")
    sim.run()
    assert fired == ["after"]
    assert sim.pending_events == 0


def test_pending_events_invariant_under_mixed_fast_and_handle_churn():
    import random as pyrandom

    sim = Simulator()
    rng = pyrandom.Random(17)
    live = []
    for _ in range(800):
        action = rng.random()
        if action < 0.35:
            live.append(sim.schedule(rng.uniform(0.0, 10.0), lambda: None))
        elif action < 0.6:
            sim.schedule_fast(rng.uniform(0.0, 10.0), lambda: None)
        elif action < 0.8 and live:
            live.pop(rng.randrange(len(live))).cancel()
        else:
            sim.run(until=sim.now + rng.uniform(0.0, 0.4))
    scan = sum(1 for entry in sim._heap if entry[2] is not None)
    assert sim.pending_events == scan
    sim.run()
    assert sim.pending_events == 0
