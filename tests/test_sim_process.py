"""Unit tests for the process model (crash / respawn / reboot / compromise)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import ProcessState, SimProcess


def make_process(sim, respawn_delay=0.01):
    process = SimProcess(sim, "node", respawn_delay=respawn_delay)
    return process


def test_initial_state_running():
    sim = Simulator()
    p = make_process(sim)
    assert p.state is ProcessState.RUNNING
    assert p.is_available
    assert not p.compromised


def test_crash_then_forking_daemon_respawn():
    sim = Simulator()
    p = make_process(sim, respawn_delay=0.5)
    p.crash()
    assert p.state is ProcessState.CRASHED
    assert not p.is_available
    sim.run()
    assert p.state is ProcessState.RUNNING
    assert p.crash_count == 1
    assert p.respawn_count == 1


def test_no_daemon_means_no_respawn():
    sim = Simulator()
    p = make_process(sim, respawn_delay=None)
    p.crash()
    sim.run()
    assert p.state is ProcessState.CRASHED


def test_double_crash_is_idempotent():
    sim = Simulator()
    p = make_process(sim)
    p.crash()
    p.crash()
    assert p.crash_count == 1


def test_crash_listeners_fire():
    sim = Simulator()
    p = make_process(sim)
    seen = []
    p.add_crash_listener(lambda proc: seen.append(proc.name))
    p.crash()
    assert seen == ["node"]


def test_instant_reboot_restores_running_and_cleanses():
    sim = Simulator()
    p = make_process(sim)
    p.mark_compromised()
    assert p.compromised
    p.begin_reboot(0.0)
    assert p.state is ProcessState.RUNNING
    assert not p.compromised
    assert p.reboot_count == 1


def test_timed_reboot_goes_through_rebooting_state():
    sim = Simulator()
    p = make_process(sim)
    p.begin_reboot(1.0)
    assert p.state is ProcessState.REBOOTING
    assert not p.is_available
    sim.run()
    assert p.state is ProcessState.RUNNING


def test_reboot_interrupts_pending_respawn():
    """A node that crashed and then got rebooted must not 'respawn' back."""
    sim = Simulator()
    p = make_process(sim, respawn_delay=1.0)
    p.crash()
    p.begin_reboot(0.0)  # refresh wins over pending respawn
    sim.run()
    assert p.state is ProcessState.RUNNING
    assert p.respawn_count == 0


def test_stopped_process_cannot_reboot():
    sim = Simulator()
    p = make_process(sim)
    p.stop()
    with pytest.raises(SimulationError):
        p.begin_reboot(0.0)


def test_compromise_listener_and_hook():
    sim = Simulator()

    class Hooked(SimProcess):
        def __init__(self):
            super().__init__(sim, "h")
            self.hook_called = False

        def on_compromised(self):
            self.hook_called = True

    p = Hooked()
    seen = []
    p.add_compromise_listener(lambda proc: seen.append(proc.name))
    p.mark_compromised()
    assert p.hook_called
    assert seen == ["h"]


def test_mark_compromised_on_stopped_process_ignored():
    sim = Simulator()
    p = make_process(sim)
    p.stop()
    p.mark_compromised()
    assert not p.compromised


def test_state_listener_sees_transitions():
    sim = Simulator()
    p = make_process(sim, respawn_delay=0.1)
    states = []
    p.add_state_listener(lambda proc: states.append(proc.state))
    p.crash()
    sim.run()
    assert states == [ProcessState.CRASHED, ProcessState.RUNNING]


def test_message_acl_default_open_and_restrictable():
    sim = Simulator()
    p = make_process(sim)
    assert p.accepts_message_from("anyone")
    p.allowed_senders = {"proxy-0"}
    assert p.accepts_message_from("proxy-0")
    assert not p.accepts_message_from("attacker")


def test_connection_acl_default_open_and_restrictable():
    sim = Simulator()
    p = make_process(sim)
    assert p.accepts_connection_from("anyone")
    p.allowed_connection_initiators = {"proxy-1"}
    assert p.accepts_connection_from("proxy-1")
    assert not p.accepts_connection_from("attacker")
