"""Tests for the pluggable executor backends.

Locks down the :class:`~repro.mc.executor.ExecutorBackend` strategy
split and — with a monkeypatched flaky pool — the exactly-once /
in-order guarantees of the pool-breakage recovery paths:

* mid-map breakage keeps every result a worker already computed and
  re-runs only the unfinished tasks, serially, in input order;
* submit-time breakage shuts the pool down (cancelling queued work)
  *before* the serial re-run, so no task's result can be produced by
  both a worker and the fallback.
"""

from __future__ import annotations

import warnings
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import ConfigurationError
from repro.mc.executor import (
    ExecutorBackend,
    LocalPoolBackend,
    SerialBackend,
    TaskExecutor,
    backend_for,
)


def _square(x: int) -> int:
    return x * x


# ----------------------------------------------------------------------
# Strategy selection and delegation
# ----------------------------------------------------------------------
def test_backend_for_selects_by_worker_count():
    assert isinstance(backend_for(1), SerialBackend)
    assert isinstance(backend_for(0), SerialBackend)
    pool = backend_for(3)
    assert isinstance(pool, LocalPoolBackend)
    assert pool.workers == 3


def test_local_pool_backend_rejects_serial_counts():
    with pytest.raises(ConfigurationError):
        LocalPoolBackend(1)


def test_serial_backend_maps_in_order():
    assert SerialBackend().map(_square, [3, 1, 2]) == [9, 1, 4]


def test_executor_delegates_to_injected_backend():
    class RecordingBackend(ExecutorBackend):
        def __init__(self):
            self.calls = []
            self.opened = self.closed = False

        def map(self, fn, tasks):
            self.calls.append(list(tasks))
            return [fn(task) for task in tasks]

        def open(self):
            self.opened = True

        def close(self):
            self.closed = True

    backend = RecordingBackend()
    with TaskExecutor(backend=backend) as executor:
        assert executor.map(_square, [2, 5]) == [4, 25]
    assert backend.calls == [[2, 5]]
    assert backend.opened and backend.closed


# ----------------------------------------------------------------------
# Flaky-pool regression battery
# ----------------------------------------------------------------------
class FlakyPool:
    """A fake process pool that breaks after ``complete_first`` tasks.

    Completed futures carry real results (computed in-process, counted
    per task); the rest raise :class:`BrokenProcessPool` from
    ``result()`` — exactly how a pool whose worker died mid-campaign
    behaves.  ``events`` records the interleaving of executions and
    shutdown so tests can assert recovery ordering.
    """

    def __init__(self, fn_log, events, complete_first):
        self.fn_log = fn_log
        self.events = events
        self.complete_first = complete_first
        self.submitted = 0
        self.shutdown_args = None

    def submit(self, fn, task):
        future = Future()
        if self.submitted < self.complete_first:
            self.fn_log.append(("pool", task))
            future.set_result(fn(task))
        else:
            future.set_exception(BrokenProcessPool("worker died"))
        self.submitted += 1
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.events.append("shutdown")
        self.shutdown_args = {"wait": wait, "cancel_futures": cancel_futures}


def _flaky_backend(monkeypatch, fn_log, events, *, complete_first):
    pools = []

    def factory(max_workers=None):
        pool = FlakyPool(fn_log, events, complete_first)
        pools.append(pool)
        return pool

    monkeypatch.setattr("repro.mc.executor.ProcessPoolExecutor", factory)
    return LocalPoolBackend(2), pools


def test_midmap_breakage_keeps_results_ordered_exactly_once(monkeypatch):
    fn_log, events = [], []
    backend, pools = _flaky_backend(monkeypatch, fn_log, events, complete_first=2)
    tasks = [5, 6, 7, 8]

    def tracked(task):
        events.append(("run", task))
        return _square(task)

    with pytest.warns(RuntimeWarning, match="running remaining tasks serially"):
        results = backend.map(tracked, tasks)
    # In order, nothing lost, nothing duplicated.
    assert results == [25, 36, 49, 64]
    pool_ran = [task for kind, task in fn_log if kind == "pool"]
    tracked_ran = [event[1] for event in events if event != "shutdown"]
    assert pool_ran == [5, 6]
    assert tracked_ran == [5, 6, 7, 8]  # tracked fn ran once per task
    assert [pool.shutdown_args for pool in pools] == [
        {"wait": False, "cancel_futures": True}
    ]


def test_submit_breakage_cancels_pool_before_serial_rerun(monkeypatch):
    fn_log, events = [], []
    backend, pools = _flaky_backend(monkeypatch, fn_log, events, complete_first=0)
    # Break at submit time: the pool raises on the first submit call.
    pools_submit = FlakyPool.submit

    def raising_submit(self, fn, task):
        raise BrokenProcessPool("pool died while idle")

    monkeypatch.setattr(FlakyPool, "submit", raising_submit)
    tasks = [2, 3, 4]

    def tracked(task):
        events.append(("run", task))
        return _square(task)

    with pytest.warns(RuntimeWarning, match="running this round"):
        results = backend.map(tracked, tasks)
    monkeypatch.setattr(FlakyPool, "submit", pools_submit)
    assert results == [4, 9, 16]
    # The broken pool was shut down with cancellation BEFORE any serial
    # execution — queued tasks cannot race the fallback.  (A second,
    # idempotent shutdown from the cleanup path may trail the runs.)
    assert events[0] == "shutdown"
    assert [e for e in events if e != "shutdown"] == [
        ("run", 2),
        ("run", 3),
        ("run", 4),
    ]
    assert pools[0].shutdown_args == {"wait": False, "cancel_futures": True}


def test_pool_start_failure_falls_back_serially(monkeypatch):
    def no_pools(max_workers=None):
        raise OSError("no more processes")

    monkeypatch.setattr("repro.mc.executor.ProcessPoolExecutor", no_pools)
    backend = LocalPoolBackend(2)
    with pytest.warns(RuntimeWarning, match="falling back to"):
        assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]


def test_persistent_flaky_pool_is_replaced_next_round(monkeypatch):
    """A broken persistent pool is discarded; the next map() round gets
    a fresh one instead of resubmitting into the corpse."""
    fn_log, events = [], []
    backend, pools = _flaky_backend(monkeypatch, fn_log, events, complete_first=1)
    backend.open()
    try:
        with pytest.warns(RuntimeWarning):
            assert backend.map(_square, [1, 2]) == [1, 4]
        assert backend._pool is None
        # Second round: fresh pool (its first task completes again).
        with pytest.warns(RuntimeWarning):
            assert backend.map(_square, [3, 4]) == [9, 16]
    finally:
        backend.close()
    assert len(pools) == 2


def test_single_task_short_circuits_the_pool(monkeypatch):
    def no_pools(max_workers=None):  # pragma: no cover - must not be hit
        raise AssertionError("single-task map must not build a pool")

    monkeypatch.setattr("repro.mc.executor.ProcessPoolExecutor", no_pools)
    backend = LocalPoolBackend(2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert backend.map(_square, [7]) == [49]
        assert backend.map(_square, []) == []
