"""Tests for the event-tracing subsystem."""

from __future__ import annotations

import pytest

from repro.core.builders import attach_attacker, build_system
from repro.core.specs import s1
from repro.errors import ConfigurationError
from repro.randomization.obfuscation import Scheme
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess
from repro.sim.trace import TraceRecorder


def test_record_stamps_current_time():
    sim = Simulator()
    trace = TraceRecorder(sim)
    sim.schedule(2.5, lambda: trace.record("custom", "x", value=1))
    sim.run()
    (event,) = trace.events()
    assert event.time == 2.5
    assert event.category == "custom"
    assert event.detail == {"value": 1}


def test_attach_process_traces_lifecycle():
    sim = Simulator()
    trace = TraceRecorder(sim)
    p = SimProcess(sim, "node", respawn_delay=0.1)
    trace.attach_process(p)
    p.crash()
    sim.run()
    p.mark_compromised()
    states = [e.detail["state"] for e in trace.events(category="state")]
    assert states == ["crashed", "running"]
    assert trace.count("compromise") == 1


def test_filters_by_category_subject_and_time():
    sim = Simulator()
    trace = TraceRecorder(sim)
    trace.record("a", "x")
    sim.schedule(1.0, lambda: trace.record("a", "y"))
    sim.schedule(2.0, lambda: trace.record("b", "x"))
    sim.run()
    assert len(trace.events(category="a")) == 2
    assert len(trace.events(subject="x")) == 2
    assert len(trace.events(category="a", subject="x")) == 1
    assert len(trace.events(since=0.5)) == 2


def test_bounded_buffer_drops_oldest():
    sim = Simulator()
    trace = TraceRecorder(sim, limit=3)
    for i in range(5):
        trace.record("c", f"s{i}")
    assert trace.count() == 3
    assert trace.dropped == 2
    assert [e.subject for e in trace.events()] == ["s2", "s3", "s4"]


def test_limit_validation():
    with pytest.raises(ConfigurationError):
        TraceRecorder(Simulator(), limit=0)


def test_render_timeline():
    sim = Simulator()
    trace = TraceRecorder(sim)
    assert trace.render_timeline() == "(empty trace)"
    trace.record("epoch", "obfuscation", epoch=1)
    text = trace.render_timeline()
    assert "epoch" in text and "epoch=1" in text


def test_deployment_trace_end_to_end():
    """A full lifetime run leaves a coherent timeline: epochs, node
    compromises, and exactly one system-down event with the cause."""
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=6)
    deployed = build_system(spec, seed=77)
    trace = TraceRecorder(deployed.sim, limit=None)
    trace.attach_deployment(deployed)
    attach_attacker(deployed)
    deployed.start()
    deployed.sim.run(until=40.0)
    assert deployed.monitor.is_compromised
    downs = trace.events(category="system-down")
    assert len(downs) == 1
    assert "primary" in downs[0].detail["cause"]
    assert trace.count("compromise") >= 1
    # Epochs fired until the monitor stopped the run.
    epochs = trace.events(category="epoch")
    assert epochs
    # The system-down event is at (or after) the first node compromise.
    first_compromise = trace.events(category="compromise")[0]
    assert downs[0].time >= first_compromise.time


def test_drops_counted_accurately_when_limit_shrinks_on_full_buffer():
    """Regression: ``record`` used to compare against a cached copy of
    the construction-time limit, so re-bounding an already-full recorder
    miscounted subsequent drops.  The drop check now reads the deque's
    own bound, and shrinking the limit counts the evicted events."""
    sim = Simulator()
    trace = TraceRecorder(sim, limit=5)
    for i in range(5):
        trace.record("c", f"s{i}")
    assert trace.dropped == 0
    trace.limit = 3  # evicts the two oldest
    assert trace.dropped == 2
    assert [e.subject for e in trace.events()] == ["s2", "s3", "s4"]
    trace.record("c", "s5")  # full at the NEW bound: one more drop
    assert trace.dropped == 3
    assert trace.count() == 3


def test_limit_can_grow_and_lift_without_counting_drops():
    sim = Simulator()
    trace = TraceRecorder(sim, limit=2)
    trace.record("c", "a")
    trace.record("c", "b")
    trace.limit = 4
    trace.record("c", "c")
    assert trace.dropped == 0 and trace.count() == 3
    trace.limit = None  # unbounded
    for i in range(10):
        trace.record("c", f"x{i}")
    assert trace.dropped == 0 and trace.count() == 13
    with pytest.raises(ConfigurationError):
        trace.limit = 0
