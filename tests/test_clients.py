"""End-to-end workload client tests across all three system modes."""

from __future__ import annotations

import pytest

from repro.core.builders import add_clients, build_system
from repro.core.clients import WorkloadClient, default_body_factory
from repro.core.specs import s0, s1, s2
from repro.randomization.obfuscation import Scheme


def run_workload(spec, until=10.0, seed=1, clients=1):
    deployed = build_system(spec, seed=seed)
    added = add_clients(deployed, clients)
    deployed.start()
    deployed.sim.run(until=until)
    return deployed, added


def test_fortress_clients_get_doubly_signed_responses():
    deployed, clients = run_workload(s2(Scheme.PO, alpha=0.001, entropy_bits=8))
    client = clients[0]
    assert client.responses_ok > 50
    assert client.responses_corrupted == 0
    assert client.failures == 0


def test_pb_clients_get_signed_responses():
    deployed, clients = run_workload(s1(Scheme.PO, alpha=0.001, entropy_bits=8))
    assert clients[0].responses_ok > 50
    assert clients[0].failures == 0


def test_smr_clients_get_f_plus_1_matching():
    deployed, clients = run_workload(s0(Scheme.PO, alpha=0.001, entropy_bits=8))
    assert clients[0].responses_ok > 30
    assert clients[0].failures == 0


def test_concurrent_clients_consistent_counters():
    deployed, clients = run_workload(
        s1(Scheme.PO, alpha=0.001, entropy_bits=8), clients=3
    )
    assert all(c.responses_ok > 30 for c in clients)
    # The primary executed every distinct request exactly once.
    primary = deployed.servers[0]
    total_requests = sum(c.responses_ok + c.responses_corrupted for c in clients)
    assert primary.requests_executed >= total_requests // 2


def test_latencies_recorded_and_small():
    deployed, clients = run_workload(s2(Scheme.PO, alpha=0.001, entropy_bits=8))
    latencies = clients[0].latencies
    assert latencies
    assert max(latencies) < 0.5


def test_client_survives_primary_failover():
    """Clients keep getting responses after the primary is stopped."""
    spec = s1(Scheme.PO, alpha=0.001, entropy_bits=8)
    deployed = build_system(spec, seed=3)
    clients = add_clients(deployed, 1)
    deployed.start()
    deployed.sim.run(until=3.0)
    before = clients[0].responses_ok
    deployed.servers[0].stop()
    deployed.sim.run(until=10.0)
    assert clients[0].responses_ok > before + 10


def test_workload_stop_is_clean():
    deployed, clients = run_workload(
        s1(Scheme.PO, alpha=0.001, entropy_bits=8), until=2.0
    )
    client = clients[0]
    client.stop_workload()
    count = client.requests_sent
    deployed.sim.run(until=4.0)
    assert client.requests_sent <= count + 1  # at most the in-flight retry


def test_invalid_mode_rejected(sim, network, authority):
    with pytest.raises(ValueError):
        WorkloadClient(sim, network, authority, mode="bogus", targets=[])


def test_default_body_factory_shapes(rng):
    bodies = [default_body_factory(i, rng) for i in range(9)]
    ops = {b["op"] for b in bodies}
    assert ops == {"put", "get", "incr"}
