"""Additional hypothesis property tests covering the extension modules."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lifetimes import (
    el_s2_po,
    el_s2_smr_po,
    per_step_compromise_s2_smr_po,
)
from repro.analysis.period import compromise_route_split
from repro.analysis.s2so import s2_so_survival
from repro.analysis.sensitivity import elasticity
from repro.faults.plans import crash_storm, rolling_outages
from repro.proxy.detection import DetectionLog, DetectionPolicy
from repro.workloads.distributions import ZipfKeys

alphas = st.floats(min_value=1e-4, max_value=0.2, allow_nan=False)
kappas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


# ----------------------------------------------------------------------
# Analytic extensions
# ----------------------------------------------------------------------
@given(alpha=alphas, kappa=kappas)
@settings(max_examples=50, deadline=None)
def test_s2_smr_q_is_probability_and_beats_pb_route(alpha, kappa):
    q = per_step_compromise_s2_smr_po(alpha, kappa)
    assert 0.0 <= q <= 1.0
    # The fortified SMR tier never has a *higher* hazard than the PB
    # tier at the same (alpha, kappa): EL dominates.
    assert el_s2_smr_po(alpha, kappa) >= el_s2_po(alpha, kappa) - 1e-9


@given(
    alpha=st.floats(min_value=5e-3, max_value=0.2),
    kappa=kappas,
    steps=st.integers(1, 60),
)
@settings(max_examples=40, deadline=None)
def test_s2so_survival_is_monotone_probability_curve(alpha, kappa, steps):
    curve = s2_so_survival(alpha, kappa, steps)
    assert curve.min() >= -1e-12
    assert curve.max() <= 1.0 + 1e-12
    assert (np.diff(curve) <= 1e-9).all()


@given(
    alpha=st.floats(min_value=1e-4, max_value=0.05),
    kappa=st.floats(min_value=0.0, max_value=1.0),
    period=st.integers(1, 5),
)
@settings(max_examples=30, deadline=None)
def test_route_split_is_distribution(alpha, kappa, period):
    split = compromise_route_split(alpha, kappa, period_steps=period)
    assert sum(split.values()) == pytest.approx(1.0)
    assert all(v >= -1e-12 for v in split.values())


@given(
    exponent=st.floats(min_value=-3.0, max_value=3.0),
    at=st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=50, deadline=None)
def test_elasticity_recovers_power_law_exponent(exponent, at):
    assert elasticity(lambda x: x**exponent, at) == pytest.approx(exponent, abs=1e-4)


# ----------------------------------------------------------------------
# Workload distributions
# ----------------------------------------------------------------------
@given(n_keys=st.integers(1, 200), s=st.floats(min_value=0.0, max_value=3.0))
@settings(max_examples=40, deadline=None)
def test_zipf_probabilities_form_distribution(n_keys, s):
    dist = ZipfKeys(n_keys=n_keys, s=s)
    probabilities = [dist.probability(i) for i in range(n_keys)]
    assert sum(probabilities) == pytest.approx(1.0)
    assert all(p >= 0 for p in probabilities)
    # Monotone non-increasing popularity.
    assert all(a >= b - 1e-12 for a, b in zip(probabilities, probabilities[1:]))


@given(
    n_keys=st.integers(1, 64),
    s=st.floats(min_value=0.0, max_value=2.0),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_zipf_samples_are_valid_keys(n_keys, s, seed):
    dist = ZipfKeys(n_keys=n_keys, s=s)
    rng = random.Random(seed)
    for _ in range(20):
        key = dist.sample(rng)
        index = int(key[1:])
        assert 0 <= index < n_keys


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 500),
    rate=st.floats(min_value=0.1, max_value=3.0),
    horizon=st.floats(min_value=2.0, max_value=50.0),
)
@settings(max_examples=30, deadline=None)
def test_crash_storm_events_sorted_and_in_range(seed, rate, horizon):
    plan = crash_storm(random.Random(seed), ["a", "b", "c"], horizon, rate=rate)
    times = [f.time for f in plan]
    assert times == sorted(times)
    assert all(0.5 <= t < horizon for t in times)


@given(
    n=st.integers(1, 6),
    rounds=st.integers(1, 12),
    period=st.floats(min_value=0.5, max_value=4.0),
)
@settings(max_examples=30, deadline=None)
def test_rolling_outages_cover_targets_cyclically(n, rounds, period):
    targets = [f"t{i}" for i in range(n)]
    plan = rolling_outages(targets, period=period, down_for=period / 3, rounds=rounds)
    assert len(plan) == rounds
    for i, fault in enumerate(plan):
        assert fault.target == targets[i % n]
    # Never overlapping.
    for first, second in zip(plan, plan[1:]):
        assert first.time + first.down_for < second.time + 1e-9


# ----------------------------------------------------------------------
# Detection log
# ----------------------------------------------------------------------
@given(
    events=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]), st.floats(min_value=0.0, max_value=100.0)
        ),
        max_size=60,
    )
)
@settings(max_examples=40, deadline=None)
def test_detection_log_counts_are_consistent(events):
    log = DetectionLog(DetectionPolicy(window=10.0, threshold=5))
    events = sorted(events, key=lambda e: e[1])
    for source, time in events:
        log.record_invalid(source, time)
    total = sum(log.invalid_count(s) for s in ("a", "b", "c"))
    assert total == len(events) == log.invalid_total
    # Blacklisted sources must have accumulated more than the threshold.
    for source in log.blacklisted_sources:
        assert log.invalid_count(source) > 5
