"""Unit tests for the fault-injection substrate."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults.injector import (
    CrashFault,
    FaultInjector,
    MessageLossFault,
    PartitionFault,
)
from repro.faults.plans import (
    crash_storm,
    lossy_window,
    partition_schedule,
    rolling_outages,
)
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.process import ProcessState, SimProcess


def make_arena():
    sim = Simulator(seed=1)
    net = Network(sim, latency=FixedLatency(0.001))
    a = SimProcess(sim, "a", respawn_delay=0.05)
    b = SimProcess(sim, "b", respawn_delay=0.05)
    net.register(a)
    net.register(b)
    return sim, net, a, b


def test_transient_crash_respawned_by_daemon():
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    injector.schedule(CrashFault(time=1.0, target="a"))
    sim.run(until=0.9)
    assert a.state is ProcessState.RUNNING
    sim.run(until=1.01)
    assert a.state is ProcessState.CRASHED
    sim.run(until=1.2)
    assert a.state is ProcessState.RUNNING
    assert len(injector.applied) == 1


def test_outage_suppresses_daemon_until_revive():
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    injector.schedule(CrashFault(time=1.0, target="a", down_for=2.0))
    sim.run(until=2.5)
    assert a.state is ProcessState.CRASHED  # daemon suppressed
    sim.run(until=3.1)
    assert a.state is ProcessState.RUNNING
    assert a.respawn_delay == 0.05  # restored for later crashes


def test_partition_applies_and_heals():
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    injector.schedule(PartitionFault(time=1.0, a="a", b="b", heal_after=1.0))
    sim.run(until=1.5)
    assert net.is_blocked("a", "b")
    sim.run(until=2.5)
    assert not net.is_blocked("a", "b")


def test_loss_window_restores_rate():
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    injector.schedule(MessageLossFault(time=1.0, rate=0.9, duration=1.0))
    sim.run(until=1.5)
    assert net.drop_rate == 0.9
    sim.run(until=2.5)
    assert net.drop_rate == 0.0


def test_past_fault_rejected():
    sim, net, a, b = make_arena()
    sim.schedule(2.0, lambda: None)
    sim.run()
    injector = FaultInjector(sim, net)
    with pytest.raises(ConfigurationError):
        injector.schedule(CrashFault(time=1.0, target="a"))


def test_invalid_loss_rate_rejected_at_schedule():
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    with pytest.raises(ConfigurationError):
        injector.schedule(MessageLossFault(time=1.0, rate=1.0, duration=1.0))
    assert not injector.applied


# ----------------------------------------------------------------------
# Overlapping windows (regressions: restores must not clobber each other)
# ----------------------------------------------------------------------
def test_overlapping_loss_windows_restore_in_force_rate():
    """Window A's expiry fires mid-window-B: it must leave B's rate in
    force, and B's expiry must restore the true baseline — not the rate
    A saw when it was applied."""
    sim, net, a, b = make_arena()
    net.drop_rate = 0.05  # non-zero baseline
    injector = FaultInjector(sim, net)
    injector.schedule_plan(
        [
            MessageLossFault(time=1.0, rate=0.9, duration=1.0),  # A: [1, 2)
            MessageLossFault(time=1.5, rate=0.5, duration=1.0),  # B: [1.5, 2.5)
        ]
    )
    sim.run(until=1.6)
    assert net.drop_rate == 0.5  # most recent window rules the overlap
    sim.run(until=2.1)  # A expired inside B
    assert net.drop_rate == 0.5
    assert injector.open_loss_windows == 1
    sim.run(until=2.6)  # B expired: baseline restored
    assert net.drop_rate == 0.05
    assert injector.open_loss_windows == 0


def test_nested_loss_window_reinstates_outer_rate():
    """A short window fully inside a longer one: when the inner expires
    the outer's rate comes back, not the baseline."""
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    injector.schedule_plan(
        [
            MessageLossFault(time=1.0, rate=0.8, duration=2.0),  # outer [1, 3)
            MessageLossFault(time=1.5, rate=0.2, duration=0.5),  # inner [1.5, 2)
        ]
    )
    sim.run(until=1.7)
    assert net.drop_rate == 0.2
    sim.run(until=2.2)  # inner closed; outer still open
    assert net.drop_rate == 0.8
    sim.run(until=3.2)
    assert net.drop_rate == 0.0


def test_overlapping_outages_extend_to_last_end():
    """Two overlapping outages on one target: it stays down until the
    later end, and the forking daemon comes back exactly once."""
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    injector.schedule_plan(
        [
            CrashFault(time=1.0, target="a", down_for=2.0),  # [1, 3)
            CrashFault(time=2.0, target="a", down_for=2.0),  # [2, 4)
        ]
    )
    sim.run(until=3.5)  # first outage expired inside the second
    assert a.state is ProcessState.CRASHED
    assert injector.pending_outages == 1
    sim.run(until=4.1)
    assert a.state is ProcessState.RUNNING
    assert a.respawn_delay == 0.05  # daemon restored, not wedged at None
    assert injector.pending_outages == 0
    # Later transient crashes respawn normally again.
    injector.schedule(CrashFault(time=5.0, target="a"))
    sim.run(until=5.2)
    assert a.state is ProcessState.RUNNING


def test_pending_respawn_cannot_cut_an_outage_short():
    """A daemon respawn scheduled just before the outage began must not
    revive the powered-off machine mid-outage."""
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    sim.schedule_at(0.99, a.crash)  # daemon respawn pending at 1.04
    injector.schedule(CrashFault(time=1.0, target="a", down_for=1.0))
    sim.run(until=1.5)
    assert a.state is ProcessState.CRASHED  # still down mid-outage
    sim.run(until=2.1)
    assert a.state is ProcessState.RUNNING


def test_overlapping_partitions_heal_at_last_window():
    """Two overlapping partition windows on one pair: the link stays cut
    until the *last* window heals (Network.partition/heal are idempotent
    set ops, so the injector must refcount)."""
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    injector.schedule_plan(
        [
            PartitionFault(time=1.0, a="a", b="b", heal_after=3.0),  # [1, 4)
            PartitionFault(time=2.0, a="a", b="b", heal_after=3.0),  # [2, 5)
        ]
    )
    sim.run(until=4.5)  # first window healed inside the second
    assert net.is_blocked("a", "b")
    sim.run(until=5.1)
    assert not net.is_blocked("a", "b")


# ----------------------------------------------------------------------
# Plan validation at schedule_plan time
# ----------------------------------------------------------------------
def test_schedule_plan_rejects_unsorted_plans():
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    plan = [
        CrashFault(time=2.0, target="a"),
        CrashFault(time=1.0, target="b"),
    ]
    with pytest.raises(ConfigurationError, match="not sorted"):
        injector.schedule_plan(plan)
    assert sim.pending_events == 0  # nothing half-scheduled


def test_schedule_plan_rejects_events_beyond_horizon():
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    plan = [CrashFault(time=5.0, target="a")]
    with pytest.raises(ConfigurationError, match="horizon"):
        injector.schedule_plan(plan, horizon=5.0)
    injector.schedule_plan(plan, horizon=6.0)  # strictly inside: fine


def test_schedule_plan_rejects_bad_parameters_up_front():
    sim, net, a, b = make_arena()
    injector = FaultInjector(sim, net)
    bad_plans = [
        [MessageLossFault(time=1.0, rate=1.0, duration=1.0)],
        [MessageLossFault(time=1.0, rate=0.5, duration=0.0)],
        [CrashFault(time=1.0, target="a", down_for=0.0)],
        [PartitionFault(time=1.0, a="a", b="b", heal_after=0.0)],
    ]
    for plan in bad_plans:
        with pytest.raises(ConfigurationError):
            injector.schedule_plan(plan)
    assert sim.pending_events == 0


# ----------------------------------------------------------------------
# Plan generators
# ----------------------------------------------------------------------
def test_crash_storm_reproducible_and_bounded():
    plan_a = crash_storm(random.Random(5), ["x", "y"], horizon=20.0, rate=1.0)
    plan_b = crash_storm(random.Random(5), ["x", "y"], horizon=20.0, rate=1.0)
    assert plan_a == plan_b
    assert plan_a  # a rate-1 storm over 20 units produces events
    assert all(0.5 <= f.time < 20.0 for f in plan_a)
    assert all(f.target in ("x", "y") for f in plan_a)


def test_crash_storm_mixes_outages():
    plan = crash_storm(
        random.Random(7), ["x"], horizon=100.0, rate=2.0, outage_probability=0.5
    )
    kinds = {f.down_for is None for f in plan}
    assert kinds == {True, False}


def test_rolling_outages_never_overlap():
    plan = rolling_outages(["a", "b", "c"], period=1.0, down_for=0.4, rounds=6)
    assert len(plan) == 6
    assert [f.target for f in plan] == ["a", "b", "c", "a", "b", "c"]
    for first, second in zip(plan, plan[1:]):
        assert first.time + first.down_for < second.time


def test_rolling_outages_rejects_overlap():
    with pytest.raises(ConfigurationError):
        rolling_outages(["a"], period=1.0, down_for=1.0, rounds=2)


def test_partition_schedule_pairs_and_heals():
    plan = partition_schedule(
        random.Random(9), [("a", "b"), ("b", "c")], horizon=30.0, rate=0.5
    )
    assert plan
    assert all(0.2 <= f.heal_after <= 0.8 for f in plan)


def test_lossy_window_shape():
    (fault,) = lossy_window(time=2.0, rate=0.3, duration=1.5)
    assert fault == MessageLossFault(time=2.0, rate=0.3, duration=1.5)


def test_empty_targets_rejected():
    with pytest.raises(ConfigurationError):
        crash_storm(random.Random(1), [], horizon=10.0)
    with pytest.raises(ConfigurationError):
        partition_schedule(random.Random(1), [], horizon=10.0)
