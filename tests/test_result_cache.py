"""Tests for the content-addressed campaign result cache.

Three layers:

* key construction — canonical JSON really is canonical (order-free,
  whitespace-free) and refuses values it can't serialize stably;
* the on-disk store — atomic writes, hit/miss accounting, corrupt or
  truncated entries degrading to misses, version-bump invalidation;
* campaign integration — cold cache, warm cache and ``--no-cache`` all
  produce bit-identical results under any executor configuration, and a
  fully warm campaign dispatches zero protocol tasks.
"""

from __future__ import annotations

import json
import os
import warnings

import numpy as np
import pytest

from repro.cache import (
    ENGINE_VERSION,
    ResultCache,
    atomic_write_text,
    cache_key,
    canonical_json,
    jsonable,
)
from repro.core.campaign import campaign_grid, campaign_record, run_campaign
from repro.core.experiment import estimate_protocol_lifetime
from repro.core.specs import SystemClass, s1
from repro.core.timing import TimingSpec
from repro.errors import ConfigurationError
from repro.randomization.obfuscation import Scheme


def _small_grid():
    return campaign_grid(
        systems=(SystemClass.S1, SystemClass.S2),
        schemes=(Scheme.SO,),
        alphas=(0.2,),
        kappas=(0.5,),
        entropy_bits=6,
    )


CAMPAIGN_KW = dict(trials=3, max_steps=50, seed=11)


def _estimates_payload(result) -> list:
    """Everything outcome-derived in a campaign, for bit-identity checks."""
    return [(e.spec, e.stats, e.censored, e.outcomes) for e in result.estimates]


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_canonical_json_is_order_free():
    a = canonical_json({"b": 1, "a": {"y": 2.5, "x": (1, 2)}})
    b = canonical_json({"a": {"x": [1, 2], "y": 2.5}, "b": 1})
    assert a == b
    assert " " not in a and "\n" not in a


def test_jsonable_vocabulary():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    timing = TimingSpec.named("paper")
    payload = jsonable(
        {"spec": spec, "timing": timing, "scheme": Scheme.PO, "n": np.int64(3)}
    )
    assert payload["spec"]["alpha"] == 0.2
    assert payload["timing"] == timing.as_dict()
    assert payload["scheme"] == "PO"
    assert payload["n"] == 3 and isinstance(payload["n"], int)


def test_jsonable_rejects_unstable_values():
    with pytest.raises(ConfigurationError):
        jsonable(object())


def test_cache_key_sensitivity():
    base = {"spec": s1(Scheme.SO, entropy_bits=6), "seeds": [1, 2, 3]}
    assert cache_key(base) == cache_key(dict(base))
    assert cache_key(base) != cache_key({**base, "seeds": [1, 2, 4]})
    assert cache_key(base) != cache_key({**base, "spec": s1(Scheme.PO, entropy_bits=6)})


def test_key_for_folds_in_engine_version(tmp_path):
    payload = {"seeds": [1, 2]}
    now = ResultCache(tmp_path).key_for(payload)
    bumped = ResultCache(tmp_path, version=ENGINE_VERSION + 1).key_for(payload)
    assert now != bumped


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
def test_atomic_write_creates_parents_and_replaces(tmp_path):
    target = tmp_path / "deep" / "nested" / "record.json"
    atomic_write_text(target, "first\n")
    assert target.read_text() == "first\n"
    atomic_write_text(target, "second\n")
    assert target.read_text() == "second\n"
    # No temp-file droppings next to the target.
    assert os.listdir(target.parent) == ["record.json"]


def test_atomic_write_failure_leaves_original(tmp_path):
    target = tmp_path / "record.json"
    atomic_write_text(target, "keep me\n")

    class Unserializable:
        def __str__(self):
            raise RuntimeError("boom mid-write")

    with pytest.raises(TypeError):
        atomic_write_text(target, ["not text"])  # type: ignore[arg-type]
    assert target.read_text() == "keep me\n"
    assert os.listdir(tmp_path) == ["record.json"]


# ----------------------------------------------------------------------
# Store semantics
# ----------------------------------------------------------------------
def test_store_roundtrip_and_counters(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.key_for({"seeds": [1, 2, 3]})
    assert cache.lookup(key) is None
    cache.store(key, [{"steps": 5, "time": 5.0}])
    assert cache.lookup(key) == [{"steps": 5, "time": 5.0}]
    assert (cache.hits, cache.misses) == (1, 1)


@pytest.mark.parametrize(
    "corruption",
    ["", "{truncated", '"not a dict"', '{"key": "somebody-else", "payload": 1}'],
)
def test_corrupt_entries_are_misses(tmp_path, corruption):
    cache = ResultCache(tmp_path)
    key = cache.key_for({"seeds": [9]})
    cache.store(key, {"fine": True})
    cache._path(key).write_text(corruption)
    assert cache.lookup(key) is None
    assert cache.misses == 1


def test_version_bump_invalidates(tmp_path):
    old = ResultCache(tmp_path)
    payload = {"seeds": [4, 5]}
    old.store(old.key_for(payload), "cached-under-v1")
    new = ResultCache(tmp_path, version=ENGINE_VERSION + 1)
    assert new.lookup(new.key_for(payload)) is None
    # The old entry is untouched, merely unreachable from the new version.
    assert old.lookup(old.key_for(payload)) == "cached-under-v1"


def test_store_is_best_effort(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("a file where the cache root should go")
    cache = ResultCache(blocker)
    with pytest.warns(RuntimeWarning, match="cache write failed"):
        cache.store(cache.key_for({"seeds": [1]}), {"x": 1})


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------
def test_campaign_cold_warm_nocache_bit_identical(tmp_path):
    specs = _small_grid()
    cache = ResultCache(tmp_path)
    plain = run_campaign(specs, workers=1, **CAMPAIGN_KW)
    cold = run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)
    warm = run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)
    assert (cold.cache_hits, cold.cache_misses) == (0, len(specs))
    assert (warm.cache_hits, warm.cache_misses) == (len(specs), 0)
    assert plain.cache_hits is None and plain.cache_misses is None
    assert _estimates_payload(cold) == _estimates_payload(plain)
    assert _estimates_payload(warm) == _estimates_payload(plain)


def test_warm_campaign_dispatches_nothing(tmp_path, monkeypatch):
    specs = _small_grid()
    cache = ResultCache(tmp_path)
    run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)

    def refuse(task):
        raise AssertionError("a fully warm campaign must not dispatch tasks")

    monkeypatch.setattr("repro.core.campaign.run_protocol_task", refuse)
    monkeypatch.setattr("repro.core.experiment.run_protocol_task", refuse)
    warm = run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)
    assert warm.cache_hits == len(specs)
    assert warm.total_runs == len(specs) * CAMPAIGN_KW["trials"]


def test_warm_hits_are_fanout_invariant(tmp_path, monkeypatch):
    """Entries written by a serial campaign satisfy a parallel-configured
    one (and its serial-fallback path): keys never see the fan-out."""
    specs = _small_grid()
    cache = ResultCache(tmp_path)
    cold = run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)

    def broken_pool(*args, **kwargs):
        raise OSError("pools forbidden in this test")

    monkeypatch.setattr("repro.mc.executor.ProcessPoolExecutor", broken_pool)
    with warnings.catch_warnings():
        # Fully warm: the executor is never even asked for a pool, so
        # not even the serial-fallback warning may fire.
        warnings.simplefilter("error")
        warm_fallback = run_campaign(
            specs, workers=4, batch_size=1, cache=cache, **CAMPAIGN_KW
        )
    assert warm_fallback.cache_hits == len(specs)
    assert _estimates_payload(warm_fallback) == _estimates_payload(cold)


def test_corrupt_campaign_entries_recompute_identically(tmp_path):
    specs = _small_grid()
    cache = ResultCache(tmp_path)
    cold = run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)
    for entry in tmp_path.rglob("*.json"):
        entry.write_text("{definitely truncated")
    recomputed = run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)
    assert recomputed.cache_hits == 0
    assert recomputed.cache_misses == len(specs)
    assert _estimates_payload(recomputed) == _estimates_payload(cold)
    # And the rewrite healed the cache.
    healed = run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)
    assert healed.cache_hits == len(specs)


def test_engine_version_bump_invalidates_campaign(tmp_path):
    specs = _small_grid()
    cache = ResultCache(tmp_path)
    run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)
    bumped = ResultCache(tmp_path, version=ENGINE_VERSION + 1)
    rerun = run_campaign(specs, workers=1, cache=bumped, **CAMPAIGN_KW)
    assert rerun.cache_hits == 0 and rerun.cache_misses == len(specs)


def test_undecodable_entry_is_reclassified_as_miss(tmp_path):
    """A well-formed entry whose payload doesn't decode to the requested
    outcome block (e.g. written by a buggy tool) must recompute, and the
    hit/miss counters must reflect the reclassification."""
    specs = _small_grid()[:1]
    cache = ResultCache(tmp_path)
    cold = run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)
    for entry_path in tmp_path.rglob("*.json"):
        entry = json.loads(entry_path.read_text())
        entry["payload"] = [{"nonsense": True}]
        entry_path.write_text(json.dumps(entry))
    cache = ResultCache(tmp_path)
    rerun = run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW)
    assert (rerun.cache_hits, rerun.cache_misses) == (0, 1)
    assert _estimates_payload(rerun) == _estimates_payload(cold)


def test_campaign_record_cache_section(tmp_path):
    specs = _small_grid()
    cache = ResultCache(tmp_path)
    plain = campaign_record(run_campaign(specs, workers=1, **CAMPAIGN_KW))
    assert "cache" not in plain
    cold = campaign_record(run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW))
    warm1 = campaign_record(run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW))
    warm2 = campaign_record(run_campaign(specs, workers=1, cache=cache, **CAMPAIGN_KW))
    assert cold["cache"] == {"hits": 0, "misses": len(specs)}
    assert warm1["cache"] == {"hits": len(specs), "misses": 0}
    # Wall-clock time is the one field that is *meant* to differ between
    # otherwise bit-identical runs; everything below compares modulo it.
    for record in (plain, cold, warm1, warm2):
        assert record.pop("wall_seconds") >= 0.0
    # Warm records are bit-identical *including* the cache section …
    assert json.dumps(warm1, sort_keys=True) == json.dumps(warm2, sort_keys=True)
    # … and modulo it, identical to the cold record and the plain run.
    for record in (cold, warm1):
        record.pop("cache")
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm1, sort_keys=True)
    assert json.dumps(cold, sort_keys=True) == json.dumps(plain, sort_keys=True)


# ----------------------------------------------------------------------
# Estimator integration
# ----------------------------------------------------------------------
def test_estimate_cache_fixed_count(tmp_path, monkeypatch):
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    cache = ResultCache(tmp_path)
    cold = estimate_protocol_lifetime(
        spec, trials=4, max_steps=50, workers=1, cache=cache
    )
    monkeypatch.setattr(
        "repro.core.experiment.run_protocol_task",
        lambda task: pytest.fail("warm estimate must not dispatch"),
    )
    warm = estimate_protocol_lifetime(
        spec, trials=4, max_steps=50, workers=1, cache=cache
    )
    assert warm.outcomes == cold.outcomes
    assert warm.stats == cold.stats
    assert (cache.hits, cache.misses) == (1, 1)


def test_estimate_cache_precision_rounds(tmp_path):
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    cache = ResultCache(tmp_path)
    kwargs = dict(
        max_steps=50,
        workers=1,
        precision=0.5,
        min_trials=4,
        max_trials=96,
        cache=cache,
    )
    cold = estimate_protocol_lifetime(spec, **kwargs)
    hits_before, misses_before = cache.hits, cache.misses
    warm = estimate_protocol_lifetime(spec, **kwargs)
    assert warm.outcomes == cold.outcomes
    assert warm.stats == cold.stats
    assert warm.converged == cold.converged
    # Every streaming round replayed from disk, none recomputed.
    assert cache.misses == misses_before
    assert cache.hits > hits_before
