"""Tests for the unified timing layer (core/timing.py) and its
threading through the protocol builders, the Monte-Carlo samplers and
the analytic models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.lifetimes import expected_lifetime, per_step_compromise
from repro.analysis.s2so import el_s2_so_numeric
from repro.core.builders import attach_attacker, build_system
from repro.core.experiment import estimate_protocol_lifetime
from repro.core.specs import s0, s1, s2
from repro.core.timing import (
    DEFAULT_DETECTION_LAG,
    DEFAULT_RECONNECT_LATENCY,
    DEFAULT_RESPAWN_DELAY,
    DEFAULT_TIMING,
    TimingSpec,
)
from repro.errors import ConfigurationError
from repro.mc.montecarlo import mc_expected_lifetime
from repro.mc.models import model_for
from repro.randomization.obfuscation import Scheme


# ----------------------------------------------------------------------
# TimingSpec itself
# ----------------------------------------------------------------------
def test_paper_preset_matches_historical_constants():
    t = TimingSpec.paper()
    assert t.respawn_delay == DEFAULT_RESPAWN_DELAY == 0.01
    assert t.reconnect_latency == DEFAULT_RECONNECT_LATENCY == 0.001
    assert t.detection_lag == DEFAULT_DETECTION_LAG == 0.4
    assert t.probe_pacing == 1.0
    assert t.epoch_stagger == 0.0
    assert DEFAULT_TIMING == t


def test_ideal_preset_has_zero_delays():
    t = TimingSpec.ideal()
    assert t.respawn_delay == 0.0
    assert t.reconnect_latency == 0.0
    assert t.epoch_stagger == 0.0


def test_named_presets_round_trip():
    for name in TimingSpec.PRESETS:
        spec = TimingSpec.named(name)
        assert isinstance(spec, TimingSpec)
    with pytest.raises(ConfigurationError):
        TimingSpec.named("warp-speed")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"respawn_delay": -0.1},
        {"reconnect_latency": -1e-9},
        {"probe_pacing": 0.0},
        {"epoch_stagger": 1.5},
        {"epoch_stagger": -0.1},
        {"detection_lag": 0.0},
    ],
)
def test_validation_rejects_bad_fields(kwargs):
    with pytest.raises(ConfigurationError):
        TimingSpec(**kwargs)


def test_as_dict_lists_every_field():
    d = TimingSpec.degraded().as_dict()
    assert set(d) == {
        "respawn_delay",
        "reconnect_latency",
        "probe_pacing",
        "epoch_stagger",
        "detection_lag",
    }
    assert d["respawn_delay"] == 0.05


def test_timing_spec_is_hashable_and_picklable():
    import pickle

    t = TimingSpec.degraded()
    assert pickle.loads(pickle.dumps(t)) == t
    assert len({t, TimingSpec.degraded(), TimingSpec.paper()}) == 2


# ----------------------------------------------------------------------
# Model-side correction math
# ----------------------------------------------------------------------
def test_slowdown_is_one_when_downtime_fits_in_an_interval():
    # omega = 25.6 -> interval ~0.039 > respawn+latency = 0.011.
    assert TimingSpec.paper().direct_slowdown(25.6) == 1
    assert TimingSpec.ideal().direct_slowdown(1e9) == 1


def test_slowdown_counts_lost_grid_points():
    # interval = 0.01; dead time 0.025 -> the 3rd fire after a crash is
    # the first to land.
    t = TimingSpec(respawn_delay=0.02, reconnect_latency=0.005)
    assert t.direct_slowdown(100.0) == 3
    assert t.effective_direct_rate(100.0) == pytest.approx(100.0 / 3)


def test_slowdown_exact_interval_boundary():
    # dead time exactly one interval: the very next fire lands.
    t = TimingSpec(respawn_delay=0.01, reconnect_latency=0.0)
    assert t.direct_slowdown(100.0) == 1


def test_probe_pacing_scales_rates():
    t = TimingSpec(respawn_delay=0.0, reconnect_latency=0.0, probe_pacing=2.0)
    assert t.effective_direct_rate(50.0) == pytest.approx(25.0)


def test_ideal_effective_attack_keeps_alpha_and_kappa():
    eff = TimingSpec.ideal().effective_attack(
        0.15, 256, kappa=0.5, launchpad_fraction=1.0
    )
    assert eff.alpha_direct == pytest.approx(0.15)
    assert eff.omega_direct == pytest.approx(38.4)
    assert eff.kappa == pytest.approx(0.5)
    # Only the within-step launch-pad window survives zero delays.
    omega = 38.4
    assert eff.launchpad_fraction == pytest.approx((omega - 1) / (2 * omega))


def test_paper_effective_attack_shrinks_indirect_and_launchpad():
    eff = TimingSpec.paper().effective_attack(
        0.15, 256, kappa=0.5, launchpad_fraction=1.0
    )
    # Proxies respawn for ~33% of each step, so the indirect stream
    # loses probes on top of the primary's own downtime.
    assert eff.kappa < 0.5 * 0.75
    assert eff.kappa > 0.2
    assert eff.launchpad_fraction < 0.5
    assert eff.alpha_direct == pytest.approx(0.15)  # slowdown is 1 here


def test_effective_attack_validates_inputs():
    t = TimingSpec.paper()
    with pytest.raises(ConfigurationError):
        t.effective_attack(0.0, 256)
    with pytest.raises(ConfigurationError):
        t.effective_attack(0.5, 0)
    with pytest.raises(ConfigurationError):
        t.direct_slowdown(0.0)


# ----------------------------------------------------------------------
# Analytic layer
# ----------------------------------------------------------------------
def test_per_step_compromise_timed_reduces_q_for_s2po():
    spec = s2(Scheme.PO, alpha=0.15, kappa=0.5, entropy_bits=8)
    q_pure = per_step_compromise(spec)
    q_ideal = per_step_compromise(spec, TimingSpec.ideal())
    q_paper = per_step_compromise(spec, TimingSpec.paper())
    # The launch-pad window alone lowers q; realistic delays lower it
    # further (longer lifetimes, matching the protocol stack).
    assert q_paper < q_ideal < q_pure


def test_per_step_compromise_unchanged_for_s0_s1_at_laptop_scale():
    # No proxies, no launch pad; with respawn+latency inside one probe
    # interval the direct streams lose nothing.
    for spec in (
        s0(Scheme.PO, alpha=0.15, entropy_bits=8),
        s1(Scheme.PO, alpha=0.15, entropy_bits=8),
    ):
        assert per_step_compromise(spec, TimingSpec.paper()) == pytest.approx(
            per_step_compromise(spec)
        )


def test_expected_lifetime_timed_ordering():
    spec = s2(Scheme.PO, alpha=0.15, kappa=0.5, entropy_bits=8)
    el_pure = expected_lifetime(spec)
    el_ideal = expected_lifetime(spec, TimingSpec.ideal())
    el_paper = expected_lifetime(spec, TimingSpec.paper())
    assert el_pure < el_ideal < el_paper


def test_expected_lifetime_so_slowdown_extends_life():
    # A respawn delay longer than the probe interval halves the
    # attacker's landed rate, roughly doubling SO lifetimes.
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=8)  # interval 1/25.6
    slow = TimingSpec(respawn_delay=0.05, reconnect_latency=0.0)
    assert slow.direct_slowdown(spec.omega) == 2
    el_slow = expected_lifetime(spec, slow)
    el_pure = expected_lifetime(spec)
    assert el_slow == pytest.approx(expected_lifetime(spec.with_alpha(0.05)), rel=1e-9)
    assert el_slow > 1.8 * el_pure


def test_s2so_numeric_timed_matches_timed_sampler():
    spec = s2(Scheme.SO, alpha=0.15, kappa=0.5, entropy_bits=8)
    timing = TimingSpec.paper()
    numeric = el_s2_so_numeric(
        spec.alpha,
        spec.kappa,
        n_proxies=spec.n_proxies,
        chi=spec.chi,
        timing=timing,
    )
    mc = mc_expected_lifetime(spec, trials=120_000, seed=7, timing=timing)
    # quadrature and sampler make slightly different sub-step
    # discretization choices (~0.5%, same as the untimed pair)
    assert numeric == pytest.approx(mc.mean, rel=0.015)
    # and the correction moves the model (proxy downtime drops probes)
    assert numeric > el_s2_so_numeric(spec.alpha, spec.kappa) + 0.2


def test_s2so_numeric_timed_requires_chi():
    from repro.errors import AnalysisError

    with pytest.raises(AnalysisError):
        el_s2_so_numeric(0.15, 0.5, timing=TimingSpec.paper())


# ----------------------------------------------------------------------
# Monte-Carlo layer
# ----------------------------------------------------------------------
def test_models_default_timing_is_bit_identical_to_untimed():
    for spec in (
        s2(Scheme.PO, alpha=0.1, kappa=0.5, entropy_bits=8),
        s2(Scheme.SO, alpha=0.1, kappa=0.5, entropy_bits=8),
        s0(Scheme.SO, alpha=0.1, entropy_bits=8),
        s1(Scheme.SO, alpha=0.1, entropy_bits=8),
    ):
        a = model_for(spec).sample(500, np.random.default_rng(3))
        b = model_for(spec, timing=None).sample(500, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


def test_timed_geometric_model_matches_timed_analytic():
    spec = s2(Scheme.PO, alpha=0.15, kappa=0.5, entropy_bits=8)
    timing = TimingSpec.paper()
    mc = mc_expected_lifetime(spec, trials=200_000, seed=5, timing=timing)
    assert mc.within_ci(expected_lifetime(spec, timing))


def test_timed_step_level_model_matches_timed_closed_form():
    spec = s2(Scheme.PO, alpha=0.2, kappa=0.5, entropy_bits=8)
    timing = TimingSpec.paper()
    step = mc_expected_lifetime(
        spec, trials=60_000, seed=9, step_level=True, timing=timing
    )
    assert step.within_ci(expected_lifetime(spec, timing))


def test_timed_sampler_batch_and_scalar_agree():
    spec = s2(Scheme.SO, alpha=0.15, kappa=0.5, entropy_bits=8)
    model = model_for(spec, timing=TimingSpec.degraded())
    batch = model.sample_batch(400, np.random.default_rng(11))
    scalar = model.sample_scalar(400, np.random.default_rng(12))
    # same distribution: compare means loosely
    assert abs(batch.mean() - scalar.mean()) < 0.6


# ----------------------------------------------------------------------
# Protocol layer threading
# ----------------------------------------------------------------------
def test_build_system_threads_timing_into_every_component():
    timing = TimingSpec(
        respawn_delay=0.07,
        reconnect_latency=0.003,
        probe_pacing=2.0,
        epoch_stagger=0.5,
        detection_lag=1.25,
    )
    spec = s2(Scheme.PO, alpha=0.1, kappa=0.5, entropy_bits=8)
    deployed = build_system(spec, seed=1, timing=timing)
    assert deployed.timing == timing
    for server in deployed.servers:
        assert server.respawn_delay == 0.07
    for proxy in deployed.proxies:
        assert proxy.respawn_delay == 0.07
        assert proxy.request_timeout == 1.25
    assert deployed.network.latency.delay == 0.003
    attacker = attach_attacker(deployed)
    assert attacker.probe_pacing == 2.0
    # direct streams at the proxies pace at pacing * period / omega
    assert attacker._drivers[0].interval == pytest.approx(
        2.0 * spec.period / spec.omega
    )
    # indirect stream paces at pacing * period / (kappa * omega)
    assert attacker._indirect[0].interval == pytest.approx(
        2.0 * spec.period / (spec.kappa * spec.omega)
    )


def test_build_system_defaults_to_paper_timing():
    spec = s1(Scheme.PO, alpha=0.1, entropy_bits=8)
    deployed = build_system(spec, seed=2)
    assert deployed.timing == TimingSpec.paper()
    assert deployed.servers[0].respawn_delay == DEFAULT_RESPAWN_DELAY


def test_build_system_respawn_delay_override_wins():
    spec = s1(Scheme.PO, alpha=0.1, entropy_bits=8)
    deployed = build_system(spec, seed=2, timing=TimingSpec.ideal(), respawn_delay=0.5)
    assert deployed.servers[0].respawn_delay == 0.5
    assert deployed.timing.reconnect_latency == 0.0  # rest of ideal kept


def test_epoch_stagger_spreads_diverse_refreshes():
    timing = TimingSpec(epoch_stagger=0.5)
    spec = s2(Scheme.PO, alpha=0.1, kappa=0.5, entropy_bits=8)
    deployed = build_system(spec, seed=3, timing=timing)
    offsets = sorted(g.offset for g in deployed.obfuscation._groups)
    # 3 proxies spread over half a period; the PB server group at 0.
    assert offsets == pytest.approx([0.0, 0.0, 1 / 6, 2 / 6])


def test_stagger_recovery_still_forces_full_spread():
    spec = s0(Scheme.SO, alpha=0.1, entropy_bits=8)
    deployed = build_system(
        spec,
        seed=4,
        timing=TimingSpec(epoch_stagger=0.0),
        stagger_recovery=True,
        reboot_duration=0.1,
    )
    offsets = sorted(g.offset for g in deployed.obfuscation._groups)
    assert offsets == pytest.approx([0.0, 0.25, 0.5, 0.75])


def test_protocol_matches_timed_model_under_ideal_timing():
    # The tentpole contract at unit-test scale: an ideal-timing S2PO
    # deployment agrees with the timing-aware model (which differs from
    # the paper model by the launch-pad window).
    spec = s2(Scheme.PO, alpha=0.2, kappa=0.5, entropy_bits=6)
    timing = TimingSpec.ideal()
    estimate = estimate_protocol_lifetime(
        spec, trials=60, max_steps=300, seed0=100, timing=timing
    )
    model = expected_lifetime(spec, timing)
    assert estimate.censored == 0
    assert estimate.stats.ci_low <= model <= estimate.stats.ci_high


def test_estimate_protocol_lifetime_accepts_timing_kwarg():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    fast = estimate_protocol_lifetime(
        spec, trials=8, max_steps=200, timing=TimingSpec.ideal()
    )
    slow = estimate_protocol_lifetime(
        spec,
        trials=8,
        max_steps=200,
        timing=TimingSpec(respawn_delay=0.2, reconnect_latency=0.01),
    )
    # a respawn delay spanning several probe intervals slows discovery
    assert slow.mean_steps > fast.mean_steps
