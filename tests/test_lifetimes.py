"""Unit tests for the analytic expected-lifetime formulas."""

from __future__ import annotations

import math

import pytest

from repro.analysis.lifetimes import (
    el_from_per_step,
    el_s0_po,
    el_s0_so,
    el_s1_po,
    el_s1_so,
    el_s2_po,
    expected_lifetime,
    per_step_compromise,
    per_step_compromise_s0_po,
    per_step_compromise_s1_po,
    per_step_compromise_s2_po,
    survival_curve,
)
from repro.analysis.markov import geometric_chain
from repro.core.specs import s0, s1, s2
from repro.errors import AnalysisError
from repro.randomization.obfuscation import Scheme


# ----------------------------------------------------------------------
# Per-step probabilities
# ----------------------------------------------------------------------
def test_s0_po_per_step_binomial_tail():
    alpha = 0.01
    expected = 1 - (1 - alpha) ** 4 - 4 * alpha * (1 - alpha) ** 3
    assert per_step_compromise_s0_po(alpha) == pytest.approx(expected)


def test_s0_po_small_alpha_approx_6_alpha_squared():
    alpha = 1e-4
    assert per_step_compromise_s0_po(alpha) == pytest.approx(6 * alpha**2, rel=0.01)


def test_s1_po_per_step_is_alpha():
    assert per_step_compromise_s1_po(0.005) == 0.005


def test_s2_po_kappa_zero_only_proxy_routes():
    """With κ=0 and λ=0 the only compromise route is all proxies at once."""
    alpha = 0.1
    q = per_step_compromise_s2_po(alpha, kappa=0.0, launchpad_fraction=0.0)
    assert q == pytest.approx(alpha**3)


def test_s2_po_small_alpha_dominated_by_kappa_alpha():
    alpha, kappa = 1e-4, 0.5
    q = per_step_compromise_s2_po(alpha, kappa)
    assert q == pytest.approx(kappa * alpha, rel=0.01)


def test_s2_po_monotone_in_kappa_and_lambda():
    alpha = 0.01
    qs = [per_step_compromise_s2_po(alpha, k) for k in (0.0, 0.3, 0.6, 1.0)]
    assert qs == sorted(qs)
    ls = [
        per_step_compromise_s2_po(alpha, 0.5, launchpad_fraction=l)
        for l in (0.0, 0.5, 1.0)
    ]
    assert ls == sorted(ls)


def test_s2_po_per_proxy_launchpad_is_stronger():
    alpha = 0.05
    single = per_step_compromise_s2_po(alpha, 0.5, per_proxy_launchpad=False)
    per_proxy = per_step_compromise_s2_po(alpha, 0.5, per_proxy_launchpad=True)
    assert per_proxy > single


def test_s2_po_decomposition_exact():
    """Cross-check the closed form against brute-force enumeration."""
    alpha, kappa, lam, n = 0.07, 0.4, 0.8, 3
    survive = 0.0
    for b in range(n):
        p_b = math.comb(n, b) * alpha**b * (1 - alpha) ** (n - b)
        lp = 1.0 if b == 0 else (1 - lam * alpha)
        survive += p_b * lp
    survive *= 1 - kappa * alpha
    assert per_step_compromise_s2_po(alpha, kappa, lam, n) == pytest.approx(1 - survive)


# ----------------------------------------------------------------------
# Expected lifetimes
# ----------------------------------------------------------------------
def test_el_from_per_step_matches_markov_chain():
    for q in (0.01, 0.1, 0.5):
        assert el_from_per_step(q) == pytest.approx(
            geometric_chain(q).expected_lifetime_from(0)
        )


def test_el_s1_po_inverse_alpha():
    assert el_s1_po(0.001) == pytest.approx(999.0)


def test_el_s1_so_half_inverse_alpha():
    assert el_s1_so(0.001) == pytest.approx(499.5, rel=1e-6)


def test_el_s1_so_exact_small_cases():
    # alpha = 0.5: survive step 1 w.p. 0.5, dead by step 2. EL = 0.5.
    assert el_s1_so(0.5) == pytest.approx(0.5)
    assert el_s1_so(1.0) == pytest.approx(0.0)


def test_el_s0_so_two_fifths_inverse_alpha():
    """The 2nd order statistic of 4 uniforms: EL ≈ 0.4/α."""
    alpha = 1e-3
    assert el_s0_so(alpha) == pytest.approx(0.4 / alpha, rel=0.01)


def test_el_s0_so_brute_force_small_alpha():
    """Check the vectorized sum against a plain-Python loop."""
    alpha, n, f = 0.2, 4, 1
    total = 0.0
    for t in range(1, 6):
        p = min(1.0, t * alpha)
        total += (1 - p) ** 4 + 4 * p * (1 - p) ** 3
    assert el_s0_so(alpha) == pytest.approx(total)


def test_el_s2_po_interpolates_kappa():
    alpha = 1e-3
    low = el_s2_po(alpha, 0.0)
    mid = el_s2_po(alpha, 0.5)
    high = el_s2_po(alpha, 1.0)
    assert low > mid > high


def test_expected_lifetime_dispatcher_po():
    assert expected_lifetime(s0(Scheme.PO, alpha=1e-3)) == pytest.approx(el_s0_po(1e-3))
    assert expected_lifetime(s1(Scheme.PO, alpha=1e-3)) == pytest.approx(999.0)
    spec = s2(Scheme.PO, alpha=1e-3, kappa=0.25)
    assert expected_lifetime(spec) == pytest.approx(el_s2_po(1e-3, 0.25))


def test_expected_lifetime_dispatcher_so():
    assert expected_lifetime(s1(Scheme.SO, alpha=1e-3)) == pytest.approx(499.5)
    assert expected_lifetime(s0(Scheme.SO, alpha=1e-3)) == pytest.approx(el_s0_so(1e-3))


def test_expected_lifetime_s2_so_uses_numeric_quadrature():
    from repro.analysis.s2so import el_s2_so_numeric

    spec = s2(Scheme.SO, alpha=1e-2, kappa=0.5)
    assert expected_lifetime(spec) == pytest.approx(el_s2_so_numeric(1e-2, 0.5))


def test_expected_lifetime_s2_so_raises_when_intractable():
    with pytest.raises(AnalysisError):
        expected_lifetime(s2(Scheme.SO, alpha=1e-5))


def test_per_step_compromise_requires_po():
    with pytest.raises(AnalysisError):
        per_step_compromise(s1(Scheme.SO, alpha=1e-3))


# ----------------------------------------------------------------------
# Survival curves
# ----------------------------------------------------------------------
def test_survival_curve_po_geometric():
    spec = s1(Scheme.PO, alpha=0.1)
    curve = survival_curve(spec, 4)
    assert list(curve) == pytest.approx([0.9**t for t in range(1, 5)])


def test_survival_curve_s1_so_linear():
    spec = s1(Scheme.SO, alpha=0.25)
    assert list(survival_curve(spec, 5)) == pytest.approx([0.75, 0.5, 0.25, 0.0, 0.0])


def test_survival_curve_sums_to_el():
    """EL = Σ_t S(t): the curves and the closed forms must be one story."""
    spec = s0(Scheme.SO, alpha=0.05)
    curve = survival_curve(spec, 40)
    assert curve.sum() == pytest.approx(el_s0_so(0.05))


def test_survival_curve_s2_so_unsupported():
    with pytest.raises(AnalysisError):
        survival_curve(s2(Scheme.SO, alpha=0.1), 5)


def test_alpha_validation():
    with pytest.raises(AnalysisError):
        el_s1_po(0.0)
    with pytest.raises(AnalysisError):
        el_s0_so(1.0001)
    with pytest.raises(AnalysisError):
        el_from_per_step(0.0)
