"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto.signatures import SignatureAuthority
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.randomization.keyspace import KeySpace
from repro.sim.engine import Simulator


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch) -> None:
    """Point the campaign result cache into the test's tmp dir.

    CLI campaign commands cache results under ``~/.cache`` by default;
    tests must neither read a developer's warm cache (hiding real
    regressions behind stale hits) nor pollute it.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def network(sim: Simulator) -> Network:
    """A network with fixed small latency on the ``sim`` fixture."""
    return Network(sim, latency=FixedLatency(0.001))


@pytest.fixture
def authority() -> SignatureAuthority:
    """A deterministic signature authority."""
    return SignatureAuthority(random.Random(7))


@pytest.fixture
def small_keyspace() -> KeySpace:
    """A 2^6 = 64-key space (tiny, so attacks finish fast in tests)."""
    return KeySpace(6)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic plain RNG."""
    return random.Random(123)
