"""Tests for the parallel protocol-level campaign runner.

The determinism + censoring battery locking down the generalized task
executor (:class:`repro.mc.executor.TaskExecutor`) and the campaign
layer built on it:

* worker-count and batch-size invariance — campaign results are
  bit-identical for ``workers=1``, ``workers=4`` and the serial
  fallback, mirroring the MC-executor guarantee;
* pool-breakage resilience — a poisoned task kills the pool mid-run and
  completed results must survive;
* the paper's model-vs-protocol agreement as a *test*: S0SO protocol
  lifetimes stochastically dominate shorter-entropy variants (at a
  fixed attacker probe rate ω) and match the MC model mean within 3σ.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np
import pytest

from repro.core.campaign import CampaignResult, campaign_grid, run_campaign
from repro.core.experiment import ProtocolTask, run_protocol_task
from repro.core.specs import SystemClass, s0, s1, s2
from repro.errors import ConfigurationError
from repro.mc.executor import TaskExecutor, derive_point_seed
from repro.mc.montecarlo import mc_expected_lifetime
from repro.randomization.obfuscation import Scheme
from repro.reporting.tables import render_campaign_table


def _pools_work() -> bool:
    """Whether this platform can actually start a process pool (the
    executor's serial fallback keeps production code working without
    one, but the pool-observing tests below have nothing to observe)."""
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(os.getpid).result(timeout=60) > 0
    except Exception:
        return False


needs_pool = pytest.mark.skipif(
    not _pools_work(), reason="process pools unavailable on this platform"
)


def _small_grid():
    return campaign_grid(
        systems=(SystemClass.S1, SystemClass.S2),
        schemes=(Scheme.SO,),
        alphas=(0.2,),
        kappas=(0.5,),
        entropy_bits=6,
    )


# ----------------------------------------------------------------------
# Grid construction
# ----------------------------------------------------------------------
def test_campaign_grid_shape_and_kappa_collapse():
    """κ only parameterizes S2: S0/S1 points appear once per (scheme, α)
    instead of once per κ."""
    specs = campaign_grid(
        systems=(SystemClass.S0, SystemClass.S2),
        schemes=(Scheme.PO, Scheme.SO),
        alphas=(0.1, 0.2),
        kappas=(0.25, 0.5, 0.75),
        entropy_bits=8,
    )
    s0_points = [s for s in specs if s.system is SystemClass.S0]
    s2_points = [s for s in specs if s.system is SystemClass.S2]
    assert len(s0_points) == 2 * 2  # schemes x alphas
    assert len(s2_points) == 2 * 2 * 3  # schemes x alphas x kappas
    assert len(set(specs)) == len(specs)  # no duplicate grid points


def test_campaign_grid_validation():
    with pytest.raises(ConfigurationError):
        campaign_grid(systems=(), alphas=(0.1,))
    with pytest.raises(ConfigurationError):
        campaign_grid(alphas=())
    with pytest.raises(ConfigurationError):
        campaign_grid(systems=(SystemClass.S2,), kappas=())


# ----------------------------------------------------------------------
# Worker-count / batch-size invariance (the acceptance guarantee)
# ----------------------------------------------------------------------
def test_campaign_bit_identical_across_workers_and_batches():
    specs = _small_grid()
    serial = run_campaign(specs, trials=6, max_steps=40, seed=9, workers=1)
    fanned = run_campaign(specs, trials=6, max_steps=40, seed=9, workers=4)
    rebatched = run_campaign(
        specs, trials=6, max_steps=40, seed=9, workers=4, batch_size=2
    )
    for a, b, c in zip(serial, fanned, rebatched):
        assert a.spec == b.spec == c.spec
        assert a.stats == b.stats == c.stats
        assert a.censored == b.censored == c.censored
        steps = [o.steps for o in a.outcomes]
        assert steps == [o.steps for o in b.outcomes]
        assert steps == [o.steps for o in c.outcomes]
        probes = [o.probes_direct for o in a.outcomes]
        assert probes == [o.probes_direct for o in b.outcomes]
        assert probes == [o.probes_direct for o in c.outcomes]


def test_campaign_bit_identical_under_serial_fallback(monkeypatch):
    """A platform that refuses process pools must degrade to serial
    execution with a warning — and identical results."""
    specs = _small_grid()
    baseline = run_campaign(specs, trials=4, max_steps=40, seed=3, workers=1)

    def _refuse(*args, **kwargs):
        raise PermissionError("process pools forbidden")

    monkeypatch.setattr("repro.mc.executor.ProcessPoolExecutor", _refuse)
    with pytest.warns(RuntimeWarning, match="process pool unavailable"):
        fallback = run_campaign(specs, trials=4, max_steps=40, seed=3, workers=4)
    for a, b in zip(baseline, fallback):
        assert a.stats == b.stats
        assert [o.steps for o in a.outcomes] == [o.steps for o in b.outcomes]


def test_campaign_seeds_derive_from_grid_position():
    """Per-seed derivation is structural: seeds never depend on batch
    shape or worker identity, only on (root, point index, trial index)."""
    specs = _small_grid()
    result = run_campaign(specs, trials=3, max_steps=40, seed=7, workers=1)
    for i, estimate in enumerate(result):
        expected = [derive_point_seed(7, i, j) for j in range(3)]
        assert [o.seed for o in estimate.outcomes] == expected


def test_campaign_result_accessors():
    specs = _small_grid()
    result = run_campaign(specs, trials=3, max_steps=40, seed=1)
    assert isinstance(result, CampaignResult)
    assert len(result) == len(specs)
    assert result.specs == [e.spec for e in result.estimates]
    assert result.total_runs == 3 * len(specs)
    assert result.total_censored == sum(e.censored for e in result)


def test_campaign_validation():
    with pytest.raises(ConfigurationError):
        run_campaign([], trials=3)
    with pytest.raises(ConfigurationError):
        run_campaign(_small_grid(), trials=0)
    with pytest.raises(ConfigurationError):
        run_campaign(_small_grid(), trials=3, batch_size=0)


def test_precision_mode_bit_identical_across_workers():
    """The invariance contract covers precision mode too: streaming
    rounds are sized by a constant, never the worker count, so the
    sample size and estimate match for any fan-out."""
    specs = [s1(Scheme.SO, alpha=0.2, entropy_bits=6)]
    kwargs = dict(max_steps=60, seed=2, precision=0.3, min_trials=8, max_trials=96)
    serial = run_campaign(specs, workers=1, **kwargs)
    fanned = run_campaign(specs, workers=4, **kwargs)
    rebatched = run_campaign(specs, workers=4, batch_size=3, **kwargs)
    a, b, c = (r.estimates[0] for r in (serial, fanned, rebatched))
    assert a.stats == b.stats == c.stats
    assert a.stats.n == b.stats.n == c.stats.n
    assert a.converged == b.converged == c.converged
    steps = [o.steps for o in a.outcomes]
    assert steps == [o.steps for o in b.outcomes]
    assert steps == [o.steps for o in c.outcomes]


def test_campaign_precision_mode_converges_per_point():
    specs = [s1(Scheme.SO, alpha=0.2, entropy_bits=6)]
    result = run_campaign(
        specs,
        max_steps=60,
        seed=2,
        precision=0.25,
        min_trials=8,
        max_trials=120,
    )
    estimate = result.estimates[0]
    assert estimate.converged
    assert estimate.stats.n >= 8
    halfwidth = estimate.stats.ci_halfwidth
    assert halfwidth <= 0.25 * abs(estimate.mean_steps) * 1.0001


# ----------------------------------------------------------------------
# Pool breakage: completed results survive a mid-campaign crash
# ----------------------------------------------------------------------
def _poisonable_task(task: dict) -> tuple[int, int]:
    """Returns (value*2, pid); kills its host process when poisoned —
    but only inside a pool worker, never in the parent."""
    if task["poison"] and os.getpid() != task["parent"]:
        os._exit(13)
    if task["slow"]:
        time.sleep(0.6)
    return task["value"] * 2, os.getpid()


@needs_pool
def test_poisoned_task_breaks_pool_but_partial_results_survive():
    parent = os.getpid()

    def make(value, poison=False, slow=False):
        return {"value": value, "poison": poison, "parent": parent, "slow": slow}

    # Two quick tasks first so the pool completes them before the slow
    # poisoned task hard-kills its worker, then two more behind it.
    tasks = [
        make(0),
        make(1),
        make(2, poison=True, slow=True),
        make(3),
        make(4),
    ]
    with pytest.warns(RuntimeWarning, match="process pool unavailable"):
        results = TaskExecutor(workers=2).map(_poisonable_task, tasks)
    values = [value for value, _ in results]
    assert values == [0, 2, 4, 6, 8]  # order preserved, nothing lost
    # The poisoned task was re-run serially in the parent (where its
    # poison is inert) after the pool broke.
    assert results[2][1] == parent
    # At least one pre-poison result was computed by a pool worker and
    # preserved across the breakage rather than re-run.
    assert any(pid != parent for _, pid in results[:2])


def _pid_task(task: int) -> int:
    return os.getpid()


@needs_pool
def test_persistent_pool_broken_between_rounds_degrades_serially():
    """A persistent pool whose workers die while idle must not crash
    the next round: submit-time breakage degrades to serial execution."""
    import signal

    with TaskExecutor(workers=2) as executor:
        worker_pids = set(executor.map(_pid_task, list(range(4))))
        for pid in worker_pids:
            os.kill(pid, signal.SIGKILL)
        time.sleep(0.2)  # let the pool notice its workers are gone
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            results = executor.map(_pid_task, list(range(3)))
    assert results == [os.getpid()] * 3  # the serial fallback ran them


@needs_pool
def test_persistent_executor_reuses_one_pool_across_maps():
    """Inside a ``with`` block the executor keeps one pool alive, so
    streaming rounds stop paying pool startup per round."""
    with TaskExecutor(workers=2) as executor:
        first = set(executor.map(_pid_task, list(range(4))))
        pool = executor._pool
        assert pool is not None  # held open between rounds
        second = set(executor.map(_pid_task, list(range(4))))
        assert executor._pool is pool  # same pool served both rounds
        assert os.getpid() not in first | second
    assert executor._pool is None  # closed on exit
    # After close(), mapping still works (fresh ephemeral pool).
    assert len(executor.map(_pid_task, list(range(2)))) == 2


def test_campaign_precision_falls_back_on_refused_points():
    """A heavily censored grid point must not abort the campaign: it is
    reported as an unconverged fixed-count lower bound and the healthy
    points keep their precision-targeted estimates."""
    censored_spec = s1(Scheme.PO, alpha=0.0001, entropy_bits=16)
    healthy_spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    with pytest.warns(RuntimeWarning, match="refused its precision target"):
        result = run_campaign(
            [censored_spec, healthy_spec],
            max_steps=5,
            seed=1,
            precision=0.35,
            min_trials=4,
            max_trials=150,
        )
    refused, healthy = result.estimates
    assert not refused.converged
    # The runs simulated before the refusal are kept, not re-run.
    assert refused.stats.n >= 4
    assert refused.censored_fraction == 1.0
    assert healthy.converged


def test_sweep_executor_still_accepts_generic_map_form():
    """SweepExecutor stays substitutable as a TaskExecutor: both the
    MC shorthand map(tasks) and the generic map(fn, tasks) work."""
    from repro.mc.executor import SweepExecutor

    executor = SweepExecutor(workers=1)
    assert executor.map(_pid_task, [1, 2]) == [os.getpid()] * 2


def test_unconverged_campaign_points_flagged_in_table():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    result = run_campaign(
        [spec], max_steps=60, seed=2, precision=0.001, min_trials=4, max_trials=12
    )
    assert not result.estimates[0].converged
    text = render_campaign_table(result.estimates)
    assert "(unconverged)" in text


def test_protocol_task_runs_batch_in_seed_order():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    task = ProtocolTask(spec=spec, seeds=(5, 6, 7), max_steps=40)
    outcomes = run_protocol_task(task)
    assert [o.seed for o in outcomes] == [5, 6, 7]
    assert all(o.spec == spec for o in outcomes)


# ----------------------------------------------------------------------
# The paper's model-vs-protocol check as a test (not just a bench)
# ----------------------------------------------------------------------
def test_s0_so_dominates_shorter_entropy_and_matches_mc_model(scale_trials):
    """At a fixed attacker probe rate ω, S0SO with more key entropy must
    stochastically dominate the shorter-entropy variant, and the
    high-entropy protocol mean must agree with the MC model within 3σ."""
    omega = 25.6  # probes per step, shared by both variants
    high = s0(Scheme.SO, alpha=omega / 2**8, entropy_bits=8)
    low = s0(Scheme.SO, alpha=omega / 2**6, entropy_bits=6)
    trials = scale_trials(40, floor=12)
    high_run = run_campaign([high], trials=trials, max_steps=100, seed=13)
    low_run = run_campaign([low], trials=trials, max_steps=100, seed=13)
    high_steps = np.array([o.steps for o in high_run.estimates[0].outcomes])
    low_steps = np.array([o.steps for o in low_run.estimates[0].outcomes])
    assert high_run.total_censored == 0 and low_run.total_censored == 0

    # Stochastic dominance: the high-entropy empirical CDF never exceeds
    # the low-entropy one by more than small-sample slack, and strict
    # dominance shows up somewhere.
    slack = 2.0 * np.sqrt(np.log(4.0) / (2.0 * trials))  # ~2x DKW bound
    grid = np.arange(0, 101)
    high_cdf = (high_steps[None, :] <= grid[:, None]).mean(axis=1)
    low_cdf = (low_steps[None, :] <= grid[:, None]).mean(axis=1)
    assert (high_cdf <= low_cdf + slack).all()
    assert (low_cdf - high_cdf).max() > slack

    # Agreement with the MC model within 3σ (combined standard error).
    model = mc_expected_lifetime(high, seed=11, precision=0.02, max_trials=500_000)
    protocol_se = high_steps.std(ddof=1) / np.sqrt(high_steps.size)
    model_se = model.stats.std / np.sqrt(model.stats.n)
    sigma = float(np.hypot(protocol_se, model_se))
    assert abs(high_steps.mean() - model.mean) <= 3.0 * sigma


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_render_campaign_table_marks_censored_lower_bounds():
    spec = s1(Scheme.PO, alpha=0.001, entropy_bits=16)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = run_campaign([spec], trials=3, max_steps=5, seed=0)
    estimate = result.estimates[0]
    assert estimate.censored == 3
    text = render_campaign_table(result.estimates, title="campaign")
    assert "campaign" in text
    assert ">=5" in text  # censored means render as lower bounds
    assert "S1PO" in text


def test_render_campaign_table_with_model_column():
    spec = s2(Scheme.SO, alpha=0.2, kappa=0.5, entropy_bits=6)
    result = run_campaign([spec], trials=3, max_steps=40, seed=0)
    text = render_campaign_table(result.estimates, model_means={0: 2.5})
    assert "model EL" in text and "2.5" in text
    with pytest.raises(ConfigurationError):
        render_campaign_table([])


# ----------------------------------------------------------------------
# Diffable campaign records
# ----------------------------------------------------------------------
def test_campaign_record_schema_and_json_round_trip():
    import json

    from repro.core.campaign import campaign_record
    from repro.core.timing import TimingSpec

    specs = campaign_grid(
        systems=(SystemClass.S1,),
        schemes=(Scheme.SO,),
        alphas=(0.2,),
        entropy_bits=6,
    )
    timing = TimingSpec.ideal()
    result = run_campaign(specs, trials=4, max_steps=100, seed=3, timing=timing)
    record = campaign_record(result, timing=timing, timing_preset="ideal")
    assert record["benchmark"] == "protocol_campaign"
    assert record["timing_preset"] == "ideal"
    assert record["timing"]["respawn_delay"] == 0.0
    assert record["grid_points"] == 1 and record["total_runs"] == 4
    (row,) = record["rows"]
    assert row["label"] == "S1SO" and row["scheme"] == "SO"
    assert row["runs"] == 4 and row["converged"] is True
    assert row["protocol_ci"][0] <= row["protocol_mean"] <= row["protocol_ci"][1]
    # must survive a JSON round trip unchanged
    assert json.loads(json.dumps(record)) == record


def test_campaign_record_mirrors_estimates():
    from repro.core.campaign import campaign_record

    specs = campaign_grid(
        systems=(SystemClass.S0,),
        schemes=(Scheme.SO,),
        alphas=(0.25,),
        entropy_bits=6,
    )
    result = run_campaign(specs, trials=3, max_steps=80, seed=1)
    record = campaign_record(result)
    assert "timing" not in record and "timing_preset" not in record
    for row, estimate in zip(record["rows"], result.estimates):
        assert row["protocol_mean"] == estimate.mean_steps
        assert row["censored"] == estimate.censored
        assert row["km_mean"] == estimate.km_mean_steps
