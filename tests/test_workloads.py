"""Tests for workload distributions and the open-loop client."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.builders import build_system
from repro.core.specs import s0, s1, s2
from repro.errors import ConfigurationError
from repro.randomization.obfuscation import Scheme
from repro.workloads.distributions import UniformKeys, ZipfKeys, kv_body_factory
from repro.workloads.openloop import OpenLoopClient


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------
def test_uniform_keys_cover_space():
    dist = UniformKeys(n_keys=8)
    rng = random.Random(1)
    seen = {dist.sample(rng) for _ in range(500)}
    assert seen == {f"k{i}" for i in range(8)}


def test_zipf_probabilities_normalized_and_ranked():
    dist = ZipfKeys(n_keys=16, s=1.2)
    probabilities = [dist.probability(i) for i in range(16)]
    assert sum(probabilities) == pytest.approx(1.0)
    assert probabilities == sorted(probabilities, reverse=True)


def test_zipf_skew_concentrates_on_hot_keys():
    dist = ZipfKeys(n_keys=64, s=1.0)
    rng = random.Random(2)
    counts = Counter(dist.sample(rng) for _ in range(20_000))
    hot = counts["k0"] / 20_000
    assert hot == pytest.approx(dist.probability(0), abs=0.02)
    assert hot > 5 * counts.get("k40", 1) / 20_000


def test_zipf_s_zero_is_uniform():
    dist = ZipfKeys(n_keys=10, s=0.0)
    for i in range(10):
        assert dist.probability(i) == pytest.approx(0.1)


def test_zipf_validation():
    with pytest.raises(ConfigurationError):
        ZipfKeys(n_keys=0)
    with pytest.raises(ConfigurationError):
        ZipfKeys(n_keys=4, s=-1.0)
    with pytest.raises(ConfigurationError):
        ZipfKeys(n_keys=4).probability(9)


def test_body_factory_read_ratio():
    factory = kv_body_factory(UniformKeys(8), read_ratio=0.8)
    rng = random.Random(3)
    bodies = [factory(i, rng) for i in range(1000)]
    reads = sum(1 for b in bodies if b["op"] == "get")
    assert 0.72 < reads / 1000 < 0.88
    with pytest.raises(ConfigurationError):
        kv_body_factory(UniformKeys(8), read_ratio=1.5)


# ----------------------------------------------------------------------
# Open-loop client
# ----------------------------------------------------------------------
def make_openloop(spec, mode, targets_of, arrival_rate=20.0, seed=70):
    deployed = build_system(spec, seed=seed)
    client = OpenLoopClient(
        deployed.sim,
        deployed.network,
        deployed.authority,
        mode=mode,
        targets=targets_of(deployed),
        arrival_rate=arrival_rate,
    )
    deployed.network.register(client)
    return deployed, client


def test_openloop_fortress_throughput_and_latency():
    deployed, client = make_openloop(
        s2(Scheme.PO, alpha=1e-4, entropy_bits=8),
        "fortress",
        lambda d: d.proxy_names,
    )
    deployed.start()
    client.start()
    deployed.sim.run(until=10.0)
    # ~20/s offered for 10s; essentially all complete.
    assert client.responses_ok > 150
    assert client.timeouts < client.requests_sent * 0.05
    assert client.latency_percentile(0.95) < 0.1


def test_openloop_pb_and_smr_modes():
    for factory, mode in ((s1, "pb"), (s0, "smr")):
        deployed, client = make_openloop(
            factory(Scheme.PO, alpha=1e-4, entropy_bits=8),
            mode,
            lambda d: d.server_names,
        )
        deployed.start()
        client.start()
        deployed.sim.run(until=8.0)
        assert client.responses_ok > 100, mode
        assert client.responses_corrupted == 0


def test_openloop_arrivals_independent_of_completions():
    """The defining open-loop property: arrivals continue even when no
    responses come back (all servers down)."""
    deployed, client = make_openloop(
        s1(Scheme.PO, alpha=1e-4, entropy_bits=8),
        "pb",
        lambda d: d.server_names,
    )
    for server in deployed.servers:
        server.stop()
    deployed.start()
    client.start()
    deployed.sim.run(until=5.0)
    assert client.requests_sent > 50
    assert client.responses_ok == 0
    assert client.timeouts > 40


def test_openloop_stop_drains():
    deployed, client = make_openloop(
        s1(Scheme.PO, alpha=1e-4, entropy_bits=8),
        "pb",
        lambda d: d.server_names,
    )
    deployed.start()
    client.start()
    deployed.sim.run(until=3.0)
    client.stop_workload()
    sent = client.requests_sent
    deployed.sim.run(until=6.0)
    assert client.requests_sent == sent
    assert client.in_flight == 0


def test_openloop_validation():
    deployed = build_system(s1(Scheme.PO, alpha=1e-4, entropy_bits=8), seed=71)
    with pytest.raises(ValueError):
        OpenLoopClient(
            deployed.sim,
            deployed.network,
            deployed.authority,
            mode="bogus",
            targets=[],
        )
    with pytest.raises(ValueError):
        OpenLoopClient(
            deployed.sim,
            deployed.network,
            deployed.authority,
            mode="pb",
            targets=[],
            arrival_rate=0.0,
        )
    client = OpenLoopClient(
        deployed.sim,
        deployed.network,
        deployed.authority,
        mode="pb",
        targets=deployed.server_names,
    )
    with pytest.raises(ValueError):
        client.latency_percentile(0.5)  # nothing completed yet
