"""Hypothesis property-based tests on core invariants."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.conversion import so_hazard, so_survival
from repro.analysis.lifetimes import (
    el_from_per_step,
    el_s0_po,
    el_s0_so,
    el_s1_po,
    el_s1_so,
    el_s2_po,
    per_step_compromise_s0_po,
    per_step_compromise_s2_po,
)
from repro.analysis.markov import AbsorbingMarkovChain, geometric_chain
from repro.analysis.period import el_s2_po_with_period
from repro.attacker.keytracker import KeyGuessTracker
from repro.crypto.signatures import SignatureAuthority, canonical_bytes
from repro.metrics.stats import summarize
from repro.randomization.keyspace import KeySpace

alphas = st.floats(min_value=1e-6, max_value=0.5, allow_nan=False)
kappas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
# q below ~1e-7 makes (I - Q) ill-conditioned in float64; the closed
# form is exact there while the linear solve carries ~1e-8 relative
# error, so the property is checked on the well-conditioned range.
probabilities = st.floats(min_value=1e-7, max_value=1.0, allow_nan=False)


# ----------------------------------------------------------------------
# Analytic model invariants
# ----------------------------------------------------------------------
@given(alpha=alphas)
def test_per_step_probabilities_are_probabilities(alpha):
    assert 0.0 <= per_step_compromise_s0_po(alpha) <= 1.0
    assert 0.0 <= per_step_compromise_s2_po(alpha, 0.5) <= 1.0


@given(alpha=alphas, kappa=kappas)
def test_s2_q_bounded_by_components(alpha, kappa):
    """q is at least the indirect hazard and at most the union bound."""
    q = per_step_compromise_s2_po(alpha, kappa)
    assert q >= kappa * alpha - 1e-12
    union = kappa * alpha + 3 * alpha + alpha  # crude union bound
    assert q <= min(1.0, union) + 1e-12


@given(alpha=alphas)
@settings(deadline=None)  # el_s0_so is O(1/alpha); loaded runners overrun 200ms
def test_el_ordering_po_vs_so_invariant(alpha):
    """Memoryless PO always beats SO for the same system (T2's core)."""
    assert el_s1_po(alpha) >= el_s1_so(alpha) - 1e-9
    assert el_s0_po(alpha) >= el_s0_so(alpha) - 1e-9


@given(alpha=alphas, k1=kappas, k2=kappas)
def test_el_s2_po_monotone_in_kappa(alpha, k1, k2):
    lo, hi = sorted((k1, k2))
    assert el_s2_po(alpha, lo) >= el_s2_po(alpha, hi) - 1e-9


@given(q=probabilities)
def test_el_matches_geometric_chain(q):
    assert el_from_per_step(q) == pytest.approx(
        geometric_chain(q).expected_lifetime_from(0), rel=1e-6, abs=1e-9
    )


@given(alpha=st.floats(min_value=1e-4, max_value=0.3), t=st.integers(1, 50))
def test_so_survival_equals_hazard_product(alpha, t):
    product = 1.0
    for i in range(1, t + 1):
        product *= 1.0 - so_hazard(alpha, i)
    assert product == pytest.approx(so_survival(alpha, t), abs=1e-9)


@given(
    alpha=st.floats(min_value=1e-4, max_value=0.05),
    kappa=kappas,
    period=st.integers(1, 6),
)
@settings(max_examples=30, deadline=None)
def test_period_chain_el_positive_and_bounded_by_p1(alpha, kappa, period):
    el_p = el_s2_po_with_period(alpha, kappa, period_steps=period)
    el_1 = el_s2_po_with_period(alpha, kappa, period_steps=1)
    assert el_p >= -1e-9
    assert el_p <= el_1 + 1e-6  # longer periods can only hurt


# ----------------------------------------------------------------------
# Markov solver invariants
# ----------------------------------------------------------------------
@st.composite
def random_amc(draw):
    n = draw(st.integers(1, 4))
    m = draw(st.integers(1, 2))
    rows = []
    for _ in range(n):
        raw = draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0),
                min_size=n + m,
                max_size=n + m,
            )
        )
        total = sum(raw)
        rows.append([x / total for x in raw])
    Q = np.array([[rows[i][j] for j in range(n)] for i in range(n)])
    R = np.array([[rows[i][n + j] for j in range(m)] for i in range(n)])
    return AbsorbingMarkovChain(Q, R)


@given(chain=random_amc())
@settings(max_examples=50, deadline=None)
def test_amc_invariants(chain):
    result = chain.solve()
    # Expected steps are at least 1 (you always take the absorbing step).
    assert (result.expected_steps >= 1.0 - 1e-9).all()
    # Absorption probabilities form a distribution per start state.
    assert result.absorption_probabilities.min() >= -1e-9
    assert result.absorption_probabilities.sum(axis=1) == pytest.approx(
        [1.0] * chain.n_transient
    )
    # Variances are non-negative.
    assert (result.variance_steps >= -1e-9).all()


@given(chain=random_amc(), steps=st.integers(1, 30))
@settings(max_examples=30, deadline=None)
def test_amc_survival_monotone_and_sums_to_el(chain, steps):
    curve = chain.survival_curve(steps, 0)
    assert (np.diff(curve) <= 1e-12).all()  # non-increasing
    # Σ_t S(t) converges to EL from below.
    assert curve.sum() <= chain.expected_lifetime_from(0) + 1e-6


# ----------------------------------------------------------------------
# Attacker bookkeeping invariants
# ----------------------------------------------------------------------
@given(entropy=st.integers(2, 9), seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_tracker_enumerates_whole_space_without_repeats(entropy, seed):
    tracker = KeyGuessTracker(KeySpace(entropy), random.Random(seed))
    size = 1 << entropy
    guesses = [tracker.next_guess() for _ in range(size)]
    assert sorted(guesses) == list(range(size))


@given(
    entropy=st.integers(3, 8),
    seed=st.integers(0, 100),
    eliminated=st.sets(st.integers(0, 7), max_size=5),
)
@settings(max_examples=25, deadline=None)
def test_tracker_respects_external_eliminations(entropy, seed, eliminated):
    tracker = KeyGuessTracker(KeySpace(entropy), random.Random(seed))
    for key in eliminated:
        tracker.eliminate(key)
    remaining = (1 << entropy) - len(eliminated)
    guesses = [tracker.next_guess() for _ in range(remaining)]
    assert not (set(guesses) & eliminated)
    assert len(set(guesses)) == remaining


# ----------------------------------------------------------------------
# Crypto invariants
# ----------------------------------------------------------------------
json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(10**9), 10**9)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


@given(payload=json_like)
@settings(max_examples=50, deadline=None)
def test_sign_verify_roundtrip_any_payload(payload):
    authority = SignatureAuthority(random.Random(1))
    authority.issue_keypair("n")
    assert authority.verify(authority.sign("n", payload))


@given(payload=json_like)
@settings(max_examples=50, deadline=None)
def test_canonical_bytes_deterministic(payload):
    assert canonical_bytes(payload) == canonical_bytes(payload)


# ----------------------------------------------------------------------
# Statistics invariants
# ----------------------------------------------------------------------
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_summarize_bounds(values):
    stats = summarize(values)
    slack = 1e-9 * (1.0 + abs(stats.mean))  # float summation error
    assert stats.minimum - slack <= stats.mean <= stats.maximum + slack
    assert stats.ci_low - slack <= stats.mean <= stats.ci_high + slack
    assert stats.std >= 0.0
