"""Edge-case tests for probe drivers and the indirect prober."""

from __future__ import annotations

import random

import pytest

from repro.attacker.agent import AttackerProcess
from repro.attacker.driver import IndirectProber, ProbeDriver
from repro.errors import ConfigurationError
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.randomization.keyspace import KeySpace
from repro.randomization.node import RandomizedProcess
from repro.sim.engine import Simulator


def make_arena(entropy=4, omega=4.0):
    sim = Simulator(seed=8)
    network = Network(sim, latency=FixedLatency(0.0005))
    attacker = AttackerProcess(sim, network, KeySpace(entropy), omega=omega)
    network.register(attacker)
    return sim, network, attacker


def test_driver_rejects_nonpositive_interval():
    sim, network, attacker = make_arena()
    with pytest.raises(ConfigurationError):
        ProbeDriver(attacker, "t", attacker.pool("t"), interval=0.0)


def test_indirect_prober_validation():
    sim, network, attacker = make_arena()
    with pytest.raises(ConfigurationError):
        IndirectProber(attacker, [], attacker.pool("x"), interval=1.0)
    with pytest.raises(ConfigurationError):
        IndirectProber(attacker, ["p"], attacker.pool("x"), interval=0.0)


def test_driver_stop_closes_connection_and_halts():
    sim, network, attacker = make_arena(entropy=10)
    target = RandomizedProcess(
        sim, "victim", KeySpace(10), random.Random(2), respawn_delay=0.01
    )
    network.register(target)
    driver = attacker.attack_direct(target)
    sim.run(until=1.0)
    assert driver.probes_sent > 0
    driver.stop()
    count = driver.probes_sent
    sim.run(until=3.0)
    assert driver.probes_sent == count
    assert driver.connection is None


def test_driver_start_is_idempotent():
    sim, network, attacker = make_arena(entropy=10)
    target = RandomizedProcess(
        sim, "victim", KeySpace(10), random.Random(2), respawn_delay=0.01
    )
    network.register(target)
    driver = attacker.attack_direct(target)
    driver.start()  # second start must not double the probe rate
    sim.run(until=2.0)
    # omega=4 -> ~8 probes in 2 units (one loop, not two).
    assert driver.probes_sent <= 10


def test_driver_deactivates_on_pool_exhaustion_without_success():
    """If the pool drains with no key found (the target's key changed
    under the attacker's feet), the driver stops rather than erroring."""
    sim, network, attacker = make_arena(entropy=3, omega=8.0)  # 8 keys
    target = RandomizedProcess(
        sim, "victim", KeySpace(3), random.Random(3), key=0, respawn_delay=0.01
    )
    network.register(target)
    driver = attacker.attack_direct(target)
    # Sabotage: move the key outside anything the attacker will guess...
    # impossible in-range, so instead exhaust the pool against a target
    # that re-randomizes without the attacker resetting (SO-believing
    # attacker vs actually-PO defender).
    seen = []

    def rotate_key():
        target.address_space.set_key((target.address_space.key + 1) % 8)
        seen.append(target.address_space.key)
        sim.schedule(0.11, rotate_key)

    sim.schedule(0.11, rotate_key)
    sim.run(until=5.0)
    if not target.compromised:
        assert not driver.active  # pool exhausted, driver retired
    assert attacker.pool("victim").tried_count <= 8


def test_indirect_prober_rotates_proxies_evenly():
    sim, network, attacker = make_arena(entropy=12, omega=8.0)
    from repro.sim.process import SimProcess

    class CountingProxy(SimProcess):
        def __init__(self, name):
            super().__init__(sim, name, respawn_delay=None)
            self.requests = 0

        def handle_message(self, message):
            self.requests += 1

    proxies = [CountingProxy(f"proxy-{i}") for i in range(3)]
    for proxy in proxies:
        network.register(proxy)
    prober = IndirectProber(
        attacker, [p.name for p in proxies], attacker.pool("srv"), interval=0.1
    )
    prober.start()
    sim.run(until=6.0)
    counts = [p.requests for p in proxies]
    # The last probe may still be in flight at the horizon.
    assert prober.probes_sent - 1 <= sum(counts) <= prober.probes_sent
    assert max(counts) - min(counts) <= 1  # perfectly round-robin


def test_indirect_prober_spoofed_identities_cycle():
    sim, network, attacker = make_arena(entropy=12, omega=8.0)
    from repro.sim.process import SimProcess

    class Collector(SimProcess):
        def __init__(self):
            super().__init__(sim, "proxy-0", respawn_delay=None)
            self.clients = set()

        def handle_message(self, message):
            self.clients.add(message.payload["client"])

    proxy = Collector()
    network.register(proxy)
    prober = IndirectProber(
        attacker, ["proxy-0"], attacker.pool("srv"), interval=0.1, identities=3
    )
    prober.start()
    sim.run(until=2.0)
    assert len(proxy.clients) == 3
    assert all(c.startswith("attacker~") for c in proxy.clients)
