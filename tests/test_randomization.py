"""Unit tests for key spaces, address spaces and randomized processes."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.randomization.keyspace import PAX_32BIT_ENTROPY, KeySpace
from repro.randomization.layout import AddressSpace, ProbeOutcome
from repro.randomization.node import RandomizedProcess
from repro.sim.engine import Simulator
from repro.sim.process import ProcessState


# ----------------------------------------------------------------------
# KeySpace
# ----------------------------------------------------------------------
def test_keyspace_size_is_power_of_two():
    assert KeySpace(4).size == 16
    assert KeySpace(PAX_32BIT_ENTROPY).size == 65536


def test_keyspace_rejects_zero_entropy():
    with pytest.raises(ConfigurationError):
        KeySpace(0)


def test_sample_key_in_range():
    space = KeySpace(6)
    rng = random.Random(1)
    for _ in range(100):
        assert space.contains(space.sample_key(rng))


def test_alpha_omega_roundtrip():
    space = KeySpace(16)
    alpha = space.alpha_for_probe_rate(655.36)
    assert alpha == pytest.approx(0.01)
    assert space.probe_rate_for_alpha(alpha) == pytest.approx(655.36)


def test_alpha_caps_at_one():
    space = KeySpace(4)
    assert space.alpha_for_probe_rate(1e9) == 1.0


def test_alpha_validation():
    space = KeySpace(4)
    with pytest.raises(ConfigurationError):
        space.alpha_for_probe_rate(-1)
    with pytest.raises(ConfigurationError):
        space.probe_rate_for_alpha(1.5)


# ----------------------------------------------------------------------
# AddressSpace
# ----------------------------------------------------------------------
def test_probe_wrong_guess_crashes():
    space = AddressSpace(KeySpace(6), key=10)
    assert space.check_probe(11) is ProbeOutcome.CRASH
    assert space.crashes_caused == 1
    assert space.intrusions == 0


def test_probe_right_guess_intrudes():
    space = AddressSpace(KeySpace(6), key=10)
    assert space.check_probe(10) is ProbeOutcome.INTRUSION
    assert space.intrusions == 1


def test_out_of_range_guess_is_crash():
    space = AddressSpace(KeySpace(6), key=10)
    assert space.check_probe(-1) is ProbeOutcome.CRASH
    assert space.check_probe(9999) is ProbeOutcome.CRASH


def test_key_validation():
    with pytest.raises(ConfigurationError):
        AddressSpace(KeySpace(4), key=16)
    space = AddressSpace(KeySpace(4), key=0)
    with pytest.raises(ConfigurationError):
        space.set_key(-1)


def test_rerandomize_changes_key_eventually():
    space = AddressSpace(KeySpace(10), key=5)
    rng = random.Random(3)
    keys = {space.rerandomize(rng) for _ in range(50)}
    assert len(keys) > 10  # fresh draws, not stuck
    assert space.randomizations == 51


# ----------------------------------------------------------------------
# RandomizedProcess
# ----------------------------------------------------------------------
def make_node(sim=None, entropy=6, key=None):
    sim = sim or Simulator(seed=9)
    node = RandomizedProcess(
        sim, "node", KeySpace(entropy), random.Random(4), key=key, respawn_delay=0.01
    )
    return sim, node


def test_receive_probe_wrong_crashes_then_respawns_same_key():
    """Fork semantics: the daemon's child keeps the parent's key."""
    sim, node = make_node(key=7)
    assert node.receive_probe(8) is ProbeOutcome.CRASH
    assert node.state is ProcessState.CRASHED
    sim.run()
    assert node.state is ProcessState.RUNNING
    assert node.address_space.key == 7  # unchanged by respawn


def test_receive_probe_right_compromises():
    sim, node = make_node(key=7)
    assert node.receive_probe(7) is ProbeOutcome.INTRUSION
    assert node.compromised
    assert node.state is ProcessState.RUNNING  # intrusion, not crash


def test_rerandomize_cleanses_and_changes_key():
    sim, node = make_node(key=7)
    node.mark_compromised()
    new_key = node.rerandomize()
    assert not node.compromised
    assert node.address_space.key == new_key


def test_rerandomize_with_explicit_group_key():
    sim, node = make_node()
    assert node.rerandomize(key=13) == 13
    assert node.address_space.key == 13


def test_recover_keeps_key_but_cleanses():
    sim, node = make_node(key=7)
    node.mark_compromised()
    kept = node.recover()
    assert kept == 7
    assert node.address_space.key == 7
    assert not node.compromised
