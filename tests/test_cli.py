"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_trends_command_reports_all_holding(capsys):
    code, out, err = run_cli(capsys, "trends")
    assert code == 0
    assert out.count("HOLDS") == 4
    assert "kappa* vs S1PO" in out


def test_figure1_analytic(capsys):
    code, out, err = run_cli(capsys, "figure1")
    assert code == 0
    for label in ("S0PO", "S2PO", "S1PO", "S1SO", "S0SO"):
        assert label in out
    assert "1.000e-05" in out


def test_figure1_with_mc_trials(capsys):
    code, out, err = run_cli(capsys, "figure1", "--mc-trials", "500")
    assert code == 0
    assert "Monte-Carlo" in out
    assert "[" in out  # CI brackets


def test_figure2(capsys):
    code, out, err = run_cli(capsys, "figure2")
    assert code == 0
    assert "kappa=0.9" in out


def test_lifetime_command_analytic_and_mc(capsys):
    code, out, err = run_cli(
        capsys,
        "lifetime",
        "--system",
        "s1",
        "--scheme",
        "po",
        "--alpha",
        "0.01",
        "--trials",
        "5000",
    )
    assert code == 0
    assert "analytic EL" in out and "99" in out
    assert "Monte-Carlo EL" in out


def test_lifetime_s2so_small_alpha_degrades_gracefully(capsys):
    code, out, err = run_cli(
        capsys,
        "lifetime",
        "--system",
        "s2",
        "--scheme",
        "so",
        "--alpha",
        "1e-5",
        "--trials",
        "2000",
    )
    assert code == 0
    assert "unavailable" in out  # analytic refuses, MC still reported
    assert "Monte-Carlo EL" in out


def test_protocol_command(capsys):
    code, out, err = run_cli(
        capsys,
        "protocol",
        "--system",
        "s1",
        "--scheme",
        "so",
        "--alpha",
        "0.1",
        "--entropy-bits",
        "8",
        "--trials",
        "3",
        "--max-steps",
        "50",
    )
    assert code == 0
    assert "mean EL" in out
    assert "censored : 0 of 3" in out


def test_protocol_command_with_workers_and_precision(capsys):
    code, out, err = run_cli(
        capsys,
        "protocol",
        "--system",
        "s1",
        "--scheme",
        "so",
        "--alpha",
        "0.2",
        "--entropy-bits",
        "6",
        "--max-steps",
        "60",
        "--workers",
        "2",
        "--precision",
        "0.3",
    )
    assert code == 0
    assert "95% CI" in out
    assert "KM mean" in out


def test_protocol_sweep_command(capsys):
    code, out, err = run_cli(
        capsys,
        "protocol-sweep",
        "--systems",
        "s1",
        "s2",
        "--schemes",
        "so",
        "--alphas",
        "0.2",
        "--kappas",
        "0.5",
        "--entropy-bits",
        "6",
        "--trials",
        "3",
        "--max-steps",
        "40",
    )
    assert code == 0
    assert "Protocol campaign" in out
    assert "S1SO" in out and "S2SO" in out
    assert "censored" in out


def test_protocol_sweep_worker_invariant_output(capsys):
    argv = [
        "protocol-sweep",
        "--systems",
        "s1",
        "--schemes",
        "so",
        "--alphas",
        "0.2",
        "--entropy-bits",
        "6",
        "--trials",
        "4",
        "--max-steps",
        "40",
        "--seed",
        "5",
    ]
    code_a, out_a, _ = run_cli(capsys, *argv)
    code_b, out_b, _ = run_cli(capsys, *argv, "--workers", "2")
    assert code_a == code_b == 0

    def sans_cache_line(text):
        return [
            line
            for line in text.splitlines()
            if not line.startswith("result cache:")
        ]

    assert sans_cache_line(out_a) == sans_cache_line(out_b)
    # Cache keys never see the fan-out: the serial run's entry satisfies
    # the workers=2 rerun wholesale.
    assert "result cache: 0 hits, 1 misses" in out_a
    assert "result cache: 1 hits, 0 misses" in out_b


def test_advise_fortress_vs_smr(capsys):
    code, out, err = run_cli(capsys, "advise", "--kappa", "0.5")
    assert code == 0
    assert "FORTRESS" in out
    code, out, err = run_cli(capsys, "advise", "--dsm-ready")
    assert "S0 + proactive obfuscation" in out


def test_advise_high_kappa_prefers_plain_pb(capsys):
    code, out, err = run_cli(capsys, "advise", "--alpha", "0.01", "--kappa", "0.99")
    assert code == 0
    assert "plain PB" in out


def test_protocol_sweep_timing_and_output(capsys, tmp_path):
    import json

    out_path = tmp_path / "sweep.json"
    code, out, err = run_cli(
        capsys,
        "protocol-sweep",
        "--systems",
        "s1",
        "--schemes",
        "so",
        "--alphas",
        "0.2",
        "--entropy-bits",
        "6",
        "--trials",
        "4",
        "--max-steps",
        "80",
        "--timing",
        "ideal",
        "--output",
        str(out_path),
    )
    assert code == 0
    assert "timing=ideal" in out
    assert str(out_path) in out
    record = json.loads(out_path.read_text())
    assert record["timing_preset"] == "ideal"
    assert record["timing"]["respawn_delay"] == 0.0
    assert record["rows"][0]["label"] == "S1SO"


def test_protocol_sweep_rejects_unknown_timing(capsys):
    import pytest as _pytest

    with _pytest.raises(SystemExit):
        build_parser().parse_args(["protocol-sweep", "--timing", "warp-speed"])


def test_scenario_list_shows_builtin_library(capsys):
    code, out, err = run_cli(capsys, "scenario", "list")
    assert code == 0
    names = [
        "paper-baseline",
        "crash-storm-under-attack",
        "rolling-outages",
        "partitioned-attacker",
        "lossy-wan",
        "degraded-timing",
        "stealth-prober",
        "coordinated-attacker",
    ]
    for name in names:
        assert name in out


def test_scenario_show_round_trips_through_json(capsys):
    import json

    from repro.scenarios import ScenarioSpec, get_scenario

    code, out, err = run_cli(capsys, "scenario", "show", "lossy-wan")
    assert code == 0
    spec = ScenarioSpec.from_dict(json.loads(out))
    assert spec == get_scenario("lossy-wan")


def test_scenario_run_command(capsys):
    code, out, err = run_cli(
        capsys,
        "scenario",
        "run",
        "crash-storm-under-attack",
        "--trials",
        "3",
        "--max-steps",
        "40",
    )
    assert code == 0
    assert "Scenario crash-storm-under-attack" in out
    assert "faults=crash_storm" in out
    assert "S1SO" in out and "S2SO" in out


def test_scenario_run_worker_invariant_output(capsys):
    """The acceptance guarantee at the user surface: a scenario run is
    bit-identical for any worker count."""
    argv = [
        "scenario",
        "run",
        "crash-storm-under-attack",
        "--trials",
        "3",
        "--max-steps",
        "40",
        "--seed",
        "5",
    ]
    code_a, out_a, _ = run_cli(capsys, *argv, "--workers", "1")
    code_b, out_b, _ = run_cli(capsys, *argv, "--workers", "2")
    assert code_a == code_b == 0

    def sans_cache_line(text):
        return [
            line
            for line in text.splitlines()
            if not line.startswith("result cache:")
        ]

    # Identical modulo the cache tally (run b replays run a's entries).
    assert sans_cache_line(out_a) == sans_cache_line(out_b)


def test_scenario_run_writes_self_describing_record(capsys, tmp_path):
    import json

    out_path = tmp_path / "scenario.json"
    code, out, err = run_cli(
        capsys,
        "scenario",
        "run",
        "rolling-outages",
        "--trials",
        "2",
        "--max-steps",
        "30",
        "--output",
        str(out_path),
    )
    assert code == 0
    record = json.loads(out_path.read_text())
    assert record["scenario"] == "rolling-outages"
    assert record["scenario_spec"]["faults"]["kind"] == "rolling_outages"
    assert record["scenario_spec"]["workload"]["kind"] == "open_loop"
    assert record["timing_preset"] == "paper"
    assert record["rows"]


def test_scenario_unknown_name_fails_cleanly(capsys):
    code, out, err = run_cli(capsys, "scenario", "show", "no-such-scenario")
    assert code == 2
    assert "unknown scenario" in err


def test_protocol_sweep_scenario_flag(capsys):
    code, out, err = run_cli(
        capsys,
        "protocol-sweep",
        "--scenario",
        "degraded-timing",
        "--trials",
        "2",
        "--max-steps",
        "30",
    )
    assert code == 0
    assert "scenario=degraded-timing" in out
    assert "timing=degraded" in out  # the scenario's preset, not paper's


def test_protocol_command_accepts_timing(capsys):
    code, out, err = run_cli(
        capsys,
        "protocol",
        "--system",
        "s1",
        "--scheme",
        "so",
        "--alpha",
        "0.2",
        "--entropy-bits",
        "6",
        "--trials",
        "4",
        "--max-steps",
        "80",
        "--timing",
        "degraded",
    )
    assert code == 0
    assert "protocol-level lifetimes" in out
