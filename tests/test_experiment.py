"""Tests for the protocol-level lifetime experiment runner."""

from __future__ import annotations

from repro.core.experiment import (
    LifetimeOutcome,
    estimate_protocol_lifetime,
    run_protocol_lifetime,
)
from repro.core.specs import s1, s2
from repro.randomization.obfuscation import Scheme


def test_s1_so_guaranteed_compromise_within_exhaustion():
    """SO + small key space: the attack must succeed within χ/ω steps."""
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=6)  # 64 keys, 6.4 probes/step
    outcome = run_protocol_lifetime(spec, seed=1, max_steps=60)
    assert outcome.compromised
    assert outcome.steps <= 15  # exhaustion bound 1/alpha = 10, plus slack
    assert outcome.cause is not None


def test_censoring_when_attack_too_weak():
    spec = s1(Scheme.PO, alpha=0.0001, entropy_bits=16)
    outcome = run_protocol_lifetime(spec, seed=2, max_steps=5)
    assert not outcome.compromised
    assert outcome.steps == 5
    assert outcome.cause is None


def test_outcome_records_attacker_effort():
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=6)
    outcome = run_protocol_lifetime(spec, seed=3, max_steps=60)
    assert outcome.probes_direct > 0
    assert outcome.probes_indirect == 0  # no proxies in S1


def test_s2_uses_indirect_probes():
    spec = s2(Scheme.SO, alpha=0.2, kappa=0.5, entropy_bits=6)
    outcome = run_protocol_lifetime(spec, seed=4, max_steps=80)
    assert outcome.probes_indirect > 0


def test_reproducible_given_seed():
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=6)
    a = run_protocol_lifetime(spec, seed=7, max_steps=60)
    b = run_protocol_lifetime(spec, seed=7, max_steps=60)
    assert a.steps == b.steps
    assert a.probes_direct == b.probes_direct


def test_estimate_aggregates_and_counts_censoring():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    estimate = estimate_protocol_lifetime(spec, trials=5, max_steps=40, seed0=10)
    assert estimate.stats.n == 5
    assert len(estimate.outcomes) == 5
    assert estimate.censored == sum(1 for o in estimate.outcomes if not o.compromised)
    assert 0 <= estimate.mean_steps <= 40


def test_workload_coexists_with_attack():
    spec = s1(Scheme.SO, alpha=0.05, entropy_bits=8)
    outcome = run_protocol_lifetime(spec, seed=5, max_steps=30, with_workload=True)
    assert isinstance(outcome, LifetimeOutcome)
