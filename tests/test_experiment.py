"""Tests for the protocol-level lifetime experiment runner."""

from __future__ import annotations

import pytest

from repro.core.experiment import (
    LifetimeOutcome,
    estimate_protocol_lifetime,
    run_protocol_lifetime,
)
from repro.core.specs import s1, s2
from repro.errors import AnalysisError, ConfigurationError
from repro.randomization.obfuscation import Scheme


def test_s1_so_guaranteed_compromise_within_exhaustion():
    """SO + small key space: the attack must succeed within χ/ω steps."""
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=6)  # 64 keys, 6.4 probes/step
    outcome = run_protocol_lifetime(spec, seed=1, max_steps=60)
    assert outcome.compromised
    assert outcome.steps <= 15  # exhaustion bound 1/alpha = 10, plus slack
    assert outcome.cause is not None


def test_censoring_when_attack_too_weak():
    spec = s1(Scheme.PO, alpha=0.0001, entropy_bits=16)
    outcome = run_protocol_lifetime(spec, seed=2, max_steps=5)
    assert not outcome.compromised
    assert outcome.steps == 5
    assert outcome.cause is None


def test_outcome_records_attacker_effort():
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=6)
    outcome = run_protocol_lifetime(spec, seed=3, max_steps=60)
    assert outcome.probes_direct > 0
    assert outcome.probes_indirect == 0  # no proxies in S1


def test_s2_uses_indirect_probes():
    spec = s2(Scheme.SO, alpha=0.2, kappa=0.5, entropy_bits=6)
    outcome = run_protocol_lifetime(spec, seed=4, max_steps=80)
    assert outcome.probes_indirect > 0


def test_reproducible_given_seed():
    spec = s1(Scheme.SO, alpha=0.1, entropy_bits=6)
    a = run_protocol_lifetime(spec, seed=7, max_steps=60)
    b = run_protocol_lifetime(spec, seed=7, max_steps=60)
    assert a.steps == b.steps
    assert a.probes_direct == b.probes_direct


def test_estimate_aggregates_and_counts_censoring():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    estimate = estimate_protocol_lifetime(spec, trials=5, max_steps=40, seed0=10)
    assert estimate.stats.n == 5
    assert len(estimate.outcomes) == 5
    assert estimate.censored == sum(1 for o in estimate.outcomes if not o.compromised)
    assert 0 <= estimate.mean_steps <= 40


def test_workload_coexists_with_attack():
    spec = s1(Scheme.SO, alpha=0.05, entropy_bits=8)
    outcome = run_protocol_lifetime(spec, seed=5, max_steps=30, with_workload=True)
    assert isinstance(outcome, LifetimeOutcome)


# ----------------------------------------------------------------------
# Parallel estimation: worker/batch invariance
# ----------------------------------------------------------------------
def test_estimate_bit_identical_across_worker_counts():
    """The acceptance guarantee: ``workers=4`` returns results
    bit-identical to ``workers=1`` for a fixed root seed."""
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    serial = estimate_protocol_lifetime(
        spec, trials=8, max_steps=40, seed0=3, workers=1
    )
    fanned = estimate_protocol_lifetime(
        spec, trials=8, max_steps=40, seed0=3, workers=4
    )
    assert serial.stats == fanned.stats
    assert serial.censored == fanned.censored
    assert [o.steps for o in serial.outcomes] == [o.steps for o in fanned.outcomes]
    assert [o.seed for o in serial.outcomes] == [o.seed for o in fanned.outcomes]
    assert [o.probes_direct for o in serial.outcomes] == [
        o.probes_direct for o in fanned.outcomes
    ]


def test_estimate_unaffected_by_batch_size():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    default = estimate_protocol_lifetime(spec, trials=7, max_steps=40, seed0=1)
    tiny = estimate_protocol_lifetime(
        spec, trials=7, max_steps=40, seed0=1, workers=2, batch_size=1
    )
    lumpy = estimate_protocol_lifetime(
        spec, trials=7, max_steps=40, seed0=1, workers=2, batch_size=3
    )
    assert default.stats == tiny.stats == lumpy.stats
    steps = [o.steps for o in default.outcomes]
    assert steps == [o.steps for o in tiny.outcomes]
    assert steps == [o.steps for o in lumpy.outcomes]


def test_estimate_preserves_seed_layout():
    """Seeds stay ``seed0 + i`` (the pre-engine layout), so fixed-count
    estimates are regression-comparable across engine versions."""
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    estimate = estimate_protocol_lifetime(spec, trials=4, max_steps=40, seed0=10)
    assert [o.seed for o in estimate.outcomes] == [10, 11, 12, 13]


# ----------------------------------------------------------------------
# Censoring-aware aggregation and early stopping
# ----------------------------------------------------------------------
def test_estimate_exposes_censoring_summary():
    spec = s1(Scheme.PO, alpha=0.0001, entropy_bits=16)
    estimate = estimate_protocol_lifetime(spec, trials=3, max_steps=5, seed0=0)
    assert estimate.censored == 3
    assert estimate.censored_fraction == 1.0
    assert estimate.censoring.is_lower_bound
    assert estimate.km_mean_steps == 5.0
    assert estimate.mean_steps == 5.0  # the budget, i.e. a lower bound


def test_old_style_construction_derives_censoring_summary():
    """The pre-campaign 4-field constructor stays usable: the censoring
    summary is derived from the outcomes."""
    from repro.core.experiment import LifetimeEstimate
    from repro.metrics.stats import summarize

    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    outcomes = tuple(run_protocol_lifetime(spec, seed=s, max_steps=40) for s in (0, 1))
    estimate = LifetimeEstimate(
        spec=spec,
        stats=summarize([float(o.steps) for o in outcomes]),
        censored=0,
        outcomes=outcomes,
    )
    assert estimate.censoring is not None
    assert estimate.km_mean_steps >= 0.0
    assert estimate.censoring.n == 2


def test_precision_mode_converges_and_reports_ci():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    estimate = estimate_protocol_lifetime(
        spec,
        max_steps=60,
        seed0=0,
        precision=0.25,
        min_trials=8,
        max_trials=120,
    )
    assert estimate.converged
    assert 8 <= estimate.stats.n <= 120
    halfwidth = estimate.stats.ci_halfwidth
    assert halfwidth <= 0.25 * abs(estimate.mean_steps) * 1.0001


def test_precision_mode_unconverged_within_budget():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    estimate = estimate_protocol_lifetime(
        spec,
        max_steps=60,
        seed0=0,
        precision=0.001,
        min_trials=4,
        max_trials=12,
    )
    assert not estimate.converged
    assert estimate.stats.n == 12


def test_precision_mode_refuses_heavily_censored_samples():
    """Early stopping on a mostly-censored sample would 'converge' on
    the step budget, not the lifetime — it must refuse instead."""
    spec = s1(Scheme.PO, alpha=0.0001, entropy_bits=16)
    with pytest.raises(AnalysisError, match="censored"):
        estimate_protocol_lifetime(
            spec,
            max_steps=5,
            seed0=0,
            precision=0.1,
            min_trials=4,
            max_trials=40,
        )


def test_precision_mode_warns_on_partial_censoring():
    """A lightly censored precision run keeps going but must flag the
    estimate as a lower bound."""
    # alpha=0.05 with a tight 8-step budget censors some but not most
    # runs at this entropy.
    spec = s1(Scheme.SO, alpha=0.05, entropy_bits=6)
    with pytest.warns(RuntimeWarning, match="lower bound"):
        estimate = estimate_protocol_lifetime(
            spec,
            max_steps=8,
            seed0=0,
            precision=0.3,
            min_trials=8,
            max_trials=48,
            max_censored_fraction=0.9,
        )
    assert 0 < estimate.censored < estimate.stats.n


def test_estimate_validation():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    with pytest.raises(ConfigurationError):
        estimate_protocol_lifetime(spec, trials=0)
    with pytest.raises(ConfigurationError):
        estimate_protocol_lifetime(spec, trials=3, batch_size=0)
    with pytest.raises(ConfigurationError):
        estimate_protocol_lifetime(spec, precision=-0.1)
    with pytest.raises(ConfigurationError):
        estimate_protocol_lifetime(spec, precision=0.1, min_trials=10, max_trials=5)
    with pytest.raises(ConfigurationError):
        estimate_protocol_lifetime(spec, precision=0.1, max_censored_fraction=0.0)
