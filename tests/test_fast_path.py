"""Bit-identity and behaviour locks for the PR 4 fast-path refactor.

The protocol simulator was rewritten for single-run speed (slim event
kernel, allocation-free messaging, event elision, epoch fast-forward,
chunked attacker RNG).  Everything here pins the contract that made the
rewrite admissible: **same seeds → bit-identical outcomes**.

``tests/data/golden_protocol_outcomes.json`` was captured by running the
*pre-refactor* engine (PR 3, commit 962a1f9) over a spread of systems,
schemes, timing presets and censoring regimes.  The golden test replays
every config on the current engine and compares outcomes field by
field — the refactor's referee, kept as a permanent regression gate.
"""

from __future__ import annotations

import json
import pathlib
import random

import pytest

from repro.attacker.keytracker import GuessBuffer, KeyGuessTracker
from repro.core.builders import attach_attacker, build_system
from repro.core.experiment import run_protocol_lifetime
from repro.core.specs import SystemClass, SystemSpec, s1, s2
from repro.core.timing import TimingSpec
from repro.net.message import Message
from repro.net.network import Network
from repro.randomization.keyspace import KeySpace
from repro.randomization.obfuscation import Scheme
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_protocol_outcomes.json"
GOLDEN_SCENARIO_PATH = (
    pathlib.Path(__file__).parent / "data" / "golden_scenario_outcomes.json"
)

OUTCOME_FIELDS = (
    "compromised",
    "steps",
    "time",
    "cause",
    "probes_direct",
    "probes_indirect",
)


def _golden_configs():
    golden = json.loads(GOLDEN_PATH.read_text())
    for name, cfg in sorted(golden.items()):
        yield pytest.param(name, cfg, id=name)


def _golden_scenario_configs():
    golden = json.loads(GOLDEN_SCENARIO_PATH.read_text())
    for name, cfg in sorted(golden.items()):
        yield pytest.param(name, cfg, id=name)


@pytest.mark.parametrize("name,cfg", _golden_configs())
def test_outcomes_bit_identical_to_pre_refactor_engine(name, cfg):
    spec_cfg = cfg["spec"]
    spec = SystemSpec(
        system=SystemClass[spec_cfg["system"]],
        scheme=Scheme[spec_cfg["scheme"]],
        alpha=spec_cfg["alpha"],
        kappa=spec_cfg["kappa"],
        entropy_bits=spec_cfg["entropy_bits"],
    )
    timing = TimingSpec.named(cfg["timing"])
    for expected in cfg["outcomes"]:
        outcome = run_protocol_lifetime(
            spec,
            seed=expected["seed"],
            max_steps=cfg["max_steps"],
            timing=timing,
        )
        got = {field: getattr(outcome, field) for field in OUTCOME_FIELDS}
        want = {field: expected[field] for field in OUTCOME_FIELDS}
        assert got == want, f"{name} seed {expected['seed']} diverged"


@pytest.mark.parametrize("name,cfg", _golden_scenario_configs())
def test_scenario_outcomes_bit_identical_to_golden(name, cfg):
    """Scenario runs (faults + workloads + non-paper adversaries active)
    replay bit-identically against outcomes captured at PR 5: the
    regression gate for the composed path — injector scheduling,
    workload installation and adversary strategies included.

    The scenario is rehydrated from the golden file itself, so later
    edits to the built-in library cannot silently change what this
    test replays."""
    from repro.scenarios import ScenarioSpec

    scenario = ScenarioSpec.from_dict(cfg["scenario"])
    spec_cfg = cfg["spec"]
    spec = SystemSpec(
        system=SystemClass[spec_cfg["system"]],
        scheme=Scheme[spec_cfg["scheme"]],
        alpha=spec_cfg["alpha"],
        kappa=spec_cfg["kappa"],
        entropy_bits=spec_cfg["entropy_bits"],
    )
    for expected in cfg["outcomes"]:
        outcome = run_protocol_lifetime(
            spec,
            seed=expected["seed"],
            max_steps=cfg["max_steps"],
            scenario=scenario,
        )
        got = {field: getattr(outcome, field) for field in OUTCOME_FIELDS}
        want = {field: expected[field] for field in OUTCOME_FIELDS}
        assert got == want, f"{name} seed {expected['seed']} diverged"


# ----------------------------------------------------------------------
# Epoch fast-forward
# ----------------------------------------------------------------------
CENSORED_SPEC_KWARGS = dict(alpha=0.005, entropy_bits=8)


def test_fast_forward_matches_full_drain_and_skips_events():
    """A censored run with fast-forward returns the same outcome as a
    deployment drained to the horizon — while executing far fewer
    events (the whole point)."""
    spec = s1(Scheme.SO, **CENSORED_SPEC_KWARGS)
    timing = TimingSpec.paper()
    max_steps = 150
    # seed 0 is censored for this config (see the golden file).
    fast = run_protocol_lifetime(spec, seed=0, max_steps=max_steps, timing=timing)
    assert not fast.compromised and fast.steps == max_steps

    deployed = build_system(spec, seed=0, timing=timing)
    attach_attacker(deployed)  # fast-forward NOT enabled on this path
    deployed.start()
    deployed.sim.run(until=max_steps * spec.period)
    assert not deployed.monitor.is_compromised
    assert deployed.attacker.probes_sent_direct == fast.probes_direct
    assert deployed.attacker.probes_sent_indirect == fast.probes_indirect
    assert fast.time == max_steps * spec.period


def test_fast_forward_stops_once_attack_provably_dead():
    """When the only probe stream drains its pool without success, the
    attack is over for good; with fast-forward the simulator stops after
    the grace window instead of draining timer churn to the horizon —
    and the outcome-visible state is identical either way."""
    from repro.attacker.agent import AttackerProcess

    spec = s2(Scheme.SO, alpha=0.4, kappa=0.25, entropy_bits=4)
    timing = TimingSpec.paper()
    horizon = 200 * spec.period

    def indirect_only_run(fast_forward: bool):
        deployed = build_system(spec, seed=6, timing=timing)
        # The proxy tier cannot reach the servers: every forwarded probe
        # is lost, so the indirect pool drains with certainty and the
        # attack provably fails.
        for proxy in deployed.proxy_names:
            for server in deployed.server_names:
                deployed.network.partition(proxy, server)
        attacker = AttackerProcess(
            deployed.sim,
            deployed.network,
            keyspace=spec.keyspace,
            omega=spec.omega,
            period=spec.period,
        )
        deployed.network.register(attacker)
        attacker.attack_indirect(
            proxies=deployed.proxy_names,
            servers=deployed.servers,
            pool_id="server-tier",
            rate=spec.kappa * spec.omega,
        )
        if fast_forward:
            attacker.enable_fast_forward()
        deployed.start()
        deployed.sim.run(until=horizon)
        return deployed, attacker

    fast_deployed, fast_attacker = indirect_only_run(True)
    full_deployed, full_attacker = indirect_only_run(False)
    # The attack died in both worlds, with identical attacker effort
    # and verdict...
    assert not fast_attacker._attack_live()
    assert not full_attacker._attack_live()
    assert not fast_deployed.monitor.is_compromised
    assert not full_deployed.monitor.is_compromised
    assert fast_attacker.probes_sent_indirect == full_attacker.probes_sent_indirect
    # ...but only the full drain simulated heartbeats and refreshes all
    # the way to the horizon.
    assert fast_deployed.sim.now < horizon
    assert full_deployed.sim.now == horizon
    assert fast_deployed.sim.events_executed < full_deployed.sim.events_executed / 2


def test_fast_forward_not_enabled_for_workload_runs():
    """Runs with clients keep the full timeline (the workload itself is
    the point of such runs)."""
    spec = s2(Scheme.SO, alpha=0.15, kappa=0.5, entropy_bits=8)
    outcome = run_protocol_lifetime(
        spec, seed=3, max_steps=30, with_workload=True, timing=TimingSpec.paper()
    )
    assert outcome.steps <= 30


# ----------------------------------------------------------------------
# Chunked guess draws (GuessBuffer)
# ----------------------------------------------------------------------
def _interleaved_guesses(buffered: bool, keyspace_bits: int = 6) -> list[int]:
    """Drive two pools sharing one stream through an interleaving that
    crosses the materialization (shuffle) threshold of both."""
    keyspace = KeySpace(keyspace_bits)
    rng = random.Random(12345)
    buffer = GuessBuffer(rng, keyspace.size) if buffered else None
    pools = [
        KeyGuessTracker(keyspace, rng, buffer=buffer),
        KeyGuessTracker(keyspace, rng, buffer=buffer),
    ]
    if buffer is not None:
        for pool in pools:
            buffer.register(pool)
    sequence = []
    for round_index in range(keyspace.size):
        for pool in pools:
            if not pool.exhausted:
                sequence.append(pool.next_guess())
        if round_index == 10 and not pools[0].exhausted:
            pools[0].reset()  # PO-style mid-stream reset
    return sequence


def test_guess_buffer_replays_exact_unbuffered_sequence():
    """Chunked pulls must not perturb the draw stream: the interleaved
    guess sequence (including both pools' shuffle crossings and a
    mid-stream reset) is bit-identical with and without the buffer."""
    assert _interleaved_guesses(buffered=True) == _interleaved_guesses(buffered=False)


def test_guess_buffer_headroom_never_strands_values_at_shuffle():
    """Directed check of the invariant the buffer's correctness rests
    on: whenever a pool materializes, the shared buffer is empty."""
    keyspace = KeySpace(5)  # 32 keys
    rng = random.Random(7)
    buffer = GuessBuffer(rng, keyspace.size, chunk=64)  # chunk > threshold
    pool = KeyGuessTracker(keyspace, rng, buffer=buffer)
    buffer.register(pool)
    for _ in range(keyspace.size):
        pool.next_guess()  # crosses the shuffle threshold mid-way
    assert pool.exhausted


# ----------------------------------------------------------------------
# Multicast fast path
# ----------------------------------------------------------------------
class _Recorder(SimProcess):
    def __init__(self, sim, name, log):
        super().__init__(sim, name)
        self._log = log

    def handle_message(self, message) -> None:
        self._log.append((self.name, message.mtype, message.payload["n"]))


def _delivery_log(use_multicast: bool):
    sim = Simulator(seed=5)
    network = Network(sim)
    log = []
    for name in ("a", "b", "c", "d"):
        network.register(_Recorder(sim, name, log))
    network.partition("src", "c")
    network.register(_Recorder(sim, "src", log))
    for n in range(5):
        if use_multicast:
            network.multicast("src", ["a", "b", "c", "d"], "tick", {"n": n})
        else:
            for dst in ["a", "b", "c", "d"]:
                if network.knows(dst):
                    network.send(Message("src", dst, "tick", {"n": n}))
    sim.run()
    return (
        log,
        network.messages_sent,
        network.messages_dropped,
        network.messages_delivered,
    )


def test_multicast_equivalent_to_send_loop():
    """One shared delivery event must reproduce the per-destination send
    loop exactly: same delivery order, same counters, partitions
    respected."""
    multi = _delivery_log(use_multicast=True)
    loop = _delivery_log(use_multicast=False)
    assert multi == loop
    log = multi[0]
    assert ("c", "tick", 0) not in log  # partitioned away
    assert [entry[0] for entry in log[:3]] == ["a", "b", "d"]


def test_multicast_unknown_destination_raises_unless_lenient():
    from repro.errors import NetworkError

    sim = Simulator(seed=1)
    network = Network(sim)
    log = []
    network.register(_Recorder(sim, "a", log))
    with pytest.raises(NetworkError):
        network.multicast("a", ["ghost", "a"], "tick", {"n": 1})
    network.multicast("a", ["ghost", "a"], "tick", {"n": 1}, strict=False)
    sim.run()
    assert log == [("a", "tick", 1)]


def test_multicast_falls_back_under_loss():
    """With a drop rate the per-message loss draws must happen in
    per-destination order — the fallback send loop guarantees it."""
    sim = Simulator(seed=9)
    network = Network(sim, drop_rate=0.5)
    log = []
    for name in ("a", "b"):
        network.register(_Recorder(sim, name, log))
    network.register(_Recorder(sim, "src", log))
    for n in range(50):
        network.multicast("src", ["a", "b"], "tick", {"n": n})
    sim.run()
    assert network.messages_dropped > 0
    assert network.messages_delivered == len(log)
    assert network.messages_sent == 100


# ----------------------------------------------------------------------
# Close-notification elision
# ----------------------------------------------------------------------
def test_close_notifications_still_reach_overriding_processes():
    closures = []

    class Watcher(SimProcess):
        def on_connection_closed(self, connection) -> None:
            closures.append(self.name)

    sim = Simulator(seed=2)
    network = Network(sim)
    watcher = Watcher(sim, "watcher")
    silent = SimProcess(sim, "silent")
    network.register(watcher)
    network.register(silent)
    connection = network.connect("watcher", "silent")
    connection.close(closed_by=None)
    sim.run()
    # The watcher observes the closure; the base-class no-op endpoint
    # generates no event at all (elided, not merely ignored).
    assert closures == ["watcher"]
