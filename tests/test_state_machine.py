"""Unit tests for the replicated services."""

from __future__ import annotations

from repro.replication.state_machine import (
    CounterService,
    KVStoreService,
    SessionTokenService,
)


# ----------------------------------------------------------------------
# KVStoreService
# ----------------------------------------------------------------------
def test_kv_put_get_roundtrip():
    kv = KVStoreService()
    assert kv.apply({"op": "put", "key": "a", "value": 1}) == {"ok": True}
    assert kv.apply({"op": "get", "key": "a"}) == {"ok": True, "value": 1}


def test_kv_get_missing():
    kv = KVStoreService()
    assert kv.apply({"op": "get", "key": "zz"}) == {"ok": False, "error": "not_found"}


def test_kv_delete():
    kv = KVStoreService()
    kv.apply({"op": "put", "key": "a", "value": 1})
    assert kv.apply({"op": "delete", "key": "a"}) == {"ok": True, "existed": True}
    assert kv.apply({"op": "delete", "key": "a"}) == {"ok": True, "existed": False}


def test_kv_incr_default_and_custom():
    kv = KVStoreService()
    assert kv.apply({"op": "incr", "key": "c"}) == {"ok": True, "value": 1}
    assert kv.apply({"op": "incr", "key": "c", "by": 5}) == {"ok": True, "value": 6}


def test_kv_incr_non_integer_rejected():
    kv = KVStoreService()
    kv.apply({"op": "put", "key": "s", "value": "text"})
    assert kv.apply({"op": "incr", "key": "s"})["ok"] is False


def test_kv_keys_sorted():
    kv = KVStoreService()
    for k in ("b", "a", "c"):
        kv.apply({"op": "put", "key": k, "value": 0})
    assert kv.apply({"op": "keys"}) == {"ok": True, "keys": ["a", "b", "c"]}


def test_kv_unknown_op():
    kv = KVStoreService()
    response = kv.apply({"op": "explode"})
    assert response["ok"] is False
    assert kv.ops_applied == 0


def test_kv_snapshot_restore_is_deep():
    kv = KVStoreService()
    kv.apply({"op": "put", "key": "a", "value": [1, 2]})
    snap = kv.snapshot()
    kv.apply({"op": "put", "key": "a", "value": [9]})
    other = KVStoreService()
    other.restore(snap)
    assert other.apply({"op": "get", "key": "a"}) == {"ok": True, "value": [1, 2]}
    # mutating the restored state must not leak into the snapshot
    other.apply({"op": "put", "key": "a", "value": "x"})
    third = KVStoreService()
    third.restore(snap)
    assert third.apply({"op": "get", "key": "a"})["value"] == [1, 2]


def test_kv_digest_tracks_state():
    a, b = KVStoreService(), KVStoreService()
    assert a.digest() == b.digest()
    a.apply({"op": "put", "key": "k", "value": 1})
    assert a.digest() != b.digest()
    b.apply({"op": "put", "key": "k", "value": 1})
    assert a.digest() == b.digest()


def test_kv_determinism_property():
    """Same request sequence => same state: the SMR requirement."""
    requests = [
        {"op": "put", "key": "a", "value": 1},
        {"op": "incr", "key": "a"},
        {"op": "delete", "key": "b"},
        {"op": "put", "key": "b", "value": "x"},
    ]
    a, b = KVStoreService(), KVStoreService()
    ra = [a.apply(r) for r in requests]
    rb = [b.apply(r) for r in requests]
    assert ra == rb
    assert a.digest() == b.digest()
    assert a.deterministic


# ----------------------------------------------------------------------
# CounterService
# ----------------------------------------------------------------------
def test_counter_add_and_read():
    c = CounterService()
    assert c.apply({"op": "add", "by": 3}) == {"ok": True, "value": 3}
    assert c.apply({"op": "read"}) == {"ok": True, "value": 3}


def test_counter_snapshot_restore():
    c = CounterService()
    c.apply({"op": "add", "by": 7})
    d = CounterService()
    d.restore(c.snapshot())
    assert d.value == 7


# ----------------------------------------------------------------------
# SessionTokenService (non-deterministic)
# ----------------------------------------------------------------------
def test_session_service_flags_nondeterminism():
    assert SessionTokenService(0).deterministic is False


def test_session_replicas_diverge_on_login():
    """Two replicas with different entropy mint different tokens for the
    same request — exactly why SMR cannot host this service."""
    a, b = SessionTokenService(seed=1), SessionTokenService(seed=2)
    request = {"op": "login", "user": "u"}
    token_a = a.apply(request)["token"]
    token_b = b.apply(request)["token"]
    assert token_a != token_b
    assert a.digest() != b.digest()


def test_session_state_transfer_keeps_tokens_valid():
    """Primary-backup replication of the same service works: the backup
    installs the primary's state, token included."""
    primary, backup = SessionTokenService(seed=1), SessionTokenService(seed=99)
    token = primary.apply({"op": "login", "user": "u"})["token"]
    backup.restore(primary.snapshot())
    assert backup.apply({"op": "whoami", "token": token}) == {"ok": True, "user": "u"}
    assert backup.digest() == primary.digest()


def test_session_authenticated_kv_access():
    service = SessionTokenService(seed=3)
    token = service.apply({"op": "login", "user": "u"})["token"]
    assert service.apply({"op": "put", "key": "k", "value": 1, "token": token})["ok"]
    assert service.apply({"op": "get", "key": "k", "token": token})["value"] == 1
    assert service.apply({"op": "get", "key": "k", "token": "bad"}) == {
        "ok": False,
        "error": "unauthenticated",
    }


def test_session_logout():
    service = SessionTokenService(seed=4)
    token = service.apply({"op": "login", "user": "u"})["token"]
    assert service.apply({"op": "logout", "user": "u"}) == {"ok": True, "existed": True}
    assert service.apply({"op": "whoami", "token": token})["ok"] is False
