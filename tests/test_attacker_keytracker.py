"""Unit tests for the attacker's guess bookkeeping."""

from __future__ import annotations

import random

import pytest

from repro.attacker.keytracker import KeyGuessTracker
from repro.errors import ConfigurationError
from repro.randomization.keyspace import KeySpace


def make_tracker(entropy=6, seed=1):
    return KeyGuessTracker(KeySpace(entropy), random.Random(seed))


def test_guesses_never_repeat_until_exhaustion():
    tracker = make_tracker(entropy=6)  # 64 keys
    guesses = [tracker.next_guess() for _ in range(64)]
    assert len(set(guesses)) == 64
    assert sorted(guesses) == list(range(64))
    assert tracker.exhausted


def test_exhausted_tracker_raises():
    tracker = make_tracker(entropy=2)
    for _ in range(4):
        tracker.next_guess()
    with pytest.raises(ConfigurationError):
        tracker.next_guess()


def test_reset_forgets_eliminations():
    tracker = make_tracker(entropy=4)
    for _ in range(16):
        tracker.next_guess()
    tracker.reset()
    assert not tracker.exhausted
    assert tracker.tried_count == 0
    assert tracker.resets == 1
    # Can enumerate the full space again.
    assert len({tracker.next_guess() for _ in range(16)}) == 16


def test_eliminate_marks_externally_observed_guesses():
    tracker = make_tracker(entropy=4)
    tracker.eliminate(5)
    guesses = [tracker.next_guess() for _ in range(15)]
    assert 5 not in guesses
    assert sorted(guesses + [5]) == list(range(16))


def test_order_randomized_per_seed():
    a = [make_tracker(seed=1).next_guess() for _ in range(1)]
    sequences = set()
    for seed in range(5):
        tracker = make_tracker(seed=seed)
        sequences.add(tuple(tracker.next_guess() for _ in range(10)))
    assert len(sequences) > 1  # different seeds, different orders


def test_materialized_tail_still_complete():
    """Crossing the rejection-sampling threshold must not lose keys."""
    tracker = make_tracker(entropy=8)  # 256 keys
    seen = {tracker.next_guess() for _ in range(256)}
    assert seen == set(range(256))


def test_total_guesses_counter():
    tracker = make_tracker(entropy=4)
    for _ in range(7):
        tracker.next_guess()
    assert tracker.total_guesses == 7
    tracker.reset()
    assert tracker.total_guesses == 0
