"""Torture tests: the replication substrates under injected faults.

These earn the crash-tolerance claims: primary-backup must survive any
single-node outage pattern, SMR must stay consistent and live with up to
one replica down plus message loss and partitions, and both must end
with identical replica states once faults stop.
"""

from __future__ import annotations

import random

from repro.core.builders import add_clients, build_system
from repro.core.specs import s0, s1, s2
from repro.faults.injector import FaultInjector, MessageLossFault, PartitionFault
from repro.faults.plans import rolling_outages
from repro.randomization.obfuscation import Scheme


def quiesce_and_digests(deployed, until):
    """Run to ``until``, stop workload, drain, return replica digests."""
    deployed.sim.run(until=until)
    for client in deployed.clients:
        client.stop_workload()
    deployed.sim.run(until=until + 5.0)
    return [server.service.digest() for server in deployed.servers]


def test_pb_survives_rolling_outages():
    """One server down at a time, forever: clients keep being served and
    replicas converge afterwards (classic PB guarantee)."""
    deployed = build_system(s1(Scheme.PO, alpha=1e-4, entropy_bits=8), seed=31)
    clients = add_clients(deployed, 1)
    injector = FaultInjector(deployed.sim, deployed.network)
    injector.schedule_plan(
        rolling_outages(deployed.server_names, period=3.0, down_for=1.0, rounds=6)
    )
    deployed.start()
    digests = quiesce_and_digests(deployed, until=20.0)
    client = clients[0]
    assert client.responses_ok > 50
    assert client.responses_corrupted == 0
    assert len(set(digests)) == 1  # replicas converged


def test_pb_primary_outage_fails_over_and_old_primary_resyncs():
    deployed = build_system(s1(Scheme.PO, alpha=1e-4, entropy_bits=8), seed=32)
    clients = add_clients(deployed, 1)
    injector = FaultInjector(deployed.sim, deployed.network)
    from repro.faults.injector import CrashFault

    injector.schedule(CrashFault(time=3.0, target="server-0", down_for=4.0))
    deployed.start()
    deployed.sim.run(until=6.0)
    # Failover happened while server-0 was down.
    assert any(s.is_primary for s in deployed.servers[1:])
    digests = quiesce_and_digests(deployed, until=15.0)
    assert len(set(digests)) == 1
    assert clients[0].responses_ok > 40


def test_smr_consistent_under_single_replica_outages():
    deployed = build_system(s0(Scheme.PO, alpha=1e-4, entropy_bits=8), seed=33)
    clients = add_clients(deployed, 1)
    injector = FaultInjector(deployed.sim, deployed.network)
    injector.schedule_plan(
        rolling_outages(deployed.server_names, period=4.0, down_for=1.5, rounds=4)
    )
    deployed.start()
    digests = quiesce_and_digests(deployed, until=20.0)
    assert clients[0].responses_ok > 20
    assert clients[0].responses_corrupted == 0
    # At least the 3 continuously-synced replicas agree; stragglers may
    # still be syncing, so require a strict majority fingerprint.
    counts = max(digests.count(d) for d in digests)
    assert counts >= 3


def test_smr_survives_message_loss_window():
    deployed = build_system(s0(Scheme.PO, alpha=1e-4, entropy_bits=8), seed=34)
    clients = add_clients(deployed, 1)
    injector = FaultInjector(deployed.sim, deployed.network)
    injector.schedule(MessageLossFault(time=2.0, rate=0.25, duration=5.0))
    deployed.start()
    deployed.sim.run(until=15.0)
    # Client retries ride over the lossy window.
    assert clients[0].responses_ok > 20
    assert clients[0].responses_corrupted == 0


def test_smr_survives_leader_partition():
    """Partitioning the leader from two peers forces a view change; the
    system keeps executing."""
    deployed = build_system(s0(Scheme.PO, alpha=1e-4, entropy_bits=8), seed=35)
    clients = add_clients(deployed, 1)
    injector = FaultInjector(deployed.sim, deployed.network)
    injector.schedule(
        PartitionFault(time=2.0, a="replica-0", b="replica-1", heal_after=6.0)
    )
    injector.schedule(
        PartitionFault(time=2.0, a="replica-0", b="replica-2", heal_after=6.0)
    )
    deployed.start()
    before = clients[0].responses_ok
    deployed.sim.run(until=12.0)
    assert clients[0].responses_ok > before
    assert clients[0].responses_corrupted == 0


def test_fortress_serves_through_proxy_outages():
    """Losing proxies (not all) must not interrupt FORTRESS service:
    clients broadcast to all proxies and need only one valid envelope."""
    deployed = build_system(s2(Scheme.PO, alpha=1e-4, entropy_bits=8), seed=36)
    clients = add_clients(deployed, 1)
    injector = FaultInjector(deployed.sim, deployed.network)
    injector.schedule_plan(
        rolling_outages(deployed.proxy_names, period=3.0, down_for=2.0, rounds=5)
    )
    deployed.start()
    deployed.sim.run(until=18.0)
    assert clients[0].responses_ok > 100
    assert clients[0].failures == 0
