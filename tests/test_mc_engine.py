"""Tests for the vectorized + parallel Monte-Carlo engine.

Covers the three acceptance properties of the engine rebuild:

* vectorized-vs-scalar agreement per model (bit-identity where both
  paths share the draw order, mean-within-combined-CI elsewhere);
* deterministic seed derivation — sweep results do not depend on the
  worker count;
* CI-width-based early stopping converges on the known geometric case;

plus the typed small-q guard of the step-level sampler and the
streaming accumulator's algebra.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis.lifetimes import el_s1_po, el_s2_po
from repro.analysis.sensitivity import (
    mc_elasticity,
    s2_so_alpha_elasticity,
    s2_so_kappa_elasticity,
)
from repro.errors import AnalysisError
from repro.core.specs import paper_systems, s1, s2
from repro.errors import ConfigurationError, UnsampleableSpecError
from repro.mc.executor import (
    MCTask,
    StreamingMoments,
    SweepExecutor,
    derive_point_seed,
    estimate_to_precision,
    resolve_workers,
)
from repro.mc.models import S2POStepModel, model_for
from repro.mc.montecarlo import mc_expected_lifetime, run_model
from repro.mc.sweeps import figure1_series, sweep_alpha
from repro.randomization.obfuscation import Scheme


def _all_figure_specs():
    return paper_systems(alpha=2e-3, kappa=0.5) + [s2(Scheme.SO, alpha=2e-3, kappa=0.5)]


# ----------------------------------------------------------------------
# Vectorized vs scalar agreement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", _all_figure_specs(), ids=lambda s: s.label)
def test_sample_batch_is_bit_identical_to_reference(spec):
    """For O(1)-per-trial models the engine path reuses the reference
    kernels, so equal seeds must give equal arrays."""
    model = model_for(spec)
    reference = model.sample(20_000, np.random.default_rng(7))
    batched = model.sample_batch(20_000, np.random.default_rng(7))
    assert np.array_equal(reference, batched)


@pytest.mark.parametrize("spec", _all_figure_specs(), ids=lambda s: s.label)
def test_scalar_loop_agrees_with_vectorized(spec, scale_trials):
    """Mean-within-combined-CI agreement between the per-trial loop and
    the batch path (they need not share a draw order)."""
    model = model_for(spec)
    n_scalar = scale_trials(4_000, floor=1_000)
    n_vector = scale_trials(40_000, floor=10_000)
    scalar = model.sample_scalar(n_scalar, np.random.default_rng(11))
    vector = model.sample_batch(n_vector, np.random.default_rng(12))
    se = np.hypot(
        scalar.std(ddof=1) / np.sqrt(scalar.size),
        vector.std(ddof=1) / np.sqrt(vector.size),
    )
    assert abs(scalar.mean() - vector.mean()) <= 5.0 * se


def test_step_model_vectorized_matches_closed_form(scale_trials):
    """The block-stepper must reproduce the Definition-3 q without ever
    using the closed form."""
    spec = s2(Scheme.PO, alpha=0.05, kappa=0.4)
    model = S2POStepModel(spec)
    n = scale_trials(60_000, floor=10_000)
    values = model.sample_batch(n, np.random.default_rng(3))
    mean = values.mean()
    se = values.std(ddof=1) / np.sqrt(n)
    assert abs(mean - el_s2_po(0.05, 0.4)) <= 5.0 * se


def test_sample_batch_chunked_covers_full_count():
    model = model_for(s1(Scheme.PO, alpha=1e-2))
    values = model.sample_batch(10_000, np.random.default_rng(5), chunk_size=999)
    assert values.shape == (10_000,)
    assert abs(values.mean() - el_s1_po(1e-2)) < 10.0


def test_sample_batch_rejects_bad_chunk():
    model = model_for(s1(Scheme.PO, alpha=1e-2))
    with pytest.raises(ConfigurationError):
        model.sample_batch(10, np.random.default_rng(0), chunk_size=0)


def test_run_model_scalar_flag_replays_reference_path():
    """``vectorized=False`` is the bit-stable regression anchor."""
    spec = s2(Scheme.SO, alpha=5e-3, kappa=0.5)
    model = model_for(spec)
    reference = model.sample(5_000, np.random.default_rng(21))
    estimate = run_model(model, 5_000, seed=21, vectorized=False)
    assert estimate.mean == pytest.approx(float(reference.mean()))
    assert estimate.stats.maximum == float(reference.max())


# ----------------------------------------------------------------------
# Small-q guard (typed error with the offending spec)
# ----------------------------------------------------------------------
def test_step_model_small_q_guard_scalar_path():
    spec = s2(Scheme.PO, alpha=1e-5, kappa=0.1)
    model = S2POStepModel(spec, max_steps=50)
    with pytest.raises(UnsampleableSpecError) as excinfo:
        model.sample(50, np.random.default_rng(0))
    assert excinfo.value.spec == spec
    assert excinfo.value.max_steps == 50
    assert "S2PO" in str(excinfo.value)
    assert "geometric" in str(excinfo.value)


def test_step_model_small_q_guard_vectorized_path():
    spec = s2(Scheme.PO, alpha=1e-5, kappa=0.1)
    model = S2POStepModel(spec, max_steps=50)
    with pytest.raises(UnsampleableSpecError) as excinfo:
        model.sample_batch(50, np.random.default_rng(0))
    assert excinfo.value.spec == spec


def test_small_q_guard_type_hierarchy():
    """Typed per the new contract (ConfigurationError) while callers
    that caught the pre-engine AnalysisError keep working."""
    assert issubclass(UnsampleableSpecError, ConfigurationError)
    assert issubclass(UnsampleableSpecError, AnalysisError)


def test_step_model_guard_agrees_between_paths():
    """The block-stepper must enforce max_steps exactly like the scalar
    loop — never returning lifetimes the scalar path would refuse."""
    spec = s2(Scheme.PO, alpha=0.05, kappa=0.4)
    # ~6% of trials at this alpha outlive 100 steps, so a budget below
    # the block size (128) must trip both paths, not just the scalar
    # one; a comfortable budget must trip neither and stay under it.
    tight = S2POStepModel(spec, max_steps=100)
    with pytest.raises(UnsampleableSpecError):
        tight.sample_scalar(5_000, np.random.default_rng(19))
    with pytest.raises(UnsampleableSpecError):
        tight.sample_batch(5_000, np.random.default_rng(19))
    roomy = S2POStepModel(spec, max_steps=1_000)
    values = roomy.sample_batch(5_000, np.random.default_rng(19))
    assert values.max() < 1_000


def test_small_q_guard_survives_pickling():
    """The guard must cross process-pool boundaries intact: a worker
    raising it sends the exception back to the parent via pickle."""
    spec = s2(Scheme.PO, alpha=1e-5, kappa=0.1)
    original = UnsampleableSpecError(spec, 50)
    clone = pickle.loads(pickle.dumps(original))
    assert isinstance(clone, UnsampleableSpecError)
    assert clone.spec == spec
    assert clone.max_steps == 50
    assert str(clone) == str(original)


# ----------------------------------------------------------------------
# Deterministic seed derivation / worker invariance
# ----------------------------------------------------------------------
def test_derive_point_seed_is_stable_and_path_sensitive():
    assert derive_point_seed(0, 1, 2) == derive_point_seed(0, 1, 2)
    assert derive_point_seed(0, 1, 2) != derive_point_seed(0, 2, 1)
    assert derive_point_seed(1, 1, 2) != derive_point_seed(0, 1, 2)
    with pytest.raises(ConfigurationError):
        derive_point_seed(-1, 0)


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(-1) >= 1


def test_sweep_results_independent_of_worker_count():
    base = s2(Scheme.SO, alpha=5e-3, kappa=0.5)
    serial = sweep_alpha(base, alphas=(5e-3, 1e-2), trials=2_000, seed=9)
    fanned = sweep_alpha(base, alphas=(5e-3, 1e-2), trials=2_000, seed=9, workers=2)
    assert [p.mean for p in serial.points] == [p.mean for p in fanned.points]
    assert [p.ci_low for p in serial.points] == [p.ci_low for p in fanned.points]


def test_figure1_series_worker_invariance():
    serial = figure1_series(alphas=(2e-3,), kappa=0.5, trials=1_500, seed=4)
    fanned = figure1_series(alphas=(2e-3,), kappa=0.5, trials=1_500, seed=4, workers=2)
    for a, b in zip(serial, fanned):
        assert a.label == b.label
        assert a.means == b.means


def test_executor_preserves_task_order():
    tasks = [
        MCTask(spec=s1(Scheme.PO, alpha=alpha), seed=i, trials=500)
        for i, alpha in enumerate((1e-2, 2e-2, 5e-2))
    ]
    estimates = SweepExecutor(workers=2).map(tasks)
    assert [e.spec.alpha for e in estimates] == [1e-2, 2e-2, 5e-2]
    # Coarser alpha, shorter lifetime — order must reflect inputs, not
    # completion time.
    assert estimates[0].mean > estimates[2].mean


# ----------------------------------------------------------------------
# Streaming accumulation and early stopping
# ----------------------------------------------------------------------
def test_streaming_moments_match_numpy():
    rng = np.random.default_rng(13)
    values = rng.exponential(37.0, size=10_000)
    moments = StreamingMoments()
    for chunk in np.array_split(values, 7):
        moments.update(chunk)
    assert moments.count == values.size
    assert moments.mean == pytest.approx(values.mean())
    assert moments.std == pytest.approx(values.std(ddof=1))
    assert moments.minimum == values.min()
    assert moments.maximum == values.max()
    stats = moments.to_stats()
    assert stats.ci_low < stats.mean < stats.ci_high


def test_streaming_moments_merge_is_associative_enough():
    rng = np.random.default_rng(14)
    values = rng.geometric(0.01, size=5_000).astype(float)
    left = StreamingMoments()
    left.update(values[:1_234])
    right = StreamingMoments()
    right.update(values[1_234:])
    left.merge(right)
    assert left.count == 5_000
    assert left.mean == pytest.approx(values.mean())
    assert left.std == pytest.approx(values.std(ddof=1))


def test_early_stopping_converges_on_geometric_case(scale_trials):
    alpha = 1e-2
    model = model_for(s1(Scheme.PO, alpha=alpha))
    target = 0.02
    estimate = estimate_to_precision(
        model, rel_halfwidth=target, seed=17, max_trials=2_000_000
    )
    assert estimate.converged
    assert estimate.stats.ci_halfwidth <= target * abs(estimate.mean) * 1.0001
    # EL = 99 must sit within a few standard errors of the estimate.
    se = estimate.stats.ci_halfwidth / 1.96
    assert abs(estimate.mean - el_s1_po(alpha)) <= 5.0 * se
    assert estimate.trials >= 1_000


def test_early_stopping_respects_trial_budget():
    model = model_for(s1(Scheme.PO, alpha=1e-2))
    estimate = estimate_to_precision(
        model, rel_halfwidth=1e-6, seed=3, min_trials=100, max_trials=4_000
    )
    assert not estimate.converged
    assert estimate.trials == 4_000


def test_early_stopping_validation():
    model = model_for(s1(Scheme.PO, alpha=1e-2))
    with pytest.raises(ConfigurationError):
        estimate_to_precision(model, rel_halfwidth=0.0)
    with pytest.raises(ConfigurationError):
        estimate_to_precision(model, min_trials=10, max_trials=5)
    with pytest.raises(ConfigurationError):
        estimate_to_precision(model, batch_size=0)


def test_mc_expected_lifetime_precision_mode():
    estimate = mc_expected_lifetime(
        s1(Scheme.PO, alpha=1e-2), seed=2, precision=0.05, max_trials=500_000
    )
    assert estimate.converged
    assert estimate.label == "S1PO"
    assert estimate.stats.ci_halfwidth <= 0.05 * abs(estimate.mean) * 1.0001


def test_sweep_precision_mode_has_real_cis():
    series = sweep_alpha(s1(Scheme.PO), alphas=(1e-2,), seed=6, precision=0.05)
    point = series.points[0]
    assert point.ci_low < point.mean < point.ci_high


# ----------------------------------------------------------------------
# MC elasticities (sensitivity rewired onto the engine)
# ----------------------------------------------------------------------
def test_mc_elasticity_recovers_analytic_scaling(scale_trials):
    """S1PO has EL ∝ (1 − α)/α: elasticity ≈ −1 at small α."""
    value = mc_elasticity(
        lambda a: s1(Scheme.PO, alpha=a),
        1e-2,
        precision=0.005,
        seed=8,
        max_trials=scale_trials(2_000_000, floor=200_000),
    )
    assert value == pytest.approx(-1.0, abs=0.08)


def test_s2_so_alpha_elasticity_is_negative(scale_trials):
    value = s2_so_alpha_elasticity(5e-3, 0.5, precision=0.01, seed=8)
    assert -2.0 < value < -0.5


def test_mc_elasticity_rejects_unconverged_estimates():
    """A starved trial budget must fail loudly, not return noise."""
    with pytest.raises(AnalysisError, match="did not converge"):
        mc_elasticity(
            lambda a: s1(Scheme.PO, alpha=a),
            1e-2,
            precision=1e-6,
            seed=8,
            max_trials=5_000,
        )


def test_s2_so_kappa_elasticity_domain_boundaries():
    """No silent clipping: the κ domain edges are rejected outright."""
    with pytest.raises(AnalysisError):
        s2_so_kappa_elasticity(5e-3, 0.0)
    with pytest.raises(AnalysisError):
        s2_so_kappa_elasticity(5e-3, 1.0)
    # Just inside the boundary the perturbation interval shrinks to fit
    # and the estimate stays finite and negative.
    value = s2_so_kappa_elasticity(5e-3, 0.98, precision=0.02, seed=8)
    assert value < 0.0
