"""Unit tests for system specifications."""

from __future__ import annotations

import pytest

from repro.core.specs import SystemClass, SystemSpec, paper_systems, s0, s1, s2
from repro.errors import ConfigurationError
from repro.randomization.obfuscation import Scheme


def test_class_defaults_match_paper():
    assert s0(Scheme.PO).n_servers == 4  # Definition 1
    assert s1(Scheme.PO).n_servers == 3  # Definition 2
    spec = s2(Scheme.PO)
    assert spec.n_servers == 3 and spec.n_proxies == 3  # Definition 3


def test_labels():
    assert s0(Scheme.PO).label == "S0PO"
    assert s1(Scheme.SO).label == "S1SO"
    assert s2(Scheme.PO).label == "S2PO"


def test_chi_and_omega_derivation():
    spec = s1(Scheme.PO, alpha=0.01, entropy_bits=16)
    assert spec.chi == 65536
    assert spec.omega == pytest.approx(655.36)


def test_default_entropy_is_pax_16_bits():
    assert s1(Scheme.PO).entropy_bits == 16


def test_with_alpha_and_kappa_copies():
    base = s2(Scheme.PO, alpha=1e-3, kappa=0.5)
    hi = base.with_alpha(1e-2)
    assert hi.alpha == 1e-2 and base.alpha == 1e-3
    k = base.with_kappa(0.9)
    assert k.kappa == 0.9 and k.alpha == 1e-3


def test_validation_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        s1(Scheme.PO, alpha=0.0)
    with pytest.raises(ConfigurationError):
        s1(Scheme.PO, alpha=1.5)
    with pytest.raises(ConfigurationError):
        s2(Scheme.PO, kappa=-0.1)
    with pytest.raises(ConfigurationError):
        s2(Scheme.PO, launchpad_fraction=2.0)
    with pytest.raises(ConfigurationError):
        SystemSpec(system=SystemClass.S0, scheme=Scheme.PO, n_servers=3, f=1)
    with pytest.raises(ConfigurationError):
        SystemSpec(system=SystemClass.S2, scheme=Scheme.PO, period=0.0)


def test_s0_custom_size_obeys_3f_rule():
    spec = SystemSpec(system=SystemClass.S0, scheme=Scheme.PO, n_servers=7, f=2)
    assert spec.n_servers == 7


def test_paper_systems_order_and_count():
    systems = paper_systems(alpha=1e-3, kappa=0.5)
    assert [s.label for s in systems] == ["S0PO", "S2PO", "S1PO", "S1SO", "S0SO"]
    assert all(s.alpha == 1e-3 for s in systems)


def test_spec_is_frozen():
    spec = s1(Scheme.PO)
    with pytest.raises(Exception):
        spec.alpha = 0.5  # type: ignore[misc]
