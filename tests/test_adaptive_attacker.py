"""Tests for adaptive pacing, identity rotation, and siege detection —
the §2.2 detection arms race."""

from __future__ import annotations

import pytest

from repro.attacker.adaptive import AdaptiveIndirectProber
from repro.core.builders import add_clients, build_system
from repro.core.specs import s2
from repro.errors import ConfigurationError, NetworkError
from repro.proxy.detection import DetectionLog, DetectionPolicy
from repro.randomization.obfuscation import Scheme


def build_fortress(policy, seed=50, alpha=0.1):
    """Deployment with a *bare* attacker: no direct proxy streams, no
    launch pads — the tests isolate the indirect (client-path) channel."""
    from repro.attacker.agent import AttackerProcess

    spec = s2(Scheme.SO, alpha=alpha, kappa=0.0, entropy_bits=10)
    deployed = build_system(
        spec, seed=seed, detection_policy=policy, stop_on_compromise=False
    )
    attacker = AttackerProcess(
        deployed.sim,
        deployed.network,
        keyspace=spec.keyspace,
        omega=spec.omega,
        period=spec.period,
    )
    deployed.network.register(attacker)
    deployed.attacker = attacker
    return deployed, attacker


def mount_adaptive(deployed, attacker, **kwargs):
    prober = AdaptiveIndirectProber(
        attacker,
        proxies=deployed.proxy_names,
        pool=attacker.pool("server-tier"),
        omega=deployed.spec.omega,
        **kwargs,
    )
    prober.start()
    return prober


# ----------------------------------------------------------------------
# Network aliases
# ----------------------------------------------------------------------
def test_alias_registration_and_delivery(sim, network):
    from repro.net.message import Message
    from repro.sim.process import SimProcess

    class Sink(SimProcess):
        def __init__(self):
            super().__init__(sim, "sink", respawn_delay=None)
            self.got = []

        def handle_message(self, message):
            self.got.append(message)

    sink = Sink()
    network.register(sink)
    network.register_alias("sink~id1", "sink")
    assert network.knows("sink~id1")
    network.send(Message("sink", "sink~id1", "ping", {}))
    sim.run()
    assert len(sink.got) == 1


def test_alias_validation(sim, network):
    from repro.sim.process import SimProcess

    p = SimProcess(sim, "p", respawn_delay=None)
    network.register(p)
    with pytest.raises(NetworkError):
        network.register_alias("p", "p")  # collides with a real name
    with pytest.raises(NetworkError):
        network.register_alias("x", "ghost")
    network.register_alias("x", "p")
    with pytest.raises(NetworkError):
        network.register_alias("x", "p")  # duplicate alias


# ----------------------------------------------------------------------
# Siege detection (unit level)
# ----------------------------------------------------------------------
def test_under_siege_requires_aggregate_threshold():
    log = DetectionLog(DetectionPolicy(window=10.0, threshold=100))
    for i in range(50):
        log.record_invalid(f"src{i}", float(i) * 0.01)
    assert not log.under_siege(1.0)  # no aggregate threshold configured


def test_under_siege_triggers_and_subsides():
    log = DetectionLog(
        DetectionPolicy(window=10.0, threshold=100, aggregate_threshold=20)
    )
    for i in range(25):
        log.record_invalid(f"src{i}", float(i) * 0.1)  # distinct sources!
    assert log.under_siege(2.5)
    assert not log.under_siege(30.0)  # window rolled past the burst


def test_valid_history_tracked():
    log = DetectionLog(DetectionPolicy())
    assert log.valid_count("c") == 0
    log.record_valid("c")
    log.record_valid("c")
    assert log.valid_count("c") == 2


# ----------------------------------------------------------------------
# Adaptive attacker vs per-source-only detection
# ----------------------------------------------------------------------
def test_identity_rotation_defeats_per_source_blacklisting():
    """With only per-source analysis, the rotating attacker sustains
    probing: blacklists bite individual identities, never the stream."""
    policy = DetectionPolicy(window=5.0, threshold=5)  # strict per-source
    deployed, attacker = build_fortress(policy, seed=51)
    prober = mount_adaptive(deployed, attacker, initial_rate=8.0)
    deployed.start()
    deployed.sim.run(until=40.0)
    burned = set()
    for proxy in deployed.proxies:
        burned |= set(proxy.detection.blacklisted_sources)
    assert len(burned) >= 2  # identities do get blacklisted...
    assert prober.probes_sent > 100  # ...but the stream continues
    # Probes keep landing on the server tier to the very end.
    reached = sum(s.address_space.probes_received for s in deployed.servers)
    assert reached > 80
    assert prober.active


def test_siege_mode_blunts_identity_rotation():
    """Adding aggregate detection: fresh identities are turned away and
    the probing stream starves — rotation no longer pays."""
    # Per-source thresholds too lax to bite on their own; only the
    # aggregate analysis differs between the two deployments.
    per_source_only = DetectionPolicy(window=5.0, threshold=1000)
    with_siege = DetectionPolicy(window=5.0, threshold=1000, aggregate_threshold=5)

    probes = {}
    for label, policy in (("plain", per_source_only), ("siege", with_siege)):
        deployed, attacker = build_fortress(policy, seed=52)
        prober = mount_adaptive(deployed, attacker, initial_rate=8.0)
        deployed.start()
        deployed.sim.run(until=40.0)
        # Count probes that actually reached the server tier.
        reached = sum(s.address_space.probes_received for s in deployed.servers)
        probes[label] = reached
        if label == "siege":
            assert any(p.dropped_siege > 0 for p in deployed.proxies)
    assert probes["siege"] < probes["plain"] / 2


def test_siege_mode_spares_established_clients():
    policy = DetectionPolicy(window=5.0, threshold=5, aggregate_threshold=8)
    deployed, attacker = build_fortress(policy, seed=53)
    clients = add_clients(deployed, 1)
    deployed.start()
    deployed.sim.run(until=5.0)  # client builds a valid history first
    prober = mount_adaptive(deployed, attacker, initial_rate=8.0)
    before = clients[0].responses_ok
    deployed.sim.run(until=30.0)
    # The siege throttles the attacker, not the known-good client.
    assert clients[0].responses_ok > before + 50


def test_aimd_rate_backs_off_on_rotation():
    policy = DetectionPolicy(window=5.0, threshold=3)
    deployed, attacker = build_fortress(policy, seed=54)
    prober = mount_adaptive(
        deployed, attacker, initial_rate=10.0, multiplicative_decrease=0.5
    )
    deployed.start()
    deployed.sim.run(until=25.0)
    assert prober.rotations >= 1
    rates = [rate for _, rate in prober.rate_history]
    assert min(rates) < 10.0  # the decrease actually happened
    assert prober.effective_kappa <= 1.0


def test_identity_budget_exhaustion_stops_prober():
    policy = DetectionPolicy(window=5.0, threshold=2)
    deployed, attacker = build_fortress(policy, seed=55)
    prober = mount_adaptive(deployed, attacker, initial_rate=10.0, max_identities=2)
    deployed.start()
    deployed.sim.run(until=40.0)
    assert prober.identities_used == 2
    assert not prober.active


def test_adaptive_validation():
    policy = DetectionPolicy()
    deployed, attacker = build_fortress(policy, seed=56)
    with pytest.raises(ConfigurationError):
        AdaptiveIndirectProber(attacker, [], attacker.pool("x"), omega=8.0)
    with pytest.raises(ConfigurationError):
        AdaptiveIndirectProber(
            attacker, deployed.proxy_names, attacker.pool("x"), omega=0.0
        )
