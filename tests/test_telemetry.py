"""Telemetry-layer tests: the neutrality and invariance contracts.

The instrumentation added for observability must never change what the
engine computes: goldens stay bit-identical with tracing on or off
(RNG- and estimate-neutrality), counter totals are invariant under
executor fan-out (workers 1 / N / serial fallback), and the disabled
path stays allocation-free (the shared null-span singleton).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.core.campaign import campaign_grid, campaign_record, run_campaign
from repro.core.specs import SystemClass
from repro.randomization.obfuscation import Scheme
from repro.reporting.trends import (
    collect_trends,
    find_regressions,
    load_baseline,
    render_trend_table,
    trend_report,
    write_baseline,
)
from repro.telemetry import (
    MetricsRegistry,
    ProgressReporter,
    RunMetrics,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)


def _small_grid():
    return campaign_grid(
        systems=(SystemClass.S1, SystemClass.S2),
        schemes=(Scheme.SO,),
        alphas=(0.2,),
        kappas=(0.5,),
        entropy_bits=6,
    )


def _record_sans_wall(result) -> str:
    record = campaign_record(result)
    record.pop("wall_seconds")
    return json.dumps(record, sort_keys=True)


# ----------------------------------------------------------------------
# RunMetrics / MetricsRegistry primitives
# ----------------------------------------------------------------------
def test_run_metrics_merge_and_round_trip():
    a = RunMetrics(events_executed=10, probes_direct=3, messages_sent=7)
    b = RunMetrics(events_executed=5, probes_indirect=2, messages_sent=1)
    merged = a + b
    assert merged.events_executed == 15
    assert merged.probes_direct == 3
    assert merged.probes_indirect == 2
    assert merged.messages_sent == 8
    assert RunMetrics.from_dict(merged.as_dict()) == merged
    # Tolerant decode: unknown keys ignored, missing keys default to 0.
    decoded = RunMetrics.from_dict({"events_executed": 4, "novel_field": 9})
    assert decoded == RunMetrics(events_executed=4)


def test_snapshot_merge_semantics():
    first = MetricsRegistry()
    first.counter("runs").inc(3)
    first.gauge("rate").set(10.0)
    first.histogram("steps").observe(3)
    second = MetricsRegistry()
    second.counter("runs").inc(2)
    second.gauge("rate").set(20.0)
    second.histogram("steps").observe(100)
    merged = first.snapshot().merge(second.snapshot())
    assert merged.counters["runs"] == 5  # counters add
    assert merged.gauges["rate"] == 20.0  # gauges last-write-wins
    assert merged.histograms["steps"]["count"] == 2  # histograms fold
    assert merged.histograms["steps"]["total"] == 103.0


# ----------------------------------------------------------------------
# Spans: disabled-path overhead and trace emission
# ----------------------------------------------------------------------
def test_disabled_span_is_shared_singleton():
    """The zero-overhead contract: with no sink, span() allocates
    nothing — every call returns the same module-level no-op."""
    assert not tracing_enabled()
    assert span("campaign.prepare") is span("campaign.fold", tasks=3)


def test_tracing_emits_jsonl_and_reverts(tmp_path):
    trace = tmp_path / "trace.jsonl"
    sink = enable_tracing(trace)
    try:
        assert tracing_enabled()
        with span("unit.phase", items=2):
            pass
        assert sink.emitted == 2  # header + one span
    finally:
        disable_tracing()
    assert span("after") is span("later")
    lines = [json.loads(line) for line in trace.read_text().splitlines()]
    assert lines[0] == {"format": "repro-trace/1"}
    assert lines[1]["span"] == "unit.phase"
    assert lines[1]["items"] == 2
    assert lines[1]["seconds"] >= 0.0


# ----------------------------------------------------------------------
# Neutrality: telemetry on vs off is bit-identical
# ----------------------------------------------------------------------
def test_campaign_bit_identical_with_tracing_on_and_off(tmp_path):
    specs = _small_grid()
    kwargs = dict(trials=4, max_steps=40, seed=11, workers=1)
    baseline = run_campaign(specs, **kwargs)
    enable_tracing(tmp_path / "trace.jsonl")
    try:
        traced = run_campaign(specs, **kwargs)
    finally:
        disable_tracing()
    assert _record_sans_wall(baseline) == _record_sans_wall(traced)
    for a, b in zip(baseline, traced):
        assert a.stats == b.stats
        assert [o.steps for o in a.outcomes] == [o.steps for o in b.outcomes]


# ----------------------------------------------------------------------
# Fan-out invariance: counter totals don't depend on the executor shape
# ----------------------------------------------------------------------
def test_metrics_snapshot_invariant_across_fanout(monkeypatch):
    specs = _small_grid()
    kwargs = dict(trials=4, max_steps=40, seed=5)
    serial = run_campaign(specs, workers=1, **kwargs)
    fanned = run_campaign(specs, workers=2, **kwargs)

    def _refuse(*args, **exec_kwargs):
        raise PermissionError("process pools forbidden")

    monkeypatch.setattr("repro.mc.executor.ProcessPoolExecutor", _refuse)
    with pytest.warns(RuntimeWarning, match="process pool unavailable"):
        fallback = run_campaign(specs, workers=2, **kwargs)

    reference = serial.metrics_snapshot()
    assert reference.counters["runs_total"] == len(specs) * 4
    assert reference.counters["events_executed"] == serial.total_events
    assert reference.counters["sim_messages_sent"] > 0
    for other in (fanned, fallback):
        snapshot = other.metrics_snapshot()
        assert snapshot.counters == reference.counters
        assert snapshot.histograms == reference.histograms


def test_campaign_record_metrics_section_is_opt_in():
    specs = _small_grid()
    result = run_campaign(specs, trials=2, max_steps=40, seed=1, workers=1)
    assert "metrics" not in campaign_record(result)
    record = campaign_record(result, metrics=result.metrics_snapshot())
    assert record["metrics"]["format"] == "repro-metrics/1"
    assert record["metrics"]["counters"]["events_executed"] == result.total_events


# ----------------------------------------------------------------------
# Progress streaming
# ----------------------------------------------------------------------
class _FakeTty(io.StringIO):
    def isatty(self) -> bool:
        return True


def test_progress_reporter_non_tty_renders_full_lines():
    specs = _small_grid()
    stream = io.StringIO()
    progress = ProgressReporter(stream, label="unit", min_interval=0.0)
    result = run_campaign(
        specs, trials=3, max_steps=40, seed=2, workers=1, progress=progress
    )
    text = stream.getvalue()
    lines = [line for line in text.splitlines() if line]
    assert lines, "progress must emit at least one line"
    assert all(line.startswith("unit: ") for line in lines)
    assert f"{result.total_runs}/{result.total_runs} runs" in lines[-1]
    assert "ev/s" in lines[-1]
    assert "\r" not in text  # non-TTY streams get plain appended lines


def test_progress_reporter_tty_rewrites_one_line():
    specs = _small_grid()
    stream = _FakeTty()
    progress = ProgressReporter(stream, label="tty", min_interval=0.0)
    run_campaign(
        specs, trials=2, max_steps=40, seed=2, workers=1, progress=progress
    )
    text = stream.getvalue()
    assert "\r\x1b[2K" in text  # carriage-return rewrite, not scroll
    assert text.endswith("\n")  # finish() closes the live line


def test_progress_is_estimate_neutral():
    specs = _small_grid()
    kwargs = dict(trials=3, max_steps=40, seed=8, workers=1)
    quiet = run_campaign(specs, **kwargs)
    noisy = run_campaign(
        specs, progress=ProgressReporter(io.StringIO(), min_interval=0.0), **kwargs
    )
    assert _record_sans_wall(quiet) == _record_sans_wall(noisy)


# ----------------------------------------------------------------------
# Perf trends
# ----------------------------------------------------------------------
def test_trends_collect_select_and_guard(tmp_path):
    (tmp_path / "bench_demo.json").write_text(
        json.dumps(
            {
                "kernel_events_per_sec": {"new": 100.0, "legacy": 50.0},
                "warm_speedup": 4.0,
                "elapsed_seconds": 2.0,
                "seed": 123,  # config scalar: must not become a trend
                "speedup_target": 3.0,  # assertion threshold: excluded
            }
        )
    )
    current = collect_trends(tmp_path)
    assert "bench_demo.kernel_events_per_sec.new" in current
    assert "bench_demo.warm_speedup" in current
    assert "bench_demo.elapsed_seconds" in current
    assert "bench_demo.seed" not in current
    assert "bench_demo.speedup_target" not in current

    baseline_path = tmp_path / "trend_baseline.json"
    write_baseline(baseline_path, current)
    assert load_baseline(baseline_path) == current
    assert find_regressions(current, load_baseline(baseline_path)) == []

    # Halve a throughput metric: a >20% drop must flag, softly.
    doubled = {k: 2 * v for k, v in current.items()}
    write_baseline(baseline_path, doubled)
    rows = find_regressions(current, load_baseline(baseline_path))
    names = [name for name, *_ in rows]
    assert "bench_demo.warm_speedup" in names
    assert "bench_demo.elapsed_seconds" not in names  # durations never guarded
    table = render_trend_table(current, load_baseline(baseline_path))
    assert "⚠ regression" in table
    report = trend_report(tmp_path, baseline_path)
    assert "soft guard, not a failure" in report


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_info_command(capsys, tmp_path):
    code, out, err = run_cli(capsys, "info", "--cache-dir", str(tmp_path))
    assert code == 0
    assert "engine version" in out
    assert "detected CPUs" in out
    assert "paper-baseline" in out  # scenarios listed


def test_protocol_sweep_progress_and_metrics_out(capsys, tmp_path):
    metrics_path = tmp_path / "metrics.json"
    record_path = tmp_path / "record.json"
    argv = [
        "protocol-sweep",
        "--systems",
        "s2",
        "--schemes",
        "po",
        "--alphas",
        "0.2",
        "--trials",
        "4",
        "--max-steps",
        "40",
        "--no-cache",
        "--progress",
        "--metrics-out",
        str(metrics_path),
        "--output",
        str(record_path),
    ]
    code, out, err = run_cli(capsys, *argv)
    assert code == 0
    assert "protocol-sweep:" in err  # live progress lines on stderr
    assert "runs" in err and "ev/s" in err
    metrics = json.loads(metrics_path.read_text())
    record = json.loads(record_path.read_text())
    assert metrics["format"] == "repro-metrics/1"
    assert metrics["counters"]["events_executed"] == record["total_events"]
    assert metrics["counters"]["runs_total"] == record["total_runs"]
    assert record["metrics"] == metrics  # --output embeds the same snapshot


def test_scenario_run_trace_out(capsys, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    code, out, err = run_cli(
        capsys,
        "scenario",
        "run",
        "lossy-wan",
        "--trials",
        "2",
        "--max-steps",
        "30",
        "--no-cache",
        "--trace-out",
        str(trace_path),
    )
    assert code == 0
    assert not tracing_enabled()  # CLI must tear the sink down again
    spans = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert spans[0] == {"format": "repro-trace/1"}
    names = {record.get("span") for record in spans[1:]}
    assert {"campaign.prepare", "campaign.dispatch", "campaign.fold"} <= names
