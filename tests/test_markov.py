"""Unit tests for the absorbing Markov chain solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.markov import AbsorbingMarkovChain, geometric_chain
from repro.errors import AnalysisError


def test_geometric_chain_expected_lifetime():
    """EL of a memoryless system is (1-q)/q (Definition 7)."""
    chain = geometric_chain(0.25)
    assert chain.expected_steps_from(0) == pytest.approx(4.0)
    assert chain.expected_lifetime_from(0) == pytest.approx(3.0)


def test_geometric_chain_certain_compromise():
    chain = geometric_chain(1.0)
    assert chain.expected_lifetime_from(0) == pytest.approx(0.0)


def test_geometric_chain_validation():
    with pytest.raises(AnalysisError):
        geometric_chain(0.0)
    with pytest.raises(AnalysisError):
        geometric_chain(1.5)


def test_classic_two_state_chain():
    """Textbook example: random walk with two transient states."""
    Q = np.array([[0.0, 0.5], [0.5, 0.0]])
    R = np.array([[0.5, 0.0], [0.0, 0.5]])
    chain = AbsorbingMarkovChain(Q, R)
    result = chain.solve()
    # By symmetry both states take (I-Q)^-1 1 = [2, 2].
    assert result.expected_steps == pytest.approx([2.0, 2.0])
    # Absorption probabilities: from state 0, 2/3 into a0, 1/3 into a1.
    assert result.absorption_probabilities[0] == pytest.approx([2 / 3, 1 / 3])


def test_absorption_probabilities_sum_to_one():
    Q = np.array([[0.1, 0.3], [0.2, 0.4]])
    R = np.array([[0.4, 0.2], [0.1, 0.3]])
    chain = AbsorbingMarkovChain(Q, R)
    B = chain.solve().absorption_probabilities
    assert B.sum(axis=1) == pytest.approx([1.0, 1.0])


def test_variance_of_geometric_matches_closed_form():
    q = 0.2
    chain = geometric_chain(q)
    variance = chain.solve().variance_steps[0]
    assert variance == pytest.approx((1 - q) / q**2)


def test_survival_curve_matches_geometric():
    chain = geometric_chain(0.3)
    curve = chain.survival_curve(5)
    expected = [(0.7) ** t for t in range(1, 6)]
    assert curve == pytest.approx(expected)


def test_expected_steps_by_label():
    chain = AbsorbingMarkovChain(
        Q=np.array([[0.5]]),
        R=np.array([[0.5]]),
        transient_labels=["alive"],
        absorbing_labels=["dead"],
    )
    assert chain.expected_steps_from("alive") == pytest.approx(2.0)
    assert chain.absorption_distribution("alive") == {"dead": pytest.approx(1.0)}


def test_validation_rejects_bad_matrices():
    with pytest.raises(AnalysisError):
        AbsorbingMarkovChain(np.zeros((2, 3)), np.zeros((2, 1)))
    with pytest.raises(AnalysisError):  # rows don't sum to 1
        AbsorbingMarkovChain(np.array([[0.5]]), np.array([[0.2]]))
    with pytest.raises(AnalysisError):  # negative probability
        AbsorbingMarkovChain(np.array([[1.2]]), np.array([[-0.2]]))
    with pytest.raises(AnalysisError):  # no absorption at all
        AbsorbingMarkovChain(np.array([[1.0]]), np.array([[0.0]]))


def test_label_count_validation():
    with pytest.raises(AnalysisError):
        AbsorbingMarkovChain(
            np.array([[0.5]]), np.array([[0.5]]), transient_labels=["a", "b"]
        )
    with pytest.raises(AnalysisError):
        AbsorbingMarkovChain(np.array([[0.5]]), np.array([[0.5]]), absorbing_labels=[])


def test_unknown_state_lookup_raises():
    chain = geometric_chain(0.5)
    with pytest.raises(AnalysisError):
        chain.expected_steps_from("ghost")
    with pytest.raises(AnalysisError):
        chain.expected_steps_from(3)


def test_survival_curve_validation():
    with pytest.raises(AnalysisError):
        geometric_chain(0.5).survival_curve(0)


def test_fundamental_matrix_cached():
    chain = geometric_chain(0.5)
    assert chain.fundamental_matrix is chain.fundamental_matrix
