"""Unit tests for the simulated PKI, signatures and over-signing."""

from __future__ import annotations

import random

import pytest

from repro.crypto.keys import generate_keypair
from repro.crypto.signatures import Signed, SignatureAuthority, canonical_bytes
from repro.errors import CryptoError


@pytest.fixture
def authority():
    return SignatureAuthority(random.Random(11))


def test_keypair_generation_distinct(authority):
    a = authority.issue_keypair("alice")
    b = authority.issue_keypair("bob")
    assert a.public != b.public
    assert a.private != b.private


def test_sign_and_verify_roundtrip(authority):
    authority.issue_keypair("server-0")
    signed = authority.sign("server-0", {"response": {"ok": True}, "index": 0})
    assert authority.verify(signed)


def test_tampered_payload_fails_verification(authority):
    authority.issue_keypair("server-0")
    signed = authority.sign("server-0", {"value": 1})
    forged = Signed(payload={"value": 2}, signer="server-0", signature=signed.signature)
    assert not authority.verify(forged)


def test_wrong_signer_fails_verification(authority):
    authority.issue_keypair("server-0")
    authority.issue_keypair("server-1")
    signed = authority.sign("server-0", {"v": 1})
    forged = Signed(payload={"v": 1}, signer="server-1", signature=signed.signature)
    assert not authority.verify(forged)


def test_unknown_signer_fails_verification(authority):
    assert not authority.verify(Signed(payload=1, signer="ghost", signature="x"))


def test_stolen_private_key_signs_as_victim(authority):
    """Compromise semantics: with the victim's private key an attacker
    forges valid signatures (and with any other key he cannot)."""
    authority.issue_keypair("proxy-0")
    stolen = authority.private_key_of("proxy-0")
    forged = authority.sign("proxy-0", {"evil": True}, private=stolen)
    assert authority.verify(forged)
    not_stolen = authority.issue_keypair("attacker").private
    bad = authority.sign("proxy-0", {"evil": True}, private=not_stolen)
    assert not authority.verify(bad)


def test_reissue_invalidates_old_signatures(authority):
    authority.issue_keypair("node")
    old = authority.sign("node", {"v": 1})
    authority.issue_keypair("node")  # re-provision on reboot
    assert not authority.verify(old)
    fresh = authority.sign("node", {"v": 1})
    assert authority.verify(fresh)


def test_oversigning_roundtrip(authority):
    """FORTRESS double signatures: server inner, proxy outer."""
    authority.issue_keypair("server-1")
    authority.issue_keypair("proxy-2")
    inner = authority.sign("server-1", {"request_id": "r1", "response": {"ok": True}})
    envelope = authority.sign("proxy-2", inner)
    assert authority.verify_oversigned(envelope)


def test_oversigned_rejects_bad_inner(authority):
    authority.issue_keypair("server-1")
    authority.issue_keypair("proxy-2")
    bad_inner = Signed(payload={"r": 1}, signer="server-1", signature="bogus")
    envelope = authority.sign("proxy-2", bad_inner)
    assert authority.verify(envelope)  # outer layer alone is fine
    assert not authority.verify_oversigned(envelope)


def test_oversigned_rejects_non_nested_payload(authority):
    authority.issue_keypair("proxy-2")
    envelope = authority.sign("proxy-2", {"plain": True})
    assert not authority.verify_oversigned(envelope)


def test_public_private_lookup_errors(authority):
    with pytest.raises(CryptoError):
        authority.public_key_of("ghost")
    with pytest.raises(CryptoError):
        authority.private_key_of("ghost")


def test_canonical_bytes_dict_order_independent():
    assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})


def test_canonical_bytes_type_sensitive():
    assert canonical_bytes(1) != canonical_bytes("1")
    assert canonical_bytes(True) != canonical_bytes(1)


def test_canonical_bytes_list_tuple_equivalent():
    assert canonical_bytes([1, 2]) == canonical_bytes((1, 2))


def test_canonical_bytes_rejects_unknown_types():
    with pytest.raises(CryptoError):
        canonical_bytes(object())


def test_canonical_bytes_handles_nested_signed(authority):
    authority.issue_keypair("s")
    inner = authority.sign("s", {"v": 1})
    assert canonical_bytes(inner) == canonical_bytes(
        Signed(payload={"v": 1}, signer="s", signature=inner.signature)
    )


def test_generate_keypair_deterministic():
    a = generate_keypair("n", random.Random(5))
    b = generate_keypair("n", random.Random(5))
    assert a == b
