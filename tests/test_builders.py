"""Tests for system builders: wiring, fortification ACLs, attacker mounts."""

from __future__ import annotations

import pytest

from repro.core.builders import (
    SERVER_POOL,
    add_clients,
    attach_attacker,
    build_system,
)
from repro.core.specs import s0, s1, s2
from repro.errors import ConfigurationError
from repro.randomization.obfuscation import Scheme
from repro.replication.state_machine import SessionTokenService


def test_s0_build_shape():
    deployed = build_system(s0(Scheme.PO, alpha=0.01, entropy_bits=8), seed=1)
    assert len(deployed.servers) == 4
    assert deployed.proxies == []
    # Diverse randomization: one key group per replica.
    assert len(deployed.obfuscation._groups) == 4
    assert deployed.nameserver.directory.replication == "smr"
    assert deployed.nameserver.directory.server_addresses  # 1-tier: published


def test_s1_build_shape_identical_keys():
    deployed = build_system(s1(Scheme.PO, alpha=0.01, entropy_bits=8), seed=2)
    assert len(deployed.servers) == 3
    keys = {s.address_space.key for s in deployed.servers}
    assert len(keys) == 1  # identically randomized
    assert len(deployed.obfuscation._groups) == 1


def test_s2_build_fortification():
    deployed = build_system(s2(Scheme.PO, alpha=0.01, entropy_bits=8), seed=3)
    assert len(deployed.proxies) == 3
    directory = deployed.nameserver.directory
    assert directory.proxy_addresses == deployed.proxy_names
    assert directory.server_addresses == {}  # hidden behind proxies
    for server in deployed.servers:
        assert server.allowed_connection_initiators == set(deployed.proxy_names)
        assert "proxy-0" in server.allowed_senders
        assert "nameserver" in server.allowed_senders
    # Proxies know the servers.
    assert deployed.proxies[0].servers == deployed.server_names


def test_s2_attacker_cannot_connect_to_servers():
    deployed = build_system(s2(Scheme.PO, alpha=0.01, entropy_bits=8), seed=4)
    attacker = attach_attacker(deployed)
    assert deployed.network.connect(attacker.name, "server-0") is None


def test_s0_rejects_nondeterministic_service():
    with pytest.raises(ConfigurationError):
        build_system(
            s0(Scheme.PO, alpha=0.01),
            service_factory=lambda i: SessionTokenService(seed=i),
        )


def test_s1_accepts_nondeterministic_service():
    deployed = build_system(
        s1(Scheme.PO, alpha=0.01, entropy_bits=8),
        service_factory=lambda i: SessionTokenService(seed=i),
    )
    assert len(deployed.servers) == 3


def test_attach_attacker_only_once():
    deployed = build_system(s1(Scheme.PO, alpha=0.01, entropy_bits=8), seed=5)
    attach_attacker(deployed)
    with pytest.raises(ConfigurationError):
        attach_attacker(deployed)


def test_s1_attacker_uses_single_shared_pool_stream():
    deployed = build_system(s1(Scheme.PO, alpha=0.05, entropy_bits=8), seed=6)
    attacker = attach_attacker(deployed)
    assert len(attacker._drivers) == 1
    assert attacker._drivers[0].pool is attacker.pool(SERVER_POOL)


def test_s0_attacker_one_stream_per_replica():
    deployed = build_system(s0(Scheme.PO, alpha=0.05, entropy_bits=8), seed=7)
    attacker = attach_attacker(deployed)
    assert len(attacker._drivers) == 4
    pools = {d.pool for d in attacker._drivers}
    assert len(pools) == 4  # diverse keys, diverse pools


def test_s2_attacker_campaign_composition():
    deployed = build_system(
        s2(Scheme.PO, alpha=0.05, kappa=0.5, entropy_bits=8), seed=8
    )
    attacker = attach_attacker(deployed)
    assert len(attacker._drivers) == 3  # one direct stream per proxy
    assert len(attacker._indirect) == 1
    assert attacker._launchpad_servers == deployed.server_names


def test_s2_kappa_zero_means_no_indirect_stream():
    deployed = build_system(
        s2(Scheme.PO, alpha=0.05, kappa=0.0, entropy_bits=8), seed=9
    )
    attacker = attach_attacker(deployed)
    assert attacker._indirect == []


def test_add_clients_mode_matches_system():
    for factory, mode in ((s0, "smr"), (s1, "pb"), (s2, "fortress")):
        deployed = build_system(factory(Scheme.PO, alpha=0.01, entropy_bits=8), seed=10)
        clients = add_clients(deployed, 2)
        assert len(clients) == 2
        assert all(c.mode == mode for c in clients)
        expected_targets = (
            deployed.proxy_names if mode == "fortress" else deployed.server_names
        )
        assert clients[0].targets == expected_targets


def test_root_seed_reproducibility():
    a = build_system(s2(Scheme.PO, alpha=0.01, entropy_bits=8), seed=99)
    b = build_system(s2(Scheme.PO, alpha=0.01, entropy_bits=8), seed=99)
    assert [s.address_space.key for s in a.servers] == [
        s.address_space.key for s in b.servers
    ]
    assert [p.address_space.key for p in a.proxies] == [
        p.address_space.key for p in b.proxies
    ]
