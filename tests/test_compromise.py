"""Unit tests for the system-compromise predicates (Definitions 1-3, 7)."""

from __future__ import annotations

from repro.core.compromise import CompromiseMonitor
from repro.core.specs import SystemClass
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess


def make_nodes(sim, count, prefix):
    return [SimProcess(sim, f"{prefix}-{i}", respawn_delay=None) for i in range(count)]


def test_s0_tolerates_f_compromises():
    sim = Simulator()
    servers = make_nodes(sim, 4, "replica")
    monitor = CompromiseMonitor(sim, SystemClass.S0, servers, f=1)
    servers[0].mark_compromised()
    assert not monitor.is_compromised
    servers[2].mark_compromised()
    assert monitor.is_compromised
    assert "2 of 4" in monitor.cause


def test_s0_cleansed_node_does_not_count():
    sim = Simulator()
    servers = make_nodes(sim, 4, "replica")
    monitor = CompromiseMonitor(sim, SystemClass.S0, servers, f=1)
    servers[0].mark_compromised()
    servers[0].begin_reboot(0.0)  # cleansed before the second intrusion
    servers[1].mark_compromised()
    assert not monitor.is_compromised


def test_s1_any_server_compromise_is_fatal():
    sim = Simulator()
    servers = make_nodes(sim, 3, "server")
    monitor = CompromiseMonitor(sim, SystemClass.S1, servers)
    servers[2].mark_compromised()
    assert monitor.is_compromised
    assert "primary" in monitor.cause


def test_s2_server_route():
    sim = Simulator()
    servers = make_nodes(sim, 3, "server")
    proxies = make_nodes(sim, 3, "proxy")
    monitor = CompromiseMonitor(sim, SystemClass.S2, servers, proxies)
    proxies[0].mark_compromised()
    proxies[1].mark_compromised()
    assert not monitor.is_compromised  # two of three proxies is survivable
    servers[0].mark_compromised()
    assert monitor.is_compromised
    assert "server" in monitor.cause


def test_s2_all_proxies_route():
    sim = Simulator()
    servers = make_nodes(sim, 3, "server")
    proxies = make_nodes(sim, 3, "proxy")
    monitor = CompromiseMonitor(sim, SystemClass.S2, servers, proxies)
    for proxy in proxies:
        proxy.mark_compromised()
    assert monitor.is_compromised
    assert "all 3 proxies" in monitor.cause


def test_steps_survived_floor_convention():
    """Compromise at t=3.4 with period 1.0 means 3 whole steps elapsed."""
    sim = Simulator()
    servers = make_nodes(sim, 3, "server")
    monitor = CompromiseMonitor(sim, SystemClass.S1, servers, period=1.0)
    assert monitor.steps_survived is None
    sim.schedule(3.4, servers[0].mark_compromised)
    sim.run()
    assert monitor.compromised_at == 3.4
    assert monitor.steps_survived == 3


def test_stop_on_compromise_halts_simulation():
    sim = Simulator()
    servers = make_nodes(sim, 3, "server")
    CompromiseMonitor(sim, SystemClass.S1, servers, stop_on_compromise=True)
    fired = []
    sim.schedule(1.0, servers[0].mark_compromised)
    sim.schedule(2.0, fired.append, "after")
    sim.run()
    assert fired == []


def test_monitor_records_node_events_and_first_cause_only():
    sim = Simulator()
    servers = make_nodes(sim, 3, "server")
    monitor = CompromiseMonitor(sim, SystemClass.S1, servers, stop_on_compromise=False)
    servers[0].mark_compromised()
    first_time = monitor.compromised_at
    servers[1].mark_compromised()
    assert monitor.compromised_at == first_time
    assert len(monitor.node_compromise_events) == 2
