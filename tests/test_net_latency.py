"""Unit tests for latency models."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.latency import ExponentialLatency, FixedLatency, UniformLatency


def test_fixed_latency_constant():
    model = FixedLatency(0.25)
    rng = random.Random(0)
    assert all(model.sample(rng) == 0.25 for _ in range(10))


def test_fixed_latency_rejects_negative():
    with pytest.raises(ConfigurationError):
        FixedLatency(-1.0)


def test_uniform_latency_within_bounds():
    model = UniformLatency(0.1, 0.2)
    rng = random.Random(1)
    samples = [model.sample(rng) for _ in range(200)]
    assert all(0.1 <= s <= 0.2 for s in samples)
    assert max(samples) > 0.15  # actually spreads across the range
    assert min(samples) < 0.15


def test_uniform_latency_validates_range():
    with pytest.raises(ConfigurationError):
        UniformLatency(0.2, 0.1)
    with pytest.raises(ConfigurationError):
        UniformLatency(-0.1, 0.2)


def test_exponential_latency_mean_roughly_correct():
    model = ExponentialLatency(mean=0.5)
    rng = random.Random(2)
    samples = [model.sample(rng) for _ in range(5000)]
    mean = sum(samples) / len(samples)
    assert 0.45 < mean < 0.55


def test_exponential_latency_cap_enforced():
    model = ExponentialLatency(mean=0.5, cap=0.6)
    rng = random.Random(3)
    assert all(model.sample(rng) <= 0.6 for _ in range(1000))


def test_exponential_latency_validation():
    with pytest.raises(ConfigurationError):
        ExponentialLatency(mean=0.0)
    with pytest.raises(ConfigurationError):
        ExponentialLatency(mean=1.0, cap=0.5)
