"""Protocol tests for the SMR replica tier (S0)."""

from __future__ import annotations

import random

from repro.crypto.signatures import SignatureAuthority
from repro.net.latency import FixedLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.randomization.keyspace import KeySpace
from repro.replication.primary_backup import PROBE_OP, REQUEST, SERVER_RESPONSE
from repro.replication.smr import SMRReplica, request_digest
from repro.replication.state_machine import KVStoreService
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess


class VotingClient(SimProcess):
    """Collects signed replica responses and reports f+1 agreement."""

    def __init__(self, sim, name, authority, f=1):
        super().__init__(sim, name, respawn_delay=None)
        self.authority = authority
        self.f = f
        self.by_request: dict[str, dict[int, dict]] = {}

    def handle_message(self, message: Message) -> None:
        if message.mtype != SERVER_RESPONSE:
            return
        signed = message.payload["signed"]
        assert self.authority.verify(signed)
        body = signed.payload
        self.by_request.setdefault(body["request_id"], {})[body["index"]] = body[
            "response"
        ]

    def accepted(self, request_id: str):
        """The response with >= f+1 matching replicas, if any."""
        votes = self.by_request.get(request_id, {})
        counts: dict[str, list] = {}
        for response in votes.values():
            counts.setdefault(repr(sorted(response.items(), key=str)), []).append(
                response
            )
        for group in counts.values():
            if len(group) >= self.f + 1:
                return group[0]
        return None


def build_cluster(n=4, seed=1):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=FixedLatency(0.001))
    authority = SignatureAuthority(random.Random(9))
    keyspace = KeySpace(8)
    replicas = []
    for i in range(n):
        replica = SMRReplica(
            sim,
            name=f"replica-{i}",
            index=i,
            keyspace=keyspace,
            rng=random.Random(70 + i),
            service=KVStoreService(),
            authority=authority,
            network=network,
        )
        network.register(replica)
        replicas.append(replica)
    names = [r.name for r in replicas]
    for r in replicas:
        r.configure(names)
    client = VotingClient(sim, "client", authority)
    network.register(client)
    return sim, network, authority, replicas, client


def send_request(network, replicas, request_id, body):
    for replica in replicas:
        if network.knows(replica.name):
            network.send(
                Message(
                    "client",
                    replica.name,
                    REQUEST,
                    {
                        "request_id": request_id,
                        "client": "client",
                        "reply_to": ["client"],
                        "body": body,
                    },
                )
            )


def test_request_ordered_and_executed_on_all_replicas():
    sim, net, auth, replicas, client = build_cluster()
    send_request(net, replicas, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=0.5)
    assert all(r.executed_seq == 1 for r in replicas)
    assert all(r.requests_executed == 1 for r in replicas)
    assert client.accepted("r1") == {"ok": True}


def test_replicas_agree_on_state_digest():
    sim, net, auth, replicas, client = build_cluster()
    for i in range(5):
        send_request(net, replicas, f"r{i}", {"op": "incr", "key": "c"})
        sim.run(until=0.3 * (i + 1))
    digests = {r.service.digest() for r in replicas}
    assert len(digests) == 1
    assert replicas[0].service.apply({"op": "get", "key": "c"})["value"] == 5


def test_sequential_requests_execute_in_order():
    sim, net, auth, replicas, client = build_cluster()
    send_request(net, replicas, "ra", {"op": "put", "key": "k", "value": "first"})
    send_request(net, replicas, "rb", {"op": "put", "key": "k", "value": "second"})
    sim.run(until=1.0)
    values = {r.service.apply({"op": "get", "key": "k"})["value"] for r in replicas}
    assert values == {"second"}
    assert all(r.executed_seq == 2 for r in replicas)


def test_duplicate_request_executed_once():
    sim, net, auth, replicas, client = build_cluster()
    send_request(net, replicas, "r1", {"op": "incr", "key": "c"})
    sim.run(until=0.5)
    send_request(net, replicas, "r1", {"op": "incr", "key": "c"})
    sim.run(until=1.0)
    assert all(
        r.service.apply({"op": "get", "key": "c"})["value"] == 1 for r in replicas
    )


def test_progress_with_one_crashed_backup():
    """n=4, f=1: the protocol must commit with one replica down."""
    sim, net, auth, replicas, client = build_cluster()
    replicas[3].stop()
    send_request(net, replicas, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=1.0)
    assert client.accepted("r1") == {"ok": True}
    assert all(r.executed_seq == 1 for r in replicas[:3])


def test_leader_crash_triggers_view_change_and_progress():
    sim, net, auth, replicas, client = build_cluster()
    replicas[0].stop()  # the view-0 leader
    send_request(net, replicas, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=5.0)  # request timeout 0.25 drives the view change
    assert client.accepted("r1") == {"ok": True}
    live_views = {r.view for r in replicas[1:]}
    assert all(v >= 1 for v in live_views)


def test_compromised_single_replica_outvoted():
    """With f=1 compromised replica, clients still assemble f+1 honest
    matching responses — the SMR guarantee the paper builds on."""
    sim, net, auth, replicas, client = build_cluster()
    replicas[2].mark_compromised()
    send_request(net, replicas, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=1.0)
    assert client.accepted("r1") == {"ok": True}


def test_probe_request_crashes_wrong_replicas_only():
    """A probe ordered through the protocol executes on every replica;
    with diverse keys it crashes the non-matching ones."""
    sim, net, auth, replicas, client = build_cluster()
    target_key = replicas[1].address_space.key
    others = [r for i, r in enumerate(replicas) if i != 1]
    # Make sure the guess is wrong for every other replica (diverse keys
    # make this overwhelmingly likely; assert to guard the test).
    assert all(r.address_space.key != target_key for r in others)
    send_request(net, replicas, "p1", {"op": PROBE_OP, "guess": target_key})
    sim.run(until=2.0)
    assert replicas[1].compromised
    assert all(r.crash_count >= 1 for r in others)


def test_recovering_replica_requires_f_plus_1_matching_states():
    sim, net, auth, replicas, client = build_cluster()
    send_request(net, replicas, "r1", {"op": "put", "key": "a", "value": 1})
    sim.run(until=0.5)
    replicas[3].begin_reboot(0.05)
    send_request(net, replicas, "r2", {"op": "put", "key": "b", "value": 2})
    sim.run(until=3.0)
    assert replicas[3].executed_seq == 2
    assert replicas[3].service.apply({"op": "get", "key": "b"})["value"] == 2


def test_request_digest_stable_and_content_sensitive():
    a = request_digest({"op": "put", "key": "k", "value": 1})
    b = request_digest({"value": 1, "key": "k", "op": "put"})
    c = request_digest({"op": "put", "key": "k", "value": 2})
    assert a == b
    assert a != c
