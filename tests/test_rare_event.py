"""Tests for the rare-event campaign engine (``repro.rare``).

Four layers:

* state forking — a mid-flight deployment clone, with every RNG stream
  left untouched, replays bit-identically to the unforked original; the
  level probe itself is inert (instrumented runs match bare ones on
  every outcome field but the event count); resplit children diverge
  deterministically from their split seed;
* level machinery — pilot-quantile placement, the structural
  simultaneity ladder, and the delta-method fold in metrics.stats;
* the splitting estimator — agreement with plain Monte-Carlo on a
  non-rare point (3σ), worker/batch invariance, warm-cache replay,
  and the ``estimator="auto"`` switch;
* campaign integration — estimator/events/wall-time fields on campaign
  results, records and tables.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.core.campaign import campaign_record, run_campaign
from repro.core.experiment import (
    LifetimeEstimate,
    estimate_protocol_lifetime,
    run_protocol_lifetime,
)
from repro.core.specs import s0, s1, s2
from repro.errors import AnalysisError, ConfigurationError
from repro.metrics.stats import (
    SplittingLevelStat,
    splitting_probability,
)
from repro.randomization.obfuscation import Scheme
from repro.rare.fork import child_seed, fork_trajectory, reseed_for_split
from repro.rare.levels import (
    attacker_progress,
    choose_levels,
    dedupe_levels,
    structural_levels,
)
from repro.rare.splitting import (
    PilotTask,
    SplittingConfig,
    SplittingTask,
    _new_trajectory,
    run_splitting,
)
from repro.sim.rng import derive_seed

#: Outcome fields that must survive forking/instrumentation unchanged.
#: ``events`` is excluded deliberately: the level probe adds (read-only)
#: heap events, so instrumented runs execute more of them.
OUTCOME_FIELDS = (
    "compromised",
    "steps",
    "time",
    "cause",
    "probes_direct",
    "probes_indirect",
)


def _outcome_view(outcome):
    return {field: getattr(outcome, field) for field in OUTCOME_FIELDS}


def _finish(trajectory, seed, max_steps):
    from repro.core.experiment import _run_until, outcome_from_deployment

    _run_until(trajectory.deployed, max_steps * trajectory.deployed.spec.period)
    return outcome_from_deployment(trajectory.deployed, seed, max_steps)


# ----------------------------------------------------------------------
# State forking
# ----------------------------------------------------------------------
class TestForking:
    SPEC = s2(Scheme.PO, entropy_bits=8, alpha=0.1, kappa=0.8)
    MAX_STEPS = 20

    def _undecided_trajectory(self, seed, until):
        trajectory = _new_trajectory(self.SPEC, seed, self.MAX_STEPS, {}, None, 0.25)
        trajectory.deployed.sim.run(until=until)
        assert not trajectory.deployed.monitor.is_compromised, (
            "test premise broken: pick a seed that is undecided at the fork point"
        )
        return trajectory

    def test_fork_replays_bit_identically(self):
        seed = 10  # compromises at t ~ 8.3, so it is undecided at the fork
        reference = run_protocol_lifetime(self.SPEC, seed=seed, max_steps=self.MAX_STEPS)
        assert reference.compromised
        trajectory = self._undecided_trajectory(seed, until=6.0)
        clone = fork_trajectory(trajectory)
        assert clone.probe.max_level == trajectory.probe.max_level
        # Both halves continue with untouched RNG streams.
        original = _finish(trajectory, seed, self.MAX_STEPS)
        forked = _finish(clone, seed, self.MAX_STEPS)
        assert _outcome_view(original) == _outcome_view(reference)
        assert _outcome_view(forked) == _outcome_view(reference)
        # The clone is a distinct object graph: its simulator and
        # attacker are not shared with the original.
        assert clone.deployed.sim is not trajectory.deployed.sim
        assert clone.deployed.attacker is not trajectory.deployed.attacker

    def test_fork_refuses_live_simulator(self):
        from repro.errors import SimulationError

        trajectory = self._undecided_trajectory(0, until=2.0)
        sim = trajectory.deployed.sim
        boom = {}

        def poke():
            try:
                fork_trajectory(trajectory)
            except SimulationError as exc:
                boom["error"] = exc
            sim.stop()

        sim.schedule_fast(0.01, poke)
        sim.run(until=3.0)
        assert "error" in boom

    def test_probe_is_inert(self):
        for seed in range(4):
            bare = run_protocol_lifetime(self.SPEC, seed=seed, max_steps=self.MAX_STEPS)
            task = PilotTask(
                spec=self.SPEC, seeds=(seed,), max_steps=self.MAX_STEPS
            )
            ((outcome, max_level),) = task.run()
            assert _outcome_view(outcome) == _outcome_view(bare)
            assert outcome.events >= bare.events
            assert 0.0 <= max_level <= 1.0
            if outcome.compromised:
                assert max_level == 1.0

    def test_reseed_divergence_is_deterministic(self):
        seed = 10
        parent = self._undecided_trajectory(seed, until=6.0)
        same_a = fork_trajectory(parent)
        same_b = fork_trajectory(parent)
        other = fork_trajectory(parent)
        reseed_for_split(same_a, child_seed(seed, 0, 1))
        reseed_for_split(same_b, child_seed(seed, 0, 1))
        reseed_for_split(other, child_seed(seed, 0, 2))
        out_a = _finish(same_a, seed, self.MAX_STEPS)
        out_b = _finish(same_b, seed, self.MAX_STEPS)
        _finish(other, seed, self.MAX_STEPS)
        # Same split seed: bit-identical continuation.
        assert _outcome_view(out_a) == _outcome_view(out_b)

        def tried(trajectory):
            return {
                name: frozenset(tracker._tried)
                for name, tracker in trajectory.deployed.attacker._pools.items()
            }

        assert tried(same_a) == tried(same_b)
        # Different split seed: the guess streams diverge.
        assert tried(other) != tried(same_a)


# ----------------------------------------------------------------------
# Levels
# ----------------------------------------------------------------------
class TestLevels:
    def test_progress_bounds(self):
        spec = s2(Scheme.PO, entropy_bits=8, alpha=0.1, kappa=0.8)
        trajectory = _new_trajectory(spec, 0, 10, {}, None, 0.25)
        trajectory.deployed.sim.run(until=5.0)
        assert 0.0 <= attacker_progress(trajectory.deployed) <= 1.0

    def test_choose_levels_quantiles(self):
        values = [i / 100 for i in range(1, 81)]
        levels = choose_levels(values, p0=0.25, max_levels=4, min_tail=4)
        assert levels
        assert list(levels) == sorted(set(levels))
        assert all(min(values) < level < 1.0 for level in levels)
        # Each level keeps >= min_tail pilot maxima at or above it.
        for level in levels:
            assert sum(1 for v in values if v >= level) >= 4

    def test_choose_levels_degenerate_pilot(self):
        assert choose_levels([0.25] * 32) == ()
        assert choose_levels([1.0] * 32) == ()
        assert choose_levels([]) == ()

    def test_structural_ladder(self):
        assert structural_levels(s1(Scheme.PO)) == ()
        # S0 f=1 needs 2 simultaneous falls: the 1/2 rung plus quarter
        # sub-rungs toward the second.
        assert structural_levels(s0(Scheme.PO)) == (0.5, 0.625, 0.75, 0.875)
        ladder = structural_levels(s2(Scheme.PO))  # 3 proxies
        assert ladder == tuple((k + q) / 3 for k in (1, 2) for q in (0, 0.25, 0.5, 0.75))
        assert all(0.0 < level < 1.0 for level in ladder)

    def test_dedupe_levels(self):
        # Near-duplicates collapse to the deepest cluster member.
        assert dedupe_levels([1 / 3, 0.3381, 0.3382, 2 / 3], 0.01) == (0.3382, 2 / 3)
        # Well-separated levels pass through (sorted).
        assert dedupe_levels([0.6, 0.2, 0.4], 0.01) == (0.2, 0.4, 0.6)
        assert dedupe_levels([], 0.01) == ()
        # min_gap=0 keeps everything.
        assert dedupe_levels([0.2, 0.2001], 0.0) == (0.2, 0.2001)

    def test_splitting_probability_fold(self):
        stats = [
            SplittingLevelStat(level=0.3, n=200, crossed=50),
            SplittingLevelStat(level=None, n=200, crossed=20),
        ]
        estimate = splitting_probability(stats, [0.025, 0.025])
        assert estimate.probability == pytest.approx(0.025)
        assert 0.0 < estimate.ci_low < 0.025 < estimate.ci_high < 1.0
        pooled = (50 / 200) * (20 / 200)
        assert estimate.ci_low < pooled < estimate.ci_high

    def test_splitting_probability_rule_of_three(self):
        stats = [
            SplittingLevelStat(level=0.3, n=100, crossed=50),
            SplittingLevelStat(level=None, n=300, crossed=0),
        ]
        estimate = splitting_probability(stats, [0.0, 0.0, 0.0])
        assert estimate.probability == 0.0
        assert estimate.ci_low == 0.0
        assert estimate.ci_high == pytest.approx(0.5 * 3.0 / 300)

    def test_splitting_probability_widens_for_replication_spread(self):
        # Pooled counts say the estimate is tight, but the replication
        # products disagree wildly (offspring correlation): the CI must
        # cover the replication-level spread.
        stats = [
            SplittingLevelStat(level=0.5, n=40, crossed=20),
            SplittingLevelStat(level=None, n=40, crossed=10),
        ]
        products = [0.4, 0.0, 0.3, 0.1]
        estimate = splitting_probability(stats, products)
        assert estimate.probability == pytest.approx(0.2)
        delta_only = splitting_probability(stats, [0.125] * 4)
        assert estimate.ci_high > delta_only.ci_high
        assert estimate.ci_low <= delta_only.ci_low
        assert estimate.ci_low <= 0.2 <= estimate.ci_high

    def test_splitting_probability_rejects_empty(self):
        with pytest.raises(AnalysisError):
            splitting_probability([], [0.5])
        with pytest.raises(AnalysisError):
            splitting_probability(
                [SplittingLevelStat(level=None, n=10, crossed=1)], []
            )


# ----------------------------------------------------------------------
# The splitting estimator
# ----------------------------------------------------------------------
SMALL_CONFIG = SplittingConfig(pilot_runs=8, replications=2, trajectories=6)


class TestSplittingEstimator:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SplittingConfig(pilot_runs=1)
        with pytest.raises(ConfigurationError):
            SplittingConfig(replications=0)
        with pytest.raises(ConfigurationError):
            SplittingConfig(trajectories=1)
        with pytest.raises(ConfigurationError):
            SplittingConfig(p0=1.0)
        with pytest.raises(ConfigurationError):
            SplittingConfig(min_gap=1.0)
        with pytest.raises(ConfigurationError):
            SplittingConfig(poll_fraction=0.0)

    def test_replication_is_self_contained(self):
        spec = s2(Scheme.PO, entropy_bits=8, alpha=0.1, kappa=0.8)
        task = SplittingTask(
            spec=spec,
            seed=derive_seed(0, "rare:rep:0"),
            levels=(1 / 3, 2 / 3),
            max_steps=15,
            trajectories=4,
        )
        first = task.run()
        second = task.run()
        assert first == second
        assert 0.0 <= first.product <= 1.0
        assert first.events > 0
        assert first.counts[0][0] == 4

    def test_worker_invariance(self):
        spec = s2(Scheme.PO, entropy_bits=8, alpha=0.1, kappa=0.8)
        serial = run_splitting(
            spec, root_seed=7, max_steps=15, workers=1, config=SMALL_CONFIG
        )
        parallel = run_splitting(
            spec, root_seed=7, max_steps=15, workers=2, config=SMALL_CONFIG
        )
        assert serial.probability == parallel.probability
        assert serial.levels == parallel.levels
        assert serial.level_stats == parallel.level_stats
        assert serial.events == parallel.events
        assert [_outcome_view(o) for o in serial.pilot_outcomes] == [
            _outcome_view(o) for o in parallel.pilot_outcomes
        ]

    def test_agrees_with_monte_carlo_on_non_rare_point(self):
        # A point rare enough that splitting builds real stages, common
        # enough that 64 Monte-Carlo runs see plenty of compromises.
        spec = s2(Scheme.PO, entropy_bits=8, alpha=0.1, kappa=0.8)
        max_steps = 15
        mc = estimate_protocol_lifetime(spec, trials=64, max_steps=max_steps, workers=2)
        p_mc = sum(o.compromised for o in mc.outcomes) / mc.stats.n
        split = estimate_protocol_lifetime(
            spec,
            max_steps=max_steps,
            workers=2,
            estimator="splitting",
            splitting=SplittingConfig(pilot_runs=16, replications=4, trajectories=12),
        )
        assert split.estimator == "splitting"
        rare = split.rare
        assert rare is not None
        se_mc = math.sqrt(max(p_mc * (1 - p_mc), 1e-9) / mc.stats.n)
        se_split = max(rare.ci_halfwidth / 1.96, 1e-9)
        tolerance = 3.0 * math.hypot(se_mc, se_split)
        assert abs(rare.probability - p_mc) <= tolerance

    def test_estimator_auto_switches_on_censoring(self):
        # Heavily censored at this budget: nearly every MC run survives.
        spec = s2(Scheme.PO, entropy_bits=12, alpha=0.02, kappa=0.5)
        auto = estimate_protocol_lifetime(
            spec,
            trials=6,
            max_steps=10,
            workers=1,
            estimator="auto",
            splitting=SMALL_CONFIG,
        )
        assert auto.estimator == "splitting"
        assert auto.rare is not None
        mc = estimate_protocol_lifetime(spec, trials=6, max_steps=10, workers=1)
        assert mc.censored_fraction > 0.5  # the premise of the switch
        # The abandoned MC rounds stay charged to the estimate.
        assert auto.events > auto.rare.events - 1
        assert auto.events >= mc.events

    def test_estimator_mc_keeps_old_behavior(self):
        spec = s1(Scheme.SO, entropy_bits=6, alpha=0.2)
        default = estimate_protocol_lifetime(spec, trials=4, max_steps=20, workers=1)
        explicit = estimate_protocol_lifetime(
            spec, trials=4, max_steps=20, workers=1, estimator="mc"
        )
        assert default.estimator == explicit.estimator == "mc"
        assert default.rare is None
        assert [_outcome_view(o) for o in default.outcomes] == [
            _outcome_view(o) for o in explicit.outcomes
        ]
        assert default.events == sum(o.events for o in default.outcomes) > 0

    def test_estimator_rejects_unknown(self):
        spec = s1(Scheme.SO, entropy_bits=6, alpha=0.2)
        with pytest.raises(ConfigurationError):
            estimate_protocol_lifetime(spec, estimator="nonsense")

    def test_estimate_fields_survive_replace(self):
        spec = s1(Scheme.SO, entropy_bits=6, alpha=0.2)
        estimate = estimate_protocol_lifetime(spec, trials=4, max_steps=20, workers=1)
        bumped = dataclasses.replace(estimate, events=estimate.events + 5)
        assert bumped.events == estimate.events + 5
        assert isinstance(estimate, LifetimeEstimate)

    def test_splitting_cache_warm_replay(self, tmp_path):
        from repro.cache import ResultCache

        spec = s2(Scheme.PO, entropy_bits=8, alpha=0.1, kappa=0.8)
        cache = ResultCache(tmp_path)
        cold = run_splitting(
            spec, root_seed=3, max_steps=15, workers=2, config=SMALL_CONFIG, cache=cache
        )
        assert (cache.hits, cache.misses) == (0, 1)
        warm = run_splitting(
            spec, root_seed=3, max_steps=15, workers=1, config=SMALL_CONFIG, cache=cache
        )
        assert (cache.hits, cache.misses) == (1, 1)
        assert warm.probability == cold.probability
        assert warm.ci_low == cold.ci_low
        assert warm.ci_high == cold.ci_high
        assert warm.levels == cold.levels
        assert warm.level_stats == cold.level_stats
        assert warm.events == cold.events
        assert [_outcome_view(o) for o in warm.pilot_outcomes] == [
            _outcome_view(o) for o in cold.pilot_outcomes
        ]
        # A different config is a different key, not a stale hit.
        other = run_splitting(
            spec,
            root_seed=3,
            max_steps=15,
            workers=1,
            config=SplittingConfig(pilot_runs=8, replications=3, trajectories=6),
            cache=cache,
        )
        assert (cache.hits, cache.misses) == (1, 2)
        assert other.replications == 3


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------
class TestCampaignIntegration:
    SPECS = [s2(Scheme.PO, entropy_bits=8, alpha=0.1, kappa=0.8)]

    def test_campaign_splitting_fields_and_record(self):
        result = run_campaign(
            self.SPECS,
            trials=4,
            max_steps=15,
            workers=1,
            estimator="splitting",
            splitting=SMALL_CONFIG,
        )
        assert result.estimator == "splitting"
        assert result.wall_seconds is not None and result.wall_seconds > 0.0
        assert result.total_events > 0
        (estimate,) = result.estimates
        assert estimate.estimator == "splitting"
        assert estimate.rare is not None
        record = campaign_record(result)
        encoded = json.loads(json.dumps(record))
        assert encoded["estimator"] == "splitting"
        assert encoded["total_events"] == result.total_events
        assert encoded["wall_seconds"] > 0.0
        (row,) = encoded["rows"]
        assert row["estimator"] == "splitting"
        assert row["events"] == estimate.events
        assert row["rare"]["probability"] == estimate.rare.probability
        assert row["rare"]["level_stats"]

    def test_campaign_mc_record_has_estimator_fields(self):
        result = run_campaign(
            [s1(Scheme.SO, entropy_bits=6, alpha=0.2)],
            trials=4,
            max_steps=15,
            workers=1,
        )
        assert result.estimator == "mc"
        record = campaign_record(result)
        (row,) = record["rows"]
        assert row["estimator"] == "mc"
        assert row["events"] > 0
        assert "rare" not in row

    def test_campaign_rejects_unknown_estimator(self):
        with pytest.raises(ConfigurationError):
            run_campaign(self.SPECS, trials=2, estimator="nonsense")

    def test_table_shows_estimator_and_censoring(self):
        from repro.reporting.tables import render_campaign_table

        result = run_campaign(
            self.SPECS,
            trials=4,
            max_steps=15,
            workers=1,
            estimator="splitting",
            splitting=SMALL_CONFIG,
        )
        table = render_campaign_table(result.estimates)
        assert "cens%" in table
        assert "est" in table
        assert "P(comp)" in table
        assert "splitting" in table
        mc_result = run_campaign(
            [s1(Scheme.SO, entropy_bits=6, alpha=0.2)],
            trials=4,
            max_steps=15,
            workers=1,
        )
        mc_table = render_campaign_table(mc_result.estimates)
        assert "cens%" in mc_table
        assert "P(comp)" not in mc_table
