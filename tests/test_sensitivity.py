"""Tests for the elasticity / sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.analysis.lifetimes import el_s0_po, el_s1_po
from repro.analysis.sensitivity import (
    elasticity,
    indirect_route_share,
    s2_po_alpha_elasticity,
    s2_po_kappa_elasticity,
)
from repro.errors import AnalysisError


def test_elasticity_of_power_laws_exact():
    assert elasticity(lambda x: x**3, 2.0) == pytest.approx(3.0, abs=1e-6)
    assert elasticity(lambda x: 5.0 / x, 0.7) == pytest.approx(-1.0, abs=1e-6)
    assert elasticity(lambda x: 42.0, 1.0) == pytest.approx(0.0, abs=1e-9)


def test_elasticity_validation():
    with pytest.raises(AnalysisError):
        elasticity(lambda x: x, 0.0)
    with pytest.raises(AnalysisError):
        elasticity(lambda x: x, 1.0, rel_step=0.9)
    with pytest.raises(AnalysisError):
        elasticity(lambda x: x - 2.0, 1.0)  # negative values


def test_s1_and_s0_po_alpha_elasticities():
    """The headline scaling laws: EL(S1PO) ∝ α^-1, EL(S0PO) ∝ α^-2."""
    assert elasticity(el_s1_po, 1e-3) == pytest.approx(-1.0, abs=0.01)
    assert elasticity(el_s0_po, 1e-3) == pytest.approx(-2.0, abs=0.01)


def test_s2_alpha_elasticity_interpolates_regimes():
    # Indirect-dominated: behaves like 1/alpha.
    assert s2_po_alpha_elasticity(1e-4, 0.5) == pytest.approx(-1.0, abs=0.02)
    # kappa = 0: the Θ(α²) launch-pad route dominates.
    assert s2_po_alpha_elasticity(1e-4, 0.0) == pytest.approx(-2.0, abs=0.05)


def test_s2_kappa_elasticity_tracks_route_share():
    alpha = 1e-3
    for kappa in (0.1, 0.5, 0.9):
        share = indirect_route_share(alpha, kappa)
        assert s2_po_kappa_elasticity(alpha, kappa) == pytest.approx(-share, abs=0.02)


def test_kappa_elasticity_undefined_at_zero():
    with pytest.raises(AnalysisError):
        s2_po_kappa_elasticity(1e-3, 0.0)


def test_route_share_monotone_in_kappa():
    alpha = 1e-3
    shares = [indirect_route_share(alpha, k) for k in (0.0, 0.1, 0.5, 1.0)]
    assert shares[0] == 0.0
    assert shares == sorted(shares)
    assert shares[-1] > 0.95  # at kappa=1 the indirect route owns the hazard
