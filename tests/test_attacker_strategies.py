"""Unit tests for the non-paper adversary strategies.

The stealth (duty-cycled) and coordinated (multi-agent) strategies must
preserve the stock attacker's key-pool/RNG discipline: deterministic
probe streams, sampling without replacement against one pool, and the
dead-stream bookkeeping the epoch fast-forward relies on.
"""

from __future__ import annotations

import pytest

from repro.attacker.agent import AttackerProcess
from repro.attacker.strategies import DutyCycledProbeDriver
from repro.core.builders import build_system
from repro.core.specs import s1, s2
from repro.core.timing import TimingSpec
from repro.errors import ConfigurationError
from repro.randomization.obfuscation import Scheme


def _arena(spec, seed=3, stop_on_compromise=False):
    deployed = build_system(
        spec,
        seed=seed,
        timing=TimingSpec.paper(),
        stop_on_compromise=stop_on_compromise,
    )
    attacker = AttackerProcess(
        deployed.sim,
        deployed.network,
        keyspace=spec.keyspace,
        omega=spec.omega,
        period=spec.period,
    )
    deployed.network.register(attacker)
    return deployed, attacker


# ----------------------------------------------------------------------
# Duty-cycled (stealth) probing
# ----------------------------------------------------------------------
def test_duty_cycle_throttles_long_run_rate():
    """A 50%-duty stream lands ~half the probes of a full stream over
    whole cycles, and is bit-deterministic for a fixed seed."""

    def probes(duty: bool) -> int:
        spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
        deployed, attacker = _arena(spec)
        if duty:
            attacker.attack_direct_duty_cycled(
                deployed.servers[0],
                on_fraction=0.5,
                cycle_periods=2.0,
                pool_id="server-tier",
            )
        else:
            attacker.attack_direct(deployed.servers[0], pool_id="server-tier")
        deployed.start()
        deployed.sim.run(until=4.0)
        return attacker.probes_sent_direct

    full = probes(False)
    half = probes(True)
    assert 0.4 <= half / full <= 0.6
    assert probes(True) == half  # deterministic


def test_duty_cycle_probes_only_inside_on_windows():
    """Every probe timestamp falls in [k*cycle, k*cycle + on_time)."""
    spec = s1(Scheme.SO, alpha=0.3, entropy_bits=8)
    deployed, attacker = _arena(spec)
    fired: list[float] = []
    driver = attacker.attack_direct_duty_cycled(
        deployed.servers[0],
        on_fraction=0.25,
        cycle_periods=2.0,
        pool_id="server-tier",
    )
    original = DutyCycledProbeDriver._fire

    def recording_fire(self):
        before = self.probes_sent
        original(self)
        if self.probes_sent > before:
            fired.append(self.attacker.sim.now)

    driver._fire  # bound; patch at class level for the slotted instance
    DutyCycledProbeDriver._fire = recording_fire
    try:
        deployed.start()
        deployed.sim.run(until=8.0)
    finally:
        DutyCycledProbeDriver._fire = original
    assert fired
    for t in fired:
        assert t % 2.0 < 0.5 + 1e-9  # on_time = 0.25 * 2.0 periods = 0.5


def test_duty_cycle_validation():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    deployed, attacker = _arena(spec)
    with pytest.raises(ConfigurationError):
        attacker.attack_direct_duty_cycled(deployed.servers[0], on_fraction=0.0)
    with pytest.raises(ConfigurationError):
        attacker.attack_direct_duty_cycled(deployed.servers[0], on_fraction=1.5)


# ----------------------------------------------------------------------
# Coordinated (multi-agent) probing
# ----------------------------------------------------------------------
def test_coordinated_agents_are_distinct_registered_endpoints():
    spec = s2(Scheme.SO, alpha=0.3, kappa=0.5, entropy_bits=6)
    deployed, attacker = _arena(spec, seed=5)
    drivers = attacker.attack_direct_coordinated(deployed.proxies[0], agents=3)
    assert len(drivers) == 3
    initiators = {d.initiator for d in drivers}
    assert initiators == {"attacker~agent0", "attacker~agent1", "attacker~agent2"}
    for name in initiators:
        assert deployed.network.knows(name)


def test_coordinated_agents_share_one_pool_without_duplicates():
    """N streams on one pool must sample without replacement jointly:
    the pool's tried set grows by exactly the number of fresh guesses,
    and the aggregate rate matches a single full-rate stream."""
    spec = s2(Scheme.SO, alpha=0.3, kappa=0.5, entropy_bits=6)
    deployed, attacker = _arena(spec, seed=5)
    attacker.attack_direct_coordinated(deployed.proxies[0], agents=3)
    deployed.start()
    deployed.sim.run(until=2.0)
    pool = attacker.pool(deployed.proxies[0].name)
    assert pool.tried_count <= spec.chi
    # Sampling without replacement: every issued guess was fresh while
    # the instance's key stood (SO: no resets), so guesses == tried.
    assert pool.total_guesses == pool.tried_count

    # Aggregate pacing matches a single stream of the same total rate.
    single_deployed, single_attacker = _arena(spec, seed=5)
    single_attacker.attack_direct(single_deployed.proxies[0])
    single_deployed.start()
    single_deployed.sim.run(until=2.0)
    assert (abs(attacker.probes_sent_direct - single_attacker.probes_sent_direct) <= 3)


def test_coordinated_attack_reaches_compromise_deterministically():
    spec = s1(Scheme.SO, alpha=0.5, entropy_bits=4)

    def run():
        deployed, attacker = _arena(spec, seed=11, stop_on_compromise=True)
        attacker.attack_direct_coordinated(
            deployed.servers[0], agents=2, pool_id="server-tier"
        )
        deployed.start()
        deployed.sim.run(until=400.0)
        return deployed.monitor.is_compromised, deployed.sim.now

    first = run()
    assert first[0]  # a 2^4 space at omega=8 falls quickly
    assert run() == first


def test_coordinated_validation():
    spec = s1(Scheme.SO, alpha=0.2, entropy_bits=6)
    deployed, attacker = _arena(spec)
    with pytest.raises(ConfigurationError):
        attacker.attack_direct_coordinated(deployed.servers[0], agents=0)
