"""Headline reproduction tests: the paper's §6 results.

These are the assertions the whole repository exists to support.  Each
trend is checked with the analytic models across the paper's α range and
cross-checked by Monte-Carlo at representative points.
"""

from __future__ import annotations

import pytest

from repro.analysis.lifetimes import expected_lifetime
from repro.analysis.orderings import (
    DEFAULT_ALPHAS,
    kappa_crossover_s2_vs_s1,
    lifetimes_at,
    summary_chain_holds,
    verify_paper_trends,
)
from repro.core.specs import s0, s1, s2
from repro.mc.montecarlo import mc_expected_lifetime
from repro.randomization.obfuscation import Scheme


# ----------------------------------------------------------------------
# Trend 1: S1SO outlives S0SO
# ----------------------------------------------------------------------
def test_trend1_s1so_outlives_s0so_analytic():
    for alpha in DEFAULT_ALPHAS:
        el = lifetimes_at(alpha, kappa=0.5)
        assert el["S1SO"] > el["S0SO"], f"T1 fails at alpha={alpha}"


def test_trend1_factor_is_five_fourths():
    """The continuum limits are 1/(2α) vs 2/(5α): a 25% advantage."""
    el = lifetimes_at(1e-4, kappa=0.5)
    assert el["S1SO"] / el["S0SO"] == pytest.approx(1.25, rel=0.01)


def test_trend1_monte_carlo():
    alpha = 1e-3
    s1so = mc_expected_lifetime(s1(Scheme.SO, alpha=alpha), trials=40_000, seed=1)
    s0so = mc_expected_lifetime(s0(Scheme.SO, alpha=alpha), trials=40_000, seed=2)
    assert s1so.stats.ci_low > s0so.stats.ci_high


# ----------------------------------------------------------------------
# Trend 2: S2PO and S1PO outlive all SO systems
# ----------------------------------------------------------------------
def test_trend2_po_systems_outlive_so_systems():
    for alpha in DEFAULT_ALPHAS:
        el = lifetimes_at(alpha, kappa=1.0)  # S2PO's worst kappa
        po_floor = min(el["S2PO"], el["S1PO"])
        so_ceiling = max(el["S1SO"], el["S0SO"])
        assert po_floor > so_ceiling, f"T2 fails at alpha={alpha}"


def test_trend2_monte_carlo():
    alpha = 1e-3
    s2po = mc_expected_lifetime(
        s2(Scheme.PO, alpha=alpha, kappa=1.0), trials=40_000, seed=3
    )
    s1so = mc_expected_lifetime(s1(Scheme.SO, alpha=alpha), trials=40_000, seed=4)
    assert s2po.stats.ci_low > s1so.stats.ci_high


# ----------------------------------------------------------------------
# Trend 3: S2PO outlives S1PO when kappa <= 0.9
# ----------------------------------------------------------------------
def test_trend3_s2po_outlives_s1po_at_kappa_09():
    for alpha in DEFAULT_ALPHAS:
        el = lifetimes_at(alpha, kappa=0.9)
        assert el["S2PO"] > el["S1PO"], f"T3 fails at alpha={alpha}"


def test_trend3_fails_at_kappa_1():
    """At κ = 1 proxies confer no pacing advantage and their own attack
    surface makes S2PO strictly worse — the condition is binding."""
    for alpha in (1e-3, 1e-2):
        el = lifetimes_at(alpha, kappa=1.0)
        assert el["S2PO"] < el["S1PO"]


def test_trend3_crossover_between_09_and_1():
    for alpha in DEFAULT_ALPHAS:
        assert 0.9 < kappa_crossover_s2_vs_s1(alpha) < 1.0


def test_trend3_monte_carlo():
    alpha = 2e-3
    s2po = mc_expected_lifetime(
        s2(Scheme.PO, alpha=alpha, kappa=0.9), trials=60_000, seed=5
    )
    s1po = mc_expected_lifetime(s1(Scheme.PO, alpha=alpha), trials=60_000, seed=6)
    assert s2po.stats.ci_low > s1po.stats.ci_high


# ----------------------------------------------------------------------
# Trend 4: S0PO outlives S2PO except when kappa = 0
# ----------------------------------------------------------------------
def test_trend4_s0po_outlives_s2po_for_positive_kappa():
    for alpha in DEFAULT_ALPHAS:
        for kappa in (0.1, 0.5, 1.0):
            el = lifetimes_at(alpha, kappa)
            assert el["S0PO"] > el["S2PO"], f"T4 fails at alpha={alpha}, kappa={kappa}"


def test_trend4_s2po_wins_at_kappa_zero():
    for alpha in DEFAULT_ALPHAS:
        el = lifetimes_at(alpha, kappa=0.0)
        assert el["S2PO"] > el["S0PO"], f"T4(κ=0) fails at alpha={alpha}"


def test_trend4_factor_at_kappa_zero_is_two():
    """q(S2PO, κ=0) ≈ 3λα² vs q(S0PO) ≈ 6α²: FORTRESS is ~2x better."""
    el = lifetimes_at(1e-4, kappa=0.0)
    assert el["S2PO"] / el["S0PO"] == pytest.approx(2.0, rel=0.02)


# ----------------------------------------------------------------------
# The summary ordering chain
# ----------------------------------------------------------------------
def test_summary_ordering_chain():
    """S0PO -> S2PO -> S1PO -> S1SO -> S0SO for 0 < kappa <= 0.9."""
    for alpha in DEFAULT_ALPHAS:
        for kappa in (0.05, 0.5, 0.9):
            assert summary_chain_holds(alpha, kappa)


def test_verify_paper_trends_end_to_end():
    reports = verify_paper_trends()
    assert all(r.holds for r in reports)
    assert len(reports) == 4


# ----------------------------------------------------------------------
# Magnitudes (documented in EXPERIMENTS.md)
# ----------------------------------------------------------------------
def test_expected_lifetime_magnitudes_at_midrange():
    el = lifetimes_at(1e-3, kappa=0.5)
    assert el["S1PO"] == pytest.approx(999.0)
    assert el["S1SO"] == pytest.approx(499.5, rel=1e-3)
    assert el["S0SO"] == pytest.approx(399.5, rel=1e-2)
    assert el["S0PO"] == pytest.approx(1.668e5, rel=0.01)
    assert el["S2PO"] == pytest.approx(1987.0, rel=0.01)


def test_el_decreases_in_alpha_for_every_system():
    labels = ("S0PO", "S2PO", "S1PO", "S1SO", "S0SO")
    previous = None
    for alpha in sorted(DEFAULT_ALPHAS):
        current = lifetimes_at(alpha, kappa=0.5)
        if previous is not None:
            for label in labels:
                assert current[label] < previous[label]
        previous = current
