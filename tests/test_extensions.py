"""Tests for the extension features: staggered recovery, the
fortified-SMR analytic model, and lifetime variance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.lifetimes import (
    el_s0_po,
    el_s2_po,
    el_s2_smr_po,
    per_step_compromise_s2_smr_po,
)
from repro.analysis.markov import geometric_chain
from repro.core.builders import add_clients, build_system
from repro.core.specs import s0, s2
from repro.errors import AnalysisError
from repro.mc.models import model_for
from repro.core.specs import s1
from repro.randomization.obfuscation import Scheme


# ----------------------------------------------------------------------
# Staggered batched recovery (Roeder-Schneider, §2.3)
# ----------------------------------------------------------------------
def test_staggered_recovery_spreads_refreshes():
    deployed = build_system(
        s0(Scheme.SO, alpha=1e-4, entropy_bits=8),
        seed=81,
        stagger_recovery=True,
        reboot_duration=0.1,
    )
    offsets = sorted(group.offset for group in deployed.obfuscation._groups)
    assert offsets == [0.0, 0.25, 0.5, 0.75]


def test_staggered_recovery_keeps_quorum_up():
    """With staggering and a 0.1-step reboot, at most one replica is
    ever down, so clients never see a stall across refreshes."""
    deployed = build_system(
        s0(Scheme.SO, alpha=1e-4, entropy_bits=8),
        seed=82,
        stagger_recovery=True,
        reboot_duration=0.1,
    )
    clients = add_clients(deployed, 1)
    down_samples = []

    def sample():
        down_samples.append(sum(1 for s in deployed.servers if not s.is_available))
        deployed.sim.schedule(0.05, sample)

    deployed.sim.schedule(0.05, sample)
    deployed.start()
    deployed.sim.run(until=10.0)
    assert max(down_samples) <= 1  # batches of one, never overlapping
    assert clients[0].responses_ok > 50
    assert clients[0].failures == 0


def test_unstaggered_refresh_takes_whole_tier_down_at_once():
    deployed = build_system(
        s0(Scheme.SO, alpha=1e-4, entropy_bits=8),
        seed=83,
        stagger_recovery=False,
        reboot_duration=0.1,
    )
    down_at_boundary = []

    def sample():
        down_at_boundary.append(sum(1 for s in deployed.servers if not s.is_available))

    deployed.sim.schedule(1.05, sample)  # mid-reboot after the epoch
    deployed.start()
    deployed.sim.run(until=2.0)
    assert down_at_boundary == [4]


# ----------------------------------------------------------------------
# Fortified-SMR analytic model
# ----------------------------------------------------------------------
def test_s2_smr_q_scales_as_kappa_alpha_squared():
    alpha, kappa = 1e-4, 0.5
    q = per_step_compromise_s2_smr_po(alpha, kappa)
    expected = 6 * (kappa * alpha) ** 2 + alpha**3
    assert q == pytest.approx(expected, rel=0.01)


def test_s2_smr_dominates_s2_pb_everywhere():
    for alpha in (1e-4, 1e-3, 1e-2):
        for kappa in (0.1, 0.5, 1.0):
            assert el_s2_smr_po(alpha, kappa) > el_s2_po(alpha, kappa)


def test_s2_smr_vs_unfortified_s0():
    """Fortification composes multiplicatively: the fortified SMR tier
    beats plain S0PO by ~1/κ² whenever κ < 1."""
    alpha = 1e-3
    assert el_s2_smr_po(alpha, 0.5) > el_s0_po(alpha)
    ratio = el_s2_smr_po(alpha, 0.1) / el_s0_po(alpha)
    assert ratio == pytest.approx(1.0 / 0.1**2, rel=0.2)


def test_s2_smr_kappa_one_approaches_s0():
    """With κ = 1 the proxies add no pacing; the server route equals
    S0PO's and only the (tiny) all-proxies route differs."""
    alpha = 1e-3
    assert el_s2_smr_po(alpha, 1.0) == pytest.approx(el_s0_po(alpha), rel=0.01)


def test_s2_smr_validation():
    with pytest.raises(AnalysisError):
        per_step_compromise_s2_smr_po(0.0, 0.5)
    with pytest.raises(AnalysisError):
        per_step_compromise_s2_smr_po(1e-3, 1.5)


# ----------------------------------------------------------------------
# Lifetime variance (AMC vs Monte-Carlo)
# ----------------------------------------------------------------------
def test_po_lifetime_variance_matches_geometric():
    spec = s1(Scheme.PO, alpha=0.02)
    chain = geometric_chain(0.02)
    analytic_var = chain.solve().variance_steps[0]
    lifetimes = model_for(spec).sample(200_000, np.random.default_rng(5))
    # Lifetime = steps-to-absorption - 1; shifting doesn't change variance.
    assert lifetimes.var() == pytest.approx(analytic_var, rel=0.05)


def test_so_lifetime_variance_below_po():
    """Without replacement the lifetime is (near) uniform, with far less
    spread than the PO geometric at the same mean."""
    rng = np.random.default_rng(6)
    so = model_for(s1(Scheme.SO, alpha=0.01)).sample(100_000, rng)
    po = model_for(s1(Scheme.PO, alpha=0.01)).sample(100_000, rng)
    assert so.var() < po.var() / 5
    # Uniform-on-[0, 1/alpha] variance: (1/alpha)^2 / 12.
    assert so.var() == pytest.approx((1 / 0.01) ** 2 / 12, rel=0.05)