"""Unit tests for statistics helpers and table rendering."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.mc.sweeps import Series, SweepPoint
from repro.metrics.stats import bootstrap_ci, geometric_mean, summarize
from repro.reporting.tables import (
    format_quantity,
    render_series_table,
    render_table,
)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def test_summarize_basic_fields():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats.n == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.minimum == 1.0 and stats.maximum == 4.0
    assert stats.ci_low < 2.5 < stats.ci_high


def test_summarize_single_value_degenerate_ci():
    stats = summarize([5.0])
    assert stats.mean == 5.0
    assert stats.ci_low == stats.ci_high == 5.0
    assert stats.std == 0.0


def test_summarize_empty_raises():
    with pytest.raises(AnalysisError):
        summarize([])


def test_ci_narrows_with_sample_size():
    small = summarize([1.0, 2.0] * 10)
    large = summarize([1.0, 2.0] * 1000)
    assert large.ci_halfwidth < small.ci_halfwidth


def test_overlaps():
    a = summarize([1.0, 2.0, 3.0])
    b = summarize([2.0, 3.0, 4.0])
    c = summarize([100.0, 101.0])
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_bootstrap_ci_contains_mean_for_well_behaved_sample():
    values = [float(v) for v in range(100)]
    low, high = bootstrap_ci(values, seed=1)
    assert low < 49.5 < high
    assert high - low < 20


def test_bootstrap_validation():
    with pytest.raises(AnalysisError):
        bootstrap_ci([])
    with pytest.raises(AnalysisError):
        bootstrap_ci([1.0], confidence=1.5)


def test_geometric_mean():
    assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
    with pytest.raises(AnalysisError):
        geometric_mean([])
    with pytest.raises(AnalysisError):
        geometric_mean([1.0, -1.0])


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_format_quantity_ranges():
    assert format_quantity(1234567.0) == "1.235e+06"
    assert format_quantity(123.4) == "123.4"
    assert format_quantity(0.25) == "0.25"
    assert format_quantity(1e-5) == "1.000e-05"
    assert format_quantity(float("nan")) == "nan"


def test_render_table_alignment_and_rule():
    text = render_table(["name", "value"], [["a", "1"], ["bb", "22"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert len(lines) == 5


def test_render_table_validates_shape():
    with pytest.raises(ConfigurationError):
        render_table([], [])
    with pytest.raises(ConfigurationError):
        render_table(["a"], [["1", "2"]])


def make_series(label, xs, means):
    return Series(
        label=label,
        x_name="alpha",
        points=[SweepPoint(x=x, mean=m, ci_low=m, ci_high=m) for x, m in zip(xs, means)],
    )


def test_render_series_table_columns():
    a = make_series("A", [0.1, 0.2], [10.0, 20.0])
    b = make_series("B", [0.1, 0.2], [30.0, 40.0])
    text = render_series_table([a, b], title="fig")
    assert "alpha" in text and "A" in text and "B" in text
    assert "10" in text and "40" in text


def test_render_series_table_with_ci():
    series = Series(
        label="A",
        x_name="kappa",
        points=[SweepPoint(x=0.5, mean=10.0, ci_low=9.0, ci_high=11.0)],
    )
    text = render_series_table([series], with_ci=True)
    assert "[9" in text and "11]" in text


def test_render_series_table_mismatched_grids_rejected():
    a = make_series("A", [0.1], [1.0])
    b = make_series("B", [0.2], [1.0])
    with pytest.raises(ConfigurationError):
        render_series_table([a, b])
    with pytest.raises(ConfigurationError):
        render_series_table([])
