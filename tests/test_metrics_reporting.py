"""Unit tests for statistics helpers and table rendering."""

from __future__ import annotations

import math

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.mc.sweeps import Series, SweepPoint
from repro.metrics.stats import (
    bootstrap_ci,
    geometric_mean,
    kaplan_meier,
    km_restricted_mean,
    summarize,
    summarize_censored,
)
from repro.reporting.tables import (
    format_quantity,
    render_series_table,
    render_table,
)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def test_summarize_basic_fields():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats.n == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.minimum == 1.0 and stats.maximum == 4.0
    assert stats.ci_low < 2.5 < stats.ci_high


def test_summarize_single_value_carries_infinite_ci():
    """One draw says nothing about spread: the interval must be
    infinite, never a zero-width band a precision target could
    mistake for convergence."""
    stats = summarize([5.0])
    assert stats.mean == 5.0
    assert stats.std == 0.0
    assert stats.ci_low == -math.inf and stats.ci_high == math.inf
    assert stats.ci_halfwidth == math.inf


def test_summarize_empty_raises():
    with pytest.raises(AnalysisError):
        summarize([])


def test_ci_narrows_with_sample_size():
    small = summarize([1.0, 2.0] * 10)
    large = summarize([1.0, 2.0] * 1000)
    assert large.ci_halfwidth < small.ci_halfwidth


def test_overlaps():
    a = summarize([1.0, 2.0, 3.0])
    b = summarize([2.0, 3.0, 4.0])
    c = summarize([100.0, 101.0])
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_bootstrap_ci_contains_mean_for_well_behaved_sample():
    values = [float(v) for v in range(100)]
    low, high = bootstrap_ci(values, seed=1)
    assert low < 49.5 < high
    assert high - low < 20


def test_bootstrap_validation():
    with pytest.raises(AnalysisError):
        bootstrap_ci([])
    with pytest.raises(AnalysisError):
        bootstrap_ci([1.0], confidence=1.5)


def test_geometric_mean():
    assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
    with pytest.raises(AnalysisError):
        geometric_mean([])
    with pytest.raises(AnalysisError):
        geometric_mean([1.0, -1.0])


# ----------------------------------------------------------------------
# Censoring-aware statistics
# ----------------------------------------------------------------------
def test_censored_summary_uncensored_sample():
    """0% censored: the censored summary is just the plain summary."""
    values = [3.0, 5.0, 7.0, 9.0]
    summary = summarize_censored(values, [False] * 4)
    assert summary.n == 4
    assert summary.n_censored == 0
    assert summary.censored_fraction == 0.0
    assert not summary.is_lower_bound
    assert summary.stats == summarize(values)
    assert summary.km_mean == pytest.approx(6.0)


def test_censored_summary_half_censored_at_common_budget():
    """50% censored at one common budget: naive mean equals the KM
    restricted mean (every event before the budget is observed), and
    both are flagged as lower bounds."""
    times = [2.0, 4.0, 10.0, 10.0]
    censored = [False, False, True, True]
    summary = summarize_censored(times, censored)
    assert summary.n_censored == 2
    assert summary.censored_fraction == pytest.approx(0.5)
    assert summary.is_lower_bound
    assert summary.stats.mean == pytest.approx(6.5)
    assert summary.km_mean == pytest.approx(summary.stats.mean)
    assert summary.stats.ci_low < summary.stats.mean < summary.stats.ci_high


def test_censored_summary_fully_censored():
    """100% censored: all we know is every run outlived the budget."""
    summary = summarize_censored([10.0] * 5, [True] * 5)
    assert summary.censored_fraction == 1.0
    assert summary.stats.mean == 10.0
    assert summary.km_mean == 10.0
    assert summary.is_lower_bound
    # Degenerate spread: the CI collapses onto the budget, which is
    # exactly why precision-targeted runs must refuse such samples.
    assert summary.stats.ci_halfwidth == 0.0


def test_km_corrects_mixed_censoring_upward():
    """Censoring *before* the horizon carries partial information; the
    KM restricted mean sits above the naive (folded) mean."""
    times = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    censored = [False, True, False, True, False, False]
    summary = summarize_censored(times, censored)
    assert summary.km_mean > summary.stats.mean


def test_kaplan_meier_hand_computed_curve():
    """3 observations: death at 1 (S=2/3), censor at 2, death at 3
    (1 at risk, S=0)."""
    curve = kaplan_meier([1.0, 2.0, 3.0], [True, False, True])
    assert len(curve) == 2
    assert curve[0][0] == 1.0 and curve[0][1] == pytest.approx(2.0 / 3.0)
    assert curve[1][0] == 3.0 and curve[1][1] == pytest.approx(0.0)


def test_kaplan_meier_ties_deaths_before_censorings():
    """The standard tie convention: a death and a censoring at the same
    time both count the censored observation as still at risk."""
    curve = kaplan_meier([2.0, 2.0], [True, False])
    assert curve == [(2.0, pytest.approx(0.5))]


def test_km_restricted_mean_equals_mean_without_censoring():
    values = [1.0, 4.0, 7.0]
    events = [True, True, True]
    assert km_restricted_mean(values, events) == pytest.approx(4.0)


def test_km_restricted_mean_horizon_truncates():
    assert km_restricted_mean([2.0, 8.0], [True, True], horizon=4.0) == (
        pytest.approx(3.0)
    )


def test_censoring_validation():
    with pytest.raises(AnalysisError):
        summarize_censored([1.0], [True, False])
    with pytest.raises(AnalysisError):
        kaplan_meier([], [])
    with pytest.raises(AnalysisError):
        kaplan_meier([-1.0], [True])
    with pytest.raises(AnalysisError):
        km_restricted_mean([1.0], [True], horizon=-2.0)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_format_quantity_ranges():
    assert format_quantity(1234567.0) == "1.235e+06"
    assert format_quantity(123.4) == "123.4"
    assert format_quantity(0.25) == "0.25"
    assert format_quantity(1e-5) == "1.000e-05"
    assert format_quantity(float("nan")) == "nan"


def test_render_table_alignment_and_rule():
    text = render_table(["name", "value"], [["a", "1"], ["bb", "22"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert len(lines) == 5


def test_render_table_validates_shape():
    with pytest.raises(ConfigurationError):
        render_table([], [])
    with pytest.raises(ConfigurationError):
        render_table(["a"], [["1", "2"]])


def make_series(label, xs, means):
    return Series(
        label=label,
        x_name="alpha",
        points=[
            SweepPoint(x=x, mean=m, ci_low=m, ci_high=m) for x, m in zip(xs, means)
        ],
    )


def test_render_series_table_columns():
    a = make_series("A", [0.1, 0.2], [10.0, 20.0])
    b = make_series("B", [0.1, 0.2], [30.0, 40.0])
    text = render_series_table([a, b], title="fig")
    assert "alpha" in text and "A" in text and "B" in text
    assert "10" in text and "40" in text


def test_render_series_table_with_ci():
    series = Series(
        label="A",
        x_name="kappa",
        points=[SweepPoint(x=0.5, mean=10.0, ci_low=9.0, ci_high=11.0)],
    )
    text = render_series_table([series], with_ci=True)
    assert "[9" in text and "11]" in text


def test_render_series_table_mismatched_grids_rejected():
    a = make_series("A", [0.1], [1.0])
    b = make_series("B", [0.2], [1.0])
    with pytest.raises(ConfigurationError):
        render_series_table([a, b])
    with pytest.raises(ConfigurationError):
        render_series_table([])
