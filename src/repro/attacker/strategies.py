"""Alternative adversary strategies beyond the paper's §4 probers.

The paper's attack model fixes one adversary: full-rate direct streams,
a paced indirect stream, the launch pad.  The scenario subsystem
(:mod:`repro.scenarios`) composes deployments with a *chosen* adversary,
and this module supplies the two non-paper strategies of the built-in
scenario library:

* :class:`DutyCycledProbeDriver` — a **stealth** prober that probes in
  bursts: full rate ω during the first ``on_time`` of every
  ``cycle_time`` window, silent for the rest.  Long-run rate is
  ``on_time / cycle_time · ω``, but the burst structure defeats
  detection thresholds calibrated on *sustained* rates — and the
  silent windows let respawned targets settle, so fewer probes are
  wasted on mid-respawn downtime.
* :class:`CoordinatedAgent` — a cooperating attacker **machine**: a
  distinct network endpoint whose probe connections are opened under
  its own address while the orchestrating
  :class:`~repro.attacker.agent.AttackerProcess` drives the stream and
  receives its events (exactly the sink mechanism launch-pad streams
  use from a compromised proxy).  N agents attacking one target split
  the probe budget ω into N interleaved streams from N sources, which
  per-source frequency analysis cannot aggregate.

Both strategies draw guesses from the ordinary shared key pools through
the orchestrator's chunked :class:`~repro.attacker.keytracker.GuessBuffer`,
so the determinism contract of the stock attacker — same seed, same
probe stream, any worker count — carries over unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.process import SimProcess
from .driver import ProbeDriver
from .keytracker import KeyGuessTracker

if TYPE_CHECKING:  # pragma: no cover
    from .agent import AttackerProcess


class DutyCycledProbeDriver(ProbeDriver):
    """A probe stream that fires only during periodic on-windows.

    Cycles are anchored at simulated time zero: the stream is live in
    ``[k·cycle_time, k·cycle_time + on_time)`` for every integer ``k``
    and silent otherwise.  Inside an on-window the stream behaves
    exactly like its parent :class:`~repro.attacker.driver.ProbeDriver`
    (same pacing, same pool discipline, same reconnect behaviour);
    fires that land in an off-window consume no guess, no probe and no
    RNG draw — they just sleep until the next window opens.

    Parameters (beyond the parent's)
    --------------------------------
    on_time:
        Length of the probing window at the start of each cycle.
    cycle_time:
        Full duty-cycle length; must be at least ``on_time``.
    """

    __slots__ = ("on_time", "cycle_time")

    def __init__(
        self,
        attacker: "AttackerProcess",
        target: str,
        pool: KeyGuessTracker,
        interval: float,
        on_time: float,
        cycle_time: float,
        initiator: Optional[str] = None,
    ) -> None:
        if on_time <= 0 or cycle_time <= 0:
            raise ConfigurationError(
                f"duty cycle needs positive on_time and cycle_time, got "
                f"{on_time}, {cycle_time}"
            )
        if on_time > cycle_time:
            raise ConfigurationError(
                f"on_time {on_time} exceeds cycle_time {cycle_time}"
            )
        super().__init__(attacker, target, pool, interval, initiator)
        self.on_time = on_time
        self.cycle_time = cycle_time

    def _fire(self) -> None:
        if not self.active:
            return
        phase = self.attacker.sim.now % self.cycle_time
        if phase >= self.on_time:
            # Off-window: sleep to the next cycle start, touch nothing.
            self._schedule_fast(self.cycle_time - phase, self._fire)
            return
        super()._fire()


class CoordinatedAgent(SimProcess):
    """A cooperating attacker machine under the orchestrator's control.

    Carries no behaviour of its own — the orchestrating
    :class:`~repro.attacker.agent.AttackerProcess` opens probe
    connections under this agent's address and attaches itself as the
    event sink, so crash observations and intrusion acks flow back to
    the shared campaign state.  Attacker machines sit outside the
    deployment: no forking daemon, never crashed by the defence.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name, respawn_delay=None)
