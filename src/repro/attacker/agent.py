"""The attack orchestrator.

:class:`AttackerProcess` runs the full campaign of the paper's §4 attack
model against a deployed system:

* **direct attacks** at every node it can reach (1-tier servers; the
  proxies of a 2-tier system), each a paced
  :class:`~repro.attacker.driver.ProbeDriver` at ω probes per step;
* **indirect attacks** at fortified servers, crafted as client requests
  and paced at κ·ω to stay under the proxies' detection threshold;
* **launch-pad attacks**: the moment a proxy is compromised, the
  attacker opens direct connections *from that proxy* to the servers
  and probes at full rate until re-randomization cleanses the proxy.

Key knowledge is organized in pools (see
:class:`~repro.attacker.keytracker.KeyGuessTracker`): identically
randomized servers share one pool; each diversely randomized node is its
own pool.  Against PO systems the attacker resets pools at every epoch —
his eliminations are worthless once keys are resampled.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import ConfigurationError
from ..net.message import Message
from ..net.network import Network
from ..net.transport import Connection
from ..randomization.keyspace import KeySpace
from ..randomization.node import RandomizedProcess
from ..sim.engine import Simulator
from ..sim.process import SimProcess
from .driver import IndirectProber, ProbeDriver
from .keytracker import GuessBuffer, KeyGuessTracker

#: Simulated-time grace between "every probe stream is dead" and the
#: fast-forward stop, expressed in attacker periods.  It only needs to
#: cover in-flight probe chains (a handful of network latencies plus one
#: detection lag, all ≪ period by construction); one full period is a
#: generous upper bound.
FAST_FORWARD_GRACE_PERIODS = 1.0


class AttackerProcess(SimProcess):
    """An external adversary machine running de-randomization campaigns.

    Parameters
    ----------
    sim, network:
        Simulation substrates (the attacker is itself a network process —
        it must be reachable for connection events and error responses).
    keyspace:
        Key space of the defending randomization scheme.
    omega:
        Attacker strength: probes completed per unit time-step when
        attacking directly.
    period:
        Length of the unit time-step.
    reset_pools_on_epoch:
        ``True`` when attacking a PO system (fresh keys every epoch make
        eliminations worthless); ``False`` against SO systems.
    probe_pacing:
        Multiplier on every probe interval
        (:attr:`repro.core.timing.TimingSpec.probe_pacing`); 1.0 is the
        paper's pacing, larger values model a slower attacker.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        keyspace: KeySpace,
        omega: float,
        period: float = 1.0,
        name: str = "attacker",
        reset_pools_on_epoch: bool = False,
        probe_pacing: float = 1.0,
    ) -> None:
        super().__init__(sim, name, respawn_delay=None)
        self.network = network
        self.keyspace = keyspace
        self.omega = omega
        self.period = period
        self.reset_pools_on_epoch = reset_pools_on_epoch
        self.probe_pacing = probe_pacing
        self._rng: random.Random = sim.rng.stream(f"{name}:guesses")
        #: Chunked randrange pulls shared by every pool drawing from the
        #: guesses stream (bit-identical to per-probe draws; see
        #: :class:`~repro.attacker.keytracker.GuessBuffer`).
        self._guess_buffer = GuessBuffer(self._rng, keyspace.size)
        self._pools: dict[str, KeyGuessTracker] = {}
        self._drivers: list[ProbeDriver] = []
        self._coordinated_agents: dict[str, SimProcess] = {}
        self._indirect: list[IndirectProber] = []
        self._by_connection: dict[int, ProbeDriver] = {}
        self._launchpad_servers: list[str] = []
        self._launchpad_pool_id: Optional[str] = None
        self._launchpad_drivers: dict[str, ProbeDriver] = {}  # proxy -> driver
        self._launchpad_hosts: set = set()  # currently compromised proxies
        self._watched_proxies: set = set()  # proxies with our state listener
        self._feedback_handlers: list = []
        self._fast_forward = False
        self._ff_check_pending = False
        self.fast_forward_arms = 0
        self.probes_sent_direct = 0
        self.probes_sent_indirect = 0
        self.compromises_observed: list[tuple[float, str]] = []

    # ------------------------------------------------------------------
    # Pools
    # ------------------------------------------------------------------
    def pool(self, pool_id: str) -> KeyGuessTracker:
        """Return (creating on first use) the tracker for ``pool_id``."""
        tracker = self._pools.get(pool_id)
        if tracker is None:
            tracker = KeyGuessTracker(
                self.keyspace, self._rng, buffer=self._guess_buffer
            )
            self._guess_buffer.register(tracker)
            self._pools[pool_id] = tracker
        return tracker

    # ------------------------------------------------------------------
    # Campaign configuration
    # ------------------------------------------------------------------
    def attack_direct(
        self,
        target: RandomizedProcess,
        pool_id: Optional[str] = None,
        rate: Optional[float] = None,
    ) -> ProbeDriver:
        """Start a direct probe stream at ``target``.

        ``pool_id`` defaults to the target's own name (diverse
        randomization); pass a shared id for identically randomized
        groups.  ``rate`` defaults to ω.
        """
        driver = ProbeDriver(
            attacker=self,
            target=target.name,
            pool=self.pool(pool_id or target.name),
            interval=self.probe_pacing * self.period / (rate or self.omega),
        )
        self._watch(target)
        self._drivers.append(driver)
        driver.start()
        return driver

    def attack_direct_duty_cycled(
        self,
        target: RandomizedProcess,
        on_fraction: float,
        cycle_periods: float = 1.0,
        pool_id: Optional[str] = None,
        rate: Optional[float] = None,
    ) -> "ProbeDriver":
        """Start a stealth (duty-cycled) direct probe stream at ``target``.

        The stream probes at full rate during the first ``on_fraction``
        of every ``cycle_periods``-period window and stays silent for
        the rest (long-run rate ``on_fraction · ω``) — see
        :class:`~repro.attacker.strategies.DutyCycledProbeDriver`.
        """
        from .strategies import DutyCycledProbeDriver

        if not 0.0 < on_fraction <= 1.0:
            raise ConfigurationError(
                f"on_fraction must be in (0, 1], got {on_fraction}"
            )
        cycle = cycle_periods * self.period
        driver = DutyCycledProbeDriver(
            attacker=self,
            target=target.name,
            pool=self.pool(pool_id or target.name),
            interval=self.probe_pacing * self.period / (rate or self.omega),
            on_time=on_fraction * cycle,
            cycle_time=cycle,
        )
        self._watch(target)
        self._drivers.append(driver)
        driver.start()
        return driver

    def attack_direct_coordinated(
        self,
        target: RandomizedProcess,
        agents: int,
        pool_id: Optional[str] = None,
        rate: Optional[float] = None,
    ) -> list["ProbeDriver"]:
        """Split a direct attack on ``target`` across ``agents`` machines.

        Each cooperating agent (a distinct registered network endpoint —
        see :class:`~repro.attacker.strategies.CoordinatedAgent`) runs
        one stream at ``rate / agents``, start times staggered so the
        target sees one evenly paced aggregate stream of ``rate``.  All
        streams share the target's key pool through the orchestrator's
        guess buffer: the agents never duplicate a guess, and the probe
        sequence is bit-deterministic like any single stream.
        """
        from .strategies import CoordinatedAgent

        if agents < 1:
            raise ConfigurationError(f"need at least one agent, got {agents}")
        rate = rate or self.omega
        base_interval = self.probe_pacing * self.period / rate
        pool = self.pool(pool_id or target.name)
        self._watch(target)
        drivers: list[ProbeDriver] = []
        for k in range(agents):
            name = f"{self.name}~agent{k}"
            if name not in self._coordinated_agents:
                agent = CoordinatedAgent(self.sim, name)
                self.network.register(agent)
                self._coordinated_agents[name] = agent
            driver = ProbeDriver(
                attacker=self,
                target=target.name,
                pool=pool,
                interval=agents * base_interval,
                initiator=name,
            )
            self._drivers.append(driver)
            drivers.append(driver)
            if k == 0:
                driver.start()
            else:
                self.sim.schedule_fast(k * base_interval, driver.start)
        return drivers

    def attack_indirect(
        self,
        proxies: list[str],
        servers: list[RandomizedProcess],
        pool_id: str,
        rate: float,
        identities: int = 1,
    ) -> Optional[IndirectProber]:
        """Start request-path probing of the fortified servers.

        ``rate`` is the paced budget κ·ω (probes per step); a rate of
        zero means the proxies' detection fully suppresses indirect
        probing (κ = 0) and no prober is started.
        """
        for server in servers:
            self._watch(server)
        if rate <= 0:
            return None
        prober = IndirectProber(
            attacker=self,
            proxies=proxies,
            pool=self.pool(pool_id),
            interval=self.probe_pacing * self.period / rate,
            identities=identities,
            pacing_rng=self.sim.rng.stream(f"{self.name}:pacing"),
        )
        self._indirect.append(prober)
        prober.start()
        return prober

    def enable_launchpad(
        self,
        proxies: list[RandomizedProcess],
        servers: list[str],
        pool_id: str,
    ) -> None:
        """Arm the launch-pad strategy.

        Whenever one of ``proxies`` is compromised, a direct probe stream
        at the server tier starts *from that proxy* at full rate ω; it is
        torn down when the proxy is refreshed.
        """
        self._launchpad_servers = list(servers)
        self._launchpad_pool_id = pool_id
        for proxy in proxies:
            proxy.add_compromise_listener(self._on_proxy_compromised)
            # The state listener (which detects the refresh that evicts
            # us from a proxy) is registered lazily at first compromise:
            # proxies crash at probe rate, and an armed-but-idle launch
            # pad must not pay a listener call per crash/respawn.

    # ------------------------------------------------------------------
    # Fast-forward (skip draining decided runs)
    # ------------------------------------------------------------------
    def enable_fast_forward(self) -> None:
        """Allow the attacker to stop the simulation once the attack is
        provably over.

        A probe stream dies permanently when its pool drains (every key
        tried, the winning probes lost to downtime) — nothing restarts
        it.  Once *every* stream is dead, no launch pad is live and no
        adaptive feedback handler could mount a new attack, the run's
        outcome is decided: the remaining simulated epochs are pure
        timer churn (heartbeats, refreshes) that cannot change the
        compromise verdict.  With fast-forward enabled the attacker then
        stops the simulator after a one-period grace window (long enough
        for any in-flight probe chain to land), so censored runs cost a
        few periods instead of the whole step budget.

        Off by default: opted into by the experiment layer
        (:func:`repro.core.experiment.run_protocol_lifetime` for runs
        without a workload).  Deployments driven directly — examples,
        traces, workload studies — keep the full timeline.
        """
        self._fast_forward = True

    def discard_buffered_randomness(self) -> None:
        """Drop every pre-drawn value buffer (chunked guesses, pacing
        jitter).

        The buffers hold *future* draws of the current RNG streams —
        after a stream reseed (rare-event resplitting, see
        :func:`repro.rare.fork.reseed_for_split`) serving them would
        replay the parent's randomness instead of the child's.  Clearing
        is always safe: an empty buffer simply refills from the live
        stream at the next draw, and the guess buffer's
        materialization-headroom invariant holds vacuously when empty.
        """
        self._guess_buffer._values.clear()
        for prober in self._indirect:
            prober._jitter_buffer.clear()

    def _attack_live(self) -> bool:
        """Whether any current or potential probe source remains."""
        return (
            any(d.active for d in self._drivers)
            or any(p.active for p in self._indirect)
            or bool(self._launchpad_drivers)
            or bool(self._launchpad_hosts)
            or bool(self._feedback_handlers)
        )

    def _on_stream_dead(self) -> None:
        """A probe stream deactivated itself (pool drained)."""
        if not self._fast_forward or self._ff_check_pending:
            return
        if self._attack_live():
            return
        self._ff_check_pending = True
        self.fast_forward_arms += 1
        self.sim.schedule_fast(
            FAST_FORWARD_GRACE_PERIODS * self.period, self._ff_confirm
        )

    def _ff_confirm(self) -> None:
        """Grace window elapsed: stop the run if the attack stayed dead.

        The window exists because the *last* probes of a dying stream can
        still be in flight when the stream deactivates; had one of them
        carried the key, the compromise fires during the grace period
        (reviving the launch pad and failing this check)."""
        self._ff_check_pending = False
        if self._fast_forward and not self._attack_live():
            self.sim.stop()

    # ------------------------------------------------------------------
    # Epoch alignment (PO awareness)
    # ------------------------------------------------------------------
    def on_epoch(self, epoch: int) -> None:
        """Hook for the obfuscation manager's epoch listener."""
        if self.reset_pools_on_epoch:
            for tracker in self._pools.values():
                tracker.reset()

    # ------------------------------------------------------------------
    # Event routing
    # ------------------------------------------------------------------
    def register_connection(self, connection: Connection, driver: ProbeDriver) -> None:
        """Bind a connection's events to the driver that opened it.

        Launch-pad connections are initiated under the proxy's address;
        the attacker attaches himself as the event sink (his shell on the
        proxy receives the traffic).
        """
        self._by_connection[connection.conn_id] = driver
        if driver.initiator != self.name:
            connection.attach_sink(driver.initiator, self)

    def handle_connection_data(self, connection: Connection, payload) -> None:
        driver = self._by_connection.get(connection.conn_id)
        if driver is not None:
            driver.on_data(connection, payload)

    def unregister_connection(self, connection: Connection) -> None:
        """Drop the routing entry of a dead connection.

        Drivers call this when they abandon a closed connection (on
        reconnect or stop).  The attacker deliberately does *not*
        override ``on_connection_closed``: a probe driver discovers the
        closure itself by checking ``connection.open`` at its next fire,
        so a per-crash closure notification event would carry no
        information — and the network elides notifications that would
        only reach the base no-op handler.
        """
        self._by_connection.pop(connection.conn_id, None)

    def register_feedback_handler(self, handler) -> None:
        """Route client-path feedback (errors/responses) to ``handler``
        — used by adaptive strategies that react to proxy behaviour."""
        self._feedback_handlers.append(handler)

    def handle_message(self, message: Message) -> None:
        """Client-path feedback.  Plain pacing needs no action (a guess
        is eliminated the moment it is issued); adaptive strategies
        subscribe via :meth:`register_feedback_handler`."""
        for handler in list(self._feedback_handlers):
            handler(message)

    # ------------------------------------------------------------------
    # Compromise observation and launch-pad lifecycle
    # ------------------------------------------------------------------
    def _watch(self, node: RandomizedProcess) -> None:
        node.add_compromise_listener(self._on_node_compromised)

    def _on_node_compromised(self, node) -> None:
        self.compromises_observed.append((self.sim.now, node.name))

    def _on_proxy_compromised(self, proxy) -> None:
        self._on_node_compromised(proxy)
        if proxy not in self._watched_proxies:
            self._watched_proxies.add(proxy)
            proxy.add_state_listener(self._on_proxy_state_change)
        self._launchpad_hosts.add(proxy)
        self._ensure_launchpad()

    def _on_proxy_state_change(self, proxy) -> None:
        if not self._launchpad_hosts and not self._launchpad_drivers:
            return  # nothing armed: crash/respawn churn is not ours
        if proxy.compromised:
            return
        self._launchpad_hosts.discard(proxy)
        driver = self._launchpad_drivers.pop(proxy.name, None)
        if driver is not None:
            driver.stop()
            self._ensure_launchpad()
            # The launch pad may have been the last live stream (all
            # direct/indirect pools long drained): re-check deadness.
            self._on_stream_dead()

    def _ensure_launchpad(self) -> None:
        """Keep exactly one launch-pad stream alive while any compromised
        proxy is available.

        The servers share a single key pool, so additional streams from
        further proxies would only duplicate guesses; the analytic model
        (one launch-pad attack per step, success λ·α) matches this.
        """
        if not self._launchpad_servers or self._launchpad_drivers:
            return
        host = next(iter(self._launchpad_hosts), None)
        if host is None or not host.compromised:
            return
        assert self._launchpad_pool_id is not None
        driver = ProbeDriver(
            attacker=self,
            target=self._launchpad_servers[0],
            pool=self.pool(self._launchpad_pool_id),
            interval=self.probe_pacing * self.period / self.omega,
            initiator=host.name,
        )
        self._launchpad_drivers[host.name] = driver
        driver.start()

    # ------------------------------------------------------------------
    @property
    def endpoint_names(self) -> tuple[str, ...]:
        """Every network endpoint the attack operates from: the
        orchestrator itself plus any coordinated agent machines.
        Network-level countermeasures (partition plans) must cut all of
        them to actually sever the attacker."""
        return (self.name, *self._coordinated_agents)

    @property
    def probes_sent_total(self) -> int:
        """All probes fired so far, on any path."""
        return self.probes_sent_direct + self.probes_sent_indirect
