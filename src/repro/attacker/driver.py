"""Paced probe streams.

:class:`ProbeDriver` fires connection probes at one target at a fixed
rate (ω probes per unit time-step, i.e. one probe every ``period/ω``).
It reconnects when the target's crash closes the connection — relying on
the forking daemon to resurrect the victim — and reports intrusion on an
``intrusion_ack``.

:class:`IndirectProber` is the 2-tier counterpart: it crafts probes as
client requests and submits them through the proxies (rotating across
them, the load-balancing evasion of §2.2), at the *paced* rate κ·ω that
keeps the attacker under the proxies' detection threshold.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..errors import ConfigurationError
from ..net.message import Message
from ..net.transport import Connection
from ..proxy.proxy import CLIENT_REQUEST
from .keytracker import KeyGuessTracker
from .probe import is_intrusion_ack, request_probe

if TYPE_CHECKING:  # pragma: no cover
    from .agent import AttackerProcess


class ProbeDriver:
    """One paced stream of direct connection probes at one target.

    Parameters
    ----------
    attacker:
        The orchestrating attacker process (receives connection events).
    target:
        Name of the node under attack.
    pool:
        Guess tracker of the target's randomization instance.
    interval:
        Simulated time between probes (``period / ω``).
    initiator:
        Connection source address; defaults to the attacker itself.
        Launch-pad streams pass a compromised proxy's name here.
    """

    __slots__ = (
        "attacker",
        "target",
        "pool",
        "interval",
        "initiator",
        "connection",
        "active",
        "probes_sent",
        "reconnects",
        "_last_guess",
        "_schedule_fast",
        "_net",
        "_target_process",
    )

    def __init__(
        self,
        attacker: "AttackerProcess",
        target: str,
        pool: KeyGuessTracker,
        interval: float,
        initiator: Optional[str] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"probe interval must be positive, got {interval}")
        self.attacker = attacker
        self.target = target
        self.pool = pool
        self.interval = interval
        self.initiator = initiator or attacker.name
        self.connection: Optional[Connection] = None
        self.active = False
        self.probes_sent = 0
        self.reconnects = 0
        self._last_guess: Optional[int] = None
        self._schedule_fast = attacker.sim.schedule_fast  # per-probe hot call
        self._net = attacker.network
        self._target_process = None  # bound at first successful connect

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the probe loop."""
        if self.active:
            return
        self.active = True
        self._schedule_fast(self.interval, self._fire)

    def stop(self) -> None:
        """Stop probing and drop the connection."""
        self.active = False
        connection = self.connection
        if connection is not None:
            if connection.open:
                connection.close(closed_by=self.initiator)
            self.attacker.unregister_connection(connection)
        self.connection = None

    # ------------------------------------------------------------------
    def _fire(self) -> None:
        if not self.active:
            return
        attacker = self.attacker
        pool = self.pool
        known = pool.known_key
        if known is None and len(pool._tried) >= pool.keyspace.size:  # exhausted
            # Defensive: in SO mode against an unlucky space the pool can
            # drain; the attack has then provably failed for this instance.
            self.active = False
            attacker._on_stream_dead()
            return
        connection = self.connection
        if connection is None or not connection.open:
            if connection is not None:
                # The old stream died (its closure is our crash
                # observation); retire its routing entry here instead of
                # paying a notification event per crash.
                attacker.unregister_connection(connection)
            connection = self.connection = attacker.network.connect(
                self.initiator, self.target
            )
            if connection is not None:
                self.reconnects += 1
                attacker.register_connection(connection, self)
                if self._target_process is None:
                    # The registry is append-only: resolve once, deliver
                    # by object reference from then on.
                    self._target_process = self._net.process(self.target)
        if connection is not None:
            if known is not None:
                # Re-exploitation: recovery did not change the key, so
                # the discovered key works instantly (SO semantics).
                guess = known
            else:
                guess = pool.next_guess()
            self._last_guess = guess
            # Inlined Connection.send + Network.deliver_on_connection
            # fast path: the connection is open (checked above), our
            # peer is always the target, and the per-probe delivery
            # event is pushed without intermediate frames.
            connection.bytes_exchanged += 1
            net = self._net
            fixed = net._fixed_delay
            self._schedule_fast(
                fixed if fixed is not None else net.latency.sample(net._rng),
                net.deliver_probe_to,
                connection,
                self._target_process,
                {"kind": "probe", "guess": guess},
            )
            self.probes_sent += 1
            attacker.probes_sent_direct += 1
        self._schedule_fast(self.interval, self._fire)

    # -- events routed back by the attacker ------------------------------
    # (There is deliberately no on_closed hook: the driver observes a
    # crash-induced closure itself, via ``connection.open`` at its next
    # fire — see AttackerProcess.unregister_connection.)
    def on_data(self, connection: Connection, payload) -> None:
        """Intrusion acks confirm the in-flight guess was the key."""
        if is_intrusion_ack(payload) and self._last_guess is not None:
            self.pool.record_success(self._last_guess)


class IndirectProber:
    """Paced request-path probing through the proxy tier.

    Parameters
    ----------
    attacker:
        Orchestrating attacker process.
    proxies:
        Proxy addresses to rotate across.
    pool:
        Guess tracker of the *server* randomization instance.
    interval:
        Mean time between indirect probes (``period / (κ·ω)``).
    identities:
        Number of client identities to rotate through (source spoofing;
        1 = honest single source, which per-source frequency analysis
        can eventually pin down).
    pacing_rng:
        When given, each gap is jittered uniformly over
        ``[0.5, 1.5]·interval`` (same long-run rate).  Only the *rate*
        of the stream matters to the detection threshold; exact
        periodicity, by contrast, phase-locks the request path to the
        direct/launch-pad probe grid whenever κ is rational in ω, and
        the stream then systematically collides with the primary
        crashes its co-streams cause — a discrete-event artifact the §4
        model's independent-streams assumption excludes.  The attack
        orchestrator always passes a stream; ``None`` keeps strict
        periodicity (unit tests).
    """

    __slots__ = (
        "attacker",
        "proxies",
        "pool",
        "interval",
        "identities",
        "pacing_rng",
        "active",
        "probes_sent",
        "_turn",
        "_jitter_buffer",
    )

    #: Pacing-jitter draws pre-pulled per chunk.  The pacing stream has
    #: exactly one consumer (this prober) and one call type
    #: (``random()``), so chunked pulls replay the identical value
    #: sequence the per-probe calls would produce — bit-stable pacing,
    #: amortized RNG dispatch.
    PACING_CHUNK = 256

    def __init__(
        self,
        attacker: "AttackerProcess",
        proxies: list[str],
        pool: KeyGuessTracker,
        interval: float,
        identities: int = 1,
        pacing_rng: Optional[random.Random] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"probe interval must be positive, got {interval}")
        if not proxies:
            raise ConfigurationError("indirect probing needs at least one proxy")
        self.attacker = attacker
        self.proxies = list(proxies)
        self.pool = pool
        self.interval = interval
        self.identities = max(1, identities)
        self.pacing_rng = pacing_rng
        self.active = False
        self.probes_sent = 0
        self._turn = 0
        self._jitter_buffer: list[float] = []

    def _next_delay(self) -> float:
        rng = self.pacing_rng
        if rng is None:
            return self.interval
        buffer = self._jitter_buffer
        if not buffer:
            # Refill in reverse so pop() returns draws in stream order.
            buffer.extend(rng.random() for _ in range(self.PACING_CHUNK))
            buffer.reverse()
        return self.interval * (0.5 + buffer.pop())

    def start(self) -> None:
        """Begin the indirect probe loop."""
        if self.active:
            return
        self.active = True
        self.attacker.sim.schedule_fast(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop the loop."""
        self.active = False

    def _fire(self) -> None:
        if not self.active:
            return
        attacker = self.attacker
        pool = self.pool
        if pool.exhausted:
            self.active = False
            attacker._on_stream_dead()
            return
        guess = pool.next_guess()
        identity = attacker.name
        if self.identities > 1:
            identity = f"{attacker.name}~{self._turn % self.identities}"
        payload = request_probe(guess, identity)
        proxy = self.proxies[self._turn % len(self.proxies)]
        self._turn += 1
        if attacker.network.knows(proxy):
            attacker.network.send(
                Message(attacker.name, proxy, CLIENT_REQUEST, payload)
            )
        self.probes_sent += 1
        attacker.probes_sent_indirect += 1
        attacker.sim.schedule_fast(self._next_delay(), self._fire)
