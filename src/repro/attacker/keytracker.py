"""Attacker-side bookkeeping of key guesses.

Phase 1 of a de-randomization attack enumerates candidate keys, never
repeating a guess against the same randomization instance (sampling
*without* replacement).  A :class:`KeyGuessTracker` holds that state for
one key **pool** — one randomization instance, possibly shared by several
nodes (the identically randomized PB servers of S1/S2 form a single
pool; each diversely randomized node is its own pool).

When the defender re-randomizes (PO), the attacker's eliminations become
worthless and the pool is :meth:`reset` — that is what turns the attack
into sampling *with* replacement across time-steps.

Guess-ordering randomness is drawn per probe, which makes the RNG
dispatch chain part of the probe hot path.  :class:`GuessBuffer`
amortizes it with chunked ``randrange`` pulls shared by every pool of
one attacker, *without* perturbing the draw sequence: buffered values
are served in exact stream order to whichever pool asks next, and the
refill size is capped so that no pool can reach its shuffle
(materialization) point while buffered values remain — the one
operation that would interleave differently than per-probe draws.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..errors import ConfigurationError
from ..randomization.keyspace import KeySpace


class GuessBuffer:
    """Chunked ``randrange(size)`` pulls for one shared guess stream.

    All pools of one attacker draw guesses from a single RNG stream with
    a single call shape (``randrange(keyspace.size)``), so a buffer of
    pre-drawn values replays the identical sequence to interleaved
    consumers.  The only other consumer of the stream is the Fisher-Yates
    shuffle a pool runs when it materializes its remaining keys; a refill
    therefore never exceeds the *headroom* — the smallest number of
    successful guesses that could drive any pool (including a pool
    created mid-chunk) to its materialization threshold.  Reaching a
    shuffle consumes at least that many buffered values first, so the
    buffer is provably empty whenever a shuffle runs.
    """

    __slots__ = ("_rng", "_size", "_chunk", "_trackers", "_values")

    DEFAULT_CHUNK = 128

    def __init__(
        self, rng: random.Random, size: int, chunk: int = DEFAULT_CHUNK
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"key space size must be >= 1, got {size}")
        self._rng = rng
        self._size = size
        self._chunk = chunk
        self._trackers: list["KeyGuessTracker"] = []
        self._values: list[int] = []

    def register(self, tracker: "KeyGuessTracker") -> None:
        """Track ``tracker``'s fill level for the headroom computation."""
        self._trackers.append(tracker)

    def __len__(self) -> int:
        return len(self._values)

    def _headroom(self) -> int:
        """Guesses guaranteed to precede any pool's shuffle.

        A pool registered later starts empty, so the shared threshold
        itself bounds the headroom of pools that do not exist yet.
        """
        trackers = self._trackers
        if not trackers:
            return 0
        headroom = trackers[0]._materialize_at  # all pools share one key space
        for tracker in trackers:
            if tracker._remaining is None:
                room = tracker._materialize_at - len(tracker._tried)
                if room < headroom:
                    headroom = room
        return headroom

    def draw(self) -> int:
        """Next ``randrange(size)`` value, in exact stream order."""
        values = self._values
        if not values:
            headroom = self._headroom()
            if headroom <= 0:
                # A pool sits at its shuffle threshold: stay unbuffered.
                return self._rng.randrange(self._size)
            # Replicate Random._randbelow_with_getrandbits exactly —
            # same getrandbits calls, same rejection loop — but chunked,
            # skipping two Python frames per draw.
            n = self._size
            k = n.bit_length()
            getrandbits = self._rng.getrandbits
            append = values.append
            for _ in range(min(self._chunk, headroom)):
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                append(r)
            values.reverse()  # pop() then serves in stream order
        return values.pop()


class KeyGuessTracker:
    """Enumerates untried keys of one key pool in random order.

    Parameters
    ----------
    keyspace:
        The key space being searched.
    rng:
        Attacker's RNG stream for guess ordering.
    buffer:
        Optional shared :class:`GuessBuffer` over the same ``rng`` and
        key-space size (pools of one attacker share one).  ``None``
        draws straight from ``rng`` — bit-identical either way.
    """

    __slots__ = (
        "keyspace",
        "_rng",
        "_buffer",
        "_materialize_at",
        "_tried",
        "_remaining",
        "known_key",
        "resets",
        "total_guesses",
    )

    # Below this fill ratio, rejection sampling is cheap; above it we
    # materialize the remaining keys once and shuffle them.
    _REJECTION_LIMIT = 0.5

    def __init__(
        self,
        keyspace: KeySpace,
        rng: random.Random,
        buffer: Optional[GuessBuffer] = None,
    ) -> None:
        self.keyspace = keyspace
        self._rng = rng
        self._buffer = buffer
        #: Integer form of the rejection→materialize threshold: the
        #: smallest tried-count satisfying ``tried >= size * LIMIT``.
        self._materialize_at = math.ceil(keyspace.size * self._REJECTION_LIMIT)
        self._tried: set[int] = set()
        self._remaining: list[int] | None = None
        #: The key, once a probe confirmed it.  Against SO systems the
        #: defender's recovery does not change keys, so a discovered key
        #: stays valid and re-exploitation is instant.
        self.known_key: int | None = None
        self.resets = 0
        self.total_guesses = 0

    # ------------------------------------------------------------------
    @property
    def tried_count(self) -> int:
        """Keys eliminated against the current randomization instance."""
        return len(self._tried)

    @property
    def exhausted(self) -> bool:
        """True when every key of the space has been tried."""
        return len(self._tried) >= self.keyspace.size

    def next_guess(self) -> int:
        """Return a fresh, never-tried key guess.

        Raises
        ------
        ConfigurationError
            If the pool is exhausted (the attacker should have won long
            before; callers normally reset on re-randomization).
        """
        tried = self._tried
        if len(tried) >= self.keyspace.size:
            raise ConfigurationError("key pool exhausted; reset the tracker")
        self.total_guesses += 1
        remaining = self._remaining
        if remaining is not None:
            guess = remaining.pop()
            tried.add(guess)
            return guess
        if len(tried) >= self._materialize_at:
            self._materialize()
            return self.next_guess_after_materialize()
        buffer = self._buffer
        if buffer is not None:
            values = buffer._values  # pop buffered values without a frame
            draw = buffer.draw
            while True:
                guess = values.pop() if values else draw()
                if guess not in tried:
                    tried.add(guess)
                    return guess
        randrange = self._rng.randrange
        size = self.keyspace.size
        while True:
            guess = randrange(size)
            if guess not in tried:
                tried.add(guess)
                return guess

    def next_guess_after_materialize(self) -> int:
        """Pop from the materialized remainder (internal fast path)."""
        assert self._remaining is not None
        guess = self._remaining.pop()
        self._tried.add(guess)
        return guess

    def _materialize(self) -> None:
        # The shuffle is the one draw shape the shared buffer cannot
        # replay; the refill headroom cap guarantees it drained first.
        # Reachable only through out-of-band eliminations (see
        # :meth:`eliminate`), and an explicit error beats silently
        # consuming the stream out of order.
        if self._buffer is not None and len(self._buffer) > 0:
            raise ConfigurationError(
                "guess buffer non-empty at materialization — chunked "
                "draws would diverge from the per-probe draw sequence "
                "(out-of-band eliminate() calls are incompatible with "
                "shared guess buffering)"
            )
        remaining = [k for k in range(self.keyspace.size) if k not in self._tried]
        self._rng.shuffle(remaining)
        self._remaining = remaining

    def record_success(self, guess: int) -> None:
        """Remember the confirmed key of this pool's instance."""
        self.known_key = guess

    def eliminate(self, guess: int) -> None:
        """Record an externally observed wrong guess (e.g. learned from a
        colluding probe stream against the same pool).

        Out-of-band eliminations advance the pool toward its shuffle
        threshold without consuming draws, which the shared
        :class:`GuessBuffer` headroom rule cannot anticipate; a pool that
        reaches its threshold while buffered values remain raises at
        materialization rather than diverge from the per-probe draw
        stream.  Pools fed by colluding streams should be constructed
        without a buffer."""
        self._tried.add(guess)
        if self._remaining is not None and guess in self._remaining:
            self._remaining.remove(guess)

    def reset(self) -> None:
        """Forget all eliminations — the defender re-randomized.

        The known key (if any) is forgotten too: a fresh key was drawn.
        """
        self._tried.clear()
        self._remaining = None
        self.known_key = None
        self.total_guesses = 0
        self.resets += 1
