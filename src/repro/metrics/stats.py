"""Summary statistics and confidence intervals for simulation output.

Monte-Carlo lifetime estimates are means of highly skewed (roughly
geometric) samples, so both normal-approximation and bootstrap intervals
are provided; benches report the normal CI, property tests cross-check
with the bootstrap.

Protocol-level lifetime runs are additionally *right-censored*: a run
that survives the whole step budget reveals only that its lifetime is at
least the budget.  :func:`summarize_censored` keeps the censored runs
visible instead of silently folding them into the mean — the naive
summary is flagged as a lower bound whenever any run was censored, the
censored fraction is reported outright, and a Kaplan-Meier restricted
mean (:func:`kaplan_meier` / :func:`km_restricted_mean`) gives the
standard survival-analysis estimate of the same quantity.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..errors import AnalysisError

#: Two-sided z value for a 95% normal interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and a 95% confidence interval of a sample.

    Attributes
    ----------
    n:
        Sample size.
    mean, std:
        Sample mean and (n-1) standard deviation.
    ci_low, ci_high:
        95% normal-approximation interval for the mean.
    minimum, maximum:
        Sample range.
    """

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the 95% interval."""
        return (self.ci_high - self.ci_low) / 2.0

    def overlaps(self, other: "SummaryStats") -> bool:
        """Whether the two 95% intervals intersect."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` over a non-empty sample.

    A single observation carries no spread information, so its interval
    is *infinite* (``ci_low = -inf``, ``ci_high = +inf``) — a zero-width
    CI there would be indistinguishable from a converged estimate and
    could satisfy a precision-targeted stopping rule vacuously.
    """
    if not values:
        raise AnalysisError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    std = math.sqrt(var)
    half = Z_95 * std / math.sqrt(n) if n > 1 else math.inf
    return SummaryStats(
        n=n,
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        minimum=min(values),
        maximum=max(values),
    )


@dataclass(frozen=True)
class CensoredSummary:
    """Summary of a right-censored sample of lifetimes.

    Attributes
    ----------
    stats:
        Naive :class:`SummaryStats` over the *observed* values (censored
        runs contribute their censoring time).  When ``n_censored > 0``
        the mean is a lower bound on the true expected lifetime and the
        CI covers the censored mean, not the true one.
    n_censored:
        How many observations were censored (survived their budget).
    km_mean:
        Kaplan-Meier restricted mean survival time over the observed
        horizon.  With all censoring at a common budget this equals the
        naive mean; with mixed censoring times it corrects for the
        information censored runs still carry.
    """

    stats: SummaryStats
    n_censored: int
    km_mean: float

    @property
    def n(self) -> int:
        """Total number of observations (censored included)."""
        return self.stats.n

    @property
    def censored_fraction(self) -> float:
        """Fraction of observations censored, in [0, 1]."""
        return self.n_censored / self.stats.n

    @property
    def is_lower_bound(self) -> bool:
        """Whether the mean understates the true expected lifetime."""
        return self.n_censored > 0


def kaplan_meier(
    times: Sequence[float], events: Sequence[bool]
) -> list[tuple[float, float]]:
    """Kaplan-Meier survival curve of a right-censored sample.

    Parameters
    ----------
    times:
        Observed values: the lifetime for uncensored observations, the
        censoring time for censored ones.
    events:
        ``True`` where the observation is an actual failure,
        ``False`` where it was censored at ``times[i]``.

    Returns
    -------
    ``[(t, S(t))]`` pairs at each distinct *event* time, in increasing
    order, where ``S(t)`` is the estimated probability of surviving
    strictly beyond ``t``.  Ties between failures and censorings at the
    same time follow the standard convention: failures happen first.
    """
    if len(times) != len(events):
        raise AnalysisError(
            f"times and events lengths differ: {len(times)} vs {len(events)}"
        )
    if not times:
        raise AnalysisError("cannot estimate a survival curve from an empty sample")
    if any(t < 0 for t in times):
        raise AnalysisError("lifetimes must be non-negative")
    observations = sorted(zip(times, events))
    n_at_risk = len(observations)
    survival = 1.0
    curve: list[tuple[float, float]] = []
    index = 0
    while index < len(observations):
        t = observations[index][0]
        deaths = 0
        removed = 0
        while index < len(observations) and observations[index][0] == t:
            if observations[index][1]:
                deaths += 1
            removed += 1
            index += 1
        if deaths:
            survival *= 1.0 - deaths / n_at_risk
            curve.append((t, survival))
        n_at_risk -= removed
    return curve


def km_restricted_mean(
    times: Sequence[float],
    events: Sequence[bool],
    horizon: float | None = None,
) -> float:
    """Kaplan-Meier restricted mean survival time ``∫₀ᵗ S(u) du``.

    ``horizon`` defaults to the largest observed value.  For discrete
    whole-step lifetimes this is the KM estimate of ``E[min(T, horizon)]``;
    when every censoring happens at the common budget it reduces to the
    naive mean of the observed values.
    """
    curve = kaplan_meier(times, events)
    if horizon is None:
        horizon = max(times)
    if horizon < 0:
        raise AnalysisError(f"horizon must be non-negative, got {horizon}")
    area = 0.0
    previous_t = 0.0
    survival = 1.0
    for t, s in curve:
        if t >= horizon:
            break
        area += survival * (min(t, horizon) - previous_t)
        previous_t = t
        survival = s
    area += survival * (horizon - previous_t)
    return area


def summarize_censored(
    times: Sequence[float], censored: Sequence[bool]
) -> CensoredSummary:
    """Summarize a right-censored sample without hiding the censoring.

    ``censored[i]`` marks observation ``i`` as a survival past
    ``times[i]`` rather than an observed failure.
    """
    if len(times) != len(censored):
        raise AnalysisError(
            f"times and censored lengths differ: {len(times)} vs {len(censored)}"
        )
    stats = summarize(times)
    events = [not c for c in censored]
    return CensoredSummary(
        stats=stats,
        n_censored=sum(1 for c in censored if c),
        km_mean=km_restricted_mean(times, events),
    )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap interval for the mean.

    Parameters
    ----------
    values:
        The sample.
    confidence:
        Two-sided coverage (0 < confidence < 1).
    resamples:
        Bootstrap iterations.
    seed:
        RNG seed for reproducibility.
    """
    if not values:
        raise AnalysisError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    rng = random.Random(seed)
    n = len(values)
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n for _ in range(resamples)
    )
    tail = (1.0 - confidence) / 2.0
    low_index = min(resamples - 1, max(0, int(math.floor(tail * resamples))))
    high_index = min(
        resamples - 1, max(0, int(math.ceil((1.0 - tail) * resamples)) - 1)
    )
    return means[low_index], means[high_index]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for factor comparisons)."""
    if not values:
        raise AnalysisError("cannot take the geometric mean of an empty sample")
    if any(v <= 0 for v in values):
        raise AnalysisError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
