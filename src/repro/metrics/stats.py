"""Summary statistics and confidence intervals for simulation output.

Monte-Carlo lifetime estimates are means of highly skewed (roughly
geometric) samples, so both normal-approximation and bootstrap intervals
are provided; benches report the normal CI, property tests cross-check
with the bootstrap.

Protocol-level lifetime runs are additionally *right-censored*: a run
that survives the whole step budget reveals only that its lifetime is at
least the budget.  :func:`summarize_censored` keeps the censored runs
visible instead of silently folding them into the mean — the naive
summary is flagged as a lower bound whenever any run was censored, the
censored fraction is reported outright, and a Kaplan-Meier restricted
mean (:func:`kaplan_meier` / :func:`km_restricted_mean`) gives the
standard survival-analysis estimate of the same quantity.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import AnalysisError

#: Two-sided z value for a 95% normal interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and a 95% confidence interval of a sample.

    Attributes
    ----------
    n:
        Sample size.
    mean, std:
        Sample mean and (n-1) standard deviation.
    ci_low, ci_high:
        95% normal-approximation interval for the mean.
    minimum, maximum:
        Sample range.
    """

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the 95% interval."""
        return (self.ci_high - self.ci_low) / 2.0

    def overlaps(self, other: "SummaryStats") -> bool:
        """Whether the two 95% intervals intersect."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` over a non-empty sample.

    A single observation carries no spread information, so its interval
    is *infinite* (``ci_low = -inf``, ``ci_high = +inf``) — a zero-width
    CI there would be indistinguishable from a converged estimate and
    could satisfy a precision-targeted stopping rule vacuously.
    """
    if not values:
        raise AnalysisError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    std = math.sqrt(var)
    half = Z_95 * std / math.sqrt(n) if n > 1 else math.inf
    return SummaryStats(
        n=n,
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        minimum=min(values),
        maximum=max(values),
    )


@dataclass(frozen=True)
class CensoredSummary:
    """Summary of a right-censored sample of lifetimes.

    Attributes
    ----------
    stats:
        Naive :class:`SummaryStats` over the *observed* values (censored
        runs contribute their censoring time).  When ``n_censored > 0``
        the mean is a lower bound on the true expected lifetime and the
        CI covers the censored mean, not the true one.
    n_censored:
        How many observations were censored (survived their budget).
    km_mean:
        Kaplan-Meier restricted mean survival time over the observed
        horizon.  With all censoring at a common budget this equals the
        naive mean; with mixed censoring times it corrects for the
        information censored runs still carry.
    """

    stats: SummaryStats
    n_censored: int
    km_mean: float

    @property
    def n(self) -> int:
        """Total number of observations (censored included)."""
        return self.stats.n

    @property
    def censored_fraction(self) -> float:
        """Fraction of observations censored, in [0, 1]."""
        return self.n_censored / self.stats.n

    @property
    def is_lower_bound(self) -> bool:
        """Whether the mean understates the true expected lifetime."""
        return self.n_censored > 0


def kaplan_meier(
    times: Sequence[float], events: Sequence[bool]
) -> list[tuple[float, float]]:
    """Kaplan-Meier survival curve of a right-censored sample.

    Parameters
    ----------
    times:
        Observed values: the lifetime for uncensored observations, the
        censoring time for censored ones.
    events:
        ``True`` where the observation is an actual failure,
        ``False`` where it was censored at ``times[i]``.

    Returns
    -------
    ``[(t, S(t))]`` pairs at each distinct *event* time, in increasing
    order, where ``S(t)`` is the estimated probability of surviving
    strictly beyond ``t``.  Ties between failures and censorings at the
    same time follow the standard convention: failures happen first.
    """
    if len(times) != len(events):
        raise AnalysisError(
            f"times and events lengths differ: {len(times)} vs {len(events)}"
        )
    if not times:
        raise AnalysisError("cannot estimate a survival curve from an empty sample")
    if any(t < 0 for t in times):
        raise AnalysisError("lifetimes must be non-negative")
    observations = sorted(zip(times, events))
    n_at_risk = len(observations)
    survival = 1.0
    curve: list[tuple[float, float]] = []
    index = 0
    while index < len(observations):
        t = observations[index][0]
        deaths = 0
        removed = 0
        while index < len(observations) and observations[index][0] == t:
            if observations[index][1]:
                deaths += 1
            removed += 1
            index += 1
        if deaths:
            survival *= 1.0 - deaths / n_at_risk
            curve.append((t, survival))
        n_at_risk -= removed
    return curve


def km_restricted_mean(
    times: Sequence[float],
    events: Sequence[bool],
    horizon: float | None = None,
) -> float:
    """Kaplan-Meier restricted mean survival time ``∫₀ᵗ S(u) du``.

    ``horizon`` defaults to the largest observed value.  For discrete
    whole-step lifetimes this is the KM estimate of ``E[min(T, horizon)]``;
    when every censoring happens at the common budget it reduces to the
    naive mean of the observed values.
    """
    curve = kaplan_meier(times, events)
    if horizon is None:
        horizon = max(times)
    if horizon < 0:
        raise AnalysisError(f"horizon must be non-negative, got {horizon}")
    area = 0.0
    previous_t = 0.0
    survival = 1.0
    for t, s in curve:
        if t >= horizon:
            break
        area += survival * (min(t, horizon) - previous_t)
        previous_t = t
        survival = s
    area += survival * (horizon - previous_t)
    return area


def summarize_censored(
    times: Sequence[float], censored: Sequence[bool]
) -> CensoredSummary:
    """Summarize a right-censored sample without hiding the censoring.

    ``censored[i]`` marks observation ``i`` as a survival past
    ``times[i]`` rather than an observed failure.
    """
    if len(times) != len(censored):
        raise AnalysisError(
            f"times and censored lengths differ: {len(times)} vs {len(censored)}"
        )
    stats = summarize(times)
    events = [not c for c in censored]
    return CensoredSummary(
        stats=stats,
        n_censored=sum(1 for c in censored if c),
        km_mean=km_restricted_mean(times, events),
    )


@dataclass(frozen=True)
class SplittingLevelStat:
    """Pooled crossing counts of one splitting stage.

    Attributes
    ----------
    level:
        The Φ threshold of the stage, or ``None`` for the final stage
        (whose "crossing" is the rare event itself, judged by the
        compromise monitor).
    n:
        Trajectories launched into the stage, pooled over replications.
    crossed:
        How many reached the threshold (or compromised outright — a
        compromise crosses every remaining level by construction).
    """

    level: Optional[float]
    n: int
    crossed: int

    @property
    def p(self) -> float:
        """Pooled conditional crossing probability of the stage."""
        return self.crossed / self.n


@dataclass(frozen=True)
class SplittingEstimate:
    """Rare-event probability folded from multilevel-splitting stages.

    ``probability`` is the mean of the per-replication products of
    conditional stage estimates — *exactly* unbiased for the rare-event
    probability (each replication's product telescopes the conditional
    expectations).  The interval is a delta-method CI on the log of the
    pooled product: per-stage binomial variances propagated through
    ``ln Π p̂ₖ = Σ ln p̂ₖ`` under the standard independent-stages
    approximation of the splitting literature, then exponentiated (so
    the interval is asymmetric and never dips below zero).
    """

    probability: float
    ci_low: float
    ci_high: float
    levels: tuple[SplittingLevelStat, ...]


def splitting_probability(
    level_stats: Sequence[SplittingLevelStat],
    products: Sequence[float],
) -> SplittingEstimate:
    """Fold per-stage counts and per-replication products into an estimate.

    Parameters
    ----------
    level_stats:
        Pooled counts per stage, in stage order, truncated after the
        first stage no trajectory crossed (later stages never ran).
    products:
        One ``Π p̂ₖ`` per replication (0.0 where a stage died out).

    When some pooled stage has zero crossers the point estimate is the
    (possibly zero) product mean and the upper bound falls back to the
    rule of three on the dead stage — ``3/n`` crossings would have been
    seen with ≥95% probability were the conditional probability that
    large — scaled by the product of the preceding stages.

    The delta-method interval assumes independent per-stage Bernoulli
    trials, but resplit offspring of one parent share that parent's
    state and can decide together; the replications, by contrast, are
    genuinely independent.  The returned interval is therefore the
    delta-method one *widened* to cover the t-interval of the
    per-replication products whenever their empirical spread says the
    pooled counts were overconfident.
    """
    if not products:
        raise AnalysisError("need at least one splitting replication")
    if not level_stats:
        raise AnalysisError("need at least one splitting stage")
    probability = sum(products) / len(products)
    ci_low, ci_high = _replication_spread(products, probability)
    pooled = 1.0
    log_var = 0.0
    for stat in level_stats:
        if stat.n <= 0:
            raise AnalysisError("splitting stage with no trajectories")
        if stat.crossed == 0:
            upper = pooled * min(3.0 / stat.n, 1.0)
            return SplittingEstimate(
                probability=probability,
                ci_low=0.0,
                ci_high=max(ci_high, upper),
                levels=tuple(level_stats),
            )
        p = stat.p
        pooled *= p
        log_var += (1.0 - p) / (stat.n * p)
    spread = math.exp(Z_95 * math.sqrt(log_var))
    return SplittingEstimate(
        probability=probability,
        ci_low=min(ci_low, pooled / spread),
        ci_high=min(max(ci_high, pooled * spread), 1.0),
        levels=tuple(level_stats),
    )


#: Two-sided 97.5% Student-t quantiles by degrees of freedom (>=30: ~Z).
_T_95 = {
    1: 12.706,
    2: 4.303,
    3: 3.182,
    4: 2.776,
    5: 2.571,
    6: 2.447,
    7: 2.365,
    8: 2.306,
    9: 2.262,
    10: 2.228,
    11: 2.201,
    12: 2.179,
    13: 2.160,
    14: 2.145,
    15: 2.131,
    20: 2.086,
    25: 2.060,
    29: 2.045,
}


def _replication_spread(
    products: Sequence[float], mean: float
) -> tuple[float, float]:
    """t-interval of the per-replication products around their mean.

    Returns ``(mean, mean)`` for a single replication — one product
    carries no spread information, and the delta-method interval is
    then the only one available.
    """
    n = len(products)
    if n < 2:
        return mean, mean
    var = sum((x - mean) ** 2 for x in products) / (n - 1)
    dof = n - 1
    t = _T_95.get(dof, Z_95 if dof > 29 else _T_95[max(k for k in _T_95 if k <= dof)])
    half = t * math.sqrt(var / n)
    return max(mean - half, 0.0), min(mean + half, 1.0)


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap interval for the mean.

    Parameters
    ----------
    values:
        The sample.
    confidence:
        Two-sided coverage (0 < confidence < 1).
    resamples:
        Bootstrap iterations.
    seed:
        RNG seed for reproducibility.
    """
    if not values:
        raise AnalysisError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    rng = random.Random(seed)
    n = len(values)
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n for _ in range(resamples)
    )
    tail = (1.0 - confidence) / 2.0
    low_index = min(resamples - 1, max(0, int(math.floor(tail * resamples))))
    high_index = min(
        resamples - 1, max(0, int(math.ceil((1.0 - tail) * resamples)) - 1)
    )
    return means[low_index], means[high_index]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for factor comparisons)."""
    if not values:
        raise AnalysisError("cannot take the geometric mean of an empty sample")
    if any(v <= 0 for v in values):
        raise AnalysisError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
