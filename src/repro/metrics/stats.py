"""Summary statistics and confidence intervals for simulation output.

Monte-Carlo lifetime estimates are means of highly skewed (roughly
geometric) samples, so both normal-approximation and bootstrap intervals
are provided; benches report the normal CI, property tests cross-check
with the bootstrap.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..errors import AnalysisError

#: Two-sided z value for a 95% normal interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and a 95% confidence interval of a sample.

    Attributes
    ----------
    n:
        Sample size.
    mean, std:
        Sample mean and (n-1) standard deviation.
    ci_low, ci_high:
        95% normal-approximation interval for the mean.
    minimum, maximum:
        Sample range.
    """

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the 95% interval."""
        return (self.ci_high - self.ci_low) / 2.0

    def overlaps(self, other: "SummaryStats") -> bool:
        """Whether the two 95% intervals intersect."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` over a non-empty sample."""
    if not values:
        raise AnalysisError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    std = math.sqrt(var)
    half = Z_95 * std / math.sqrt(n) if n > 1 else 0.0
    return SummaryStats(
        n=n,
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        minimum=min(values),
        maximum=max(values),
    )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap interval for the mean.

    Parameters
    ----------
    values:
        The sample.
    confidence:
        Two-sided coverage (0 < confidence < 1).
    resamples:
        Bootstrap iterations.
    seed:
        RNG seed for reproducibility.
    """
    if not values:
        raise AnalysisError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    rng = random.Random(seed)
    n = len(values)
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n for _ in range(resamples)
    )
    tail = (1.0 - confidence) / 2.0
    low_index = min(resamples - 1, max(0, int(math.floor(tail * resamples))))
    high_index = min(resamples - 1, max(0, int(math.ceil((1.0 - tail) * resamples)) - 1))
    return means[low_index], means[high_index]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for factor comparisons)."""
    if not values:
        raise AnalysisError("cannot take the geometric mean of an empty sample")
    if any(v <= 0 for v in values):
        raise AnalysisError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
