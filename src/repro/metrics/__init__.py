"""Statistics helpers for simulation output."""

from .stats import SummaryStats, Z_95, bootstrap_ci, geometric_mean, summarize

__all__ = ["SummaryStats", "Z_95", "bootstrap_ci", "geometric_mean", "summarize"]
