"""Perf-trend table over bench results and telemetry snapshots.

Closes the observability loop: every bench under ``benchmarks/results/``
already emits a JSON record, and campaigns can now emit
``repro-metrics/1`` snapshots (``--metrics-out``) — this module folds
both into one markdown table CI publishes per run, so throughput drifts
across PRs are visible without digging through artifacts.

Selection is by metric-name convention, not per-bench schemas: any
numeric leaf whose dotted name ends in a throughput/speedup/efficiency
suffix (``_per_sec``, ``per_second``, ``_speedup``, ``_gain``) or a
duration suffix (``_seconds``/``seconds``) is a trend metric; config
scalars (seeds, alphas, grid sizes) never match and stay out.  New
benches therefore join the table by following the naming convention —
no registration step.

The regression guard is deliberately *soft*: smoke-bench runs on shared
CI hardware are noisy, so a >20% drop against the recorded baseline
(``trend_baseline.json``, captured from full-scale runs) flags a ⚠
row and a warning line — never a failed job.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Mapping, Optional

#: Name suffixes marking a *higher-is-better* trend metric (guarded).
HIGHER_BETTER_SUFFIXES = ("_per_sec", "per_second", "_speedup", "_gain")

#: Name suffixes marking a duration metric (reported, never guarded —
#: wall time on shared hardware is context, not a contract).
DURATION_SUFFIXES = ("_seconds", "seconds")

#: Fractional drop against baseline that flags a soft regression.
DEFAULT_DROP_THRESHOLD = 0.20

#: Default baseline location, alongside the bench results it describes.
BASELINE_NAME = "trend_baseline.json"


def _leaf_and_parent(name: str) -> tuple[str, str]:
    parts = name.split(".")
    return parts[-1], parts[-2] if len(parts) >= 2 else ""


def _is_trend_name(name: str) -> bool:
    leaf, _ = _leaf_and_parent(name)
    if leaf.endswith("_target"):
        return False  # bench-internal assertion thresholds, not results
    return higher_is_better(name) or leaf.endswith(DURATION_SUFFIXES)


def higher_is_better(name: str) -> bool:
    """Whether a drop in ``name`` is a regression (vs just a change).

    The parent segment also qualifies, so grouped measurements like
    ``kernel_events_per_sec.new`` count as throughput metrics.
    """
    leaf, parent = _leaf_and_parent(name)
    return leaf.endswith(HIGHER_BETTER_SUFFIXES) or parent.endswith(
        HIGHER_BETTER_SUFFIXES
    )


def _numeric_leaves(obj, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Every ``dotted.name -> number`` leaf of a nested JSON record."""
    if isinstance(obj, Mapping):
        for key, value in obj.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                yield name, float(value)
            elif isinstance(value, Mapping):
                yield from _numeric_leaves(value, name)
            # Lists (bench rows, histogram buckets) are per-point data,
            # not trend scalars: skipped by design.


def collect_trends(results_dir: Path | str) -> dict[str, float]:
    """Trend metrics from every ``*.json`` under ``results_dir``.

    Keys are ``<file-stem>.<dotted.path>``.  Unreadable files are
    skipped (a half-written artifact must not sink the report) and the
    baseline file itself is never ingested as a result.
    """
    results_dir = Path(results_dir)
    trends: dict[str, float] = {}
    for path in sorted(results_dir.glob("*.json")):
        if path.name == BASELINE_NAME:
            continue
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if not isinstance(record, dict):
            continue
        for name, value in _numeric_leaves(record):
            full = f"{path.stem}.{name}"
            if _is_trend_name(full):
                trends[full] = value
    return trends


def load_baseline(path: Path | str) -> dict[str, float]:
    """The recorded baseline, or ``{}`` when absent/unreadable."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict):
        return {}
    metrics = payload.get("metrics", payload)
    return {
        str(k): float(v)
        for k, v in metrics.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def write_baseline(path: Path | str, trends: Mapping[str, float]) -> None:
    """Record ``trends`` as the new baseline (sorted, diffable)."""
    payload = {
        "format": "repro-trend-baseline/1",
        "metrics": dict(sorted(trends.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def find_regressions(
    current: Mapping[str, float],
    baseline: Mapping[str, float],
    threshold: float = DEFAULT_DROP_THRESHOLD,
) -> list[tuple[str, float, float, float]]:
    """Higher-is-better metrics that dropped more than ``threshold``.

    Returns ``(name, current, baseline, drop_fraction)`` rows, worst
    first.
    """
    rows = []
    for name, value in current.items():
        if not higher_is_better(name):
            continue
        base = baseline.get(name)
        if base is None or base <= 0:
            continue
        drop = (base - value) / base
        if drop > threshold:
            rows.append((name, value, base, drop))
    rows.sort(key=lambda row: -row[3])
    return rows


def _format_value(value: float) -> str:
    magnitude = abs(value)
    if magnitude >= 1e5 or (0 < magnitude < 1e-3):
        return f"{value:.3e}"
    if magnitude >= 100:
        return f"{value:.1f}"
    return f"{value:.4g}"


def render_trend_table(
    current: Mapping[str, float],
    baseline: Mapping[str, float],
    threshold: float = DEFAULT_DROP_THRESHOLD,
) -> str:
    """One markdown table of every trend metric vs the baseline.

    Durations are shown for context; only higher-is-better rows get the
    regression flag.  Metrics with no baseline show ``-`` (new bench or
    first run) instead of a delta.
    """
    lines = [
        "| metric | current | baseline | Δ | |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for name in sorted(current):
        value = current[name]
        base = baseline.get(name)
        if base is None or base == 0:
            delta, flag = "-", ""
        else:
            change = (value - base) / abs(base)
            delta = f"{change:+.1%}"
            flag = (
                "⚠ regression"
                if higher_is_better(name) and -change > threshold
                else ""
            )
        base_text = "-" if base is None else _format_value(base)
        lines.append(
            f"| `{name}` | {_format_value(value)} | {base_text} "
            f"| {delta} | {flag} |"
        )
    return "\n".join(lines)


def trend_report(
    results_dir: Path | str,
    baseline_path: Path | str | None = None,
    threshold: float = DEFAULT_DROP_THRESHOLD,
) -> str:
    """The full markdown report: header, table, soft regression notes."""
    results_dir = Path(results_dir)
    if baseline_path is None:
        baseline_path = results_dir / BASELINE_NAME
    current = collect_trends(results_dir)
    baseline = load_baseline(baseline_path)
    lines = ["## Perf trends", ""]
    if not current:
        lines.append(f"No trend metrics found under `{results_dir}`.")
        return "\n".join(lines)
    lines.append(render_trend_table(current, baseline, threshold))
    regressions = find_regressions(current, baseline, threshold)
    if regressions:
        lines.append("")
        for name, value, base, drop in regressions:
            lines.append(
                f"> ⚠ `{name}` dropped {drop:.0%} vs baseline "
                f"({_format_value(value)} < {_format_value(base)}) — "
                "soft guard, not a failure; investigate or re-baseline."
            )
    elif baseline:
        lines.append("")
        lines.append(
            f"No soft regressions (> {threshold:.0%} drop) against the "
            "recorded baseline."
        )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.reporting.trends <results-dir> [options]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.reporting.trends",
        description="Render the perf-trend markdown table for CI.",
    )
    parser.add_argument("results_dir", help="directory of bench/metrics JSONs")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline JSON (default <results-dir>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--output", default=None, help="write markdown here instead of stdout"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_DROP_THRESHOLD,
        help="soft-regression drop fraction (default 0.20)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current metrics as the new baseline and exit",
    )
    args = parser.parse_args(argv)
    results_dir = Path(args.results_dir)
    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else results_dir / BASELINE_NAME
    )
    if args.write_baseline:
        write_baseline(baseline_path, collect_trends(results_dir))
        print(f"baseline written to {baseline_path}")
        return 0
    report = trend_report(results_dir, baseline_path, args.threshold)
    if args.output is not None:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
