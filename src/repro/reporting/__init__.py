"""Rendering of result tables and figure series."""

from .tables import (
    format_quantity,
    render_failure_manifest,
    render_series_table,
    render_table,
)

__all__ = [
    "format_quantity",
    "render_failure_manifest",
    "render_series_table",
    "render_table",
]
