"""Rendering of result tables, figure series and perf-trend reports."""

from .tables import (
    format_quantity,
    render_failure_manifest,
    render_series_table,
    render_table,
)
from .trends import (
    collect_trends,
    find_regressions,
    load_baseline,
    render_trend_table,
    trend_report,
    write_baseline,
)

__all__ = [
    "collect_trends",
    "find_regressions",
    "format_quantity",
    "load_baseline",
    "render_failure_manifest",
    "render_series_table",
    "render_table",
    "render_trend_table",
    "trend_report",
    "write_baseline",
]
