"""ASCII rendering of result tables and figure series.

The benchmark harness reproduces the paper's figures as printed tables:
one row per x value, one column per curve — the same rows/series the
paper plots, in a form that diffs cleanly across runs.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from ..mc.sweeps import Series


def format_quantity(value: float) -> str:
    """Compact numeric formatting for expected lifetimes.

    Uses plain decimals for small magnitudes and scientific notation for
    large ones, keeping columns narrow yet comparable across 9 orders of
    magnitude.
    """
    if value != value:  # NaN
        return "nan"
    magnitude = abs(value)
    if magnitude >= 1e5 or (0 < magnitude < 1e-3):
        return f"{value:.3e}"
    if magnitude >= 100:
        return f"{value:.1f}"
    return f"{value:.4g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table."""
    if not headers:
        raise ConfigurationError("table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series_table(
    series_list: Sequence[Series],
    x_header: str | None = None,
    title: str | None = None,
    with_ci: bool = False,
) -> str:
    """Render several :class:`~repro.mc.sweeps.Series` as one table.

    All series must share the same x grid (they do, coming from one
    sweep).  With ``with_ci`` each cell shows ``mean [low, high]``.
    """
    if not series_list:
        raise ConfigurationError("need at least one series")
    xs = series_list[0].xs
    for series in series_list[1:]:
        if series.xs != xs:
            raise ConfigurationError(
                f"series {series.label!r} has a different x grid"
            )
    headers = [x_header or series_list[0].x_name] + [s.label for s in series_list]
    rows = []
    for i, x in enumerate(xs):
        row = [format_quantity(x)]
        for series in series_list:
            point = series.points[i]
            if with_ci and point.ci_high > point.ci_low:
                row.append(
                    f"{format_quantity(point.mean)} "
                    f"[{format_quantity(point.ci_low)}, {format_quantity(point.ci_high)}]"
                )
            else:
                row.append(format_quantity(point.mean))
        rows.append(row)
    return render_table(headers, rows, title=title)
