"""ASCII rendering of result tables and figure series.

The benchmark harness reproduces the paper's figures as printed tables:
one row per x value, one column per curve — the same rows/series the
paper plots, in a form that diffs cleanly across runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from ..core.specs import SystemClass
from ..errors import ConfigurationError
from ..mc.sweeps import Series

if TYPE_CHECKING:
    from ..core.experiment import LifetimeEstimate
    from ..supervision.policy import TaskFailure


def format_quantity(value: float) -> str:
    """Compact numeric formatting for expected lifetimes.

    Uses plain decimals for small magnitudes and scientific notation for
    large ones, keeping columns narrow yet comparable across 9 orders of
    magnitude.
    """
    if value != value:  # NaN
        return "nan"
    magnitude = abs(value)
    if magnitude >= 1e5 or (0 < magnitude < 1e-3):
        return f"{value:.3e}"
    if magnitude >= 100:
        return f"{value:.1f}"
    return f"{value:.4g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table."""
    if not headers:
        raise ConfigurationError("table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_campaign_table(
    estimates: Sequence["LifetimeEstimate"],
    title: str | None = None,
    model_means: Mapping[int, float] | None = None,
) -> str:
    """Render protocol-campaign grid points as one table.

    One row per grid point: spec coordinates, seeds run, mean lifetime
    with its 95% CI, the censored count and fraction (mean and CI are
    lower bounds whenever they are non-zero, flagged with ``>=``), the
    Kaplan-Meier restricted mean, and the estimator that produced the
    point (``mc`` or ``splitting``).  When any point carries a
    rare-event estimate, a ``P(comp)`` column shows the splitting
    probability of compromise within the budget with its 95% CI.
    Precision-targeted points that exhausted their seed budget before
    reaching the CI target are marked ``(unconverged)``.
    ``model_means`` optionally maps row indices to a model (analytic or
    Monte-Carlo) EL for side-by-side validation.
    """
    if not estimates:
        raise ConfigurationError("campaign table needs at least one estimate")
    with_rare = any(estimate.rare is not None for estimate in estimates)
    headers = [
        "system",
        "alpha",
        "kappa",
        "runs",
        "mean EL",
        "95% CI",
        "censored",
        "cens%",
        "KM mean",
        "est",
    ]
    if with_rare:
        headers.append("P(comp)")
    if model_means is not None:
        headers.append("model EL")
    rows = []
    for i, estimate in enumerate(estimates):
        spec = estimate.spec
        bound = ">=" if estimate.censored else ""
        # κ only parameterizes S2 (Definition 5): showing the grid
        # placeholder for S0/S1 rows would misrepresent the run.
        kappa = format_quantity(spec.kappa) if spec.system is SystemClass.S2 else "-"
        ci_note = "" if estimate.converged else " (unconverged)"
        row = [
            spec.label,
            format_quantity(spec.alpha),
            kappa,
            str(estimate.stats.n),
            f"{bound}{format_quantity(estimate.mean_steps)}",
            f"[{format_quantity(estimate.stats.ci_low)}, "
            f"{format_quantity(estimate.stats.ci_high)}]{ci_note}",
            str(estimate.censored),
            f"{estimate.censored_fraction:.0%}",
            f"{bound}{format_quantity(estimate.km_mean_steps)}",
            estimate.estimator,
        ]
        if with_rare:
            rare = estimate.rare
            if rare is None:
                row.append("-")
            else:
                row.append(
                    f"{format_quantity(rare.probability)} "
                    f"[{format_quantity(rare.ci_low)}, "
                    f"{format_quantity(rare.ci_high)}]"
                )
        if model_means is not None:
            value = model_means.get(i)
            row.append("-" if value is None else format_quantity(value))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_series_table(
    series_list: Sequence[Series],
    x_header: str | None = None,
    title: str | None = None,
    with_ci: bool = False,
) -> str:
    """Render several :class:`~repro.mc.sweeps.Series` as one table.

    All series must share the same x grid (they do, coming from one
    sweep).  With ``with_ci`` each cell shows ``mean [low, high]``.
    """
    if not series_list:
        raise ConfigurationError("need at least one series")
    xs = series_list[0].xs
    for series in series_list[1:]:
        if series.xs != xs:
            raise ConfigurationError(f"series {series.label!r} has a different x grid")
    headers = [x_header or series_list[0].x_name] + [s.label for s in series_list]
    rows = []
    for i, x in enumerate(xs):
        row = [format_quantity(x)]
        for series in series_list:
            point = series.points[i]
            if with_ci and point.ci_high > point.ci_low:
                row.append(
                    f"{format_quantity(point.mean)} "
                    f"[{format_quantity(point.ci_low)}, {format_quantity(point.ci_high)}]"
                )
            else:
                row.append(format_quantity(point.mean))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_failure_manifest(
    failures: Sequence["TaskFailure"],
    title: str | None = None,
) -> str:
    """Render a supervised campaign's quarantined tasks as a table.

    One row per :class:`~repro.supervision.TaskFailure`: which task,
    which seeds it carried, how many attempts it burned, and how the
    last attempt died.  Accepts the ``failures`` tuple straight off a
    :class:`~repro.core.campaign.CampaignResult`.
    """
    rows = []
    for failure in failures:
        seeds = ", ".join(str(seed) for seed in failure.seeds[:3])
        if len(failure.seeds) > 3:
            seeds += f", … ({len(failure.seeds)} total)"
        rows.append(
            [
                str(failure.index),
                failure.label,
                seeds,
                str(failure.attempts),
                failure.kind,
                failure.error,
            ]
        )
    return render_table(
        ["task", "label", "seeds", "attempts", "kind", "error"],
        rows,
        title=title or f"Quarantined tasks ({len(rows)})",
    )
