"""Rare-event estimation: multilevel splitting over attacker progress.

Plain Monte-Carlo handles the paper's far tail worst: at high κ / low α
almost every protocol run censors at the step budget, and an honest
compromise-probability estimate would need orders of magnitude more
runs.  This package turns that compute problem into a variance-reduction
problem with fixed-effort multilevel splitting (RESTART-style trajectory
splitting): trajectories that make unusual attacker *progress* are
forked — full simulator state, event heap, attacker key knowledge and
per-stream RNGs — and re-run conditionally, stage by stage, until the
compromise event itself is reached often enough to measure.

Three pillars, one module each:

* :mod:`repro.rare.fork` — bit-identical cloning of a live deployment
  and deterministic re-seeding of resplit children;
* :mod:`repro.rare.levels` — the attacker-progress level function and
  its cheap in-simulation crossing probe, plus pilot-quantile level
  placement;
* :mod:`repro.rare.splitting` — the fixed-effort splitting scheduler
  running pilot and replication waves through the campaign executor,
  folded into an unbiased probability with a delta-method CI.
"""

from .fork import Trajectory, fork_trajectory, reseed_for_split
from .levels import (
    LevelProbe,
    attacker_progress,
    choose_levels,
    dedupe_levels,
    structural_levels,
)
from .splitting import (
    RareEventEstimate,
    SplittingConfig,
    SplittingTask,
    run_splitting,
)

__all__ = [
    "LevelProbe",
    "RareEventEstimate",
    "SplittingConfig",
    "SplittingTask",
    "Trajectory",
    "attacker_progress",
    "choose_levels",
    "dedupe_levels",
    "fork_trajectory",
    "reseed_for_split",
    "run_splitting",
    "structural_levels",
]
