"""The attacker-progress level function and its crossing probe.

Multilevel splitting needs an *importance function* Φ that (a) reaches
its maximum exactly on the rare event and (b) rises along the plausible
paths toward it, so that trajectories crossing a level really are
conditionally closer to compromise.  :func:`attacker_progress` builds Φ
from the attacker's own bookkeeping, per compromise path of the paper's
Definitions 1–3:

* **key-search paths** — the fraction of a pool's key space eliminated
  against the *current* randomization instance (a confirmed key counts
  as 1.0: against SO schemes it is re-exploitable at will, against PO it
  means compromise is one in-flight probe away).  Under PO this resets
  every epoch, and the per-trajectory *running maximum* recorded by the
  :class:`LevelProbe` is what nests the levels: a launch-pad window that
  drove server-pool coverage unusually high is remembered even after the
  refresh wipes the eliminations.
* **simultaneity paths** — compromise predicates that need several nodes
  down at once (S0's ``> f`` replicas, S2's all-proxies clause) progress
  as ``(nodes currently compromised + best key-search progress toward
  the next one) / nodes needed``.  Compromised nodes stay compromised
  until their next refresh, so this accumulates within an epoch exactly
  like coverage does.

Φ is the maximum over the paths available to the system class, 1.0 iff
the monitor has fired, and — crucially for unbiasedness — evaluated by a
read-only poller (:class:`LevelProbe`) that draws no randomness and
perturbs no event ordering, so an instrumented run replays bit-identical
to a bare one.

:func:`choose_levels` places the levels on pilot-run quantiles of the
running maximum, targeting a fixed per-stage crossing probability; a
degenerate pilot (no spread in Φ) yields no levels and splitting
gracefully collapses to plain conditional Monte-Carlo.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.specs import SystemClass

if TYPE_CHECKING:  # pragma: no cover
    from ..attacker.keytracker import KeyGuessTracker
    from ..core.builders import DeployedSystem
    from ..core.specs import SystemSpec

#: Default level-poll interval as a fraction of the unit time-step.
#: Polls are read-only heap events (~4 per period against thousands of
#: probe events), and the half-phase offset in :class:`LevelProbe` keeps
#: them off the epoch-refresh instants where coverage resets.
DEFAULT_POLL_FRACTION = 0.25


def _pool_progress(tracker: "KeyGuessTracker") -> float:
    if tracker.known_key is not None:
        return 1.0
    return tracker.tried_count / tracker.keyspace.size


def attacker_progress(deployed: "DeployedSystem") -> float:
    """Φ — the attacker's progress toward system compromise, in [0, 1]."""
    if deployed.monitor.is_compromised:
        return 1.0
    attacker = deployed.attacker
    if attacker is None:
        return 0.0
    pools = attacker._pools
    system = deployed.spec.system
    if system is SystemClass.S1:
        # Single path: the shared server-tier key.
        best = 0.0
        for tracker in pools.values():
            progress = _pool_progress(tracker)
            if progress > best:
                best = progress
        return best
    if system is SystemClass.S0:
        # > f simultaneous replica compromises (Definition 1).
        needed = deployed.monitor.f + 1
        down = 0
        best_pool = 0.0
        for replica in deployed.servers:
            if replica.compromised:
                down += 1
            else:
                tracker = pools.get(replica.name)
                if tracker is not None:
                    progress = _pool_progress(tracker)
                    if progress > best_pool:
                        best_pool = progress
        return min((down + best_pool) / needed, 1.0)
    # S2 (Definition 3): a fortified server falls, or all proxies do.
    from ..core.builders import SERVER_POOL  # deferred: layering

    best = 0.0
    server_pool = pools.get(SERVER_POOL)
    if server_pool is not None:
        best = _pool_progress(server_pool)
    proxies = deployed.proxies
    if proxies:
        down = 0
        best_pool = 0.0
        for proxy in proxies:
            if proxy.compromised:
                down += 1
            else:
                tracker = pools.get(proxy.name)
                if tracker is not None:
                    progress = _pool_progress(tracker)
                    if progress > best_pool:
                        best_pool = progress
        simultaneity = (down + best_pool) / len(proxies)
        if simultaneity > best:
            best = simultaneity
    return min(best, 1.0)


class LevelProbe:
    """Periodic read-only sampler of Φ with level-crossing stop.

    The probe schedules itself on the deployment's own event heap
    (half-phase offset, so polls never tie with epoch-refresh instants),
    records the trajectory's running maximum of Φ, and — when a
    ``threshold`` is armed — stops the simulator the first time the
    maximum reaches it.  It draws no randomness and only *reads*
    deployment state, so instrumented dynamics are bit-identical to bare
    ones; and it is cloned along with the deployment (its pending tick
    lives in the heap), so a fork inherits the running maximum exactly.
    """

    __slots__ = ("deployed", "interval", "max_level", "threshold", "crossed", "_armed")

    def __init__(
        self, deployed: "DeployedSystem", poll_fraction: float = DEFAULT_POLL_FRACTION
    ) -> None:
        self.deployed = deployed
        self.interval = poll_fraction * deployed.spec.period
        self.max_level = 0.0
        self.threshold: Optional[float] = None
        self.crossed = False
        self._armed = False

    def arm(self) -> None:
        """Start polling (idempotent; call after ``deployed.start()``)."""
        if not self._armed:
            self._armed = True
            self.deployed.sim.schedule_fast(0.5 * self.interval, self._tick)

    def _tick(self) -> None:
        level = attacker_progress(self.deployed)
        if level > self.max_level:
            self.max_level = level
        threshold = self.threshold
        if threshold is not None and not self.crossed and self.max_level >= threshold:
            self.crossed = True
            self.deployed.sim.stop()
        # Keep ticking unconditionally: after a crossing stop, the next
        # splitting stage re-arms a higher threshold and resumes the run
        # with this same pending tick.
        self.deployed.sim.schedule_fast(self.interval, self._tick)


#: Sub-rung quarters between simultaneity rungs — see structural_levels.
_SUB_RUNGS = (0.25, 0.5, 0.75)


def structural_levels(spec: "SystemSpec") -> tuple[float, ...]:
    """The rungs Φ's simultaneity paths quantize to, from the spec alone.

    Simultaneity progress moves in jumps of ``1/nodes_needed`` (a node
    falls), so Φ clusters just above ``k / needed`` — and a pilot wave
    rarely reaches the deeper rungs, which is precisely when they make
    the best splitting levels.  Between rungs, Φ rises smoothly as the
    next node's keyspace coverage grows, and that continuum carries the
    decisive randomness: with the deterministic guess pacing, whether
    the next node falls before the epoch refresh is nearly a pure
    function of *when within the epoch* the previous one fell, so
    conditional compromise probabilities past a bare rung collapse
    toward 0 or 1 per trajectory and resplit offspring decide together.
    The quarter sub-rungs ``(k + q)/needed`` split exactly that timing
    — each marks the next node q of the way through its keyspace while
    k are down — restoring per-stage randomness and keeping offspring
    of one parent from being fate-correlated.

    Placing a rung no trajectory reaches is safe (the estimate stays
    unbiased, the CI falls back to the rule of three), and a rung below
    what a trajectory already crossed costs nothing (pre-crossed stages
    skip simulation entirely), so the ladder is merged into the level
    set wholesale by :func:`repro.rare.splitting.run_splitting`.
    """
    if spec.system is SystemClass.S0:
        needed = spec.f + 1
    elif spec.system is SystemClass.S2 and spec.n_proxies > 1:
        needed = spec.n_proxies
    else:
        return ()
    levels = []
    for k in range(1, needed):
        levels.append(k / needed)
        levels.extend((k + q) / needed for q in _SUB_RUNGS)
    return tuple(levels)


def dedupe_levels(levels: Sequence[float], min_gap: float) -> tuple[float, ...]:
    """Collapse near-duplicate levels, keeping the deepest of each cluster.

    Pilot quantiles often land inside one dense cluster of Φ values
    (e.g. just above a simultaneity rung), producing levels a fraction
    of a percent apart.  Each such level costs a full stage of
    trajectory launches while splitting almost no probability mass, so
    levels closer than ``min_gap`` are merged into their deepest member
    — one stage with a crossing probability near the product of the
    cluster's, which is closer to the ``p0`` target anyway.
    """
    deduped: list[float] = []
    for level in sorted(levels):
        if deduped and level - deduped[-1] < min_gap:
            deduped[-1] = level
        else:
            deduped.append(level)
    return tuple(deduped)


def choose_levels(
    max_samples: Sequence[float],
    p0: float = 0.25,
    max_levels: int = 6,
    min_tail: int = 4,
) -> tuple[float, ...]:
    """Place splitting levels on pilot quantiles of the running max of Φ.

    Level ``k`` is the empirical ``p0**(k+1)`` upper quantile of the
    pilot maxima, so each stage's crossing probability is ≈ ``p0`` —
    the fixed-effort sweet spot between many cheap stages and few
    well-estimated ones.  Levels are strictly increasing, strictly below
    1.0 (the final stage is the compromise event itself, judged by the
    monitor, never by Φ), *selective* (at least one pilot run must fail
    to cross every level — probe pacing is deterministic, so on systems
    where Φ's spread collapses every pilot shares the same maximum and a
    level there would be crossed by construction), and never placed
    deeper than the pilot can resolve (at least ``min_tail`` pilot runs
    must sit at or above every level).  A pilot with no spread therefore
    yields no levels, and splitting collapses to plain conditional
    Monte-Carlo.
    """
    values = sorted(max_samples)
    n = len(values)
    levels: list[float] = []
    previous = 0.0
    tail = p0
    while len(levels) < max_levels and n:
        count = max(math.ceil(tail * n), min_tail)
        if count >= n:
            break  # even the loosest level would be crossed by everything
        candidate = values[n - count]  # count-th largest: P(M >= c) >= count/n
        if previous < candidate < 1.0 and candidate > values[0]:
            levels.append(candidate)
            previous = candidate
        if count == min_tail:
            break  # the pilot cannot resolve the tail any deeper
        tail *= p0
    return tuple(levels)
