"""Simulator state forking for trajectory splitting.

A splitting stage promotes a trajectory by *cloning* its entire live
deployment — event heap, processes, network, attacker key knowledge,
per-stream RNG states — and letting each clone continue independently.
The clone must satisfy two contracts:

* **fidelity** — a fork whose RNG streams are left untouched replays
  bit-identically to the original (same events, same draws, same
  outcome).  :func:`fork_trajectory` achieves this with ``copy.deepcopy``:
  every callback the kernel holds in its heap is a *bound method* of
  some simulation object (the stack schedules no closures), and deepcopy
  remaps a bound method's ``__self__`` through the memo, so the cloned
  heap drives the cloned objects and only those.  Slotted classes (the
  kernel, processes, messages and drivers all use ``__slots__``) copy
  through their ``__reduce_ex__`` like any other object.

* **divergence** — resplit children must explore *different* futures,
  deterministically: the same (parent, child seed) pair always produces
  the same child, regardless of worker count or batch shape.
  :func:`reseed_for_split` reseeds every live RNG stream in place from a
  derived ``"rare:split"`` seed and discards the attacker's pre-drawn
  randomness buffers (chunked guess values, pacing jitter), which are
  *future* draws of the old streams.  Past-determined state — the keys
  already eliminated, the materialized remainder of a pool, scheduled
  fault plans — is exactly what conditioning on the trajectory's history
  means, and is deliberately shared.

Forking is only legal between ``run()`` calls (the kernel is not
re-entrant and a mid-callback clone would capture a half-applied event).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import SimulationError
from ..sim.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover
    from ..core.builders import DeployedSystem
    from .levels import LevelProbe


@dataclass
class Trajectory:
    """One splitting trajectory: a live deployment plus its level probe.

    The probe is cloned *with* the deployment (its periodic tick lives
    in the deployment's event heap and its running maximum is part of
    the trajectory's history), so the pair must be forked as one unit —
    :meth:`fork` deepcopies them through a single memo.
    """

    deployed: "DeployedSystem"
    probe: "LevelProbe"

    def fork(self) -> "Trajectory":
        return fork_trajectory(self)


def fork_trajectory(trajectory: Trajectory) -> Trajectory:
    """Clone a trajectory mid-flight, bit-identically.

    The spec, timing and scenario are frozen dataclasses shared by every
    clone; pinning them in the memo keeps their identity (outcomes
    report the *same* spec object) and skips re-copying the only
    deployment state that provably cannot diverge.
    """
    deployed = trajectory.deployed
    sim = deployed.sim
    if sim._running:
        raise SimulationError("cannot fork a deployment while its run() is live")
    memo: dict = {
        id(deployed.spec): deployed.spec,
        id(deployed.timing): deployed.timing,
    }
    return copy.deepcopy(trajectory, memo)


def reseed_for_split(trajectory: Trajectory, split_seed: int) -> None:
    """Give a freshly forked child its own deterministic randomness.

    Every live stream is reseeded *in place* (components hold direct
    references to their ``random.Random`` objects, so replacing the
    registry's dict would leave the old states in play), streams created
    later derive from the new root, and the attacker's buffers of
    pre-drawn values — future draws of the pre-fork streams — are
    discarded so the child's next probe comes from its own stream.
    """
    trajectory.deployed.sim.rng.reseed(split_seed)
    attacker = trajectory.deployed.attacker
    if attacker is not None:
        attacker.discard_buffered_randomness()


def child_seed(replication_seed: int, stage: int, child_index: int) -> int:
    """Seed of one resplit child, stable under any fan-out shape."""
    return derive_seed(replication_seed, f"rare:split:{stage}:{child_index}")
