"""Fixed-effort multilevel splitting over attacker progress.

The estimator targets the probability that a deployment is compromised
within the step budget — exactly the quantity plain Monte-Carlo cannot
resolve on censor-heavy grid points — by decomposing it along nested
level sets of the attacker-progress function Φ
(:func:`repro.rare.levels.attacker_progress`):

    P(compromise) = P(M ≥ l₁) · P(M ≥ l₂ | M ≥ l₁) · … · P(compromise | M ≥ lₘ)

where ``M`` is the trajectory's running maximum of Φ.  A compromise
drives Φ to 1.0, so the events are nested by construction and the
product telescopes exactly.

Two waves run through the campaign's :class:`~repro.mc.executor.TaskExecutor`:

1. a **pilot wave** of plain unconditioned runs — bit-identical to
   :func:`~repro.core.experiment.run_protocol_lifetime` (the level probe
   is read-only) — that doubles as the honest lifetime sample of the
   returned estimate and supplies the running-max quantiles the levels
   are placed on;
2. a **replication wave** of independent fixed-effort splitting
   replications.  Each replication advances a fixed number of
   trajectories stage by stage: level-crossers are promoted and resplit
   (cloned with :mod:`repro.rare.fork`, children reseeded from the
   ``"rare:split"`` derivation), non-crossers die, and the final stage's
   "level" is the compromise event itself.

Forked simulator states never cross a process boundary — they are not
safely picklable, and they do not need to be: a replication is one
self-contained task that forks in-memory, and every seed it uses is
derived before dispatch from the replication's root, so results are
bit-identical for any worker count or batch size, like everything else
in the engine.

The per-replication products average to an *unbiased* probability
estimate (each replication's product telescopes the conditional
expectations; round-robin resplitting from exchangeable crossers
preserves this), and the pooled per-stage counts give the delta-method
CI of :func:`repro.metrics.stats.splitting_probability`.
"""

from __future__ import annotations

import gc
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..errors import ConfigurationError
from ..metrics.stats import (
    SplittingLevelStat,
    splitting_probability,
)
from ..sim.rng import derive_seed
from .fork import Trajectory, child_seed, reseed_for_split
from .levels import (
    DEFAULT_POLL_FRACTION,
    LevelProbe,
    choose_levels,
    dedupe_levels,
    structural_levels,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cache import ResultCache
    from ..core.experiment import LifetimeOutcome
    from ..core.specs import SystemSpec
    from ..mc.executor import TaskExecutor
    from ..scenarios.spec import ScenarioSpec

#: Pilot seeds dispatched per task (same amortization trade-off as
#: :data:`repro.core.experiment.DEFAULT_SEED_BATCH`).
PILOT_BATCH = 8


@dataclass(frozen=True)
class SplittingConfig:
    """Effort knobs of one splitting estimate.

    Attributes
    ----------
    pilot_runs:
        Unconditioned runs for level placement; they double as the
        estimate's honest lifetime sample.
    replications:
        Independent splitting replications (the unbiased point estimate
        averages their products; more replications tighten the CI).
    trajectories:
        Fixed effort per stage within one replication.
    p0:
        Per-stage target crossing probability for level placement.
    max_levels, min_tail:
        Level-placement bounds — see :func:`repro.rare.levels.choose_levels`.
    min_gap:
        Minimum Φ spacing between adjacent levels; nearer ones are
        merged (:func:`repro.rare.levels.dedupe_levels`) — each level
        costs a full stage of launches, so near-duplicates burn effort
        without splitting probability mass.
    poll_fraction:
        Level-poll interval as a fraction of the unit time-step.
    """

    pilot_runs: int = 64
    replications: int = 8
    trajectories: int = 32
    p0: float = 0.25
    max_levels: int = 6
    min_tail: int = 4
    min_gap: float = 0.01
    poll_fraction: float = DEFAULT_POLL_FRACTION

    def __post_init__(self) -> None:
        if self.pilot_runs < 2:
            raise ConfigurationError(f"pilot_runs must be >= 2, got {self.pilot_runs}")
        if self.replications < 1:
            raise ConfigurationError(
                f"replications must be >= 1, got {self.replications}"
            )
        if self.trajectories < 2:
            raise ConfigurationError(
                f"trajectories must be >= 2, got {self.trajectories}"
            )
        if not 0.0 < self.p0 < 1.0:
            raise ConfigurationError(f"p0 must be in (0, 1), got {self.p0}")
        if self.max_levels < 0 or self.min_tail < 1:
            raise ConfigurationError(
                f"need max_levels >= 0 and min_tail >= 1, got "
                f"{self.max_levels}, {self.min_tail}"
            )
        if not 0.0 <= self.min_gap < 1.0:
            raise ConfigurationError(f"min_gap must be in [0, 1), got {self.min_gap}")
        if self.poll_fraction <= 0:
            raise ConfigurationError(
                f"poll_fraction must be positive, got {self.poll_fraction}"
            )

    def as_dict(self) -> dict:
        """JSON-ready form (cache keys, campaign records)."""
        return {
            "pilot_runs": self.pilot_runs,
            "replications": self.replications,
            "trajectories": self.trajectories,
            "p0": self.p0,
            "max_levels": self.max_levels,
            "min_tail": self.min_tail,
            "min_gap": self.min_gap,
            "poll_fraction": self.poll_fraction,
        }


@dataclass(frozen=True)
class RareEventEstimate:
    """A folded splitting estimate of P(compromise within the budget).

    ``probability`` is unbiased (mean of per-replication products);
    ``ci_low``/``ci_high`` come from the delta-method interval of
    :func:`repro.metrics.stats.splitting_probability`.  ``events``
    counts every simulated event spent — pilot wave included — which is
    the honest denominator for events-per-CI-width comparisons against
    plain Monte-Carlo.
    """

    probability: float
    ci_low: float
    ci_high: float
    levels: tuple[float, ...]
    level_stats: tuple[SplittingLevelStat, ...]
    replications: int
    trajectories: int
    pilot_runs: int
    events: int
    pilot_outcomes: tuple["LifetimeOutcome", ...] = field(repr=False, default=())
    pilot_max_levels: tuple[float, ...] = field(repr=False, default=())
    #: Per-replication telescoping products — the independent samples
    #: behind ``probability``; their spread is folded into the CI.
    products: tuple[float, ...] = field(repr=False, default=())
    #: Whole steps survived by the final-stage compromises, a diagnostic
    #: view of *when* in the budget the rare failures land.
    compromise_steps: tuple[int, ...] = field(repr=False, default=())

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0


@dataclass(frozen=True)
class SplittingReplication:
    """Picklable result of one splitting replication.

    ``counts`` holds one ``(launched, crossed)`` pair per stage actually
    run (a replication whose stage dies out never runs the later ones).
    """

    product: float
    counts: tuple[tuple[int, int], ...]
    events: int
    compromise_steps: tuple[int, ...]


def _new_trajectory(
    spec: "SystemSpec",
    seed: int,
    max_steps: int,
    build_kwargs: dict,
    scenario: "ScenarioSpec | None",
    poll_fraction: float,
) -> Trajectory:
    """Compose, start and instrument one trajectory."""
    from ..core.experiment import compose_deployment  # deferred: layering

    deployed = compose_deployment(
        spec, seed=seed, max_steps=max_steps, scenario=scenario, **build_kwargs
    )
    deployed.start()
    probe = LevelProbe(deployed, poll_fraction)
    probe.arm()
    return Trajectory(deployed, probe)


def _advance(trajectory: Trajectory, threshold: Optional[float], horizon: float) -> str:
    """Run a trajectory until its stage verdict.

    Returns ``"compromised"`` (terminal success — it crosses every
    remaining level by construction), ``"crossed"`` (reached the stage
    threshold; ``None`` means only compromise counts), or ``"dead"``
    (horizon reached, or the attack provably over via fast-forward).
    Never resumes a decided simulator: a compromised or horizon-exhausted
    trajectory is classified without running.
    """
    deployed = trajectory.deployed
    monitor = deployed.monitor
    if monitor.is_compromised:
        return "compromised"
    probe = trajectory.probe
    probe.threshold = threshold
    probe.crossed = False
    if threshold is not None and probe.max_level >= threshold:
        # Jumped past this level during an earlier segment.
        return "crossed"
    sim = deployed.sim
    if sim.now < horizon:
        sim.run(until=horizon)
        if monitor.is_compromised:
            return "compromised"
        if probe.crossed:
            return "crossed"
    return "dead"


@dataclass(frozen=True)
class PilotTask:
    """A batch of unconditioned, probe-instrumented runs (picklable)."""

    spec: "SystemSpec"
    seeds: tuple[int, ...]
    max_steps: int
    build_kwargs: tuple[tuple[str, Any], ...] = ()
    scenario: "ScenarioSpec | None" = None
    poll_fraction: float = DEFAULT_POLL_FRACTION

    def run(self) -> tuple[tuple["LifetimeOutcome", float], ...]:
        """Per seed: the lifetime outcome plus the running max of Φ."""
        from ..core.experiment import _run_until, outcome_from_deployment

        kwargs = dict(self.build_kwargs)
        horizon = self.max_steps * self.spec.period
        results = []
        for seed in self.seeds:
            trajectory = _new_trajectory(
                self.spec, seed, self.max_steps, kwargs, self.scenario,
                self.poll_fraction,
            )
            _run_until(trajectory.deployed, horizon)
            outcome = outcome_from_deployment(
                trajectory.deployed, seed, self.max_steps
            )
            # A compromise stops the simulator before the next poll can
            # observe Φ = 1.0; report the true maximum so level
            # placement sees compromised pilots at the top.
            max_level = 1.0 if outcome.compromised else trajectory.probe.max_level
            results.append((outcome, max_level))
        return tuple(results)


def run_pilot_task(task: PilotTask):
    """Module-level task runner (picklable for process pools)."""
    return task.run()


@dataclass(frozen=True)
class SplittingTask:
    """One fixed-effort splitting replication (picklable).

    The forked simulator states live and die inside this task; only the
    per-stage counts travel back.  Every seed — initial trajectories and
    resplit children — derives from ``seed``, so the replication is a
    pure function of its fields.
    """

    spec: "SystemSpec"
    seed: int
    levels: tuple[float, ...]
    max_steps: int
    trajectories: int
    build_kwargs: tuple[tuple[str, Any], ...] = ()
    scenario: "ScenarioSpec | None" = None
    poll_fraction: float = DEFAULT_POLL_FRACTION

    def run(self) -> SplittingReplication:
        kwargs = dict(self.build_kwargs)
        horizon = self.max_steps * self.spec.period
        # Same GC rationale as run_protocol_lifetime — and deepcopy
        # forking allocates in bursts that cyclic GC would scan in vain.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            trajectories = [
                _new_trajectory(
                    self.spec,
                    derive_seed(self.seed, f"rare:traj:{i}"),
                    self.max_steps,
                    kwargs,
                    self.scenario,
                    self.poll_fraction,
                )
                for i in range(self.trajectories)
            ]
            thresholds: list[Optional[float]] = [*self.levels, None]
            counts: list[tuple[int, int]] = []
            compromise_steps: list[int] = []
            product = 1.0
            events = 0
            for stage, threshold in enumerate(thresholds):
                crossers = []
                for trajectory in trajectories:
                    before = trajectory.deployed.sim.events_executed
                    status = _advance(trajectory, threshold, horizon)
                    events += trajectory.deployed.sim.events_executed - before
                    if status != "dead":
                        crossers.append(trajectory)
                counts.append((len(trajectories), len(crossers)))
                product *= len(crossers) / len(trajectories)
                if not crossers:
                    break
                if threshold is None:  # final stage: crossers compromised
                    for trajectory in crossers:
                        steps = trajectory.deployed.monitor.steps_survived
                        assert steps is not None
                        compromise_steps.append(min(steps, self.max_steps))
                    break
                trajectories = self._resplit(crossers, stage)
        finally:
            if gc_was_enabled:
                gc.enable()
        return SplittingReplication(
            product=product,
            counts=tuple(counts),
            events=events,
            compromise_steps=tuple(compromise_steps),
        )

    def _resplit(self, crossers: list[Trajectory], stage: int) -> list[Trajectory]:
        """Fixed-effort resplit: round-robin children over the crossers.

        Each crosser serves as its own first child (a clone of a state
        about to be reseeded is indistinguishable from the state itself),
        and the extra children are forked *before* any reseeding touches
        the parents.
        """
        survivors = len(crossers)
        children = [
            crossers[j % survivors] if j < survivors else crossers[j % survivors].fork()
            for j in range(self.trajectories)
        ]
        for j, child in enumerate(children):
            reseed_for_split(child, child_seed(self.seed, stage, j))
        return children


def run_splitting_task(task: SplittingTask) -> SplittingReplication:
    """Module-level task runner (picklable for process pools)."""
    return task.run()


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
def _fold(
    config: SplittingConfig,
    levels: tuple[float, ...],
    pilot_results: Sequence[tuple["LifetimeOutcome", float]],
    replications: Sequence[SplittingReplication],
) -> RareEventEstimate:
    """Pool stage counts, average products, attach the delta-method CI."""
    stages = max(len(rep.counts) for rep in replications)
    pooled: list[SplittingLevelStat] = []
    for s in range(stages):
        n = sum(rep.counts[s][0] for rep in replications if len(rep.counts) > s)
        crossed = sum(rep.counts[s][1] for rep in replications if len(rep.counts) > s)
        pooled.append(
            SplittingLevelStat(
                level=levels[s] if s < len(levels) else None, n=n, crossed=crossed
            )
        )
    folded = splitting_probability(pooled, [rep.product for rep in replications])
    pilot_events = sum(outcome.events for outcome, _ in pilot_results)
    compromise_steps: list[int] = []
    for rep in replications:
        compromise_steps.extend(rep.compromise_steps)
    return RareEventEstimate(
        probability=folded.probability,
        ci_low=folded.ci_low,
        ci_high=folded.ci_high,
        levels=levels,
        level_stats=folded.levels,
        replications=len(replications),
        trajectories=config.trajectories,
        pilot_runs=len(pilot_results),
        events=pilot_events + sum(rep.events for rep in replications),
        pilot_outcomes=tuple(outcome for outcome, _ in pilot_results),
        pilot_max_levels=tuple(level for _, level in pilot_results),
        products=tuple(rep.product for rep in replications),
        compromise_steps=tuple(compromise_steps),
    )


def _splitting_key_payload(
    spec: "SystemSpec",
    root_seed: int,
    max_steps: int,
    build_kwargs: dict,
    scenario: "ScenarioSpec | None",
    config: SplittingConfig,
) -> dict:
    """Cache-key payload of one splitting estimate.

    The estimator and its full level-placement configuration enter the
    key (the level *values* are a deterministic function of the config
    and the root seed, and are stored in the entry); the fan-out shape
    never does.
    """
    return {
        "kind": "rare_event_estimate",
        "estimator": "splitting",
        "spec": spec,
        "root_seed": root_seed,
        "max_steps": max_steps,
        "build_kwargs": dict(build_kwargs),
        "scenario": scenario,
        "config": config.as_dict(),
    }


def _estimate_payload(
    estimate: RareEventEstimate, replications: Sequence[SplittingReplication]
) -> dict:
    """JSON-ready cache entry: the raw waves, refolded on read."""
    from ..core.experiment import _outcome_payload  # deferred: layering

    return {
        "levels": list(estimate.levels),
        "pilot": [
            [_outcome_payload(outcome), max_level]
            for outcome, max_level in zip(
                estimate.pilot_outcomes, estimate.pilot_max_levels
            )
        ],
        "replications": [
            {
                "product": rep.product,
                "counts": [list(pair) for pair in rep.counts],
                "events": rep.events,
                "compromise_steps": list(rep.compromise_steps),
            }
            for rep in replications
        ],
    }


def _estimate_from_payload(
    spec: "SystemSpec", payload: Any, config: SplittingConfig
) -> RareEventEstimate:
    """Rebuild a cached splitting estimate; raise on shape mismatch.

    The fold is re-run from the stored waves, so a cached estimate is
    bit-identical to a recomputed one by determinism of the fold.
    """
    from ..core.experiment import _outcome_from_entry  # deferred: layering

    if not isinstance(payload, dict):
        raise ValueError("cached splitting entry is not a mapping")
    pilot_results = [
        (_outcome_from_entry(spec, entry), float(max_level))
        for entry, max_level in payload["pilot"]
    ]
    if len(pilot_results) != config.pilot_runs:
        raise ValueError("cached splitting entry does not match the request")
    replications = [
        SplittingReplication(
            product=float(rep["product"]),
            counts=tuple((int(n), int(k)) for n, k in rep["counts"]),
            events=int(rep["events"]),
            compromise_steps=tuple(int(s) for s in rep["compromise_steps"]),
        )
        for rep in payload["replications"]
    ]
    if len(replications) != config.replications:
        raise ValueError("cached splitting entry does not match the request")
    levels = tuple(float(level) for level in payload["levels"])
    return _fold(config, levels, pilot_results, replications)


def run_splitting(
    spec: "SystemSpec",
    *,
    root_seed: int,
    max_steps: int,
    config: Optional[SplittingConfig] = None,
    executor: "TaskExecutor | None" = None,
    workers: Optional[int] = None,
    scenario: "ScenarioSpec | None" = None,
    cache: "ResultCache | None" = None,
    **build_kwargs,
) -> RareEventEstimate:
    """Estimate P(compromise within ``max_steps``) by multilevel splitting.

    Pilot and replication waves fan out through ``executor`` (or a fresh
    :class:`~repro.mc.executor.TaskExecutor` over ``workers``); every
    seed derives from ``root_seed`` before dispatch, so the estimate is
    bit-identical for any worker count or batch size.  With ``cache``
    set, the whole estimate (both waves) is one content-addressed entry:
    a warm call dispatches nothing and refolds the stored waves.
    """
    from ..core.experiment import _batched  # deferred: layering
    from ..mc.executor import TaskExecutor  # deferred: avoids cycle

    if config is None:
        config = SplittingConfig()
    key = None
    if cache is not None:
        key = cache.key_for(
            _splitting_key_payload(
                spec, root_seed, max_steps, build_kwargs, scenario, config
            )
        )
        payload = cache.lookup(key)
        if payload is not None:
            try:
                return _estimate_from_payload(spec, payload, config)
            except (KeyError, TypeError, ValueError):
                # Readable but not decodable as this request: treat as a
                # miss and recompute (overwriting the entry).
                cache.hits -= 1
                cache.misses += 1
    owns_executor = executor is None
    if executor is None:
        executor = TaskExecutor(workers)
    frozen_kwargs = tuple(sorted(build_kwargs.items()))
    pilot_seeds = [
        derive_seed(root_seed, f"rare:pilot:{i}") for i in range(config.pilot_runs)
    ]
    pilot_tasks = [
        PilotTask(
            spec=spec,
            seeds=batch,
            max_steps=max_steps,
            build_kwargs=frozen_kwargs,
            scenario=scenario,
            poll_fraction=config.poll_fraction,
        )
        for batch in _batched(pilot_seeds, PILOT_BATCH)
    ]
    with ExitStack() as stack:
        if owns_executor:
            stack.enter_context(executor)
        pilot_results = [
            result
            for batch in executor.map(run_pilot_task, pilot_tasks)
            for result in batch
        ]
        pilot_maxima = [max_level for _, max_level in pilot_results]
        merged = set(
            choose_levels(
                pilot_maxima,
                p0=config.p0,
                max_levels=config.max_levels,
                min_tail=config.min_tail,
            )
        )
        # The simultaneity ladder reaches past what the pilot wave can
        # resolve; keep every rung that is selective (at least one pilot
        # run stayed below it) — see structural_levels.
        floor = min(pilot_maxima)
        merged.update(r for r in structural_levels(spec) if floor < r < 1.0)
        levels = dedupe_levels(sorted(merged), config.min_gap)
        replication_tasks = [
            SplittingTask(
                spec=spec,
                seed=derive_seed(root_seed, f"rare:rep:{r}"),
                levels=levels,
                max_steps=max_steps,
                trajectories=config.trajectories,
                build_kwargs=frozen_kwargs,
                scenario=scenario,
                poll_fraction=config.poll_fraction,
            )
            for r in range(config.replications)
        ]
        replications = executor.map(run_splitting_task, replication_tasks)
    estimate = _fold(config, levels, pilot_results, replications)
    if cache is not None and key is not None:
        cache.store(key, _estimate_payload(estimate, replications))
    return estimate
