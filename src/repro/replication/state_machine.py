"""Replicated services.

The paper's central contrast is between services that *are* deterministic
state machines (SMR-compatible) and services that are not.  We provide:

* :class:`KVStoreService` — a deterministic key-value store, usable under
  both SMR and primary-backup;
* :class:`CounterService` — a minimal deterministic service for tests;
* :class:`SessionTokenService` — a service with inherent non-determinism
  (it mints random session tokens), which diverges under SMR but
  replicates perfectly under primary-backup.  This is the class of
  service that motivates FORTRESS (§1: PB "is suited to replicating any
  service without having to deal with sources of non-determinism").

A service processes request dicts of the form ``{"op": ..., ...args}``
and returns a response dict ``{"ok": bool, ...}``.  State can be
snapshotted, restored, and digested for state-transfer and agreement
checks.
"""

from __future__ import annotations

import copy
import hashlib
import random
from abc import ABC, abstractmethod
from typing import Any, Mapping

from ..crypto.signatures import canonical_bytes


class Service(ABC):
    """Interface every replicated service implements."""

    @abstractmethod
    def apply(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Execute one request against the service state."""

    @abstractmethod
    def snapshot(self) -> Any:
        """Return a deep, self-contained copy of the service state."""

    @abstractmethod
    def restore(self, state: Any) -> None:
        """Replace the service state with a snapshot."""

    def digest(self) -> str:
        """Stable hash of the current state (for agreement checks)."""
        return hashlib.sha256(canonical_bytes(self.snapshot())).hexdigest()

    @property
    def deterministic(self) -> bool:
        """Whether identical request sequences yield identical states."""
        return True


class KVStoreService(Service):
    """Deterministic key-value store.

    Operations: ``get``, ``put``, ``delete``, ``incr``, ``keys``.
    """

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.ops_applied = 0

    def apply(self, request: Mapping[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        key = request.get("key")
        self.ops_applied += 1
        if op == "get":
            if key in self._data:
                return {"ok": True, "value": self._data[key]}
            return {"ok": False, "error": "not_found"}
        if op == "put":
            self._data[key] = request.get("value")
            return {"ok": True}
        if op == "delete":
            existed = self._data.pop(key, None) is not None
            return {"ok": True, "existed": existed}
        if op == "incr":
            value = self._data.get(key, 0)
            if not isinstance(value, int):
                return {"ok": False, "error": "not_an_integer"}
            value += int(request.get("by", 1))
            self._data[key] = value
            return {"ok": True, "value": value}
        if op == "keys":
            return {"ok": True, "keys": sorted(self._data)}
        self.ops_applied -= 1
        return {"ok": False, "error": f"unknown_op:{op}"}

    def snapshot(self) -> dict[str, Any]:
        # Attack-only runs sync empty stores at respawn rate: skip the
        # deepcopy machinery when there is nothing to copy.
        data = self._data
        return {"data": copy.deepcopy(data) if data else {}, "ops": self.ops_applied}

    def restore(self, state: Any) -> None:
        data = state["data"]
        self._data = copy.deepcopy(data) if data else {}
        self.ops_applied = state["ops"]


class CounterService(Service):
    """A single integer register supporting ``add`` and ``read``."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, request: Mapping[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "add":
            self.value += int(request.get("by", 1))
            return {"ok": True, "value": self.value}
        if op == "read":
            return {"ok": True, "value": self.value}
        return {"ok": False, "error": f"unknown_op:{op}"}

    def snapshot(self) -> int:
        return self.value

    def restore(self, state: Any) -> None:
        self.value = int(state)


class SessionTokenService(Service):
    """A non-deterministic service: login mints a random session token.

    Each replica owns a private RNG; two replicas executing the same
    ``login`` request mint *different* tokens, so SMR replicas diverge
    (their clients can never collect matching responses) while a
    primary-backup deployment simply ships the primary's token in its
    state updates.  Used by the ``nondeterministic_service`` example.

    Parameters
    ----------
    seed:
        Seed of this replica's private entropy source.  Distinct replicas
        should receive distinct seeds — that is what models OS-level
        non-determinism.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._sessions: dict[str, str] = {}
        self._store = KVStoreService()

    @property
    def deterministic(self) -> bool:
        return False

    def apply(self, request: Mapping[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "login":
            user = str(request.get("user"))
            token = f"{self._rng.getrandbits(64):016x}"
            self._sessions[user] = token
            return {"ok": True, "token": token}
        if op == "logout":
            user = str(request.get("user"))
            existed = self._sessions.pop(user, None) is not None
            return {"ok": True, "existed": existed}
        if op == "whoami":
            token = request.get("token")
            for user, active in self._sessions.items():
                if active == token:
                    return {"ok": True, "user": user}
            return {"ok": False, "error": "invalid_token"}
        # Authenticated KV access rides on top of the embedded store.
        if op in ("get", "put", "delete", "incr", "keys"):
            token = request.get("token")
            if token not in self._sessions.values():
                return {"ok": False, "error": "unauthenticated"}
            return self._store.apply(request)
        return {"ok": False, "error": f"unknown_op:{op}"}

    def snapshot(self) -> dict[str, Any]:
        return {
            "sessions": dict(self._sessions),
            "store": self._store.snapshot(),
        }

    def restore(self, state: Any) -> None:
        self._sessions = dict(state["sessions"])
        self._store.restore(state["store"])
