"""Ordering state for the SMR request-ordering protocol.

:class:`OrderingState` is the pure bookkeeping core of our PBFT-style
three-phase ordering (pre-prepare → prepare → commit): it tracks, per
``(view, seq)`` slot, which replicas voted in each phase and reports the
phase transitions (*prepared*, *committed*) when quorums fill.  Keeping
it free of any network or process dependency makes the quorum logic
directly unit- and property-testable.

Quorums for ``n = 3f + 1`` replicas:

* **prepared**  — a pre-prepare from the leader plus matching ``prepare``
  votes from ``2f + 1`` distinct replicas (the voter's own vote counts);
* **committed** — ``commit`` votes from ``2f + 1`` distinct replicas.

With ``f = 1, n = 4`` (the paper's S0) both quorums are 3-of-4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ProtocolError


def quorum_size(n: int, f: int) -> int:
    """The ``2f + 1`` vote quorum; validates the ``n > 3f`` requirement."""
    if n <= 3 * f:
        raise ProtocolError(f"SMR needs n > 3f replicas (n={n}, f={f})")
    return 2 * f + 1


class SlotPhase(enum.Enum):
    """Progress of one ``(view, seq)`` ordering slot."""

    EMPTY = "empty"
    PRE_PREPARED = "pre-prepared"
    PREPARED = "prepared"
    COMMITTED = "committed"


@dataclass
class Slot:
    """Vote bookkeeping for one ``(view, seq)`` pair."""

    view: int
    seq: int
    digest: Optional[str] = None
    request: Optional[dict] = None
    prepare_voters: set[str] = field(default_factory=set)
    commit_voters: set[str] = field(default_factory=set)
    phase: SlotPhase = SlotPhase.EMPTY


class OrderingState:
    """Tracks ordering progress across slots for one replica.

    Parameters
    ----------
    n, f:
        Replica count and fault threshold (``n > 3f``).
    """

    def __init__(self, n: int, f: int) -> None:
        self.n = n
        self.f = f
        self.quorum = quorum_size(n, f)
        self._slots: dict[tuple[int, int], Slot] = {}

    def slot(self, view: int, seq: int) -> Slot:
        """Return (creating if needed) the slot for ``(view, seq)``."""
        return self._slots.setdefault((view, seq), Slot(view=view, seq=seq))

    # ------------------------------------------------------------------
    # Phase recording.  Each method returns True when its call caused
    # the slot to *newly* reach the corresponding phase.
    # ------------------------------------------------------------------
    def record_preprepare(
        self, view: int, seq: int, digest: str, request: dict
    ) -> bool:
        """Record the leader's pre-prepare.  Conflicting digests for the
        same slot are rejected (a Byzantine leader equivocating)."""
        slot = self.slot(view, seq)
        if slot.digest is not None:
            return False  # first pre-prepare wins; ignore conflicts/duplicates
        slot.digest = digest
        slot.request = request
        if slot.phase is SlotPhase.EMPTY:
            slot.phase = SlotPhase.PRE_PREPARED
        self._maybe_advance(slot)
        return True

    def record_prepare(self, view: int, seq: int, digest: str, voter: str) -> bool:
        """Record one replica's prepare vote; returns True on newly
        reaching PREPARED."""
        slot = self.slot(view, seq)
        if slot.digest is not None and slot.digest != digest:
            return False
        slot.prepare_voters.add(voter)
        return self._maybe_advance(slot) is SlotPhase.PREPARED

    def record_commit(self, view: int, seq: int, digest: str, voter: str) -> bool:
        """Record one replica's commit vote; returns True on newly
        reaching COMMITTED."""
        slot = self.slot(view, seq)
        if slot.digest is not None and slot.digest != digest:
            return False
        slot.commit_voters.add(voter)
        return self._maybe_advance(slot) is SlotPhase.COMMITTED

    def _maybe_advance(self, slot: Slot) -> Optional[SlotPhase]:
        """Advance the slot's phase if its quorums are now full.

        Returns the phase *newly* reached on this call, if any.
        """
        newly: Optional[SlotPhase] = None
        if (
            slot.phase is SlotPhase.PRE_PREPARED
            and slot.digest is not None
            and len(slot.prepare_voters) >= self.quorum
        ):
            slot.phase = SlotPhase.PREPARED
            newly = SlotPhase.PREPARED
        if (
            slot.phase is SlotPhase.PREPARED
            and len(slot.commit_voters) >= self.quorum
        ):
            slot.phase = SlotPhase.COMMITTED
            # Committing supersedes the prepare transition in the same call.
            newly = SlotPhase.COMMITTED
        return newly

    # ------------------------------------------------------------------
    def committed_slots(self, view: int) -> list[Slot]:
        """All committed slots of ``view`` in seq order."""
        return sorted(
            (
                s
                for (v, _), s in self._slots.items()
                if v == view and s.phase is SlotPhase.COMMITTED
            ),
            key=lambda s: s.seq,
        )

    def drop_view(self, view: int) -> int:
        """Discard all in-flight slots of ``view`` (on view change);
        returns how many were dropped."""
        keys = [key for key in self._slots if key[0] == view]
        for key in keys:
            del self._slots[key]
        return len(keys)

    def __len__(self) -> int:
        return len(self._slots)
