"""Parameter sweeps: the series behind the paper's figures.

A sweep produces :class:`Series` objects — ``(x, EL)`` points with
confidence intervals — that the benchmark harness renders as the rows of
Figure 1 (EL vs α for the five systems) and Figure 2 (EL of S2PO as κ
varies).  Sweeps can use either the analytic formulas or the
Monte-Carlo samplers, so benches can show both side by side.

Monte-Carlo grid points are evaluated through
:class:`repro.mc.executor.SweepExecutor` (the Monte-Carlo face of the
generic :class:`~repro.mc.executor.TaskExecutor` fan-out, which also
hosts the protocol-level campaigns of :mod:`repro.core.campaign`): pass
``workers=N`` to fan the (system × α × κ) grid out across processes.
Every point's seed is a fixed offset of the root seed computed before
dispatch (the pre-engine layout, kept for bit-compatible regression
runs), so sweep results do not depend on the worker count.
``precision=`` switches the points from fixed trial counts to CI-width
targeted early stopping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..analysis.lifetimes import expected_lifetime
from ..core.specs import SystemClass, SystemSpec, paper_systems, s2
from ..errors import AnalysisError
from ..randomization.obfuscation import Scheme
from .executor import MCTask, SweepExecutor

#: Log-spaced α grid covering the paper's "realistic range" (§5).
FIGURE1_ALPHAS = (1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2)

#: κ grid for Figure 2 (log-scale friendly, plus the endpoints the
#: paper's trends single out).
FIGURE2_KAPPAS = (0.0, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass(frozen=True)
class SweepPoint:
    """One (x, EL) sample of a sweep."""

    x: float
    mean: float
    ci_low: float
    ci_high: float


@dataclass
class Series:
    """A labelled curve: EL as a function of the swept parameter."""

    label: str
    x_name: str
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    @property
    def means(self) -> list[float]:
        return [p.mean for p in self.points]


def _needs_mc(
    spec: SystemSpec, trials: Optional[int], precision: Optional[float]
) -> bool:
    """Whether a grid point must be sampled rather than solved."""
    return (
        trials is not None
        or precision is not None
        or (spec.scheme is Scheme.SO and spec.system is SystemClass.S2)
    )


def _evaluate_grid(
    specs: Sequence[SystemSpec],
    seeds: Sequence[int],
    trials: Optional[int],
    precision: Optional[float],
    vectorized: bool,
    workers: Optional[int],
) -> list[tuple[float, float, float]]:
    """(mean, ci_low, ci_high) per spec; MC points fan out in parallel.

    Analytic points are solved inline (they cost microseconds); every
    Monte-Carlo point becomes one :class:`MCTask` and the whole batch
    goes through a single :class:`SweepExecutor`, so parallelism spans
    the full grid rather than one sweep axis at a time.
    """
    tasks: list[MCTask] = []
    mc_slots: list[int] = []
    results: list[Optional[tuple[float, float, float]]] = [None] * len(specs)
    for i, spec in enumerate(specs):
        if _needs_mc(spec, trials, precision):
            tasks.append(
                MCTask(
                    spec=spec,
                    seed=seeds[i],
                    trials=trials or 10_000,
                    vectorized=vectorized,
                    precision=precision,
                )
            )
            mc_slots.append(i)
        else:
            value = expected_lifetime(spec)
            results[i] = (value, value, value)
    if tasks:
        estimates = SweepExecutor(workers).map(tasks)
        for slot, estimate in zip(mc_slots, estimates):
            results[slot] = (
                estimate.mean,
                estimate.stats.ci_low,
                estimate.stats.ci_high,
            )
    return results  # type: ignore[return-value]


def sweep_alpha(
    base: SystemSpec,
    alphas: Sequence[float] = FIGURE1_ALPHAS,
    trials: Optional[int] = None,
    seed: int = 0,
    *,
    precision: Optional[float] = None,
    vectorized: bool = True,
    workers: Optional[int] = None,
) -> Series:
    """EL of ``base`` across an α grid.

    ``trials=None`` uses the analytic formula where one exists (S2SO
    always falls back to Monte-Carlo, as in the paper).
    """
    if not alphas:
        raise AnalysisError("alpha grid must be non-empty")
    specs = [base.with_alpha(alpha) for alpha in alphas]
    seeds = [seed + i for i in range(len(specs))]
    evaluated = _evaluate_grid(specs, seeds, trials, precision, vectorized, workers)
    series = Series(label=base.label, x_name="alpha")
    for alpha, (mean, lo, hi) in zip(alphas, evaluated):
        series.points.append(SweepPoint(x=alpha, mean=mean, ci_low=lo, ci_high=hi))
    return series


def sweep_kappa(
    base: SystemSpec,
    kappas: Sequence[float] = FIGURE2_KAPPAS,
    trials: Optional[int] = None,
    seed: int = 0,
    *,
    precision: Optional[float] = None,
    vectorized: bool = True,
    workers: Optional[int] = None,
) -> Series:
    """EL of ``base`` across a κ grid (S2 systems)."""
    if base.system is not SystemClass.S2:
        raise AnalysisError("kappa sweeps only apply to S2 systems")
    specs = [base.with_kappa(kappa) for kappa in kappas]
    seeds = [seed + i for i in range(len(specs))]
    evaluated = _evaluate_grid(specs, seeds, trials, precision, vectorized, workers)
    series = Series(label=f"{base.label}@alpha={base.alpha:g}", x_name="kappa")
    for kappa, (mean, lo, hi) in zip(kappas, evaluated):
        series.points.append(SweepPoint(x=kappa, mean=mean, ci_low=lo, ci_high=hi))
    return series


def _series_grid(
    bases: Sequence[SystemSpec],
    alphas: Sequence[float],
    trials: Optional[int],
    seed: int,
    precision: Optional[float],
    vectorized: bool,
    workers: Optional[int],
) -> list[Series]:
    """Evaluate several EL-vs-α series as one flat fanned-out grid."""
    if not alphas:
        raise AnalysisError("alpha grid must be non-empty")
    specs: list[SystemSpec] = []
    seeds: list[int] = []
    for i, base in enumerate(bases):
        for j, alpha in enumerate(alphas):
            specs.append(base.with_alpha(alpha))
            seeds.append(seed + 1000 * i + j)
    evaluated = _evaluate_grid(specs, seeds, trials, precision, vectorized, workers)
    out: list[Series] = []
    width = len(alphas)
    for i, base in enumerate(bases):
        series = Series(label=base.label, x_name="alpha")
        for j, alpha in enumerate(alphas):
            mean, lo, hi = evaluated[i * width + j]
            series.points.append(SweepPoint(x=alpha, mean=mean, ci_low=lo, ci_high=hi))
        out.append(series)
    return out


def figure1_series(
    alphas: Sequence[float] = FIGURE1_ALPHAS,
    kappa: float = 0.5,
    trials: Optional[int] = None,
    seed: int = 0,
    *,
    precision: Optional[float] = None,
    vectorized: bool = True,
    workers: Optional[int] = None,
) -> list[Series]:
    """The five curves of Figure 1 (S0PO, S2PO, S1PO, S1SO, S0SO)."""
    return _series_grid(
        paper_systems(kappa=kappa),
        alphas,
        trials,
        seed,
        precision,
        vectorized,
        workers,
    )


def figure2_series(
    alphas: Sequence[float] = FIGURE1_ALPHAS,
    kappas: Sequence[float] = FIGURE2_KAPPAS,
    trials: Optional[int] = None,
    seed: int = 0,
    *,
    precision: Optional[float] = None,
    vectorized: bool = True,
    workers: Optional[int] = None,
) -> list[Series]:
    """Figure 2: one EL-vs-α curve of S2PO per κ value."""
    bases = [s2(Scheme.PO, kappa=kappa) for kappa in kappas]
    out = _series_grid(bases, alphas, trials, seed, precision, vectorized, workers)
    for series, kappa in zip(out, kappas):
        series.label = f"S2PO kappa={kappa:g}"
    return out
