"""Parameter sweeps: the series behind the paper's figures.

A sweep produces :class:`Series` objects — ``(x, EL)`` points with
confidence intervals — that the benchmark harness renders as the rows of
Figure 1 (EL vs α for the five systems) and Figure 2 (EL of S2PO as κ
varies).  Sweeps can use either the analytic formulas or the
Monte-Carlo samplers, so benches can show both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import AnalysisError
from ..analysis.lifetimes import expected_lifetime
from ..randomization.obfuscation import Scheme
from ..core.specs import SystemClass, SystemSpec, paper_systems, s2
from .montecarlo import mc_expected_lifetime

#: Log-spaced α grid covering the paper's "realistic range" (§5).
FIGURE1_ALPHAS = (
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2,
)

#: κ grid for Figure 2 (log-scale friendly, plus the endpoints the
#: paper's trends single out).
FIGURE2_KAPPAS = (0.0, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass(frozen=True)
class SweepPoint:
    """One (x, EL) sample of a sweep."""

    x: float
    mean: float
    ci_low: float
    ci_high: float


@dataclass
class Series:
    """A labelled curve: EL as a function of the swept parameter."""

    label: str
    x_name: str
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    @property
    def means(self) -> list[float]:
        return [p.mean for p in self.points]


def _evaluate(spec: SystemSpec, trials: Optional[int], seed: int) -> tuple[float, float, float]:
    """EL (mean, ci_low, ci_high) of one spec, analytic when possible."""
    use_mc = trials is not None or (
        spec.scheme is Scheme.SO and spec.system is SystemClass.S2
    )
    if use_mc:
        estimate = mc_expected_lifetime(spec, trials=trials or 10_000, seed=seed)
        return estimate.mean, estimate.stats.ci_low, estimate.stats.ci_high
    value = expected_lifetime(spec)
    return value, value, value


def sweep_alpha(
    base: SystemSpec,
    alphas: Sequence[float] = FIGURE1_ALPHAS,
    trials: Optional[int] = None,
    seed: int = 0,
) -> Series:
    """EL of ``base`` across an α grid.

    ``trials=None`` uses the analytic formula where one exists (S2SO
    always falls back to Monte-Carlo, as in the paper).
    """
    if not alphas:
        raise AnalysisError("alpha grid must be non-empty")
    series = Series(label=base.label, x_name="alpha")
    for i, alpha in enumerate(alphas):
        spec = base.with_alpha(alpha)
        mean, lo, hi = _evaluate(spec, trials, seed + i)
        series.points.append(SweepPoint(x=alpha, mean=mean, ci_low=lo, ci_high=hi))
    return series


def sweep_kappa(
    base: SystemSpec,
    kappas: Sequence[float] = FIGURE2_KAPPAS,
    trials: Optional[int] = None,
    seed: int = 0,
) -> Series:
    """EL of ``base`` across a κ grid (S2 systems)."""
    if base.system is not SystemClass.S2:
        raise AnalysisError("kappa sweeps only apply to S2 systems")
    series = Series(label=f"{base.label}@alpha={base.alpha:g}", x_name="kappa")
    for i, kappa in enumerate(kappas):
        spec = base.with_kappa(kappa)
        mean, lo, hi = _evaluate(spec, trials, seed + i)
        series.points.append(SweepPoint(x=kappa, mean=mean, ci_low=lo, ci_high=hi))
    return series


def figure1_series(
    alphas: Sequence[float] = FIGURE1_ALPHAS,
    kappa: float = 0.5,
    trials: Optional[int] = None,
    seed: int = 0,
) -> list[Series]:
    """The five curves of Figure 1 (S0PO, S2PO, S1PO, S1SO, S0SO)."""
    return [
        sweep_alpha(spec, alphas, trials=trials, seed=seed + 1000 * i)
        for i, spec in enumerate(paper_systems(kappa=kappa))
    ]


def figure2_series(
    alphas: Sequence[float] = FIGURE1_ALPHAS,
    kappas: Sequence[float] = FIGURE2_KAPPAS,
    trials: Optional[int] = None,
    seed: int = 0,
) -> list[Series]:
    """Figure 2: one EL-vs-α curve of S2PO per κ value."""
    out = []
    for i, kappa in enumerate(kappas):
        base = s2(Scheme.PO, kappa=kappa)
        series = sweep_alpha(base, alphas, trials=trials, seed=seed + 1000 * i)
        series.label = f"S2PO kappa={kappa:g}"
        out.append(series)
    return out
