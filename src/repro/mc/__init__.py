"""Monte-Carlo harness: samplers, trial runner, parameter sweeps."""

from .models import (
    GeometricPOModel,
    LifetimeModel,
    S0POModel,
    S0SOModel,
    S1POModel,
    S1SOModel,
    S2POModel,
    S2POStepModel,
    S2SOModel,
    model_for,
)
from .montecarlo import MCEstimate, mc_expected_lifetime, mc_survival_curve, run_model
from .sweeps import (
    FIGURE1_ALPHAS,
    FIGURE2_KAPPAS,
    Series,
    SweepPoint,
    figure1_series,
    figure2_series,
    sweep_alpha,
    sweep_kappa,
)

__all__ = [
    "GeometricPOModel",
    "LifetimeModel",
    "S0POModel",
    "S0SOModel",
    "S1POModel",
    "S1SOModel",
    "S2POModel",
    "S2POStepModel",
    "S2SOModel",
    "model_for",
    "MCEstimate",
    "mc_expected_lifetime",
    "mc_survival_curve",
    "run_model",
    "FIGURE1_ALPHAS",
    "FIGURE2_KAPPAS",
    "Series",
    "SweepPoint",
    "figure1_series",
    "figure2_series",
    "sweep_alpha",
    "sweep_kappa",
]
