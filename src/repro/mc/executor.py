"""Task execution engine: process fan-out, streaming, early stopping.

Four cooperating pieces sit behind the figure sweeps and the
protocol-level campaigns:

* :class:`StreamingMoments` — a mergeable running-moments accumulator
  (Chan/Welford) so estimates can be built batch by batch without ever
  materializing the full trial array;
* :func:`estimate_to_precision` — streaming sampling with CI-width-based
  early stopping: callers ask for a target relative precision instead of
  a trial count;
* :class:`TaskExecutor` — the generic seeded fan-out: maps a picklable
  function over a sequence of picklable tasks, preserving input order.
  Tasks must carry their own seeds, fixed *before* dispatch, so results
  are bit-identical for any worker count — including the serial
  fallback used when process pools are unavailable (sandboxes,
  restricted CI runners), and including mid-campaign pool breakage,
  where completed results are kept and only the unfinished tasks re-run
  serially;
* :class:`ExecutorBackend` — *where* the tasks actually run, as a
  strategy object: :class:`SerialBackend` runs them in-process,
  :class:`LocalPoolBackend` fans them over a local process pool with
  the partial-result breakage semantics above.  A multi-host backend
  only has to implement the same two-method surface (``map`` +
  lifecycle) and uphold the same contract: ordered results, one result
  per task, completed work preserved across backend failure;
* :class:`SweepExecutor` — the Monte-Carlo instantiation: one
  :class:`MCTask` per sweep grid point.

The sweeps assign per-point seeds as simple root-seed offsets
(preserving the pre-engine seed layout); that is already deterministic
and worker-count independent, and ``np.random.default_rng`` hashes
integer seeds through ``SeedSequence``, so adjacent offsets still get
decorrelated PCG64 streams.  :func:`derive_point_seed` is the utility
for callers who additionally want structural (multi-index) derivation.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from ..core.specs import SystemSpec
from ..errors import ConfigurationError
from ..metrics.stats import SummaryStats, Z_95
from .models import LifetimeModel, model_for
from .montecarlo import MCEstimate, run_model

#: Trials drawn per streaming batch (small enough to stop promptly once
#: the target precision is reached, large enough to amortize dispatch).
DEFAULT_BATCH = 16_384


def derive_point_seed(root_seed: int, *indices: int) -> int:
    """Deterministic seed for one grid point from its grid indices.

    The root seed and the point's indices are hashed through
    ``np.random.SeedSequence``, so the result depends only on the grid
    position — never on which process evaluates the point.  (Named
    distinctly from :func:`repro.sim.rng.derive_seed`, which derives
    ``random.Random`` seeds from component *names*.)
    """
    if root_seed < 0 or any(i < 0 for i in indices):
        raise ConfigurationError(
            f"seed components must be non-negative, got {root_seed}, {indices}"
        )
    sequence = np.random.SeedSequence([root_seed, *indices])
    return int(sequence.generate_state(1, np.uint64)[0])


@dataclass
class StreamingMoments:
    """Running mean/variance/extrema with O(1) state (mergeable)."""

    count: int = 0
    mean: float = 0.0
    sum_sq_dev: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def update(self, values: np.ndarray) -> None:
        """Fold a batch of samples into the running moments."""
        n = int(values.size)
        if n == 0:
            return
        batch = StreamingMoments(
            count=n,
            mean=float(values.mean()),
            sum_sq_dev=float(((values - values.mean()) ** 2).sum()),
            minimum=float(values.min()),
            maximum=float(values.max()),
        )
        self.merge(batch)

    def merge(self, other: "StreamingMoments") -> None:
        """Chan et al. parallel-merge of two moment accumulators."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.sum_sq_dev = other.sum_sq_dev
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.sum_sq_dev += (
            other.sum_sq_dev + delta * delta * self.count * other.count / total
        )
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def std(self) -> float:
        """Sample (n-1) standard deviation."""
        if self.count < 2:
            return 0.0
        return float(np.sqrt(self.sum_sq_dev / (self.count - 1)))

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the 95% normal interval for the mean."""
        if self.count < 2:
            return float("inf")
        return Z_95 * self.std / float(np.sqrt(self.count))

    def to_stats(self) -> SummaryStats:
        """Freeze the accumulator into a :class:`SummaryStats`.

        A single-sample accumulator reports an *infinite* CI half-width
        (``ci_low = -inf``, ``ci_high = +inf``): one draw carries no
        spread information, and a zero-width interval there is
        indistinguishable from a converged estimate — a ``precision=``
        stopping rule must never be satisfiable by a 1-sample batch.
        """
        if self.count == 0:
            raise ConfigurationError("cannot summarize an empty accumulator")
        half = self.ci_halfwidth
        return SummaryStats(
            n=self.count,
            mean=self.mean,
            std=self.std,
            ci_low=self.mean - half,
            ci_high=self.mean + half,
            minimum=self.minimum,
            maximum=self.maximum,
        )


def estimate_to_precision(
    model: LifetimeModel,
    rel_halfwidth: float = 0.01,
    seed: int = 0,
    *,
    min_trials: int = 1_000,
    max_trials: int = 10_000_000,
    batch_size: int = DEFAULT_BATCH,
    vectorized: bool = True,
) -> MCEstimate:
    """Sample until the 95% CI half-width is ``rel_halfwidth × |mean|``.

    Batches stream into a :class:`StreamingMoments` accumulator, so
    memory stays O(batch) regardless of how many trials the target
    precision ends up costing.  ``converged=False`` on the returned
    estimate means the ``max_trials`` budget ran out first.
    """
    if rel_halfwidth <= 0:
        raise ConfigurationError(f"rel_halfwidth must be positive, got {rel_halfwidth}")
    if not 2 <= min_trials <= max_trials:
        raise ConfigurationError(
            f"need 2 <= min_trials <= max_trials, got {min_trials}, {max_trials}"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    rng = np.random.default_rng(seed)
    moments = StreamingMoments()
    converged = False
    while moments.count < max_trials:
        take = min(batch_size, max_trials - moments.count)
        if vectorized:
            values = model.sample_batch(take, rng)
        else:
            values = model.sample(take, rng)
        moments.update(values.astype(np.float64))
        if moments.count < min_trials:
            continue
        scale = max(abs(moments.mean), np.finfo(float).tiny)
        if moments.ci_halfwidth <= rel_halfwidth * scale:
            converged = True
            break
    return MCEstimate(
        label=model.label,
        spec=model.spec,
        stats=moments.to_stats(),
        trials=moments.count,
        converged=converged,
    )


# ----------------------------------------------------------------------
# Grid fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MCTask:
    """One grid point of a sweep: a spec plus its sampling policy.

    ``seed`` is fixed by the caller before dispatch, which is what makes
    sweep results independent of the worker count.
    """

    spec: SystemSpec
    seed: int
    trials: int = 10_000
    step_level: bool = False
    vectorized: bool = True
    precision: float | None = None
    max_trials: int = 10_000_000

    def run(self) -> MCEstimate:
        """Evaluate this point in the current process."""
        model = model_for(self.spec, step_level=self.step_level)
        if self.precision is not None:
            return estimate_to_precision(
                model,
                rel_halfwidth=self.precision,
                seed=self.seed,
                max_trials=self.max_trials,
                vectorized=self.vectorized,
            )
        return run_model(model, self.trials, self.seed, vectorized=self.vectorized)


def run_task(task: MCTask) -> MCEstimate:
    """Module-level task runner (picklable for process pools)."""
    return task.run()


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker request: None/0/1 → serial; -1 → all cores."""
    if workers is None:
        return 1
    if workers < 0:
        return max(os.cpu_count() or 1, 1)
    return max(workers, 1)


TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


class ExecutorBackend:
    """Where a :class:`TaskExecutor`'s tasks actually run (strategy).

    The contract every backend must uphold, in order of importance:

    * :meth:`map` returns **exactly one result per task, in input
      order** — never duplicated, never reordered, even when the
      backend's transport breaks mid-round;
    * work already completed when the transport breaks is **preserved**,
      and only the unfinished tasks are re-run (on the in-process serial
      path, the universal fallback);
    * task-level exceptions raised by ``fn`` itself propagate unchanged
      — only transport-level failures may be absorbed into a fallback.

    Determinism stays the *caller's* contract (every task carries its
    own pre-derived seed), which is what makes any two backends return
    bit-identical results.  :meth:`open` / :meth:`close` bracket a
    persistent scope: between them the backend may keep expensive
    resources (a process pool, a connection) alive across rounds.

    ``on_result`` (optional on :meth:`map`) streams ``(index, result)``
    pairs back to the caller as results are collected, so journaling
    callers can persist completed work before the round finishes —
    an interrupt then loses only the in-flight tasks.

    Backends that can dispatch one task asynchronously additionally set
    :attr:`supports_submit` and implement :meth:`submit` /
    :meth:`recycle` — the surface the supervision layer
    (:mod:`repro.supervision`) builds timeouts, retries and quarantine
    on.  Synchronous backends leave them unimplemented; supervision then
    degrades to retry-only (a task running in-process cannot be
    interrupted).
    """

    #: Whether :meth:`submit` is available (asynchronous dispatch).
    supports_submit = False

    def map(
        self,
        fn: Callable[[TaskT], ResultT],
        tasks: list,
        on_result: Callable[[int, ResultT], None] | None = None,
    ) -> list:
        raise NotImplementedError

    def submit(self, fn: Callable[[TaskT], ResultT], task):
        """Dispatch one task, returning its ``Future`` (async backends)."""
        raise NotImplementedError(f"{type(self).__name__} cannot submit")

    def recycle(self) -> None:
        """Drop transport resources after a fault (fresh ones next round)."""

    def open(self) -> None:
        """Enter a persistent scope (keep resources across rounds)."""

    def close(self) -> None:
        """Leave the persistent scope and release resources."""


class SerialBackend(ExecutorBackend):
    """Runs every task in-process, in order — the universal fallback.

    Also the explicit choice for ``workers=1``: no pool startup cost,
    no pickling, bit-identical to every other backend by the seeding
    contract.
    """

    def map(
        self,
        fn: Callable[[TaskT], ResultT],
        tasks: list,
        on_result: Callable[[int, ResultT], None] | None = None,
    ) -> list:
        results = []
        for index, task in enumerate(tasks):
            result = fn(task)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class LocalPoolBackend(ExecutorBackend):
    """Fans tasks over a local :class:`ProcessPoolExecutor`.

    Degrades instead of failing, down a ladder: if the pool breaks
    mid-round, completed results are kept and the unfinished tasks
    re-run on a *reduced* pool (half the workers, halving again on
    repeated breakage) before the final in-process serial rung — a
    single dead worker no longer collapses an entire wide campaign to
    serial throughput.  The ladder resets every :meth:`map` round
    (breakage is treated as transient); a broken persistent pool is
    discarded and replaced on the next round.  If the platform refuses
    to start a pool at all, the whole round runs serially.
    """

    supports_submit = True

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ConfigurationError(
                f"LocalPoolBackend needs >= 2 workers, got {workers} "
                "(use SerialBackend for in-process execution)"
            )
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None
        self._persistent = False

    def open(self) -> None:
        self._persistent = True

    def close(self) -> None:
        self._persistent = False
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def submit(self, fn: Callable[[TaskT], ResultT], task):
        """Dispatch one task onto the pool, returning its ``Future``.

        The supervision hook: the pool is kept until :meth:`close` or
        :meth:`recycle` regardless of the persistent scope, because
        submit-driven callers dispatch many single tasks per round.
        Transport failures (pool refused to start, broken pool)
        propagate to the caller — the supervisor owns the recovery
        policy here, not the backend.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool.submit(fn, task)

    def recycle(self) -> None:
        """Discard the live pool; the next round builds a fresh one.

        Uses the broken-pool discipline (no wait, cancel queued work):
        the caller recycles because the pool is suspect — e.g. starved
        by hung workers — and a graceful shutdown would block on exactly
        the tasks that hung.
        """
        if self._pool is not None:
            self._discard_pool(self._pool, broken=True)

    def _acquire_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            pool = ProcessPoolExecutor(max_workers=self.workers)
            if self._persistent:
                self._pool = pool
            return pool
        return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor, broken: bool) -> None:
        """Drop a broken or ephemeral pool (a broken persistent pool is
        replaced on the next :meth:`map` call)."""
        pool.shutdown(wait=not broken, cancel_futures=broken)
        if self._pool is pool:
            self._pool = None

    def _ladder(self) -> list[int]:
        """Pool widths to try, full first, halving down to two workers."""
        widths = []
        width = self.workers
        while width >= 2:
            widths.append(width)
            width //= 2
        return widths

    def _pool_at(self, width: int) -> ProcessPoolExecutor:
        """A pool of ``width`` workers (persistent only at full width)."""
        if width == self.workers:
            return self._acquire_pool()
        return ProcessPoolExecutor(max_workers=width)

    def _run_round(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable[[TaskT], ResultT],
        pending: list[tuple[int, TaskT]],
        results: dict,
        on_result: Callable[[int, ResultT], None] | None,
        width: int,
    ) -> list[tuple[int, TaskT]]:
        """One pool round; returns the (index, task) pairs still unfinished.

        Completed results land in ``results`` keyed by input index —
        exactly once each, even when the pool breaks mid-round.  On
        submit-time breakage the pool is discarded (cancelling queued
        work) *before* returning, so no task can run both in a worker
        and on the next rung.
        """
        broken = False
        unfinished: list[tuple[int, TaskT]] = []
        try:
            try:
                futures = [(idx, task, pool.submit(fn, task)) for idx, task in pending]
            except (OSError, PermissionError, BrokenProcessPool):
                broken = True
                self._discard_pool(pool, broken=True)
                return list(pending)
            for idx, task, future in futures:
                try:
                    result = future.result()
                except (OSError, PermissionError, BrokenProcessPool):
                    # Keep every result already computed; only the tasks
                    # the broken pool never finished descend to the next
                    # rung — in input order, exactly once each.  (Per-
                    # task seeds make the outcome identical either way.)
                    # Task-level errors from inside a healthy worker —
                    # e.g. UnsampleableSpecError — re-raise above
                    # unchanged.
                    broken = True
                    unfinished.append((idx, task))
                    continue
                results[idx] = result
                if on_result is not None:
                    on_result(idx, result)
        except BaseException:
            # An interrupt (Ctrl-C) must not block on a graceful
            # shutdown of in-flight work: cancel and go.
            self._discard_pool(pool, broken=True)
            raise
        finally:
            if broken or not self._persistent or width != self.workers:
                self._discard_pool(pool, broken)
        return unfinished

    def map(
        self,
        fn: Callable[[TaskT], ResultT],
        tasks: list,
        on_result: Callable[[int, ResultT], None] | None = None,
    ) -> list:
        if len(tasks) <= 1:
            results = [fn(task) for task in tasks]
            if on_result is not None:
                for index, result in enumerate(results):
                    on_result(index, result)
            return results
        collected: dict[int, ResultT] = {}
        pending: list[tuple[int, TaskT]] = list(enumerate(tasks))
        ladder = self._ladder()
        for rung, width in enumerate(ladder):
            if len(pending) <= 1:
                break
            try:
                pool = self._pool_at(width)
            except (OSError, PermissionError) as exc:
                warnings.warn(
                    f"process pool unavailable ({exc!r}); falling back to "
                    "serial task execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
                break
            before = len(pending)
            pending = self._run_round(pool, fn, pending, collected, on_result, width)
            if not pending:
                break
            submit_broke = len(pending) == before
            if rung + 1 < len(ladder):
                warnings.warn(
                    f"process pool of {width} workers broke; retrying "
                    f"{len(pending)} unfinished tasks on a reduced pool "
                    f"({ladder[rung + 1]} workers)",
                    RuntimeWarning,
                    stacklevel=3,
                )
            elif submit_broke:
                warnings.warn(
                    "process pool unavailable (pool broke at submit time); "
                    "running this round of tasks serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                warnings.warn(
                    "process pool unavailable (pool broke mid-round); "
                    "running remaining tasks serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
        for idx, task in pending:
            result = fn(task)
            collected[idx] = result
            if on_result is not None:
                on_result(idx, result)
        return [collected[i] for i in range(len(tasks))]


def backend_for(workers: int) -> ExecutorBackend:
    """The default backend for a resolved worker count."""
    if workers <= 1:
        return SerialBackend()
    return LocalPoolBackend(workers)


class TaskExecutor:
    """Maps a picklable function over picklable tasks, in order.

    The generic seeded fan-out behind both the Monte-Carlo sweeps and
    the protocol-level campaigns.  *How* the tasks run is delegated to
    a pluggable :class:`ExecutorBackend`: ``workers`` ≤ 1 (or ``None``)
    selects the in-process :class:`SerialBackend`, larger values a
    :class:`LocalPoolBackend` process pool, and ``backend=`` installs
    any other implementation of the interface (e.g. a future multi-host
    work-queue backend).  Determinism is the caller's contract: every
    task must carry its own pre-derived seed (never derive randomness
    from worker identity), which is what makes all backends return
    bit-identical results.  Backend-transport failures degrade to the
    serial path with a warning instead of failing, preserving every
    result already completed and re-running only the unfinished tasks.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        backend: ExecutorBackend | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.backend = backend if backend is not None else backend_for(self.workers)

    @property
    def _pool(self) -> ProcessPoolExecutor | None:
        """The live process pool, if the backend holds one (tests peek)."""
        return getattr(self.backend, "_pool", None)

    def __enter__(self) -> "TaskExecutor":
        """Hold the backend's resources open across :meth:`map` calls.

        Streaming callers (CI-width early stopping) dispatch many small
        rounds; without a persistent pool every round would pay full
        pool startup.  Outside a ``with`` block each call still uses an
        ephemeral pool.
        """
        self.backend.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the backend's persistent scope, if one is open."""
        self.backend.close()

    def map(
        self,
        fn: Callable[[TaskT], ResultT],
        tasks: Sequence[TaskT],
        on_result: Callable[[int, ResultT], None] | None = None,
    ) -> list[ResultT]:
        """Apply ``fn`` to every task, preserving input order.

        ``fn`` must be a module-level function (picklable) when the
        backend ships tasks out of process.  Task-level exceptions
        raised inside a healthy worker propagate unchanged; only
        backend-transport failures (startup refusal, broken pool)
        trigger the serial fallback.  ``on_result`` streams each result
        as it lands (see :meth:`ExecutorBackend.map`); it is forwarded
        only when set, so backends predating the callback keep working.
        """
        if on_result is None:
            return self.backend.map(fn, list(tasks))
        return self.backend.map(fn, list(tasks), on_result=on_result)


class SweepExecutor(TaskExecutor):
    """Evaluates a batch of :class:`MCTask` grid points, in order.

    The Monte-Carlo face of :class:`TaskExecutor`: every grid point
    carries its own pre-derived seed, so sweep results are bit-identical
    for any worker count.
    """

    def map(
        self,
        fn_or_tasks,
        tasks: Sequence | None = None,
        on_result: Callable[[int, object], None] | None = None,
    ) -> list:
        """Run tasks, preserving input order.

        ``map(tasks)`` is the Monte-Carlo shorthand (each task an
        :class:`MCTask`); the generic ``map(fn, tasks)`` form still
        works, so a :class:`SweepExecutor` remains substitutable
        anywhere a :class:`TaskExecutor` is accepted.
        """
        if tasks is None:
            return super().map(run_task, fn_or_tasks, on_result=on_result)
        return super().map(fn_or_tasks, tasks, on_result=on_result)
