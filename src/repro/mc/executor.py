"""Task execution engine: process fan-out, streaming, early stopping.

Four cooperating pieces sit behind the figure sweeps and the
protocol-level campaigns:

* :class:`StreamingMoments` — a mergeable running-moments accumulator
  (Chan/Welford) so estimates can be built batch by batch without ever
  materializing the full trial array;
* :func:`estimate_to_precision` — streaming sampling with CI-width-based
  early stopping: callers ask for a target relative precision instead of
  a trial count;
* :class:`TaskExecutor` — the generic seeded fan-out: maps a picklable
  function over a sequence of picklable tasks, preserving input order.
  Tasks must carry their own seeds, fixed *before* dispatch, so results
  are bit-identical for any worker count — including the serial
  fallback used when process pools are unavailable (sandboxes,
  restricted CI runners), and including mid-campaign pool breakage,
  where completed results are kept and only the unfinished tasks re-run
  serially;
* :class:`ExecutorBackend` — *where* the tasks actually run, as a
  strategy object: :class:`SerialBackend` runs them in-process,
  :class:`LocalPoolBackend` fans them over a local process pool with
  the partial-result breakage semantics above.  A multi-host backend
  only has to implement the same two-method surface (``map`` +
  lifecycle) and uphold the same contract: ordered results, one result
  per task, completed work preserved across backend failure;
* :class:`SweepExecutor` — the Monte-Carlo instantiation: one
  :class:`MCTask` per sweep grid point.

The sweeps assign per-point seeds as simple root-seed offsets
(preserving the pre-engine seed layout); that is already deterministic
and worker-count independent, and ``np.random.default_rng`` hashes
integer seeds through ``SeedSequence``, so adjacent offsets still get
decorrelated PCG64 streams.  :func:`derive_point_seed` is the utility
for callers who additionally want structural (multi-index) derivation.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from ..core.specs import SystemSpec
from ..errors import ConfigurationError
from ..metrics.stats import SummaryStats, Z_95
from .models import LifetimeModel, model_for
from .montecarlo import MCEstimate, run_model

#: Trials drawn per streaming batch (small enough to stop promptly once
#: the target precision is reached, large enough to amortize dispatch).
DEFAULT_BATCH = 16_384


def derive_point_seed(root_seed: int, *indices: int) -> int:
    """Deterministic seed for one grid point from its grid indices.

    The root seed and the point's indices are hashed through
    ``np.random.SeedSequence``, so the result depends only on the grid
    position — never on which process evaluates the point.  (Named
    distinctly from :func:`repro.sim.rng.derive_seed`, which derives
    ``random.Random`` seeds from component *names*.)
    """
    if root_seed < 0 or any(i < 0 for i in indices):
        raise ConfigurationError(
            f"seed components must be non-negative, got {root_seed}, {indices}"
        )
    sequence = np.random.SeedSequence([root_seed, *indices])
    return int(sequence.generate_state(1, np.uint64)[0])


@dataclass
class StreamingMoments:
    """Running mean/variance/extrema with O(1) state (mergeable)."""

    count: int = 0
    mean: float = 0.0
    sum_sq_dev: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def update(self, values: np.ndarray) -> None:
        """Fold a batch of samples into the running moments."""
        n = int(values.size)
        if n == 0:
            return
        batch = StreamingMoments(
            count=n,
            mean=float(values.mean()),
            sum_sq_dev=float(((values - values.mean()) ** 2).sum()),
            minimum=float(values.min()),
            maximum=float(values.max()),
        )
        self.merge(batch)

    def merge(self, other: "StreamingMoments") -> None:
        """Chan et al. parallel-merge of two moment accumulators."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.sum_sq_dev = other.sum_sq_dev
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.sum_sq_dev += (
            other.sum_sq_dev + delta * delta * self.count * other.count / total
        )
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def std(self) -> float:
        """Sample (n-1) standard deviation."""
        if self.count < 2:
            return 0.0
        return float(np.sqrt(self.sum_sq_dev / (self.count - 1)))

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the 95% normal interval for the mean."""
        if self.count < 2:
            return float("inf")
        return Z_95 * self.std / float(np.sqrt(self.count))

    def to_stats(self) -> SummaryStats:
        """Freeze the accumulator into a :class:`SummaryStats`.

        A single-sample accumulator reports an *infinite* CI half-width
        (``ci_low = -inf``, ``ci_high = +inf``): one draw carries no
        spread information, and a zero-width interval there is
        indistinguishable from a converged estimate — a ``precision=``
        stopping rule must never be satisfiable by a 1-sample batch.
        """
        if self.count == 0:
            raise ConfigurationError("cannot summarize an empty accumulator")
        half = self.ci_halfwidth
        return SummaryStats(
            n=self.count,
            mean=self.mean,
            std=self.std,
            ci_low=self.mean - half,
            ci_high=self.mean + half,
            minimum=self.minimum,
            maximum=self.maximum,
        )


def estimate_to_precision(
    model: LifetimeModel,
    rel_halfwidth: float = 0.01,
    seed: int = 0,
    *,
    min_trials: int = 1_000,
    max_trials: int = 10_000_000,
    batch_size: int = DEFAULT_BATCH,
    vectorized: bool = True,
) -> MCEstimate:
    """Sample until the 95% CI half-width is ``rel_halfwidth × |mean|``.

    Batches stream into a :class:`StreamingMoments` accumulator, so
    memory stays O(batch) regardless of how many trials the target
    precision ends up costing.  ``converged=False`` on the returned
    estimate means the ``max_trials`` budget ran out first.
    """
    if rel_halfwidth <= 0:
        raise ConfigurationError(f"rel_halfwidth must be positive, got {rel_halfwidth}")
    if not 2 <= min_trials <= max_trials:
        raise ConfigurationError(
            f"need 2 <= min_trials <= max_trials, got {min_trials}, {max_trials}"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    rng = np.random.default_rng(seed)
    moments = StreamingMoments()
    converged = False
    while moments.count < max_trials:
        take = min(batch_size, max_trials - moments.count)
        if vectorized:
            values = model.sample_batch(take, rng)
        else:
            values = model.sample(take, rng)
        moments.update(values.astype(np.float64))
        if moments.count < min_trials:
            continue
        scale = max(abs(moments.mean), np.finfo(float).tiny)
        if moments.ci_halfwidth <= rel_halfwidth * scale:
            converged = True
            break
    return MCEstimate(
        label=model.label,
        spec=model.spec,
        stats=moments.to_stats(),
        trials=moments.count,
        converged=converged,
    )


# ----------------------------------------------------------------------
# Grid fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MCTask:
    """One grid point of a sweep: a spec plus its sampling policy.

    ``seed`` is fixed by the caller before dispatch, which is what makes
    sweep results independent of the worker count.
    """

    spec: SystemSpec
    seed: int
    trials: int = 10_000
    step_level: bool = False
    vectorized: bool = True
    precision: float | None = None
    max_trials: int = 10_000_000

    def run(self) -> MCEstimate:
        """Evaluate this point in the current process."""
        model = model_for(self.spec, step_level=self.step_level)
        if self.precision is not None:
            return estimate_to_precision(
                model,
                rel_halfwidth=self.precision,
                seed=self.seed,
                max_trials=self.max_trials,
                vectorized=self.vectorized,
            )
        return run_model(model, self.trials, self.seed, vectorized=self.vectorized)


def run_task(task: MCTask) -> MCEstimate:
    """Module-level task runner (picklable for process pools)."""
    return task.run()


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker request: None/0/1 → serial; -1 → all cores."""
    if workers is None:
        return 1
    if workers < 0:
        return max(os.cpu_count() or 1, 1)
    return max(workers, 1)


TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


class ExecutorBackend:
    """Where a :class:`TaskExecutor`'s tasks actually run (strategy).

    The contract every backend must uphold, in order of importance:

    * :meth:`map` returns **exactly one result per task, in input
      order** — never duplicated, never reordered, even when the
      backend's transport breaks mid-round;
    * work already completed when the transport breaks is **preserved**,
      and only the unfinished tasks are re-run (on the in-process serial
      path, the universal fallback);
    * task-level exceptions raised by ``fn`` itself propagate unchanged
      — only transport-level failures may be absorbed into a fallback.

    Determinism stays the *caller's* contract (every task carries its
    own pre-derived seed), which is what makes any two backends return
    bit-identical results.  :meth:`open` / :meth:`close` bracket a
    persistent scope: between them the backend may keep expensive
    resources (a process pool, a connection) alive across rounds.
    """

    def map(self, fn: Callable[[TaskT], ResultT], tasks: list) -> list:
        raise NotImplementedError

    def open(self) -> None:
        """Enter a persistent scope (keep resources across rounds)."""

    def close(self) -> None:
        """Leave the persistent scope and release resources."""


class SerialBackend(ExecutorBackend):
    """Runs every task in-process, in order — the universal fallback.

    Also the explicit choice for ``workers=1``: no pool startup cost,
    no pickling, bit-identical to every other backend by the seeding
    contract.
    """

    def map(self, fn: Callable[[TaskT], ResultT], tasks: list) -> list:
        return [fn(task) for task in tasks]


class LocalPoolBackend(ExecutorBackend):
    """Fans tasks over a local :class:`ProcessPoolExecutor`.

    Degrades instead of failing: if the platform refuses to start a
    pool, or the pool breaks mid-round, completed results are kept and
    the unfinished tasks re-run serially with a warning.  A broken
    persistent pool is discarded and replaced on the next round.
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ConfigurationError(
                f"LocalPoolBackend needs >= 2 workers, got {workers} "
                "(use SerialBackend for in-process execution)"
            )
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None
        self._persistent = False

    def open(self) -> None:
        self._persistent = True

    def close(self) -> None:
        self._persistent = False
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _acquire_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            pool = ProcessPoolExecutor(max_workers=self.workers)
            if self._persistent:
                self._pool = pool
            return pool
        return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor, broken: bool) -> None:
        """Drop a broken or ephemeral pool (a broken persistent pool is
        replaced on the next :meth:`map` call)."""
        pool.shutdown(wait=not broken, cancel_futures=broken)
        if self._pool is pool:
            self._pool = None

    def map(self, fn: Callable[[TaskT], ResultT], tasks: list) -> list:
        if len(tasks) <= 1:
            return [fn(task) for task in tasks]
        results: list = []
        warned = False
        try:
            pool = self._acquire_pool()
        except (OSError, PermissionError) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); falling back to "
                "serial task execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return [fn(task) for task in tasks]
        broken = False
        try:
            try:
                futures = [pool.submit(fn, task) for task in tasks]
            except (OSError, PermissionError, BrokenProcessPool) as exc:
                # A persistent pool can break *between* map() rounds (a
                # worker died while idle); submit() then raises before
                # every future exists.  Discard the pool FIRST — tasks
                # submitted before the failure must be cancelled so no
                # task can run both in a worker and on the serial
                # fallback — then run the whole round serially.
                broken = True
                self._discard_pool(pool, broken=True)
                warnings.warn(
                    f"process pool unavailable ({exc!r}); running this "
                    "round of tasks serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return [fn(task) for task in tasks]
            for task, future in zip(tasks, futures):
                try:
                    results.append(future.result())
                except (OSError, PermissionError, BrokenProcessPool) as exc:
                    # Keep every result already computed; only the tasks
                    # the broken pool never finished re-run serially —
                    # in input order, exactly once each.  (Per-task
                    # seeds make the outcome identical either way.)
                    # Task-level errors from inside a healthy worker —
                    # e.g. UnsampleableSpecError — re-raise above
                    # unchanged.
                    broken = True
                    if not warned:
                        warnings.warn(
                            f"process pool unavailable ({exc!r}); running "
                            "remaining tasks serially",
                            RuntimeWarning,
                            stacklevel=3,
                        )
                        warned = True
                    results.append(fn(task))
        finally:
            if broken or not self._persistent:
                self._discard_pool(pool, broken)
        return results


def backend_for(workers: int) -> ExecutorBackend:
    """The default backend for a resolved worker count."""
    if workers <= 1:
        return SerialBackend()
    return LocalPoolBackend(workers)


class TaskExecutor:
    """Maps a picklable function over picklable tasks, in order.

    The generic seeded fan-out behind both the Monte-Carlo sweeps and
    the protocol-level campaigns.  *How* the tasks run is delegated to
    a pluggable :class:`ExecutorBackend`: ``workers`` ≤ 1 (or ``None``)
    selects the in-process :class:`SerialBackend`, larger values a
    :class:`LocalPoolBackend` process pool, and ``backend=`` installs
    any other implementation of the interface (e.g. a future multi-host
    work-queue backend).  Determinism is the caller's contract: every
    task must carry its own pre-derived seed (never derive randomness
    from worker identity), which is what makes all backends return
    bit-identical results.  Backend-transport failures degrade to the
    serial path with a warning instead of failing, preserving every
    result already completed and re-running only the unfinished tasks.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        backend: ExecutorBackend | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.backend = backend if backend is not None else backend_for(self.workers)

    @property
    def _pool(self) -> ProcessPoolExecutor | None:
        """The live process pool, if the backend holds one (tests peek)."""
        return getattr(self.backend, "_pool", None)

    def __enter__(self) -> "TaskExecutor":
        """Hold the backend's resources open across :meth:`map` calls.

        Streaming callers (CI-width early stopping) dispatch many small
        rounds; without a persistent pool every round would pay full
        pool startup.  Outside a ``with`` block each call still uses an
        ephemeral pool.
        """
        self.backend.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the backend's persistent scope, if one is open."""
        self.backend.close()

    def map(
        self, fn: Callable[[TaskT], ResultT], tasks: Sequence[TaskT]
    ) -> list[ResultT]:
        """Apply ``fn`` to every task, preserving input order.

        ``fn`` must be a module-level function (picklable) when the
        backend ships tasks out of process.  Task-level exceptions
        raised inside a healthy worker propagate unchanged; only
        backend-transport failures (startup refusal, broken pool)
        trigger the serial fallback.
        """
        return self.backend.map(fn, list(tasks))


class SweepExecutor(TaskExecutor):
    """Evaluates a batch of :class:`MCTask` grid points, in order.

    The Monte-Carlo face of :class:`TaskExecutor`: every grid point
    carries its own pre-derived seed, so sweep results are bit-identical
    for any worker count.
    """

    def map(self, fn_or_tasks, tasks: Sequence | None = None) -> list:
        """Run tasks, preserving input order.

        ``map(tasks)`` is the Monte-Carlo shorthand (each task an
        :class:`MCTask`); the generic ``map(fn, tasks)`` form still
        works, so a :class:`SweepExecutor` remains substitutable
        anywhere a :class:`TaskExecutor` is accepted.
        """
        if tasks is None:
            return super().map(run_task, fn_or_tasks)
        return super().map(fn_or_tasks, tasks)
