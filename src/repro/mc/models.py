"""Monte-Carlo lifetime samplers for every system × scheme combination.

Each model draws i.i.d. system lifetimes (whole steps survived,
Definition 7) directly from the §4 attack model:

* **PO models** are memoryless, so lifetimes are geometric in the
  per-step compromise probability.  :class:`S2POStepModel` additionally
  simulates S2PO step by step (binomial proxy draws, indirect and
  launch-pad coin flips) *without* using the closed-form q — it exists to
  cross-validate the analytic formula.
* **SO models** exploit the without-replacement structure: the position
  of a key in the attacker's random probe order is uniform on
  ``{1..χ}``, so a lifetime is a function of a handful of uniform draws
  — O(1) per trial even when the lifetime is millions of steps.

The S2SO model is the one the paper itself needs Monte-Carlo for (its
state space is path-dependent).  Modelling notes for S2SO:

* once a proxy's key is known, recovery does not change it, so the
  attacker re-compromises that proxy instantly at every later step: from
  the step after the first proxy-key discovery the server pool is probed
  at ``(1+κ)·ω`` per step (full-rate launch pad + the paced indirect
  stream);
* the system falls when the server key is found or when all proxy keys
  are known (the attacker then holds all proxies simultaneously);
* the sub-step λ refinement of the discovery step is neglected (it
  shifts lifetimes by less than one step).

Sampling paths
--------------
Every model exposes three entry points with identical distributions:

``sample(n, rng)``
    The reference path, preserved bit-for-bit from the original
    implementation (regression anchor; select it through
    ``vectorized=False`` in :mod:`repro.mc.montecarlo`).
``sample_batch(n, rng, chunk_size=None)``
    The engine path: fully vectorized numpy sampling, drawn in bounded
    chunks so arbitrarily large trial counts run in constant memory.
    For :class:`S2POStepModel` — the only truly sequential sampler —
    this simulates *blocks* of steps for all pending trials at once and
    retires finished trials between blocks.
``sample_scalar(n, rng)``
    A deliberate one-trial-at-a-time pure-Python loop over
    ``_sample_one``; the throughput baseline that
    ``benchmarks/bench_mc_engine.py`` compares the batch path against.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..analysis.lifetimes import per_step_compromise
from ..core.specs import SystemClass, SystemSpec
from ..core.timing import TimingSpec, launchpad_window_scale
from ..errors import ConfigurationError, UnsampleableSpecError
from ..randomization.obfuscation import Scheme

#: Default number of trials drawn per vectorized chunk.  Bounds peak
#: memory at a few tens of MB per intermediate array while keeping the
#: per-chunk numpy dispatch overhead negligible.
DEFAULT_CHUNK = 1 << 20


class LifetimeModel(ABC):
    """Draws i.i.d. lifetimes (whole steps survived) for one spec.

    ``timing`` selects the timing-aware correction path: per-step
    probabilities and probe budgets are adjusted for a protocol stack's
    respawn/reconnect delays and within-step launch-pad window (see
    :meth:`repro.core.timing.TimingSpec.effective_attack`).  ``None``
    (default) is the paper's pure model — bit-identical to the
    pre-timing implementation.
    """

    #: Per-model override of the vectorized chunk size (step-level
    #: simulation allocates (trials × block) scratch, so it chunks
    #: harder than the O(1)-per-trial samplers).
    batch_chunk: int = DEFAULT_CHUNK

    def __init__(self, spec: SystemSpec, timing: Optional[TimingSpec] = None) -> None:
        self.spec = spec
        self.timing = timing

    @property
    def label(self) -> str:
        """The spec's short label (e.g. ``"S2PO"``)."""
        return self.spec.label

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` independent lifetimes as an int64 array.

        Reference path — bit-identical to the pre-engine implementation
        for a given generator state.
        """

    @abstractmethod
    def _sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single lifetime (scalar kernel for the loop path)."""

    def _sample_vectorized(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """One vectorized chunk; by default the reference path is
        already array-at-a-time, so it is reused directly."""
        return self.sample(n, rng)

    def sample_batch(
        self,
        n: int,
        rng: np.random.Generator,
        chunk_size: int | None = None,
    ) -> np.ndarray:
        """Vectorized sampling of ``n`` lifetimes in bounded chunks."""
        self._check_n(n)
        chunk = self.batch_chunk if chunk_size is None else chunk_size
        if chunk < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk}")
        if n <= chunk:
            return self._sample_vectorized(n, rng)
        parts = []
        remaining = n
        while remaining > 0:
            take = min(chunk, remaining)
            parts.append(self._sample_vectorized(take, rng))
            remaining -= take
        return np.concatenate(parts)

    def sample_scalar(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """One-trial-at-a-time loop path (throughput baseline)."""
        self._check_n(n)
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            out[i] = self._sample_one(rng)
        return out

    def _check_n(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one trial, got {n}")


# ----------------------------------------------------------------------
# PO models (memoryless)
# ----------------------------------------------------------------------
class GeometricPOModel(LifetimeModel):
    """Common machinery: lifetimes are geometric(q) minus one."""

    def __init__(self, spec: SystemSpec, timing: Optional[TimingSpec] = None) -> None:
        if spec.scheme is not Scheme.PO:
            raise ConfigurationError(f"{type(self).__name__} requires a PO spec")
        super().__init__(spec, timing)
        self.q = per_step_compromise(spec, timing)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        # rng.geometric returns the index of the first success (>= 1);
        # whole steps survived is one less.
        return rng.geometric(self.q, size=n).astype(np.int64) - 1

    def _sample_one(self, rng: np.random.Generator) -> int:
        return int(rng.geometric(self.q)) - 1


class S0POModel(GeometricPOModel):
    """S0 (4-replica SMR) under proactive obfuscation."""


class S1POModel(GeometricPOModel):
    """S1 (primary-backup) under proactive obfuscation."""


class S2POModel(GeometricPOModel):
    """S2 (FORTRESS) under proactive obfuscation — fast sampler."""


class S2POStepModel(LifetimeModel):
    """S2PO simulated step by step, independent of the closed form.

    Each step: draw the indirect attack, the per-proxy direct attacks
    and (when a proxy falls) the same-step launch-pad attack, then apply
    Definition 3's compromise conditions.  Used to validate
    :func:`repro.analysis.lifetimes.per_step_compromise_s2_po`.

    The vectorized path simulates ``block_steps`` steps for every
    pending trial at once, retires the trials whose first compromise
    falls inside the block (``argmax`` over the step axis), and repeats
    with the survivors — the chunked fallback for this genuinely
    sequential sampler.
    """

    batch_chunk = 8192
    block_steps = 128

    def __init__(
        self,
        spec: SystemSpec,
        max_steps: int = 10_000_000,
        timing: Optional[TimingSpec] = None,
    ) -> None:
        if spec.scheme is not Scheme.PO or spec.system is not SystemClass.S2:
            raise ConfigurationError("S2POStepModel requires an S2 PO spec")
        super().__init__(spec, timing)
        self.max_steps = max_steps
        if timing is None:
            self._q_indirect = spec.kappa * spec.alpha
            self._alpha_proxy = spec.alpha
            self._q_launchpad = spec.launchpad_fraction * spec.alpha
        else:
            eff = timing.effective_attack(
                spec.alpha,
                spec.chi,
                kappa=spec.kappa,
                launchpad_fraction=spec.launchpad_fraction,
                period=spec.period,
            )
            self._q_indirect = eff.kappa * spec.alpha
            self._alpha_proxy = eff.alpha_direct
            self._q_launchpad = eff.launchpad_fraction * spec.alpha

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.sample_scalar(n, rng)

    def _sample_one(self, rng: np.random.Generator) -> int:
        spec = self.spec
        steps = 0
        timed = self.timing is not None
        while True:
            if steps >= self.max_steps:
                raise UnsampleableSpecError(spec, self.max_steps)
            if timed:
                # Timing-aware structure: indirect + launch pad share
                # one without-replacement pool, so their successes add.
                fallen = rng.binomial(spec.n_proxies, self._alpha_proxy)
                if fallen == spec.n_proxies:
                    break  # all proxies held simultaneously
                q_server = self._q_indirect
                if fallen >= 1:
                    q_server += self._q_launchpad * launchpad_window_scale(fallen)
                if rng.random() < q_server:
                    break  # server key found (indirect or launch pad)
                steps += 1
                continue
            if rng.random() < self._q_indirect:
                break  # indirect attack landed
            fallen = rng.binomial(spec.n_proxies, self._alpha_proxy)
            if fallen == spec.n_proxies:
                break  # all proxies held simultaneously
            if fallen >= 1 and rng.random() < self._q_launchpad:
                break  # same-step launch-pad attack landed
            steps += 1
        return steps

    def _sample_vectorized(self, n: int, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        q_indirect = self._q_indirect
        q_launchpad = self._q_launchpad
        timed = self.timing is not None
        out = np.empty(n, dtype=np.int64)
        pending = np.arange(n)
        survived = 0  # steps already survived by every pending trial
        while pending.size:
            if survived >= self.max_steps:
                raise UnsampleableSpecError(spec, self.max_steps)
            # Never simulate past the budget: the scalar path raises the
            # moment a trial reaches max_steps, so no returned lifetime
            # may equal or exceed it.
            block = min(self.block_steps, self.max_steps - survived)
            m = pending.size
            if timed:
                fallen = rng.binomial(
                    spec.n_proxies, self._alpha_proxy, size=(m, block)
                )
                q_server = np.where(
                    fallen >= 1,
                    q_indirect + q_launchpad * launchpad_window_scale(fallen),
                    q_indirect,
                )
                ended = (rng.random((m, block)) < q_server) | (fallen == spec.n_proxies)
            else:
                indirect = rng.random((m, block)) < q_indirect
                fallen = rng.binomial(
                    spec.n_proxies, self._alpha_proxy, size=(m, block)
                )
                launchpad = (fallen >= 1) & (rng.random((m, block)) < q_launchpad)
                ended = indirect | (fallen == spec.n_proxies) | launchpad
            done = ended.any(axis=1)
            out[pending[done]] = survived + ended.argmax(axis=1)[done]
            pending = pending[~done]
            survived += block
        return out


# ----------------------------------------------------------------------
# SO models (without replacement; O(1) per trial)
# ----------------------------------------------------------------------
class S1SOModel(LifetimeModel):
    """S1 under start-up-only randomization.

    The tier shares one key whose position in the attacker's probe order
    is uniform on ``{1..χ}``; it is found in the step where cumulative
    probes first reach it.
    """

    def __init__(self, spec: SystemSpec, timing: Optional[TimingSpec] = None) -> None:
        if spec.scheme is not Scheme.SO or spec.system is not SystemClass.S1:
            raise ConfigurationError("S1SOModel requires an S1 SO spec")
        super().__init__(spec, timing)
        self._omega = _so_omega(spec, timing)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        positions = rng.integers(1, self.spec.chi + 1, size=n)
        found_step = np.ceil(positions / self._omega).astype(np.int64)
        return found_step - 1

    def _sample_one(self, rng: np.random.Generator) -> int:
        position = int(rng.integers(1, self.spec.chi + 1))
        return math.ceil(position / self._omega) - 1


class S0SOModel(LifetimeModel):
    """S0 under start-up-only randomization.

    Four diverse keys; the system falls when the ``(f+1)``-th key is
    discovered, i.e. at the ``(f+1)``-th order statistic of the per-node
    discovery steps.
    """

    def __init__(self, spec: SystemSpec, timing: Optional[TimingSpec] = None) -> None:
        if spec.scheme is not Scheme.SO or spec.system is not SystemClass.S0:
            raise ConfigurationError("S0SOModel requires an S0 SO spec")
        super().__init__(spec, timing)
        self._omega = _so_omega(spec, timing)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        spec = self.spec
        positions = rng.integers(1, spec.chi + 1, size=(n, spec.n_servers))
        found_steps = np.ceil(positions / self._omega).astype(np.int64)
        found_steps.sort(axis=1)
        fatal = found_steps[:, spec.f]  # 0-indexed: the (f+1)-th discovery
        return fatal - 1

    def _sample_one(self, rng: np.random.Generator) -> int:
        spec = self.spec
        found_steps = sorted(
            math.ceil(int(rng.integers(1, spec.chi + 1)) / self._omega)
            for _ in range(spec.n_servers)
        )
        return found_steps[spec.f] - 1


class S2SOModel(LifetimeModel):
    """S2 under start-up-only randomization (see module docstring)."""

    def __init__(self, spec: SystemSpec, timing: Optional[TimingSpec] = None) -> None:
        if spec.scheme is not Scheme.SO or spec.system is not SystemClass.S2:
            raise ConfigurationError("S2SOModel requires an S2 SO spec")
        super().__init__(spec, timing)
        if timing is None:
            self._omega_proxy = spec.omega
            self._rate_indirect = spec.kappa * spec.omega
            self._rate_combined = (1.0 + spec.kappa) * spec.omega
        else:
            eff = timing.effective_attack(
                spec.alpha, spec.chi, kappa=spec.kappa, period=spec.period
            )
            self._omega_proxy = eff.omega_direct
            self._rate_indirect = eff.indirect_rate
            self._rate_combined = eff.indirect_rate + eff.launchpad_rate

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        spec = self.spec

        proxy_positions = rng.integers(1, spec.chi + 1, size=(n, spec.n_proxies))
        proxy_steps = np.ceil(proxy_positions / self._omega_proxy).astype(np.int64)
        first_proxy = proxy_steps.min(axis=1)
        all_proxies = proxy_steps.max(axis=1)

        server_position = rng.integers(1, spec.chi + 1, size=n).astype(np.float64)

        if self._rate_indirect > 0.0:
            # Server key found by the paced indirect stream alone?
            early = np.ceil(server_position / self._rate_indirect).astype(np.int64)
        else:
            early = np.full(n, np.iinfo(np.int64).max)
        found_early = early <= first_proxy

        # Otherwise the stream accelerates once the first proxy key is
        # known (full-rate launch pad joins in).
        consumed_by_t1 = self._rate_indirect * first_proxy.astype(np.float64)
        remaining = np.maximum(server_position - consumed_by_t1, 0.0)
        late = first_proxy + np.ceil(remaining / self._rate_combined).astype(np.int64)
        # If the key position falls exactly within step T1's combined
        # budget, ceil() of 0 remaining gives T1 itself, which is right.
        late = np.maximum(late, first_proxy)

        server_step = np.where(found_early, early, late)
        fatal = np.minimum(server_step, all_proxies)
        return (fatal - 1).astype(np.int64)

    def _sample_one(self, rng: np.random.Generator) -> int:
        spec = self.spec

        proxy_steps = [
            math.ceil(int(rng.integers(1, spec.chi + 1)) / self._omega_proxy)
            for _ in range(spec.n_proxies)
        ]
        first_proxy = min(proxy_steps)
        all_proxies = max(proxy_steps)

        server_position = float(rng.integers(1, spec.chi + 1))
        if self._rate_indirect > 0.0:
            early = math.ceil(server_position / self._rate_indirect)
            if early <= first_proxy:
                return min(early, all_proxies) - 1

        remaining = max(server_position - self._rate_indirect * first_proxy, 0.0)
        late = first_proxy + math.ceil(remaining / self._rate_combined)
        return min(max(late, first_proxy), all_proxies) - 1


# ----------------------------------------------------------------------
def _so_omega(spec: SystemSpec, timing: Optional[TimingSpec]) -> float:
    """Probes landed per step by one direct stream (ω with no timing)."""
    if timing is None:
        return spec.omega
    return timing.effective_attack(
        spec.alpha, spec.chi, period=spec.period
    ).omega_direct


def model_for(
    spec: SystemSpec,
    step_level: bool = False,
    timing: Optional[TimingSpec] = None,
) -> LifetimeModel:
    """Return the sampler for ``spec``.

    ``step_level=True`` selects the step-by-step S2PO validator instead
    of the closed-form geometric sampler (only meaningful for S2 PO).
    ``timing`` selects the timing-aware correction path (see
    :class:`LifetimeModel`).
    """
    if spec.scheme is Scheme.PO:
        if spec.system is SystemClass.S0:
            return S0POModel(spec, timing=timing)
        if spec.system is SystemClass.S1:
            return S1POModel(spec, timing=timing)
        if step_level:
            return S2POStepModel(spec, timing=timing)
        return S2POModel(spec, timing=timing)
    if spec.system is SystemClass.S0:
        return S0SOModel(spec, timing=timing)
    if spec.system is SystemClass.S1:
        return S1SOModel(spec, timing=timing)
    return S2SOModel(spec, timing=timing)
