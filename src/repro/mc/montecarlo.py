"""Monte-Carlo estimation of expected lifetimes.

Thin runner over the samplers in :mod:`repro.mc.models`: draws trials,
summarizes them with a 95% confidence interval, and exposes the same
Definition-7 lifetime convention as the analytic formulas so the two can
be compared term by term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..metrics.stats import SummaryStats, Z_95
from ..core.specs import SystemSpec
from .models import LifetimeModel, model_for


@dataclass(frozen=True)
class MCEstimate:
    """A Monte-Carlo expected-lifetime estimate.

    Attributes
    ----------
    label:
        Short system label (``"S2PO"`` etc.).
    spec:
        The spec sampled.
    stats:
        Mean / CI / spread of the sampled lifetimes.
    trials:
        Number of trials drawn.
    """

    label: str
    spec: SystemSpec
    stats: SummaryStats
    trials: int

    @property
    def mean(self) -> float:
        """Mean whole steps survived."""
        return self.stats.mean

    def within_ci(self, value: float) -> bool:
        """Whether ``value`` lies inside the 95% interval."""
        return self.stats.ci_low <= value <= self.stats.ci_high


def _summarize_array(values: np.ndarray) -> SummaryStats:
    n = int(values.size)
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if n > 1 else 0.0
    half = Z_95 * std / np.sqrt(n) if n > 1 else 0.0
    return SummaryStats(
        n=n,
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        minimum=float(values.min()),
        maximum=float(values.max()),
    )


def run_model(model: LifetimeModel, trials: int, seed: int = 0) -> MCEstimate:
    """Draw ``trials`` lifetimes from ``model`` and summarize them."""
    if trials < 2:
        raise ConfigurationError(f"need at least 2 trials for a CI, got {trials}")
    rng = np.random.default_rng(seed)
    values = model.sample(trials, rng)
    return MCEstimate(
        label=model.label,
        spec=model.spec,
        stats=_summarize_array(values.astype(np.float64)),
        trials=trials,
    )


def mc_expected_lifetime(
    spec: SystemSpec,
    trials: int = 10_000,
    seed: int = 0,
    step_level: bool = False,
) -> MCEstimate:
    """Monte-Carlo EL of ``spec`` (see :func:`repro.mc.models.model_for`)."""
    return run_model(model_for(spec, step_level=step_level), trials, seed)


def mc_survival_curve(
    spec: SystemSpec, steps: int, trials: int = 10_000, seed: int = 0
) -> np.ndarray:
    """Empirical ``S(t)`` for ``t = 1..steps`` from sampled lifetimes."""
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    rng = np.random.default_rng(seed)
    lifetimes = model_for(spec).sample(trials, rng)
    t = np.arange(1, steps + 1)
    # A run with lifetime L survives t whole steps iff L >= t.
    return (lifetimes[None, :] >= t[:, None]).mean(axis=1)
