"""Monte-Carlo estimation of expected lifetimes.

Thin runner over the samplers in :mod:`repro.mc.models`: draws trials,
summarizes them with a 95% confidence interval, and exposes the same
Definition-7 lifetime convention as the analytic formulas so the two can
be compared term by term.

Two drawing paths are available everywhere:

* ``vectorized=True`` (default) uses each model's chunked
  ``sample_batch`` engine path;
* ``vectorized=False`` replays the original ``sample`` reference path
  bit-for-bit — the regression anchor for the vectorized engine.

Passing ``precision=`` switches from a fixed trial count to streaming
accumulation with CI-width-based early stopping (see
:mod:`repro.mc.executor`): sampling continues until the 95% interval
half-width falls below ``precision × |mean|`` or the trial budget runs
out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.specs import SystemSpec
from ..core.timing import TimingSpec
from ..errors import ConfigurationError
from ..metrics.stats import SummaryStats, Z_95
from .models import LifetimeModel, model_for


@dataclass(frozen=True)
class MCEstimate:
    """A Monte-Carlo expected-lifetime estimate.

    Attributes
    ----------
    label:
        Short system label (``"S2PO"`` etc.).
    spec:
        The spec sampled.
    stats:
        Mean / CI / spread of the sampled lifetimes.
    trials:
        Number of trials drawn.
    converged:
        ``False`` only for precision-targeted runs that hit their trial
        budget before reaching the requested CI half-width.
    """

    label: str
    spec: SystemSpec
    stats: SummaryStats
    trials: int
    converged: bool = True

    @property
    def mean(self) -> float:
        """Mean whole steps survived."""
        return self.stats.mean

    def within_ci(self, value: float) -> bool:
        """Whether ``value`` lies inside the 95% interval."""
        return self.stats.ci_low <= value <= self.stats.ci_high


def summarize_array(values: np.ndarray) -> SummaryStats:
    """95% normal-interval summary of a sample array.

    Single-sample arrays carry an infinite CI half-width (one draw has
    no spread information — see :func:`repro.metrics.stats.summarize`).
    """
    n = int(values.size)
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if n > 1 else 0.0
    half = float(Z_95 * std / np.sqrt(n)) if n > 1 else float("inf")
    return SummaryStats(
        n=n,
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        minimum=float(values.min()),
        maximum=float(values.max()),
    )


# Backwards-compatible alias (pre-engine private name).
_summarize_array = summarize_array


def run_model(
    model: LifetimeModel,
    trials: int,
    seed: int = 0,
    *,
    vectorized: bool = True,
) -> MCEstimate:
    """Draw ``trials`` lifetimes from ``model`` and summarize them."""
    if trials < 2:
        raise ConfigurationError(f"need at least 2 trials for a CI, got {trials}")
    rng = np.random.default_rng(seed)
    if vectorized:
        values = model.sample_batch(trials, rng)
    else:
        values = model.sample(trials, rng)
    return MCEstimate(
        label=model.label,
        spec=model.spec,
        stats=summarize_array(values.astype(np.float64)),
        trials=trials,
    )


def mc_expected_lifetime(
    spec: SystemSpec,
    trials: int = 10_000,
    seed: int = 0,
    step_level: bool = False,
    *,
    vectorized: bool = True,
    precision: float | None = None,
    max_trials: int | None = None,
    timing: Optional[TimingSpec] = None,
) -> MCEstimate:
    """Monte-Carlo EL of ``spec`` (see :func:`repro.mc.models.model_for`).

    With ``precision`` set, ``trials`` is ignored as a count and
    sampling instead streams batches until the 95% CI half-width drops
    below ``precision × |mean|`` (budget: ``max_trials``, default 10M).
    ``timing`` selects the timing-aware samplers (same correction the
    protocol stack exhibits; ``None`` is the paper's pure model).
    """
    model = model_for(spec, step_level=step_level, timing=timing)
    if precision is not None:
        from .executor import estimate_to_precision  # deferred: avoids cycle

        return estimate_to_precision(
            model,
            rel_halfwidth=precision,
            seed=seed,
            max_trials=max_trials or 10_000_000,
            vectorized=vectorized,
        )
    return run_model(model, trials, seed, vectorized=vectorized)


def mc_survival_curve(
    spec: SystemSpec,
    steps: int,
    trials: int = 10_000,
    seed: int = 0,
    *,
    vectorized: bool = True,
    timing: Optional[TimingSpec] = None,
) -> np.ndarray:
    """Empirical ``S(t)`` for ``t = 1..steps`` from sampled lifetimes."""
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    rng = np.random.default_rng(seed)
    model = model_for(spec, timing=timing)
    if vectorized:
        lifetimes = model.sample_batch(trials, rng)
    else:
        lifetimes = model.sample(trials, rng)
    t = np.arange(1, steps + 1)
    # A run with lifetime L survives t whole steps iff L >= t.
    return (lifetimes[None, :] >= t[:, None]).mean(axis=1)
