"""Exception hierarchy shared by all ``repro`` subpackages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly."""


class NetworkError(ReproError):
    """A message could not be routed or a connection operation failed."""


class CryptoError(ReproError):
    """Signature creation or verification failed structurally.

    Note that a signature that simply does not verify is *not* an error
    (verification returns ``False``); this exception signals misuse, e.g.
    an unknown public key.
    """


class ConfigurationError(ReproError):
    """A system specification or model parameter is invalid."""


class ProtocolError(ReproError):
    """A replication or proxy protocol invariant was violated."""


class AnalysisError(ReproError):
    """An analytic model could not be constructed or solved."""
