"""Message representation for the simulated network.

Messages are small tagged records.  ``mtype`` identifies the protocol
message (e.g. ``"client_request"``, ``"state_update"``, ``"pre_prepare"``)
and ``payload`` carries protocol-specific fields in a plain dict so that
messages stay printable and hashable-by-content for signing.

Messages are the single most-allocated protocol object, so the class is
``__slots__``-based (no per-instance dict, no dataclass machinery) and
:meth:`Message.reply` / :meth:`Message.forwarded` *share* payload
mappings with the original instead of copying them — by protocol
convention payloads are written once at construction and never mutated
in flight.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

#: Shared default payload.  Handlers treat payloads as read-only, so an
#: empty default can safely be one object instead of a dict per message.
_EMPTY_PAYLOAD: Mapping[str, Any] = {}

_MSG_IDS = itertools.count(1)
_next_id = _MSG_IDS.__next__  # C-level counter, one call per message


class Message:
    """A datagram travelling between two named processes.

    Attributes
    ----------
    src, dst:
        Process names (network addresses).
    mtype:
        Protocol message type tag.
    payload:
        Message body; by convention a mapping of plain values, treated
        as immutable once the message is constructed.
    msg_id:
        Unique id assigned at construction (monotonically increasing).
    """

    __slots__ = ("src", "dst", "mtype", "payload", "msg_id")

    def __init__(
        self,
        src: str,
        dst: str,
        mtype: str,
        payload: Mapping[str, Any] | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.mtype = mtype
        self.payload = _EMPTY_PAYLOAD if payload is None else payload
        self.msg_id = _next_id()

    def reply(self, mtype: str, payload: Mapping[str, Any] | None = None) -> "Message":
        """Build a response message addressed back to our sender.

        The caller's ``payload`` mapping is adopted as-is (not copied).
        """
        return Message(src=self.dst, dst=self.src, mtype=mtype, payload=payload)

    def forwarded(self, src: str, dst: str) -> "Message":
        """Build a copy of this message re-addressed ``src`` → ``dst``.

        Used by proxies, which relay client requests to servers verbatim;
        the payload mapping is shared with the original, not copied.
        """
        return Message(src=src, dst=dst, mtype=self.mtype, payload=self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, "
            f"mtype={self.mtype!r}, payload={self.payload!r}, "
            f"msg_id={self.msg_id})"
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.mtype} #{self.msg_id} {self.src}->{self.dst}]"
