"""The simulated network connecting all processes.

Two communication styles are provided:

* **Datagrams** (:meth:`Network.send`) — used by the replication and proxy
  protocols.  Fire-and-forget with sampled latency, optional loss, and
  optional partitions.
* **Connections** (:meth:`Network.connect`) — TCP-like streams used by
  attackers, whose *close-on-crash* behaviour is the crash-observation
  channel that de-randomization attacks need (see
  :mod:`repro.net.transport`).

Hot-path notes: every probe and protocol message crosses this file
twice (send + deliver), so the common configuration — fixed latency, no
partitions, no drops — is special-cased: the per-message cost is one
dict lookup, one no-handle schedule, and no latency-model call at all.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import NetworkError
from ..sim.engine import Simulator
from ..sim.process import ProcessState, SimProcess
from .latency import FixedLatency, LatencyModel
from .message import Message
from .transport import Connection

_RUNNING = ProcessState.RUNNING
_BASE_CLOSE_HANDLER = SimProcess.on_connection_closed


class Network:
    """Routes datagrams and manages connections between processes.

    Parameters
    ----------
    sim:
        The driving simulator.
    latency:
        Model sampling one-way delivery delays (default: fixed 1 ms).
    drop_rate:
        Probability that any datagram is silently lost.
    """

    __slots__ = (
        "sim",
        "latency",
        "drop_rate",
        "_rng",
        "_fixed_delay",
        "_processes",
        "_aliases",
        "_close_notify",
        "_connections",
        "_partitioned",
        "messages_sent",
        "messages_delivered",
        "messages_dropped",
        "events_elided",
    )

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        drop_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise NetworkError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.sim = sim
        self.latency = latency or FixedLatency()
        self.drop_rate = drop_rate
        # Fixed-latency fast path: a FixedLatency model consumes no RNG,
        # so its constant can be inlined without perturbing any stream.
        self._fixed_delay: Optional[float] = (
            self.latency.delay if type(self.latency) is FixedLatency else None
        )
        self._rng = sim.rng.stream("network")
        self._processes: dict[str, SimProcess] = {}
        self._aliases: dict[str, str] = {}
        #: Names whose process class overrides ``on_connection_closed``
        #: (cached at registration): only these get closure events under
        #: the fixed-latency elision — see :meth:`connection_closed`.
        self._close_notify: set[str] = set()
        self._connections: dict[str, set[Connection]] = {}
        self._partitioned: set[frozenset[str]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.events_elided = 0  # provably-inert notifications never scheduled

    def _delay(self) -> float:
        """One sampled one-way latency (constant-folded when fixed)."""
        fixed = self._fixed_delay
        return fixed if fixed is not None else self.latency.sample(self._rng)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, process: SimProcess) -> None:
        """Attach a process to the network under its name."""
        if process.name in self._processes:
            raise NetworkError(f"duplicate process name {process.name!r}")
        self._processes[process.name] = process
        self._connections.setdefault(process.name, set())
        if (
            type(process).on_connection_closed is not _BASE_CLOSE_HANDLER
            or "on_connection_closed" in process.__dict__
        ):
            self._close_notify.add(process.name)
        process.add_crash_listener(self._on_endpoint_down)

    def register_alias(self, alias: str, owner: str) -> None:
        """Bind an extra network identity to an existing process.

        Datagrams addressed to ``alias`` are delivered to ``owner``.
        This is how spoofed client identities are modelled: the attacker
        machine answers for many source addresses.
        """
        if alias in self._processes or alias in self._aliases:
            raise NetworkError(f"name {alias!r} already in use")
        if owner not in self._processes:
            raise NetworkError(f"unknown alias owner {owner!r}")
        self._aliases[alias] = owner

    def _resolve(self, name: str) -> Optional[SimProcess]:
        process = self._processes.get(name)
        if process is None:
            owner = self._aliases.get(name)
            if owner is not None:
                process = self._processes.get(owner)
        return process

    def process(self, name: str) -> SimProcess:
        """Look up a registered process by name (aliases resolve)."""
        process = self._resolve(name)
        if process is None:
            raise NetworkError(f"unknown process {name!r}")
        return process

    def knows(self, name: str) -> bool:
        """True if ``name`` is registered (directly or as an alias)."""
        return name in self._processes or name in self._aliases

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Block traffic (both directions) between ``a`` and ``b``."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Remove a partition between ``a`` and ``b`` if present."""
        self._partitioned.discard(frozenset((a, b)))

    def is_blocked(self, a: str, b: str) -> bool:
        """True if traffic between ``a`` and ``b`` is partitioned away."""
        partitioned = self._partitioned
        return bool(partitioned) and frozenset((a, b)) in partitioned

    # ------------------------------------------------------------------
    # Datagrams
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send a datagram; it arrives after one sampled latency.

        Messages to unknown destinations raise; messages across a
        partition or unlucky under ``drop_rate`` are silently dropped,
        like UDP.
        """
        dst = message.dst
        if dst not in self._processes and dst not in self._aliases:
            raise NetworkError(f"message to unknown destination {dst!r}")
        self.messages_sent += 1
        if self._partitioned and self.is_blocked(message.src, dst):
            self.messages_dropped += 1
            return
        if self.drop_rate > 0.0 and self._rng.random() < self.drop_rate:
            self.messages_dropped += 1
            return
        fixed = self._fixed_delay
        self.sim.schedule_fast(
            fixed if fixed is not None else self.latency.sample(self._rng),
            self._deliver,
            message,
        )

    def _deliver(self, message: Message) -> None:
        process = self._processes.get(message.dst)
        if process is None:
            process = self._resolve(message.dst)
        if process is None or process.state is not _RUNNING:
            self.messages_dropped += 1
            return
        allowed = process.allowed_senders  # admission control, inlined
        if allowed is not None and message.src not in allowed:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        process.handle_message(message)

    def broadcast(self, src: str, dsts: list[str], mtype: str, payload: dict) -> None:
        """Send one datagram with identical content to every name in ``dsts``."""
        for dst in dsts:
            self.send(Message(src=src, dst=dst, mtype=mtype, payload=payload))

    def multicast(
        self, src: str, dsts: list[str], mtype: str, payload, strict: bool = True
    ) -> None:
        """Send one identical datagram to several destinations at once.

        Protocol fan-outs (heartbeats, state updates, proxy→server
        forwards, SMR phase broadcasts) dominate the datagram volume, so
        under the common configuration — fixed latency, no loss — the
        whole group shares ONE delivery event and ONE message object.
        This is exactly order-equivalent to a per-destination ``send``
        loop: those sends are issued back to back, so their deliveries
        land at the same timestamp with consecutive sequence numbers,
        i.e. consecutively in ``dsts`` order — precisely how
        ``_deliver_multi`` walks the group.  Sampled-latency or lossy
        networks fall back to the loop (each message must draw its own
        latency/loss there, in per-message order).

        ``strict`` keeps ``send``'s misconfiguration guard: an unknown
        destination raises.  Callers that previously filtered with
        :meth:`knows` (the proxy relay, whose server list may outlive a
        deregistration-free network only in tests) pass ``strict=False``
        to skip unknown names silently instead.
        """
        if self._fixed_delay is None or self.drop_rate > 0.0:
            for dst in dsts:
                if strict or self.knows(dst):
                    self.send(Message(src=src, dst=dst, mtype=mtype, payload=payload))
            return
        processes = self._processes
        aliases = self._aliases
        partitioned = self._partitioned
        targets = []
        sent = 0
        for dst in dsts:
            if dst not in processes and dst not in aliases:
                if strict:
                    raise NetworkError(f"message to unknown destination {dst!r}")
                continue
            sent += 1
            if partitioned and frozenset((src, dst)) in partitioned:
                self.messages_dropped += 1
                continue
            targets.append(dst)
        self.messages_sent += sent
        if targets:
            self.sim.schedule_fast(
                self._fixed_delay,
                self._deliver_multi,
                Message(src=src, dst=targets[0], mtype=mtype, payload=payload),
                targets,
            )

    def _deliver_multi(self, message: Message, dsts: list[str]) -> None:
        """Deliver one shared message to each group member in order."""
        processes = self._processes
        src = message.src
        for dst in dsts:
            process = processes.get(dst)
            if process is None:
                process = self._resolve(dst)
            if process is None or process.state is not _RUNNING:
                self.messages_dropped += 1
                continue
            allowed = process.allowed_senders
            if allowed is not None and src not in allowed:
                self.messages_dropped += 1
                continue
            self.messages_delivered += 1
            process.handle_message(message)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def connect(self, initiator: str, responder: str) -> Optional[Connection]:
        """Open a connection; returns ``None`` if refused.

        A connection is refused when the responder is unknown, not
        currently running, or partitioned away from the initiator.
        """
        processes = self._processes
        if initiator not in processes:
            raise NetworkError(f"unknown initiator {initiator!r}")
        target = processes.get(responder)
        if target is None or target.state is not _RUNNING:
            return None
        if self._partitioned and self.is_blocked(initiator, responder):
            return None
        allowed = target.allowed_connection_initiators  # admission, inlined
        if allowed is not None and initiator not in allowed:
            return None
        connection = Connection(self, initiator, responder)
        connections = self._connections
        connections[initiator].add(connection)
        connections[responder].add(connection)
        return connection

    def deliver_on_connection(
        self, connection: Connection, dst: str, payload: Any
    ) -> None:
        """Deliver connection data to ``dst`` after one latency."""
        fixed = self._fixed_delay
        self.sim.schedule_fast(
            fixed if fixed is not None else self.latency.sample(self._rng),
            self._deliver_connection_data,
            connection,
            dst,
            payload,
        )

    def deliver_probe_to(
        self, connection: Connection, process: SimProcess, payload: Any
    ) -> None:
        """Probe-stream delivery fast path (pre-resolved destination).

        Probe drivers target one fixed process per stream, the registry
        is append-only, and probe targets never carry sink overrides —
        so the per-delivery name resolution and sink lookup of
        :meth:`_deliver_connection_data` can be skipped.  Scheduled by
        :class:`repro.attacker.driver.ProbeDriver`.
        """
        if connection.open and process.state is _RUNNING:
            process.handle_connection_data(connection, payload)

    def _deliver_connection_data(
        self, connection: Connection, dst: str, payload: Any
    ) -> None:
        if not connection.open:
            return
        sinks = connection._sinks
        process = None if sinks is None else sinks.get(dst)
        if process is None:
            process = self._processes.get(dst)
        if process is None or process.state is not _RUNNING:
            return
        process.handle_connection_data(connection, payload)

    def connection_closed(self, connection: Connection, closed_by: str | None) -> None:
        """Propagate a close: notify the peer (or both ends) after latency.

        Crash-driven closes notify both endpoints, but most endpoints
        inherit the base no-op ``on_connection_closed`` (only attackers
        observe closures) — under a fixed latency model, where skipping
        a delivery consumes no RNG, those provably-inert notifications
        are elided instead of scheduled.  A sink override or a
        subclass/instance handler always gets its event.
        """
        connections = self._connections
        schedule_fast = self.sim.schedule_fast
        fixed = self._fixed_delay is not None
        sinks = connection._sinks
        notify = self._close_notify
        for name in (connection.initiator, connection.responder):
            conns = connections.get(name)
            if conns is not None:
                conns.discard(connection)
            if name == closed_by:
                continue
            if fixed and name not in notify and (sinks is None or name not in sinks):
                self.events_elided += 1
                continue  # would reach the base no-op handler: inert
            schedule_fast(self._delay(), self._notify_closed, name, connection)

    def _notify_closed(self, name: str, connection: Connection) -> None:
        sinks = connection._sinks
        process = None if sinks is None else sinks.get(name)
        if process is None:
            process = self._processes.get(name)
        if process is not None and process.state is _RUNNING:
            process.on_connection_closed(connection)

    def connections_of(self, name: str) -> set[Connection]:
        """Snapshot of the open connections of ``name``."""
        return set(self._connections.get(name, ()))

    # ------------------------------------------------------------------
    def _on_endpoint_down(self, process: SimProcess) -> None:
        """Crash/reboot/stop listener: tear down the endpoint's connections."""
        conns = self._connections.get(process.name)
        if conns:
            # Each close() discards the connection from this very set,
            # so draining it needs no snapshot copy.
            while conns:
                connection = next(iter(conns))
                connection.close(closed_by=None)
                conns.discard(connection)  # defensive: close() is idempotent
