"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure1``         regenerate Figure 1 (EL vs α, five systems)
``figure2``         regenerate Figure 2 (EL of S2PO as κ varies)
``trends``          verify the §6 trends and print the κ crossovers
``lifetime``        EL of one system spec (analytic + Monte-Carlo)
``protocol``        run protocol-level lifetime experiments
``protocol-sweep``  (system × scheme × α × κ) protocol campaigns
``scenario``        list / show / run named scenario compositions
``advise``          the paper's §7 design recommendation
``info``            engine/version/cache/scenario/CPU one-liner

Campaign commands (``protocol-sweep``, ``scenario run``) keep a
content-addressed result cache (default ``~/.cache/repro/campaigns``,
overridable with ``--cache-dir`` or ``REPRO_CACHE_DIR``): re-running a
campaign replays finished grid points from disk, bit-identically, and
``--no-cache`` turns the whole mechanism off.

Observability: ``--progress`` streams live campaign status lines to
stderr, ``--metrics-out`` writes the campaign's telemetry snapshot as
JSON, ``--trace-out`` records phase spans as JSONL, and the global
``-v``/``-q`` flags control the shared ``repro`` logger.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Optional, Sequence

from .analysis.lifetimes import expected_lifetime
from .analysis.orderings import (
    kappa_crossover_s2_vs_s0,
    kappa_crossover_s2_vs_s1,
    lifetimes_at,
    verify_paper_trends,
)
from .cache import ResultCache, atomic_write_text
from .cache.keys import ENGINE_VERSION
from .core.campaign import (
    CampaignInterrupted,
    CampaignResult,
    campaign_grid,
    campaign_record,
    run_campaign,
    run_scenario_campaign,
)
from .core.experiment import estimate_protocol_lifetime
from .core.specs import SystemClass, SystemSpec
from .core.timing import TimingSpec
from .errors import ReproError
from .log import configure_logging
from .mc.montecarlo import mc_expected_lifetime
from .mc.sweeps import FIGURE1_ALPHAS, FIGURE2_KAPPAS, figure1_series, figure2_series
from .randomization.obfuscation import Scheme
from .reporting.tables import (
    format_quantity,
    render_campaign_table,
    render_failure_manifest,
    render_series_table,
    render_table,
)
from .scenarios import all_scenarios, get_scenario
from .supervision import ChaosSpec, SupervisionPolicy
from .telemetry import ProgressReporter, disable_tracing, enable_tracing

#: Default result-cache root for campaign commands (under ``$HOME``).
DEFAULT_CACHE_DIR = pathlib.Path("~/.cache/repro/campaigns")


def _spec_from_args(args: argparse.Namespace) -> SystemSpec:
    return SystemSpec(
        system=SystemClass[args.system.upper()],
        scheme=Scheme[args.scheme.upper()],
        alpha=args.alpha,
        kappa=args.kappa,
        entropy_bits=args.entropy_bits,
    )


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--system", choices=["s0", "s1", "s2"], default="s2")
    parser.add_argument("--scheme", choices=["po", "so"], default="po")
    parser.add_argument("--alpha", type=float, default=1e-3)
    parser.add_argument("--kappa", type=float, default=0.5)
    parser.add_argument("--entropy-bits", type=int, default=16)


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan Monte-Carlo grid points across N processes "
        "(-1 = all cores; default serial)",
    )
    parser.add_argument(
        "--precision",
        type=float,
        default=None,
        help="target relative 95%% CI half-width per Monte-Carlo point "
        "(early stopping instead of a fixed trial count)",
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache root (default: $REPRO_CACHE_DIR, falling back "
        f"to {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the campaign result cache",
    )


def _resolve_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """The result cache a campaign command should run with.

    Resolution order: ``--no-cache`` disables caching outright; then
    ``--cache-dir``; then ``REPRO_CACHE_DIR``; then the default
    under ``~/.cache``.
    """
    if args.no_cache:
        return None
    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        root = DEFAULT_CACHE_DIR.expanduser()
    return ResultCache(root)


def _print_cache_summary(cache: Optional[ResultCache]) -> None:
    if cache is None:
        return
    print(f"result cache: {cache.hits} hits, {cache.misses} misses " f"({cache.root})")


def _add_supervision_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fault tolerance")
    group.add_argument(
        "--supervise",
        action="store_true",
        help="wrap the executor in the supervision layer (retries with "
        "seed-derived backoff, poison-task quarantine); implied by the "
        "other fault-tolerance flags",
    )
    group.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="total attempts per task before quarantine (default 3)",
    )
    group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget; hung tasks are abandoned and "
        "retried (needs --workers >= 2: in-process tasks cannot be "
        "interrupted)",
    )
    group.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject seeded faults, e.g. 'seed=7,crash=0.2,hang=0.1,"
        "transient=0.3,poison=0.05,transient_attempts=2' — a "
        "deterministic harness for exercising the supervision paths",
    )
    group.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="crash-safe journal of completed task batches (enables "
        "--resume after a kill)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="replay the --journal (and result cache) and dispatch only "
        "missing work",
    )
    group.add_argument(
        "--failure-manifest",
        default=None,
        metavar="PATH",
        help="write quarantined tasks and retry/timeout tallies as JSON",
    )


def _resolve_supervision(
    args: argparse.Namespace,
) -> tuple[Optional[SupervisionPolicy], Optional[ChaosSpec]]:
    """Build the supervision policy + chaos spec the flags imply.

    Any fault-tolerance flag (other than the journal, which works
    unsupervised) turns supervision on; ``--resume`` requires
    ``--journal``.
    """
    if args.resume and args.journal is None:
        raise ReproError("--resume needs --journal PATH to replay")
    chaos = ChaosSpec.parse(args.chaos) if args.chaos is not None else None
    wants = (
        args.supervise
        or args.retries is not None
        or args.task_timeout is not None
        or args.failure_manifest is not None
        or chaos is not None
    )
    if not wants:
        return None, None
    policy_kwargs = {}
    if args.retries is not None:
        policy_kwargs["max_attempts"] = args.retries
    if args.task_timeout is not None:
        policy_kwargs["task_timeout"] = args.task_timeout
    return SupervisionPolicy(**policy_kwargs), chaos


def _print_supervision_summary(
    result: CampaignResult, manifest_path: Optional[str]
) -> None:
    if not result.supervised:
        return
    print(
        f"supervision: {result.retries} retries, {result.timeouts} "
        f"timeouts, {result.quarantined} quarantined"
    )
    if result.failures:
        print(render_failure_manifest(result.failures))
    if manifest_path is not None:
        print(f"failure manifest written to {manifest_path}")


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--progress",
        action="store_true",
        help="stream live progress lines (runs, censoring, CI width, "
        "events/sec) to stderr while the campaign runs",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the campaign's telemetry snapshot (counters, gauges, "
        "histograms) as JSON after the run",
    )
    group.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="append orchestration phase spans (prepare/dispatch/fold) "
        "as JSONL to PATH",
    )


def _telemetry_progress(
    args: argparse.Namespace, label: str
) -> Optional[ProgressReporter]:
    return ProgressReporter(label=label) if args.progress else None


def _emit_metrics(result: CampaignResult, args: argparse.Namespace):
    """Handle ``--metrics-out``; returns the snapshot (for the record).

    Telemetry is a side channel: a failed snapshot write is reported but
    never sinks a finished campaign.
    """
    if args.metrics_out is None:
        return None
    snapshot = result.metrics_snapshot()
    try:
        atomic_write_text(
            pathlib.Path(args.metrics_out),
            json.dumps(snapshot.as_dict(), indent=2) + "\n",
        )
    except OSError as exc:
        print(f"error: cannot write metrics snapshot: {exc}", file=sys.stderr)
        return snapshot
    print(f"metrics snapshot written to {args.metrics_out}")
    return snapshot


def _report_interrupt(exc: CampaignInterrupted, args: argparse.Namespace) -> int:
    """Standard exit path for an interrupted campaign (exit code 130)."""
    partial = exc.partial
    print(f"\ninterrupted: {exc}", file=sys.stderr)
    if len(partial):
        print(
            f"{len(partial)} grid points completed before the interrupt",
            file=sys.stderr,
        )
    if getattr(args, "journal", None) is not None:
        print(
            "re-run with --resume to dispatch only the missing work",
            file=sys.stderr,
        )
    return 130


def cmd_figure1(args: argparse.Namespace) -> int:
    series = figure1_series(
        FIGURE1_ALPHAS,
        kappa=args.kappa,
        trials=args.mc_trials,
        precision=args.precision,
        workers=args.workers,
    )
    use_mc = args.mc_trials is not None or args.precision is not None
    if args.precision is not None:
        method = f"Monte-Carlo @ {args.precision:g} rel. CI"
    elif args.mc_trials:
        method = f"Monte-Carlo x{args.mc_trials}"
    else:
        method = "analytic"
    print(
        render_series_table(
            series,
            x_header="alpha",
            title=f"Figure 1 ({method}): EL vs alpha [chi=2^16, kappa={args.kappa}]",
            with_ci=use_mc,
        )
    )
    return 0


def cmd_figure2(args: argparse.Namespace) -> int:
    series = figure2_series(
        FIGURE1_ALPHAS,
        FIGURE2_KAPPAS,
        trials=args.mc_trials,
        precision=args.precision,
        workers=args.workers,
    )
    print(
        render_series_table(
            series,
            x_header="alpha",
            title="Figure 2: EL of S2PO vs alpha, one curve per kappa",
        )
    )
    return 0


def cmd_trends(args: argparse.Namespace) -> int:
    reports = verify_paper_trends(kappa=args.kappa)
    print(
        render_table(
            ["trend", "statement", "verdict", "evidence"],
            [
                [r.name, r.statement, "HOLDS" if r.holds else "FAILS", r.detail]
                for r in reports
            ],
            title="Section 6 trends",
        )
    )
    print()
    rows = [
        [
            f"{alpha:g}",
            f"{kappa_crossover_s2_vs_s1(alpha):.6f}",
            f"{kappa_crossover_s2_vs_s0(alpha):.3e}",
        ]
        for alpha in (1e-4, 1e-3, 1e-2)
    ]
    print(
        render_table(
            ["alpha", "kappa* vs S1PO", "kappa* vs S0PO"],
            rows,
            title="Kappa crossovers",
        )
    )
    return 0 if all(r.holds for r in reports) else 1


def cmd_lifetime(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    print(
        f"{spec.label}: alpha={spec.alpha:g}, kappa={spec.kappa:g}, "
        f"chi=2^{spec.entropy_bits} (omega={spec.omega:.2f} probes/step)"
    )
    try:
        print(f"analytic EL   : {format_quantity(expected_lifetime(spec))} steps")
    except ReproError as exc:
        print(f"analytic EL   : unavailable ({exc})")
    estimate = mc_expected_lifetime(
        spec,
        trials=args.trials,
        seed=args.seed,
        vectorized=not args.scalar,
        precision=args.precision,
    )
    note = "" if estimate.converged else ", NOT converged"
    print(
        f"Monte-Carlo EL: {format_quantity(estimate.mean)} steps "
        f"[95% CI {format_quantity(estimate.stats.ci_low)}, "
        f"{format_quantity(estimate.stats.ci_high)}] "
        f"({estimate.trials} trials{note})"
    )
    return 0


def cmd_protocol(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    estimate = estimate_protocol_lifetime(
        spec,
        trials=args.trials,
        max_steps=args.max_steps,
        seed0=args.seed,
        workers=args.workers,
        precision=args.precision,
        timing=TimingSpec.named(args.timing),
    )
    note = "" if estimate.converged else " (NOT converged)"
    print(
        f"{spec.label} protocol-level lifetimes over {estimate.stats.n} seeds "
        f"(chi=2^{spec.entropy_bits}, omega={spec.omega:.1f} probes/step):"
    )
    print(
        f"mean EL  : {estimate.mean_steps:.2f} whole steps "
        f"[95% CI {estimate.stats.ci_low:.2f}, {estimate.stats.ci_high:.2f}]"
        f"{note} "
        f"(min {estimate.stats.minimum:.0f}, max {estimate.stats.maximum:.0f})"
    )
    print(
        f"censored : {estimate.censored} of {estimate.stats.n} "
        f"(budget {args.max_steps} steps; KM mean "
        f"{estimate.km_mean_steps:.2f})"
    )
    if estimate.censored:
        print("note     : censored runs present — mean EL is a lower bound")
    return 0


def _profile_grid_point(
    spec, args: argparse.Namespace, timing: TimingSpec, scenario=None
) -> int:
    """cProfile one grid point serially and print a hotspot table.

    The profiled workload is exactly what one campaign worker executes
    for this point — scenario composition (fault injector, workload,
    adversary strategy) included — so a throughput regression seen in a
    sweep can be diagnosed from the CLI without writing a harness.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    estimate = estimate_protocol_lifetime(
        spec,
        trials=args.trials,
        max_steps=args.max_steps,
        seed0=args.seed,
        workers=1,
        timing=timing,
        scenario=scenario,
    )
    profiler.disable()
    elapsed = sum(row[2] for row in pstats.Stats(profiler).stats.values())
    print(
        f"profiled {spec.label} alpha={spec.alpha:g} kappa={spec.kappa:g}: "
        f"{estimate.stats.n} runs, mean EL {estimate.mean_steps:.2f} steps"
    )
    ranked = sorted(
        pstats.Stats(profiler).stats.items(),
        key=lambda item: item[1][2],
        reverse=True,
    )
    rows = []
    for (filename, lineno, name), (_, ncalls, tottime, cumtime, _) in ranked[:15]:
        where = f"{filename.rsplit('/', 1)[-1]}:{lineno}({name})"
        rows.append([str(ncalls), f"{tottime:.4f}", f"{cumtime:.4f}", where])
    print(
        render_table(
            ["ncalls", "tottime", "cumtime", "function"],
            rows,
            title=f"cProfile top-15 by internal time ({elapsed:.3f}s profiled)",
        )
    )
    return 0


def _write_campaign_record(record: dict, output: str) -> int:
    path = pathlib.Path(output)
    try:
        # Atomic temp-file + rename (shared with the result cache): a
        # crash mid-write can truncate neither a fresh record nor the
        # previous run's file at the same path.
        atomic_write_text(path, json.dumps(record, indent=2) + "\n")
    except OSError as exc:
        # The campaign (possibly minutes of work) already ran; keep
        # the table on stdout and report the write failure cleanly.
        print(f"error: cannot write campaign record: {exc}", file=sys.stderr)
        return 2
    print(f"\ncampaign record written to {path}")
    return 0


def cmd_protocol_sweep(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario) if args.scenario else None
    if scenario is not None:
        # The scenario declares its own grid and timing; an explicit
        # --timing still overrides the preset for what-if sweeps.
        specs = scenario.grid()
        timing_preset = args.timing or scenario.timing
        entropy_bits = scenario.entropy_bits
    else:
        specs = campaign_grid(
            systems=[SystemClass[s.upper()] for s in args.systems],
            schemes=[Scheme[s.upper()] for s in args.schemes],
            alphas=args.alphas,
            kappas=args.kappas,
            entropy_bits=args.entropy_bits,
        )
        timing_preset = args.timing or "paper"
        entropy_bits = args.entropy_bits
    timing = TimingSpec.named(timing_preset)
    if args.profile:
        return _profile_grid_point(specs[0], args, timing, scenario=scenario)
    cache = _resolve_cache(args)
    supervision, chaos = _resolve_supervision(args)
    if args.trace_out is not None:
        enable_tracing(args.trace_out)
    try:
        result = run_campaign(
            specs,
            trials=args.trials,
            max_steps=args.max_steps,
            seed=args.seed,
            workers=args.workers,
            precision=args.precision,
            timing=timing,
            scenario=scenario,
            cache=cache,
            estimator=args.estimator,
            supervision=supervision,
            chaos=chaos,
            journal_path=args.journal,
            resume=args.resume,
            manifest_path=args.failure_manifest,
            progress=_telemetry_progress(args, "protocol-sweep"),
        )
    except CampaignInterrupted as exc:
        return _report_interrupt(exc, args)
    finally:
        if args.trace_out is not None:
            disable_tracing()
    if args.precision is not None:
        method = f"precision {args.precision:g} rel. CI"
    else:
        method = f"{args.trials} seeds/point"
    if args.estimator != "mc":
        method += f", estimator={args.estimator}"
    via = f"scenario={scenario.name}, " if scenario is not None else ""
    print(
        render_campaign_table(
            result.estimates,
            title=(
                f"Protocol campaign ({via}{method}, budget {args.max_steps} "
                f"steps, chi=2^{entropy_bits}, timing={timing_preset}): "
                f"{len(result)} grid points, {result.total_runs} runs, "
                f"{result.total_censored} censored"
            ),
        )
    )
    _print_cache_summary(cache)
    _print_supervision_summary(result, args.failure_manifest)
    metrics = _emit_metrics(result, args)
    if args.trace_out is not None:
        print(f"span trace appended to {args.trace_out}")
    if args.output is not None:
        record = campaign_record(
            result,
            timing=timing,
            timing_preset=timing_preset,
            scenario=scenario,
            metrics=metrics,
        )
        return _write_campaign_record(record, args.output)
    return 0


def cmd_scenario_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in all_scenarios():
        rows.append(
            [
                spec.name,
                str(len(spec.grid())),
                spec.timing,
                spec.adversary.kind,
                spec.faults.kind,
                spec.workload.kind,
            ]
        )
    print(
        render_table(
            ["scenario", "grid", "timing", "adversary", "faults", "workload"],
            rows,
            title=f"Registered scenarios ({len(rows)})",
        )
    )
    return 0


def cmd_scenario_show(args: argparse.Namespace) -> int:
    spec = get_scenario(args.name)
    print(json.dumps(spec.as_dict(), indent=2))
    return 0


def cmd_scenario_run(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.name)
    cache = _resolve_cache(args)
    supervision, chaos = _resolve_supervision(args)
    if args.trace_out is not None:
        enable_tracing(args.trace_out)
    try:
        result = run_scenario_campaign(
            scenario,
            trials=args.trials,
            max_steps=args.max_steps,
            seed=args.seed,
            workers=args.workers,
            batch_size=args.batch_size,
            precision=args.precision,
            cache=cache,
            estimator=args.estimator,
            supervision=supervision,
            chaos=chaos,
            journal_path=args.journal,
            resume=args.resume,
            manifest_path=args.failure_manifest,
            progress=_telemetry_progress(args, scenario.name),
        )
    except CampaignInterrupted as exc:
        return _report_interrupt(exc, args)
    finally:
        if args.trace_out is not None:
            disable_tracing()
    if args.precision is not None:
        method = f"precision {args.precision:g} rel. CI"
    else:
        method = f"{args.trials} seeds/point"
    if args.estimator != "mc":
        method += f", estimator={args.estimator}"
    print(
        render_campaign_table(
            result.estimates,
            title=(
                f"Scenario {scenario.name} ({method}, budget {args.max_steps} "
                f"steps, timing={scenario.timing}, "
                f"adversary={scenario.adversary.kind}, "
                f"faults={scenario.faults.kind}, "
                f"workload={scenario.workload.kind}): "
                f"{len(result)} grid points, {result.total_runs} runs, "
                f"{result.total_censored} censored"
            ),
        )
    )
    _print_cache_summary(cache)
    _print_supervision_summary(result, args.failure_manifest)
    metrics = _emit_metrics(result, args)
    if args.trace_out is not None:
        print(f"span trace appended to {args.trace_out}")
    if args.output is not None:
        record = campaign_record(
            result,
            timing=scenario.timing_spec(),
            timing_preset=scenario.timing,
            scenario=scenario,
            metrics=metrics,
        )
        return _write_campaign_record(record, args.output)
    return 0


def _cache_for_inspection(args: argparse.Namespace) -> ResultCache:
    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        root = DEFAULT_CACHE_DIR.expanduser()
    return ResultCache(root)


def cmd_cache_info(args: argparse.Namespace) -> int:
    cache = _cache_for_inspection(args)
    info = cache.info()
    rows = [
        ["root", info["root"]],
        ["entries", str(info["entries"])],
        ["bytes", str(info["bytes"])],
        ["current engine version", str(info["engine_version"])],
    ]
    for version, count in info["by_version"].items():
        stale = "" if version == str(info["engine_version"]) else " (stale)"
        rows.append([f"entries @ version {version}{stale}", str(count)])
    print(render_table(["field", "value"], rows, title="Result cache"))
    return 0


def cmd_cache_prune(args: argparse.Namespace) -> int:
    cache = _cache_for_inspection(args)
    pruned = cache.prune()
    print(
        f"pruned {pruned['removed']} stale entries "
        f"({pruned['bytes']} bytes) from {cache.root}"
    )
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    el = lifetimes_at(args.alpha, args.kappa)
    rows = [[label, format_quantity(value)] for label, value in el.items()]
    print(
        render_table(
            ["system", "EL (steps)"],
            rows,
            title=f"alpha={args.alpha:g}, kappa={args.kappa:g}",
        )
    )
    if args.dsm_ready:
        print("\nRecommendation: S0 + proactive obfuscation (SMR).")
    else:
        kappa_star = kappa_crossover_s2_vs_s1(args.alpha)
        if args.kappa <= kappa_star:
            print(
                f"\nRecommendation: FORTRESS (S2) — kappa {args.kappa:g} is "
                f"below the crossover {kappa_star:.4f}."
            )
        else:
            print(
                f"\nRecommendation: plain PB + proactive obfuscation (S1PO) — "
                f"kappa {args.kappa:g} exceeds the crossover {kappa_star:.4f}."
            )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from . import __version__

    cache = _cache_for_inspection(args)
    info = cache.info()
    scenarios = all_scenarios()
    rows = [
        ["repro version", __version__],
        ["engine version", str(ENGINE_VERSION)],
        ["python", sys.version.split()[0]],
        ["detected CPUs", str(os.cpu_count() or 1)],
        ["cache root", info["root"]],
        ["cache entries", f"{info['entries']} ({info['bytes']} bytes)"],
        ["cache session stats", json.dumps(cache.stats)],
        ["scenarios", f"{len(scenarios)} registered"],
    ]
    for spec in scenarios:
        rows.append([f"  {spec.name}", f"{len(spec.grid())}-point grid"])
    print(render_table(["field", "value"], rows, title="repro info"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "FORTRESS attack-resilience reproduction "
            "(Clarke & Ezhilchelvan, DSN 2010)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise repro logger verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="lower repro logger verbosity to errors only",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure1", help="EL vs alpha for the five systems")
    p.add_argument("--kappa", type=float, default=0.5)
    p.add_argument("--mc-trials", type=int, default=None)
    _add_engine_arguments(p)
    p.set_defaults(fn=cmd_figure1)

    p = sub.add_parser("figure2", help="EL of S2PO as kappa varies")
    p.add_argument("--mc-trials", type=int, default=None)
    _add_engine_arguments(p)
    p.set_defaults(fn=cmd_figure2)

    p = sub.add_parser("trends", help="verify the Section-6 trends")
    p.add_argument("--kappa", type=float, default=0.5)
    p.set_defaults(fn=cmd_trends)

    p = sub.add_parser("lifetime", help="EL of one system spec")
    _add_spec_arguments(p)
    p.add_argument("--trials", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--precision",
        type=float,
        default=None,
        help="target relative 95%% CI half-width (overrides --trials)",
    )
    p.add_argument(
        "--scalar",
        action="store_true",
        help="use the bit-stable reference sampler instead of the "
        "vectorized engine",
    )
    p.set_defaults(fn=cmd_lifetime)

    p = sub.add_parser("protocol", help="protocol-level lifetime runs")
    _add_spec_arguments(p)
    p.add_argument("--trials", type=int, default=10)
    p.add_argument("--max-steps", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan protocol runs across N processes (-1 = all cores)",
    )
    p.add_argument(
        "--precision",
        type=float,
        default=None,
        help="target relative 95%% CI half-width (early stopping instead "
        "of --trials; refuses heavily censored samples)",
    )
    p.add_argument(
        "--timing",
        choices=TimingSpec.PRESETS,
        default="paper",
        help="deployment timing preset: ideal (zero delays), paper "
        "(realistic defaults) or degraded (slow daemon/WAN/stagger)",
    )
    p.set_defaults(fn=cmd_protocol)

    p = sub.add_parser(
        "protocol-sweep",
        help="(system x scheme x alpha x kappa) protocol campaigns",
    )
    p.add_argument(
        "--systems",
        nargs="+",
        choices=["s0", "s1", "s2"],
        default=["s0", "s1", "s2"],
    )
    p.add_argument(
        "--schemes",
        nargs="+",
        choices=["po", "so"],
        default=["po", "so"],
    )
    p.add_argument(
        "--alphas",
        nargs="+",
        type=float,
        default=[0.1],
        help="attacker-strength grid",
    )
    p.add_argument(
        "--kappas",
        nargs="+",
        type=float,
        default=[0.5],
        help="indirect-attack grid (S2 points only)",
    )
    p.add_argument("--entropy-bits", type=int, default=8)
    p.add_argument("--trials", type=int, default=20, help="seeds per grid point")
    p.add_argument("--max-steps", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the whole campaign across N processes (-1 = all cores)",
    )
    p.add_argument(
        "--precision",
        type=float,
        default=None,
        help="per-point target relative 95%% CI half-width (early stopping "
        "instead of --trials)",
    )
    p.add_argument(
        "--estimator",
        choices=["mc", "splitting", "auto"],
        default="mc",
        help="per-point estimator: plain Monte-Carlo, rare-event "
        "multilevel splitting, or auto (switch to splitting on "
        "censor-heavy points)",
    )
    p.add_argument(
        "--timing",
        choices=TimingSpec.PRESETS,
        default=None,
        help="deployment timing preset applied to every grid point "
        "(default: paper, or the scenario's own preset with "
        "--scenario)",
    )
    p.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="run a registered scenario instead of the grid flags: its "
        "grid, timing, adversary, fault plan and workload apply "
        "(see `repro scenario list`)",
    )
    p.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="persist the campaign as diffable JSON (schema mirrors the "
        "bench records under benchmarks/results/)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the first grid point serially (trials seeds) and "
        "print a hotspot table instead of running the sweep",
    )
    _add_cache_arguments(p)
    _add_supervision_arguments(p)
    _add_telemetry_arguments(p)
    p.set_defaults(fn=cmd_protocol_sweep)

    p = sub.add_parser(
        "scenario",
        help="list / show / run named scenario compositions",
    )
    action = p.add_subparsers(dest="action", required=True)

    q = action.add_parser("list", help="all registered scenarios")
    q.set_defaults(fn=cmd_scenario_list)

    q = action.add_parser("show", help="one scenario's full spec as JSON")
    q.add_argument("name")
    q.set_defaults(fn=cmd_scenario_show)

    q = action.add_parser("run", help="run one scenario as a campaign")
    q.add_argument("name")
    q.add_argument("--trials", type=int, default=20, help="seeds per grid point")
    q.add_argument("--max-steps", type=int, default=300)
    q.add_argument("--seed", type=int, default=0)
    q.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the whole campaign across N processes (-1 = all cores)",
    )
    q.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="seeds per dispatched task batch (results are invariant)",
    )
    q.add_argument(
        "--precision",
        type=float,
        default=None,
        help="per-point target relative 95%% CI half-width (early stopping "
        "instead of --trials)",
    )
    q.add_argument(
        "--estimator",
        choices=["mc", "splitting", "auto"],
        default="mc",
        help="per-point estimator: plain Monte-Carlo, rare-event "
        "multilevel splitting, or auto (switch to splitting on "
        "censor-heavy points)",
    )
    q.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="persist the campaign (with the embedded scenario spec) as "
        "diffable JSON",
    )
    _add_cache_arguments(q)
    _add_supervision_arguments(q)
    _add_telemetry_arguments(q)
    q.set_defaults(fn=cmd_scenario_run)

    p = sub.add_parser(
        "cache",
        help="inspect / prune the campaign result cache",
    )
    cache_action = p.add_subparsers(dest="action", required=True)

    q = cache_action.add_parser(
        "info", help="entry count, bytes and engine-version breakdown"
    )
    q.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache root (default: $REPRO_CACHE_DIR, falling back "
        f"to {DEFAULT_CACHE_DIR})",
    )
    q.set_defaults(fn=cmd_cache_info)

    q = cache_action.add_parser(
        "prune", help="delete entries from stale engine versions"
    )
    q.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache root (default: $REPRO_CACHE_DIR, falling back "
        f"to {DEFAULT_CACHE_DIR})",
    )
    q.set_defaults(fn=cmd_cache_prune)

    p = sub.add_parser("advise", help="SMR or FORTRESS? (paper §7)")
    p.add_argument("--alpha", type=float, default=1e-3)
    p.add_argument("--kappa", type=float, default=0.5)
    p.add_argument("--dsm-ready", action="store_true")
    p.set_defaults(fn=cmd_advise)

    p = sub.add_parser(
        "info",
        help="engine version, cache stats, scenarios and CPU count",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache root (default: $REPRO_CACHE_DIR, falling back "
        f"to {DEFAULT_CACHE_DIR})",
    )
    p.set_defaults(fn=cmd_info)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
