"""Numeric survival analysis for S2SO (FORTRESS under start-up-only
randomization).

The paper falls back to Monte-Carlo where state spaces get large (§5);
S2SO is that case: the server-pool consumption depends on *when* the
first proxy key was discovered, making the chain time-inhomogeneous and
path-dependent.  This module closes the gap with an exact-to-grid
numeric evaluation, used to cross-validate the
:class:`repro.mc.models.S2SOModel` sampler.

Derivation
----------
Let ``D_1..D_np`` be the i.i.d. proxy-key discovery steps, each with CDF
``p(t) = min(1, tα)`` (key position uniform over χ, probed ω = αχ keys
per step), ``T1 = min D_j`` and ``Tall = max D_j``.  The server key
position ``s`` is uniform and independent; by step ``t`` the combined
indirect + launch-pad streams have consumed

    c(t, T1) = κωt + ω·max(0, t − T1)

keys, so ``P(server undiscovered | T1) = max(0, 1 − c(t, T1)/χ)``.
The system survives step ``t`` iff the server key is undiscovered *and*
not all proxy keys are known:

    S(t) = E[ 1{Tall > t} · (1 − c(t, T1)/χ)+ ]

and the joint law of (T1, Tall) follows from inclusion–exclusion:

    P(T1 > x, Tall > t) = (1 − p(x))^np − (p(t) − p(x))^np      (x ≤ t)

Expected lifetime is ``EL = Σ_{t≥1} S(t)`` (Definition 7).  Cost is
O(H²) for horizon ``H = ⌈1/α⌉`` (all proxy keys are certainly known by
then), so this is practical for α ≳ 1e-4.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import AnalysisError


def _validate(alpha: float, kappa: float, n_proxies: int) -> None:
    if not 0.0 < alpha <= 1.0:
        raise AnalysisError(f"alpha must be in (0, 1], got {alpha}")
    if not 0.0 <= kappa <= 1.0:
        raise AnalysisError(f"kappa must be in [0, 1], got {kappa}")
    if n_proxies < 1:
        raise AnalysisError(f"n_proxies must be >= 1, got {n_proxies}")


def s2_so_survival(
    alpha: float, kappa: float, steps: int, n_proxies: int = 3
) -> np.ndarray:
    """``S(t)`` for ``t = 1..steps`` of S2SO (see module derivation).

    Memory/compute are O(steps²); keep ``steps`` ≲ 2·10^4.
    """
    _validate(alpha, kappa, n_proxies)
    if steps < 1:
        raise AnalysisError(f"steps must be >= 1, got {steps}")

    t = np.arange(1, steps + 1, dtype=float)  # shape (T,)
    p_t = np.minimum(1.0, t * alpha)

    # --- T1 > t contribution: no proxy key known yet -------------------
    # survive_server = (1 - kappa*alpha*t)+ ; weight = (1 - p(t))^np.
    no_proxy_weight = (1.0 - p_t) ** n_proxies
    server_alive_early = np.maximum(0.0, 1.0 - kappa * alpha * t)
    survival = no_proxy_weight * server_alive_early

    # --- T1 = t1 <= t contributions -------------------------------------
    # P(T1 = t1, Tall > t) = G(t1-1, t) - G(t1, t) with
    # G(x, t) = (1 - p(x))^np - (p(t) - p(x))^np.
    t1 = np.arange(1, steps + 1, dtype=float)  # shape (T1,)
    p_t1 = np.minimum(1.0, t1 * alpha)
    p_t1_prev = np.minimum(1.0, (t1 - 1.0) * alpha)

    # Grids: rows = t, cols = t1 (only t1 <= t contributes).
    p_t_grid = p_t[:, None]
    G_hi = (1.0 - p_t1_prev[None, :]) ** n_proxies - np.maximum(
        p_t_grid - p_t1_prev[None, :], 0.0
    ) ** n_proxies
    G_lo = (1.0 - p_t1[None, :]) ** n_proxies - np.maximum(
        p_t_grid - p_t1[None, :], 0.0
    ) ** n_proxies
    joint = np.maximum(G_hi - G_lo, 0.0)  # P(T1 = t1, Tall > t)

    consumed = kappa * alpha * t[:, None] + alpha * np.maximum(
        t[:, None] - t1[None, :], 0.0
    )
    server_alive = np.maximum(0.0, 1.0 - consumed)

    mask = t1[None, :] <= t[:, None]
    survival += (joint * server_alive * mask).sum(axis=1)
    return survival


def el_s2_so_numeric(alpha: float, kappa: float, n_proxies: int = 3) -> float:
    """Expected lifetime of S2SO by numeric summation of the survival
    curve (Definition 7: ``EL = Σ_{t≥1} S(t)``).

    Raises
    ------
    AnalysisError
        When the horizon ⌈1/α⌉ would make the O(H²) evaluation
        impractical (use the Monte-Carlo sampler instead, as the paper
        does).
    """
    _validate(alpha, kappa, n_proxies)
    horizon = math.ceil(1.0 / alpha + 1e-12)
    if horizon > 20_000:
        raise AnalysisError(
            f"numeric S2SO evaluation needs O((1/alpha)^2) = O({horizon}^2) work; "
            "use repro.mc.montecarlo.mc_expected_lifetime for such small alpha"
        )
    # All proxy keys are known by `horizon`, and the server key is found
    # at most one pool-exhaustion later; survival is exactly zero past
    # 2*horizon even for kappa = 0.
    curve = s2_so_survival(alpha, kappa, 2 * horizon, n_proxies=n_proxies)
    return float(curve.sum())
