"""Numeric survival analysis for S2SO (FORTRESS under start-up-only
randomization).

The paper falls back to Monte-Carlo where state spaces get large (§5);
S2SO is that case: the server-pool consumption depends on *when* the
first proxy key was discovered, making the chain time-inhomogeneous and
path-dependent.  This module closes the gap with an exact-to-grid
numeric evaluation, used to cross-validate the
:class:`repro.mc.models.S2SOModel` sampler.

Derivation
----------
Let ``D_1..D_np`` be the i.i.d. proxy-key discovery steps, each with CDF
``p(t) = min(1, tα)`` (key position uniform over χ, probed ω = αχ keys
per step), ``T1 = min D_j`` and ``Tall = max D_j``.  The server key
position ``s`` is uniform and independent; by step ``t`` the combined
indirect + launch-pad streams have consumed

    c(t, T1) = κωt + ω·max(0, t − T1)

keys, so ``P(server undiscovered | T1) = max(0, 1 − c(t, T1)/χ)``.
The system survives step ``t`` iff the server key is undiscovered *and*
not all proxy keys are known:

    S(t) = E[ 1{Tall > t} · (1 − c(t, T1)/χ)+ ]

and the joint law of (T1, Tall) follows from inclusion–exclusion:

    P(T1 > x, Tall > t) = (1 − p(x))^np − (p(t) − p(x))^np      (x ≤ t)

Expected lifetime is ``EL = Σ_{t≥1} S(t)`` (Definition 7).  Cost is
O(H²) for horizon ``H = ⌈1/α⌉`` (all proxy keys are certainly known by
then), so this is practical for α ≳ 1e-4.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.timing import TimingSpec
from ..errors import AnalysisError


def _validate(alpha: float, kappa: float, n_proxies: int) -> None:
    if not 0.0 < alpha <= 1.0:
        raise AnalysisError(f"alpha must be in (0, 1], got {alpha}")
    if not 0.0 <= kappa <= 1.0:
        raise AnalysisError(f"kappa must be in [0, 1], got {kappa}")
    if n_proxies < 1:
        raise AnalysisError(f"n_proxies must be >= 1, got {n_proxies}")


def _rates(
    alpha: float,
    kappa: float,
    chi: Optional[int],
    timing: Optional[TimingSpec],
    period: float,
) -> tuple[float, float, float]:
    """Per-step pool fractions of the three probe streams.

    Returns ``(alpha_proxy, indirect_frac, launchpad_frac)``: the
    per-step discovery fraction of one direct proxy stream, of the paced
    indirect stream, and of the full-rate launch pad once armed.  With
    no ``timing`` these are the paper's ``(α, κα, α)``; under a
    :class:`~repro.core.timing.TimingSpec` each is corrected for
    respawn/reconnect losses.
    """
    if timing is None:
        return alpha, kappa * alpha, alpha
    if chi is None:
        raise AnalysisError("timing-aware S2SO evaluation needs chi")
    eff = timing.effective_attack(alpha, chi, kappa=kappa, period=period)
    return eff.alpha_direct, eff.indirect_rate / chi, eff.launchpad_rate / chi


def s2_so_survival(
    alpha: float,
    kappa: float,
    steps: int,
    n_proxies: int = 3,
    *,
    chi: Optional[int] = None,
    timing: Optional[TimingSpec] = None,
    period: float = 1.0,
) -> np.ndarray:
    """``S(t)`` for ``t = 1..steps`` of S2SO (see module derivation).

    With ``timing`` given (requires ``chi``), the per-step pool
    fractions of all three probe streams are corrected for the protocol
    stack's delays (see :meth:`~repro.core.timing.TimingSpec.effective_attack`);
    the derivation is otherwise unchanged.

    Memory/compute are O(steps²); keep ``steps`` ≲ 2·10^4.
    """
    _validate(alpha, kappa, n_proxies)
    if steps < 1:
        raise AnalysisError(f"steps must be >= 1, got {steps}")
    alpha_proxy, indirect_frac, launchpad_frac = _rates(
        alpha, kappa, chi, timing, period
    )

    t = np.arange(1, steps + 1, dtype=float)  # shape (T,)
    p_t = np.minimum(1.0, t * alpha_proxy)

    # --- T1 > t contribution: no proxy key known yet -------------------
    # survive_server = (1 - indirect_frac*t)+ ; weight = (1 - p(t))^np.
    no_proxy_weight = (1.0 - p_t) ** n_proxies
    server_alive_early = np.maximum(0.0, 1.0 - indirect_frac * t)
    survival = no_proxy_weight * server_alive_early

    # --- T1 = t1 <= t contributions -------------------------------------
    # P(T1 = t1, Tall > t) = G(t1-1, t) - G(t1, t) with
    # G(x, t) = (1 - p(x))^np - (p(t) - p(x))^np.
    t1 = np.arange(1, steps + 1, dtype=float)  # shape (T1,)
    p_t1 = np.minimum(1.0, t1 * alpha_proxy)
    p_t1_prev = np.minimum(1.0, (t1 - 1.0) * alpha_proxy)

    # Grids: rows = t, cols = t1 (only t1 <= t contributes).
    p_t_grid = p_t[:, None]
    G_hi = (1.0 - p_t1_prev[None, :]) ** n_proxies - np.maximum(
        p_t_grid - p_t1_prev[None, :], 0.0
    ) ** n_proxies
    G_lo = (1.0 - p_t1[None, :]) ** n_proxies - np.maximum(
        p_t_grid - p_t1[None, :], 0.0
    ) ** n_proxies
    joint = np.maximum(G_hi - G_lo, 0.0)  # P(T1 = t1, Tall > t)

    consumed = indirect_frac * t[:, None] + launchpad_frac * np.maximum(
        t[:, None] - t1[None, :], 0.0
    )
    server_alive = np.maximum(0.0, 1.0 - consumed)

    mask = t1[None, :] <= t[:, None]
    survival += (joint * server_alive * mask).sum(axis=1)
    return survival


def el_s2_so_numeric(
    alpha: float,
    kappa: float,
    n_proxies: int = 3,
    *,
    chi: Optional[int] = None,
    timing: Optional[TimingSpec] = None,
    period: float = 1.0,
) -> float:
    """Expected lifetime of S2SO by numeric summation of the survival
    curve (Definition 7: ``EL = Σ_{t≥1} S(t)``).

    Raises
    ------
    AnalysisError
        When the horizon ⌈1/α⌉ would make the O(H²) evaluation
        impractical (use the Monte-Carlo sampler instead, as the paper
        does).
    """
    _validate(alpha, kappa, n_proxies)
    alpha_proxy, _, launchpad_frac = _rates(alpha, kappa, chi, timing, period)
    horizon = math.ceil(1.0 / alpha_proxy + 1e-12)
    # All proxy keys are known by `horizon`, and the server key is found
    # at most one launch-pad pool-exhaustion later; survival is exactly
    # zero past that even for kappa = 0.
    tail = math.ceil(1.0 / launchpad_frac + 1e-12) if launchpad_frac > 0 else horizon
    if horizon + tail > 40_000:
        # The tail is unbounded too: a slow-respawn TimingSpec can push
        # the launch-pad rate toward zero, so the guard must cover the
        # whole O((horizon + tail)^2) grid, not just the proxy horizon.
        raise AnalysisError(
            f"numeric S2SO evaluation needs O({horizon + tail}^2) work; "
            "use repro.mc.montecarlo.mc_expected_lifetime for this spec"
        )
    curve = s2_so_survival(
        alpha,
        kappa,
        horizon + tail,
        n_proxies=n_proxies,
        chi=chi,
        timing=timing,
        period=period,
    )
    return float(curve.sum())
