"""Re-randomization period extension: S2 under PO with period P > 1.

The paper fixes the re-randomization period P at one unit time-step
(§4.1).  This module generalizes: with P > 1, a proxy compromised in one
step stays in the attacker's hands for the remaining steps of the period
— hosting a *full-rate* launch-pad stream each of those steps — until
the periodic re-randomization cleanses everything at once.

The system is then a genuine multi-state absorbing Markov chain with
transient states ``(phase, k)`` — phase within the period × number of
currently compromised proxies — and two absorbing states distinguishing
the compromise route (server exploited vs all proxies held).  This
exercises the full AMC machinery and quantifies how quickly resilience
decays as re-randomization slows down (``benchmarks/bench_ablation_period.py``).
"""

from __future__ import annotations

import math

from ..errors import AnalysisError
from .markov import AbsorbingMarkovChain

import numpy as np

#: Absorbing state labels of the period chain.
ABSORB_SERVER = "server-compromised"
ABSORB_PROXIES = "all-proxies-compromised"


def build_s2_po_period_chain(
    alpha: float,
    kappa: float,
    launchpad_fraction: float = 1.0,
    n_proxies: int = 3,
    period_steps: int = 1,
) -> AbsorbingMarkovChain:
    """Build the ``(phase, k)`` absorbing chain for S2 with period P.

    Parameters
    ----------
    alpha:
        Per-step direct attack success probability on a fresh node.
    kappa:
        Indirect attack coefficient.
    launchpad_fraction:
        λ — success scale of a launch-pad attack fired *in the same
        step* the hosting proxy fell.  Proxies held from earlier steps
        of the period host full-rate (α) launch-pad attacks.
    n_proxies:
        Size of the proxy tier.
    period_steps:
        P — steps between system-wide re-randomizations.
    """
    if not 0.0 < alpha < 1.0:
        raise AnalysisError(f"alpha must be in (0, 1), got {alpha}")
    if not 0.0 <= kappa <= 1.0:
        raise AnalysisError(f"kappa must be in [0, 1], got {kappa}")
    if period_steps < 1:
        raise AnalysisError(f"period_steps must be >= 1, got {period_steps}")
    if n_proxies < 1:
        raise AnalysisError(f"n_proxies must be >= 1, got {n_proxies}")

    def state_index(phase: int, k: int) -> int:
        return phase * n_proxies + k

    n_states = period_steps * n_proxies  # k in 0..n_proxies-1
    Q = np.zeros((n_states, n_states))
    R = np.zeros((n_states, 2))  # [server, all-proxies]
    labels = [
        f"phase{phase}-k{k}"
        for phase in range(period_steps)
        for k in range(n_proxies)
    ]

    for phase in range(period_steps):
        for k in range(n_proxies):
            row = state_index(phase, k)
            for b in range(n_proxies - k + 1):
                p_b = (
                    math.comb(n_proxies - k, b)
                    * alpha**b
                    * (1.0 - alpha) ** (n_proxies - k - b)
                )
                k_after = k + b
                # Server-compromise hazard of this step: the indirect
                # stream, a full-rate launch pad from a proxy held since
                # an earlier step, and a λ-scaled launch pad from a
                # proxy newly fallen this step (only relevant if no
                # earlier-held proxy exists).
                survive_server = 1.0 - kappa * alpha
                if k >= 1:
                    survive_server *= 1.0 - alpha
                elif b >= 1:
                    survive_server *= 1.0 - launchpad_fraction * alpha
                if k_after == n_proxies:
                    # All proxies in attacker hands: system compromised
                    # (route split: a same-step server hit would also be
                    # compromise; attribute the mass to the proxy route,
                    # which is what Definition 3's third condition
                    # triggers on).
                    R[row, 1] += p_b
                    continue
                R[row, 0] += p_b * (1.0 - survive_server)
                next_phase = (phase + 1) % period_steps
                next_k = 0 if next_phase == 0 else k_after
                Q[row, state_index(next_phase, next_k)] += p_b * survive_server

    return AbsorbingMarkovChain(
        Q,
        R,
        transient_labels=labels,
        absorbing_labels=[ABSORB_SERVER, ABSORB_PROXIES],
    )


def el_s2_po_with_period(
    alpha: float,
    kappa: float,
    launchpad_fraction: float = 1.0,
    n_proxies: int = 3,
    period_steps: int = 1,
) -> float:
    """Expected lifetime (whole steps) of S2 under period-P obfuscation."""
    chain = build_s2_po_period_chain(
        alpha,
        kappa,
        launchpad_fraction=launchpad_fraction,
        n_proxies=n_proxies,
        period_steps=period_steps,
    )
    return chain.expected_lifetime_from(0)


def compromise_route_split(
    alpha: float,
    kappa: float,
    launchpad_fraction: float = 1.0,
    n_proxies: int = 3,
    period_steps: int = 1,
) -> dict[str, float]:
    """Probability the system eventually falls via each route."""
    chain = build_s2_po_period_chain(
        alpha,
        kappa,
        launchpad_fraction=launchpad_fraction,
        n_proxies=n_proxies,
        period_steps=period_steps,
    )
    return chain.absorption_distribution(0)
