"""Analytic expected lifetimes (EL) for the paper's candidate systems.

Definition 7: the expected lifetime is the expected number of **whole**
unit time-steps elapsed until the system is compromised, i.e.
``EL = Σ_{t≥1} S(t)`` where ``S(t)`` is the probability of surviving the
first ``t`` steps.

PO systems are memoryless — every node gets a fresh key each step — so
each has a constant per-step compromise probability ``q`` and
``EL = (1 − q)/q``:

* **S0PO**: 4 diverse replicas, compromise when more than ``f`` fall in
  one step: ``q = P(Bin(4, α) ≥ 2)``.
* **S1PO**: identically randomized PB servers form a single target (the
  primary): ``q = α``.
* **S2PO**: within a step — the indirect attack may succeed (κ·α); the
  direct attacks may compromise proxies (``B ~ Bin(n_p, α)``); all
  proxies falling is compromise; otherwise a proxy compromised this step
  hosts one same-step launch-pad attack (success λ·α).

SO systems remember: probed keys stay eliminated, so the key position is
uniform and per-node survival is *linear*: ``S_node(t) = max(0, 1 − tα)``.

* **S1SO**: single shared key → ``EL = m − α·m(m+1)/2`` with
  ``m = ⌊1/α⌋`` (≈ 1/(2α)).
* **S0SO**: compromise at the second of four key discoveries:
  ``S(t) = Σ_{k≤f} C(4,k) p^k (1−p)^{4−k}`` with ``p = min(1, tα)``
  (≈ 0.4/α for f = 1).
* **S2SO** has a path-dependent state space; use the Monte-Carlo sampler
  (:mod:`repro.mc.models`) as the paper itself does for larger state
  spaces.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.timing import TimingSpec, launchpad_window_scale
from ..errors import AnalysisError
from ..randomization.obfuscation import Scheme
from ..core.specs import SystemClass, SystemSpec


# ----------------------------------------------------------------------
# Per-step compromise probabilities (PO systems)
# ----------------------------------------------------------------------
def per_step_compromise_s0_po(alpha: float, n: int = 4, f: int = 1) -> float:
    """q for S0PO: more than ``f`` of ``n`` replicas fall in one step."""
    _check_alpha(alpha)
    survive = sum(
        math.comb(n, k) * alpha**k * (1.0 - alpha) ** (n - k) for k in range(f + 1)
    )
    return 1.0 - survive


def per_step_compromise_s1_po(alpha: float) -> float:
    """q for S1PO: one attack stream at the (single-key) server tier."""
    _check_alpha(alpha)
    return alpha


def per_step_compromise_s2_po(
    alpha: float,
    kappa: float,
    launchpad_fraction: float = 1.0,
    n_proxies: int = 3,
    per_proxy_launchpad: bool = False,
) -> float:
    """q for S2PO (Definition 3's three compromise routes).

    The step survives only if the indirect attack fails, not all proxies
    fall, and — when at least one proxy fell this step — the same-step
    launch-pad attack (success λ·α) also fails.  With
    ``per_proxy_launchpad`` every fallen proxy hosts its own independent
    launch-pad stream (an ablation; the default single stream matches
    the shared server key pool).
    """
    _check_alpha(alpha)
    if not 0.0 <= kappa <= 1.0:
        raise AnalysisError(f"kappa must be in [0, 1], got {kappa}")
    if not 0.0 <= launchpad_fraction <= 1.0:
        raise AnalysisError(
            f"launchpad_fraction must be in [0, 1], got {launchpad_fraction}"
        )
    survive = 0.0
    for b in range(n_proxies):  # b = n_proxies means all proxies fell: absorbed
        p_b = math.comb(n_proxies, b) * alpha**b * (1.0 - alpha) ** (n_proxies - b)
        if b == 0:
            launchpad_survive = 1.0
        elif per_proxy_launchpad:
            launchpad_survive = (1.0 - launchpad_fraction * alpha) ** b
        else:
            launchpad_survive = 1.0 - launchpad_fraction * alpha
        survive += p_b * launchpad_survive
    survive *= 1.0 - kappa * alpha
    return 1.0 - survive


def per_step_compromise_s2_po_timed(
    alpha: float,
    kappa: float,
    launchpad_fraction: float = 1.0,
    n_proxies: int = 3,
    *,
    chi: int,
    timing: TimingSpec,
    period: float = 1.0,
    per_proxy_launchpad: bool = False,
) -> float:
    """q for S2PO under a :class:`~repro.core.timing.TimingSpec`.

    Identical compromise structure to :func:`per_step_compromise_s2_po`
    but with each route's success probability corrected for the
    protocol stack's timing (see
    :meth:`~repro.core.timing.TimingSpec.effective_attack`): proxies
    fall to the *landed* direct rate, the indirect route runs at the
    executed-probe rate (respawning proxies and primaries drop probes),
    and the launch pad only covers the within-step window after its
    host fell.

    Two within-step refinements the pure model elides become visible at
    protocol fidelity and are included here:

    * the indirect stream and the launch pad consume the *same*
      without-replacement server pool, so their per-step successes add
      (``q_ind + q_lp``) instead of composing multiplicatively;
    * with ``b`` proxies fallen the launch pad starts at the *first*
      fall, whose expected within-step window is ``b/(b+1)`` — twice
      the single-fall window at ``b = 1`` is scaled by ``2b/(b+1)``.
    """
    _check_alpha(alpha)
    eff = timing.effective_attack(
        alpha,
        chi,
        kappa=kappa,
        launchpad_fraction=launchpad_fraction,
        period=period,
    )
    alpha_proxy = eff.alpha_direct
    q_indirect = eff.kappa * alpha
    q_launchpad = eff.launchpad_fraction * alpha
    survive = 0.0
    for b in range(n_proxies):  # b = n_proxies: all proxies fell, absorbed
        p_b = (
            math.comb(n_proxies, b)
            * alpha_proxy**b
            * (1.0 - alpha_proxy) ** (n_proxies - b)
        )
        if b == 0:
            q_server = q_indirect
        elif per_proxy_launchpad:
            # Ablation: every fallen proxy hosts an independent stream.
            q_server = 1.0 - (1.0 - q_indirect) * (1.0 - q_launchpad) ** b
        else:
            q_server = q_indirect + q_launchpad * launchpad_window_scale(b)
        survive += p_b * (1.0 - min(1.0, q_server))
    return 1.0 - survive


def per_step_compromise_s2_smr_po(
    alpha: float,
    kappa: float,
    n_servers: int = 4,
    f: int = 1,
    n_proxies: int = 3,
) -> float:
    """q for a *fortified SMR* tier under PO (extension; paper §3 allows
    any replication behind the proxies but only evaluates PB).

    Compromise routes per step: the indirect stream hits more than ``f``
    of the diversely randomized replicas (each independently with
    probability κ·α — an ordered probe executes on every replica), or
    all proxies fall.  Launch pads gain nothing against a diverse,
    f-tolerant tier and are excluded.

    The headline: the server route scales as ``(κα)^{f+1}`` instead of
    S2's ``κα`` — fortification composes *multiplicatively* with SMR's
    intrusion tolerance.
    """
    _check_alpha(alpha)
    if not 0.0 <= kappa <= 1.0:
        raise AnalysisError(f"kappa must be in [0, 1], got {kappa}")
    servers_survive = sum(
        math.comb(n_servers, k)
        * (kappa * alpha) ** k
        * (1.0 - kappa * alpha) ** (n_servers - k)
        for k in range(f + 1)
    )
    proxies_survive = 1.0 - alpha**n_proxies
    return 1.0 - servers_survive * proxies_survive


def el_s2_smr_po(
    alpha: float,
    kappa: float,
    n_servers: int = 4,
    f: int = 1,
    n_proxies: int = 3,
) -> float:
    """EL of the fortified-SMR variant under PO."""
    return el_from_per_step(
        per_step_compromise_s2_smr_po(
            alpha, kappa, n_servers=n_servers, f=f, n_proxies=n_proxies
        )
    )


def el_from_per_step(q: float) -> float:
    """EL of a memoryless system: ``(1 − q)/q`` whole steps."""
    if not 0.0 < q <= 1.0:
        raise AnalysisError(f"per-step probability must be in (0, 1], got {q}")
    return (1.0 - q) / q


# ----------------------------------------------------------------------
# Expected lifetimes
# ----------------------------------------------------------------------
def el_s0_po(alpha: float, n: int = 4, f: int = 1) -> float:
    """EL of S0PO."""
    return el_from_per_step(per_step_compromise_s0_po(alpha, n=n, f=f))


def el_s1_po(alpha: float) -> float:
    """EL of S1PO."""
    return el_from_per_step(per_step_compromise_s1_po(alpha))


def el_s2_po(
    alpha: float,
    kappa: float,
    launchpad_fraction: float = 1.0,
    n_proxies: int = 3,
    per_proxy_launchpad: bool = False,
) -> float:
    """EL of S2PO."""
    return el_from_per_step(
        per_step_compromise_s2_po(
            alpha,
            kappa,
            launchpad_fraction=launchpad_fraction,
            n_proxies=n_proxies,
            per_proxy_launchpad=per_proxy_launchpad,
        )
    )


def el_s1_so(alpha: float) -> float:
    """EL of S1SO: ``Σ_t max(0, 1 − tα) = m − α·m(m+1)/2``, ``m = ⌊1/α⌋``."""
    _check_alpha(alpha)
    m = math.floor(1.0 / alpha + 1e-12)
    return m - alpha * m * (m + 1) / 2.0


def el_s0_so(alpha: float, n: int = 4, f: int = 1) -> float:
    """EL of S0SO: survival is a binomial tail over per-key discovery
    probability ``p(t) = min(1, tα)``; summed exactly (vectorized)."""
    _check_alpha(alpha)
    horizon = math.ceil(1.0 / alpha + 1e-12)
    t = np.arange(1, horizon + 1, dtype=float)
    p = np.minimum(1.0, t * alpha)
    survival = np.zeros_like(p)
    for k in range(f + 1):
        survival += math.comb(n, k) * p**k * (1.0 - p) ** (n - k)
    return float(survival.sum())


def _so_alpha(spec: SystemSpec, timing: Optional[TimingSpec]) -> float:
    """Per-step key-discovery fraction of one direct stream under
    ``timing`` (``α`` itself with no timing correction)."""
    if timing is None:
        return spec.alpha
    eff = timing.effective_attack(spec.alpha, spec.chi, period=spec.period)
    return eff.alpha_direct


def survival_curve(
    spec: SystemSpec, steps: int, timing: Optional[TimingSpec] = None
) -> np.ndarray:
    """``S(t)`` for ``t = 1..steps`` of any analytically supported spec.

    ``timing`` evaluates the curve under a
    :class:`~repro.core.timing.TimingSpec`'s delays; ``None`` is the
    paper's pure model.
    """
    if steps < 1:
        raise AnalysisError(f"steps must be >= 1, got {steps}")
    t = np.arange(1, steps + 1, dtype=float)
    if spec.scheme is Scheme.PO:
        q = per_step_compromise(spec, timing)
        return (1.0 - q) ** t
    alpha = _so_alpha(spec, timing)
    if spec.system is SystemClass.S1:
        return np.maximum(0.0, 1.0 - t * alpha)
    if spec.system is SystemClass.S0:
        p = np.minimum(1.0, t * alpha)
        survival = np.zeros_like(p)
        for k in range(spec.f + 1):
            survival += (
                math.comb(spec.n_servers, k) * p**k * (1.0 - p) ** (spec.n_servers - k)
            )
        return survival
    raise AnalysisError(
        "S2SO has a path-dependent state space; use repro.analysis.s2so "
        "or repro.mc for its survival"
    )


def per_step_compromise(spec: SystemSpec, timing: Optional[TimingSpec] = None) -> float:
    """Per-step compromise probability of a PO spec.

    With ``timing`` given, the probability is corrected for the
    protocol stack's delays (respawn, reconnect, probe pacing, the
    within-step launch-pad window); ``None`` keeps the paper's pure
    model.
    """
    if spec.scheme is not Scheme.PO:
        raise AnalysisError("per-step probabilities are constant only under PO")
    if spec.system is SystemClass.S0:
        return per_step_compromise_s0_po(
            _so_alpha(spec, timing), n=spec.n_servers, f=spec.f
        )
    if spec.system is SystemClass.S1:
        return per_step_compromise_s1_po(_so_alpha(spec, timing))
    if timing is None:
        return per_step_compromise_s2_po(
            spec.alpha,
            spec.kappa,
            launchpad_fraction=spec.launchpad_fraction,
            n_proxies=spec.n_proxies,
        )
    return per_step_compromise_s2_po_timed(
        spec.alpha,
        spec.kappa,
        launchpad_fraction=spec.launchpad_fraction,
        n_proxies=spec.n_proxies,
        chi=spec.chi,
        timing=timing,
        period=spec.period,
    )


def expected_lifetime(spec: SystemSpec, timing: Optional[TimingSpec] = None) -> float:
    """Analytic EL of ``spec``.

    ``timing`` computes the EL under a
    :class:`~repro.core.timing.TimingSpec`'s delays — the same
    assumptions the protocol-level simulation runs under; ``None``
    (default) is the paper's pure model.

    S2SO has no closed form; it is evaluated by the numeric survival
    quadrature of :mod:`repro.analysis.s2so` where the O((1/α)²) cost is
    practical, and raises otherwise (fall back to
    :func:`repro.mc.montecarlo.mc_expected_lifetime`, as the paper
    itself does for larger state spaces).
    """
    if spec.scheme is Scheme.PO:
        return el_from_per_step(per_step_compromise(spec, timing))
    if spec.system is SystemClass.S0:
        return el_s0_so(_so_alpha(spec, timing), n=spec.n_servers, f=spec.f)
    if spec.system is SystemClass.S1:
        return el_s1_so(_so_alpha(spec, timing))
    from .s2so import el_s2_so_numeric  # local import to avoid cycles

    return el_s2_so_numeric(
        spec.alpha,
        spec.kappa,
        n_proxies=spec.n_proxies,
        chi=spec.chi,
        timing=timing,
        period=spec.period,
    )


def _check_alpha(alpha: float) -> None:
    if not 0.0 < alpha <= 1.0:
        raise AnalysisError(f"alpha must be in (0, 1], got {alpha}")
